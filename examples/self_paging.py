#!/usr/bin/env python3
"""Enclave self-paging via the dispatcher interface (section 9.2).

The paper's future-work dispatcher interface, implemented here: an
enclave registers a user-mode fault handler; the monitor upcalls into it
on page faults instead of reporting them to the untrusted OS.  That
enables LibOS-style demand paging *without* exposing the fault addresses
that power SGX's controlled-channel attacks.

The demo enclave walks a 16 kB region that starts entirely unmapped.
Every first touch of a page faults into the enclave's own handler, which
maps the next OS-donated spare page at the faulting address and resumes
the faulting store.  The OS observes: nothing but a successful Enter.
"""

from repro.arm.assembler import Assembler
from repro.monitor.errors import KomErr
from repro.monitor.komodo import KomodoMonitor
from repro.monitor.layout import SVC
from repro.osmodel.kernel import OSKernel
from repro.sdk.builder import CODE_VA, DATA_VA, EnclaveBuilder

HANDLER_VA = CODE_VA + 0x800
HEAP_VA = 0x0030_0000
PAGES = 4


def build_program(spares) -> Assembler:
    asm = Assembler()
    # Main: register the handler, then touch one word in each heap page.
    asm.mov32("r0", HANDLER_VA)
    asm.svc(SVC.SET_FAULT_HANDLER)
    asm.movw("r10", 0)  # page index
    asm.movw("r6", 0)  # checksum of values read back
    asm.label("touch_loop")
    asm.mov32("r4", HEAP_VA)
    asm.lsli("r5", "r10", 12)
    asm.add("r4", "r4", "r5")
    asm.addi("r5", "r10", 100)
    asm.str_("r5", "r4", 0)  # first touch of each page faults
    asm.ldr("r5", "r4", 0)
    asm.add("r6", "r6", "r5")
    asm.addi("r10", "r10", 1)
    asm.cmpi("r10", PAGES)
    asm.bne("touch_loop")
    asm.mov("r0", "r6")
    asm.svc(SVC.EXIT)
    while asm.position < (HANDLER_VA - CODE_VA) // 4:
        asm.nop()
    # Handler: r1 = faulting VA.  Pop the next spare from the stash page
    # (spare numbers at words 0.., cursor at word 100) and map it RW at
    # the faulting page.
    asm.mov32("r4", DATA_VA)
    asm.ldr("r2", "r4", 400)  # cursor
    asm.lsli("r3", "r2", 2)
    asm.ldrr("r0", "r4", "r3")  # next spare pageno
    asm.addi("r2", "r2", 1)
    asm.str_("r2", "r4", 400)
    asm.mov32("r3", 0x3FFFF000)
    asm.and_("r1", "r1", "r3")
    asm.addi("r1", "r1", 0b011)  # R|W mapping word
    asm.svc(SVC.MAP_DATA)
    asm.svc(SVC.RESUME_FAULT)
    return asm


def main() -> None:
    # Spare page numbers are baked into the (measured) stash page.  They
    # are deterministic for a fresh machine, so probe once to learn
    # them, then build the real machine identically.
    probe_kernel = OSKernel(KomodoMonitor(secure_pages=64))
    probe = (
        EnclaveBuilder(probe_kernel)
        .add_code(build_program([0] * PAGES))
        .add_thread(CODE_VA)
        .add_spares(PAGES)
        .add_data(contents=[0] * PAGES, writable=True)
        .build()
    )
    spares = list(probe.spares)
    print(f"OS will donate spare pages {spares}")

    monitor = KomodoMonitor(secure_pages=64)
    kernel = OSKernel(monitor)
    enclave = (
        EnclaveBuilder(kernel)
        .add_code(build_program(spares))
        .add_thread(CODE_VA)
        .add_spares(PAGES)
        .add_data(contents=spares, writable=True)
        .build()
    )
    assert enclave.spares == spares

    err, checksum = enclave.call()
    assert err is KomErr.SUCCESS, err
    expected = sum(100 + i for i in range(PAGES))
    print(f"enclave demand-paged {PAGES} pages; checksum {checksum} == {expected}")
    assert checksum == expected

    # What did the OS see?  One successful Enter.  No fault report, no
    # fault addresses — the controlled channel SGX exposes is closed.
    from repro.monitor.layout import PageType

    consumed = [
        spare
        for spare in spares
        if monitor.pagedb.page_type(spare) is PageType.DATA
    ]
    print(
        f"all {len(consumed)} spares became data pages, chosen and placed "
        "entirely by the enclave; the OS observed only SUCCESS"
    )


if __name__ == "__main__":
    main()
