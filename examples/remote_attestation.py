#!/usr/bin/env python3
"""Remote attestation end to end (the trusted enclave the paper defers).

Section 4 of the paper: "Like SGX, Komodo implements local (same
machine) attestation as a monitor primitive, and defers remote
attestation to a trusted enclave (that we have yet to implement)."
This example runs that architecture:

1. A quoting enclave (QE) boots on the machine, generates an RSA
   signing key, and publishes the public key bound to its measurement
   by a *local* attestation.
2. A workload enclave attests locally to some report data (e.g. a hash
   of its public key for a secure channel).
3. The untrusted OS ferries the local attestation to the QE, which
   verifies it against the monitor's key and signs a quote.
4. A *remote* verifier — no access to this machine — checks the quote
   against the QE public key and the workload's expected measurement.
5. Every tampering attempt by the OS is rejected somewhere in the chain.
"""

from repro.apps.remote_attestation import Quote, QuotingEnclave, verify_quote
from repro.monitor.errors import KomErr
from repro.monitor.komodo import KomodoMonitor
from repro.osmodel.kernel import OSKernel
from repro.sdk.builder import EnclaveBuilder
from repro.sdk.native import NativeEnclaveProgram


def main() -> None:
    monitor = KomodoMonitor(secure_pages=96, step_budget=10**9)
    kernel = OSKernel(monitor)

    # 1. The quoting enclave.
    qe = QuotingEnclave(kernel)
    pubkey_n, binding = qe.init()
    print(f"QE public key: {pubkey_n:#x}"[:56], "…")
    print("QE measurement:", "".join(f"{w:08x}" for w in qe.measurement()[:4]), "…")

    # 2. A workload enclave attests to its report data.
    captured = {}

    def workload(ctx, a, b, c):
        report_data = [0xC0DE0000 + i for i in range(8)]
        captured["data"] = report_data
        captured["mac"] = ctx.attest(report_data)
        captured["measurement"] = ctx.monitor.pagedb.measurement(ctx.asno)
        return 0
        yield

    enclave = (
        EnclaveBuilder(kernel)
        .set_native_program(NativeEnclaveProgram("workload", workload))
        .build()
    )
    err, _ = enclave.call()
    assert err is KomErr.SUCCESS
    print("workload attested locally")

    # 3. The OS ferries the triple to the QE for quoting.
    quote = qe.quote(captured["measurement"], captured["data"], captured["mac"])
    assert quote is not None
    print(f"quote issued: sig={quote.signature.hex()[:24]}…")

    # 4. Remote verification: only the QE pubkey and the workload's
    #    expected measurement are needed — nothing from this machine.
    assert verify_quote(quote, pubkey_n, expected_measurement=captured["measurement"])
    print("remote verifier accepted the quote")

    # 5. Attacks: a forged MAC never becomes a quote; a tampered quote
    #    never verifies; an imposter measurement never matches.
    forged_mac = [m ^ 1 for m in captured["mac"]]
    assert qe.quote(captured["measurement"], captured["data"], forged_mac) is None
    print("QE rejected a forged local attestation")

    tampered = Quote(
        measurement=quote.measurement,
        report_data=tuple([0xBAD] + list(quote.report_data[1:])),
        signature=quote.signature,
    )
    assert not verify_quote(tampered, pubkey_n)
    print("remote verifier rejected a tampered quote")

    imposter = [0xDEAD] * 8
    assert not verify_quote(quote, pubkey_n, expected_measurement=imposter)
    print("remote verifier rejected a wrong expected identity")

    enclave.teardown()
    qe.teardown()
    print("remote attestation demo complete")


if __name__ == "__main__":
    main()
