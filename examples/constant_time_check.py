#!/usr/bin/env python3
"""Checking enclave code for side channels before deployment.

The monitor's noninterference guarantees stop at the architectural
boundary: classic cache and timing side channels are the enclave's own
responsibility (paper section 3.1), which is why the paper's SHA-256
carries a proof of a data-independent address trace.  This example
shows the workflow a Komodo enclave developer uses here: run the
side-channel analyser over candidate implementations before measuring
them into an enclave.

Scenario: a PIN-comparison routine for a wallet enclave, in two
versions — the naive early-exit loop every tutorial writes first, and
the branch-free version the analyser demands.
"""

from repro.arm.assembler import Assembler
from repro.security.sidechannel import SECRET_VA, check_constant_time

#: The attacker-chosen guess lives right after the secret PIN in memory.
GUESS_VA = SECRET_VA + 16


def naive_compare() -> Assembler:
    """Early-exit comparison: returns at the first mismatching word.

    The classic timing bug: the number of loop iterations reveals the
    length of the matching prefix, letting an attacker guess the PIN
    word by word.
    """
    asm = Assembler()
    asm.mov32("r4", SECRET_VA)
    asm.movw("r7", 0)  # index
    asm.label("loop")
    asm.lsli("r8", "r7", 2)
    asm.ldrr("r5", "r4", "r8")  # secret[i]
    asm.addi("r8", "r8", 16)
    asm.ldrr("r6", "r4", "r8")  # guess[i]
    asm.cmp("r5", "r6")
    asm.bne("fail")  # EARLY EXIT: iteration count leaks
    asm.addi("r7", "r7", 1)
    asm.cmpi("r7", 4)
    asm.bne("loop")
    asm.movw("r0", 1)
    asm.svc(1)
    asm.label("fail")
    asm.movw("r0", 0)
    asm.svc(1)
    return asm


def constant_time_compare() -> Assembler:
    """Branch-free comparison: accumulate differences, test once."""
    asm = Assembler()
    asm.mov32("r4", SECRET_VA)
    asm.movw("r7", 0)
    asm.movw("r9", 0)  # difference accumulator
    asm.label("loop")
    asm.lsli("r8", "r7", 2)
    asm.ldrr("r5", "r4", "r8")
    asm.addi("r8", "r8", 16)
    asm.ldrr("r6", "r4", "r8")
    asm.eor("r5", "r5", "r6")
    asm.orr("r9", "r9", "r5")
    asm.addi("r7", "r7", 1)
    asm.cmpi("r7", 4)
    asm.bne("loop")
    # r0 = (r9 == 0): subtract 1 and take the borrow, branch-free.
    asm.subi("r9", "r9", 1)  # 0 -> 0xFFFFFFFF, nonzero -> no wrap to top bit
    asm.lsri("r0", "r9", 31)  # top bit set only for the all-equal case...
    asm.svc(1)
    return asm


def main() -> None:
    # Secrets: PIN in words 0-3, a fixed wrong guess in words 4-7.  The
    # analyser varies the PIN; a constant-time compare must behave
    # identically whether the guess misses at word 0 or word 3.
    guess = [0x1111, 0x2222, 0x3333, 0x4444]
    secrets = [
        [0x9999, 0x2222, 0x3333, 0x4444] + guess,  # mismatch at word 0
        [0x1111, 0x9999, 0x3333, 0x4444] + guess,  # mismatch at word 1
        [0x1111, 0x2222, 0x9999, 0x4444] + guess,  # mismatch at word 2
        [0x1111, 0x2222, 0x3333, 0x9999] + guess,  # mismatch at word 3
    ]

    print("analysing naive early-exit PIN compare…")
    report = check_constant_time(naive_compare(), secrets)
    print(f"  constant time: {report.constant_time}")
    print(f"  finding: {report.first_divergence}")
    assert not report.constant_time

    print("analysing branch-free PIN compare…")
    report = check_constant_time(constant_time_compare(), secrets)
    print(f"  constant time: {report.constant_time}")
    assert report.constant_time

    print(
        "verdict: ship the branch-free version — its timing and address "
        "trace are identical for every PIN"
    )


if __name__ == "__main__":
    main()
