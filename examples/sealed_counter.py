#!/usr/bin/env python3
"""Dynamic enclave memory (SGXv2-style, paper section 4).

A sealed event log that grows on demand: the OS donates *spare* pages
to a finalised, running enclave with AllocSpare; only the enclave decides
what they become (data pages or second-level page tables) via the
MapData/InitL2PTable SVCs.  The OS cannot observe which use the enclave
chose — the deliberate improvement over SGXv2 the paper calls out — it
can only infer that a spare was consumed, because Remove on it fails.

The example demonstrates:

1. an enclave growing its own address space: it consumes one spare as a
   fresh L2 page table (a 4 MB slice the OS never mapped) and further
   spares as log data pages, appending events until pages fill;
2. the OS-side view: AllocSpare succeeds, Remove on a consumed spare
   fails with PAGEINUSE, Remove on an unconsumed spare succeeds — and
   the OS cannot tell page-table spares from data spares;
3. UnmapData turning a log page back into a (scrubbed) spare the OS can
   then reclaim.
"""

from repro.arm.memory import PAGE_SIZE, WORDS_PER_PAGE
from repro.arm.pagetable import l1_index
from repro.monitor.errors import KomErr
from repro.monitor.komodo import KomodoMonitor
from repro.monitor.layout import SMC, Mapping
from repro.osmodel.kernel import OSKernel
from repro.sdk.builder import EnclaveBuilder
from repro.sdk.native import NativeEnclaveProgram

#: The log lives in a 4 MB slice the OS never created a page table for;
#: the enclave builds that table itself from a donated spare.
LOG_BASE_VA = 0x0040_0000

OP_APPEND = 1
OP_SEAL = 2
OP_SHRINK = 3

#: Host -> enclave mailbox: slot 0 = next donated spare page number.
MAILBOX_VA = 0x0020_0000

#: Events per log page: word 0 of page 0 is the count header.
_EVENTS_PER_PAGE = WORDS_PER_PAGE - 1


def _slot_va(index: int) -> int:
    """Virtual address of event slot ``index`` (skipping the header word)."""
    linear = 1 + index
    return LOG_BASE_VA + (linear // WORDS_PER_PAGE) * PAGE_SIZE + (
        linear % WORDS_PER_PAGE
    ) * 4


def sealed_log_body(ctx, op, value, _arg3):
    """Enclave program: append ``value`` to a page-growing sealed log."""
    from repro.monitor.enclave_exec import NativeFault

    def mapped(va):
        try:
            ctx.read_word(va)
            return True
        except NativeFault:
            return False

    if op == OP_APPEND:
        if not mapped(LOG_BASE_VA):
            # First ever append: build the L2 table for this 4 MB slice
            # from one donated spare (mailbox slot 1), then map the first
            # log page from another (mailbox slot 0).
            ctx.init_l2ptable(ctx.read_word(MAILBOX_VA + 4), l1_index(LOG_BASE_VA))
            yield
            mapping = Mapping(
                va=LOG_BASE_VA, readable=True, writable=True, executable=False
            )
            ctx.map_data(ctx.read_word(MAILBOX_VA), mapping.encode())
        count = ctx.read_word(LOG_BASE_VA)
        slot = _slot_va(count)
        if not mapped(slot):
            mapping = Mapping(
                va=slot & ~(PAGE_SIZE - 1),
                readable=True,
                writable=True,
                executable=False,
            )
            ctx.map_data(ctx.read_word(MAILBOX_VA), mapping.encode())
        ctx.write_word(slot, value)
        ctx.write_word(LOG_BASE_VA, count + 1)
        yield
        return count + 1
    if op == OP_SEAL:
        count = ctx.read_word(LOG_BASE_VA)
        seal = 0
        for i in range(count):
            seal = (seal * 31 + ctx.read_word(_slot_va(i))) & 0xFFFFFFFF
            if i % 256 == 255:
                yield
        return seal
    if op == OP_SHRINK:
        # Unmap the last log page (``value`` is its secure page number,
        # which the enclave learned when the OS donated it — here the OS
        # passes it back for simplicity).  The monitor scrubs it.
        count = ctx.read_word(LOG_BASE_VA)
        last_page_va = _slot_va(count - 1) & ~(PAGE_SIZE - 1)
        mapping = Mapping(
            va=last_page_va, readable=True, writable=True, executable=False
        )
        ctx.unmap_data(value, mapping.encode())
        ctx.write_word(LOG_BASE_VA, min(count, _EVENTS_PER_PAGE))
        yield
        return 1
    return 0xFFFFFFFF
    yield  # pragma: no cover - generator marker


def main() -> None:
    monitor = KomodoMonitor(secure_pages=64)
    kernel = OSKernel(monitor)
    enclave = (
        EnclaveBuilder(kernel)
        .add_shared_buffer(va=MAILBOX_VA)
        .set_native_program(NativeEnclaveProgram("sealed-log", sealed_log_body))
        .build()
    )

    donated = []

    def donate_spare(slot: int = 0) -> int:
        spare = kernel.alloc_spare(enclave.as_page)
        enclave.buffer().write_words(kernel, [spare], offset=slot)
        donated.append(spare)
        return spare

    # 1. Grow the log across a page boundary.  The OS donates spares
    #    ahead of demand through the mailbox: slot 1 becomes the new L2
    #    page table, slot 0 the next log data page.
    donate_spare(slot=1)  # becomes the enclave's new L2 page table
    donate_spare(slot=0)  # becomes the first log data page
    err, total = enclave.call(OP_APPEND, 1000)
    assert err is KomErr.SUCCESS and total == 1, (err, total)
    overflow_spare = None
    for i in range(1, _EVENTS_PER_PAGE + 5):
        if i == _EVENTS_PER_PAGE:
            overflow_spare = donate_spare()  # second log data page
        err, total = enclave.call(OP_APPEND, 1000 + i)
        assert err is KomErr.SUCCESS, err
    print(f"appended {total} events across 2 dynamically mapped pages")

    # 2. The OS cannot reclaim consumed spares — and cannot distinguish
    #    the page-table spare from the data spare: Remove fails with the
    #    *same* error for both (the section 6.2 side channel is only
    #    "a spare was consumed", never "what it became").
    errors = []
    for spare in donated[:2]:
        err, _ = kernel.smc(SMC.REMOVE, spare)
        errors.append(err)
    assert errors[0] is errors[1] is KomErr.NOT_STOPPED, errors
    print(
        "Remove(consumed spares) -> NOT_STOPPED for both the table spare "
        "and the data spare (indistinguishable to the OS)"
    )

    unused = donate_spare()
    err, _ = kernel.smc(SMC.REMOVE, unused)
    assert err is KomErr.SUCCESS
    kernel.release_page(unused)
    donated.remove(unused)
    print("Remove(unconsumed spare) -> SUCCESS")

    # 3. Seal, then shrink: the enclave unmaps its overflow page, turning
    #    it back into a spare the OS can reclaim (contents scrubbed).
    err, seal = enclave.call(OP_SEAL)
    assert err is KomErr.SUCCESS
    print(f"log sealed: {seal:#010x}")

    err, _ = enclave.call(OP_SHRINK, overflow_spare)
    assert err is KomErr.SUCCESS
    err, _ = kernel.smc(SMC.REMOVE, overflow_spare)
    assert err is KomErr.SUCCESS
    kernel.release_page(overflow_spare)
    donated.remove(overflow_spare)
    print("enclave unmapped its overflow page; the OS reclaimed it scrubbed")

    enclave.owned_pages.extend(donated)
    enclave.teardown()
    print(f"teardown complete, {kernel.free_page_count} pages free")


if __name__ == "__main__":
    main()
