#!/usr/bin/env python3
"""The trusted notary (paper section 8.2) end to end.

The notary assigns logical timestamps to documents so they can be
conclusively ordered.  This example:

1. Builds the notary enclave (key generation on first entry, attested
   public key).
2. Notarises a few documents and shows the monotonic counter ordering.
3. Verifies the receipts against the attested public key.
4. Demonstrates that a tampered document or replayed counter fails.
5. Runs the same workload as a plain "Linux process" and compares the
   cycle counts — the Figure 5 observation that CPU-bound enclaves run
   at native speed.
"""

from repro.apps.notary import NativeNotary, NotaryEnclave
from repro.monitor.komodo import KomodoMonitor
from repro.osmodel.kernel import OSKernel

CPU_MHZ = 900  # the paper's Raspberry Pi 2 clock, for cycle -> ms


def main() -> None:
    monitor = KomodoMonitor(secure_pages=128, step_budget=10**9)
    kernel = OSKernel(monitor)
    notary = NotaryEnclave(kernel, max_doc_bytes=64 * 1024)

    pubkey_n, mac = notary.init()
    print(f"notary public key: {pubkey_n:#x}"[:60], "…")
    print("attestation MAC:", "".join(f"{w:08x}" for w in mac[:4]), "…")

    documents = [
        b"I, Alice, owe Bob one simulated Raspberry Pi." + bytes(3),
        b"Contract: Bob delivers 64 secure pages by Friday" + bytes(0),
        b"Amendment: make that 128 secure pages." + bytes(2),
    ]
    receipts = []
    for document in documents:
        receipt = notary.notarize(document)
        receipts.append(receipt)
        print(f"notarised counter={receipt.counter} sig={receipt.signature.hex()[:24]}…")

    print("counters are strictly ordered:", [r.counter for r in receipts])
    for document, receipt in zip(documents, receipts):
        assert notary.verify_receipt(document, receipt), "receipt must verify"
    print("all receipts verify against the attested public key")

    tampered = documents[0].replace(b"one", b"two")
    assert not notary.verify_receipt(tampered, receipts[0])
    print("tampered document rejected")
    assert not notary.verify_receipt(documents[1], receipts[0])
    print("receipt replay against another document rejected")

    # Figure 5 in miniature: enclave vs native process on one document.
    document = bytes(range(256)) * 128  # 32 KiB
    start = monitor.state.cycles
    notary.notarize(document)
    enclave_cycles = monitor.state.cycles - start

    native = NativeNotary()
    native.init()
    start = native.cycles
    native.notarize(document)
    native_cycles = native.cycles - start

    print(
        f"32 KiB notarisation: enclave {enclave_cycles/CPU_MHZ/1000:.2f} ms, "
        f"native {native_cycles/CPU_MHZ/1000:.2f} ms "
        f"(overhead {100*(enclave_cycles/native_cycles-1):.1f}%)"
    )
    notary.teardown()


if __name__ == "__main__":
    main()
