#!/usr/bin/env python3
"""Quickstart: boot the platform, build an enclave, run it, attest it.

This walks the whole Komodo stack in ~60 lines:

1. Boot a simulated ARMv7/TrustZone machine with the Komodo monitor in
   secure world (the bootloader has reserved secure pages and derived
   the attestation key).
2. As the untrusted OS, build an enclave out of free secure pages via
   the SMC API: address space, page tables, a measured code page, a
   shared insecure buffer, a thread — then finalise it.
3. Enter the enclave with arguments; it computes, writes a result to
   the shared buffer, and exits.
4. Read the enclave's measurement (public) and note that its secure
   pages are unreachable from the OS.
"""

from repro.arm.assembler import Assembler
from repro.arm.memory import MemoryFault
from repro.arm.modes import World
from repro.monitor.komodo import KomodoMonitor
from repro.monitor.layout import SVC
from repro.osmodel.kernel import OSKernel
from repro.sdk.builder import CODE_VA, SHARED_VA, EnclaveBuilder


def main() -> None:
    # 1. Boot: monitor in secure world, OS in normal world.
    monitor = KomodoMonitor(secure_pages=64)
    kernel = OSKernel(monitor)
    print(f"monitor manages {kernel.npages} secure pages")

    # 2. Write enclave code: multiply the two arguments, store the
    #    product to the shared buffer, exit with it.
    asm = Assembler()
    asm.mul("r0", "r0", "r1")
    asm.mov32("r4", SHARED_VA)
    asm.str_("r0", "r4", 0)
    asm.svc(SVC.EXIT)

    enclave = (
        EnclaveBuilder(kernel)
        .add_code(asm)
        .add_shared_buffer()
        .add_thread(CODE_VA)
        .build()
    )
    measurement = enclave.measurement()
    print("enclave measurement:", "".join(f"{w:08x}" for w in measurement[:4]), "…")

    # 3. Enter the enclave.
    err, value = enclave.call(6, 7)
    print(f"enclave returned: err={err.name} value={value}")
    shared = enclave.buffer().read_words(kernel, 1)[0]
    print(f"shared buffer now holds: {shared}")

    # 4. The OS cannot touch the enclave's secure pages.
    code_page = enclave.data_pages[CODE_VA]
    secure_addr = monitor.state.memmap.page_base(code_page)
    try:
        monitor.state.memory.checked_read(secure_addr, World.NORMAL)
        raise SystemExit("BUG: the OS read secure memory!")
    except MemoryFault as fault:
        print(f"OS read of secure page faulted as expected: {fault.reason}")

    # Teardown returns every page to the OS.
    enclave.teardown()
    print(f"after teardown the OS has {kernel.free_page_count} free pages again")


if __name__ == "__main__":
    main()
