#!/usr/bin/env python3
"""Local attestation between two enclaves (paper section 4, "Attestation").

Komodo implements *local* attestation as a monitor primitive: an HMAC,
keyed with a boot-time secret no software can read, over the attesting
enclave's measurement and 8 words of enclave-chosen data.  Another
enclave on the same machine can verify the MAC via the Verify SVC and
thereby authenticate the first enclave's identity (its measurement) and
its bound data — the building block for an encrypted channel.

This example builds two enclaves:

* a **prover** that attests to a key-exchange word, and
* a **verifier** that checks the attestation and accepts or rejects.

The untrusted OS ferries (measurement, data, MAC) between them through
insecure memory — and the example shows a forged MAC and a wrong
measurement are both rejected.
"""

from repro.arm.bits import bytes_to_words
from repro.monitor.errors import KomErr
from repro.monitor.komodo import KomodoMonitor
from repro.osmodel.kernel import OSKernel
from repro.sdk.builder import EnclaveBuilder
from repro.sdk.native import NativeEnclaveProgram

SHARED_VA = 0x0020_0000
# Shared-page layout (words): data[8] | measurement[8] | mac[8]
_OFF_DATA = 0
_OFF_MEAS = 8
_OFF_MAC = 16


def prover_body(ctx, kx_word, _b, _c):
    """Attest to 8 words of key-exchange data and publish the MAC."""
    data = [kx_word + i for i in range(8)]  # stand-in for a public key
    mac = ctx.attest(data)
    ctx.write_words(SHARED_VA + _OFF_DATA * 4, data)
    ctx.write_words(SHARED_VA + _OFF_MAC * 4, mac)
    return 1
    yield  # pragma: no cover - generator marker


def verifier_body(ctx, _a, _b, _c):
    """Read (data, measurement, mac) from shared memory and verify."""
    data = ctx.read_words(SHARED_VA + _OFF_DATA * 4, 8)
    measurement = ctx.read_words(SHARED_VA + _OFF_MEAS * 4, 8)
    mac = ctx.read_words(SHARED_VA + _OFF_MAC * 4, 8)
    yield
    return 1 if ctx.verify(data, measurement, mac) else 0


def main() -> None:
    monitor = KomodoMonitor(secure_pages=64)
    kernel = OSKernel(monitor)

    prover = (
        EnclaveBuilder(kernel)
        .add_shared_buffer(va=SHARED_VA)
        .set_native_program(NativeEnclaveProgram("prover", prover_body))
        .build()
    )
    verifier = (
        EnclaveBuilder(kernel)
        .add_shared_buffer(va=SHARED_VA)
        .set_native_program(NativeEnclaveProgram("verifier", verifier_body))
        .build()
    )

    # The prover attests; its outputs land in *its* shared page.
    err, ok = prover.call(0x1234_0000)
    assert err is KomErr.SUCCESS and ok == 1
    data = prover.buffer().read_words(kernel, 8, offset=_OFF_DATA)
    mac = prover.buffer().read_words(kernel, 8, offset=_OFF_MAC)
    measurement = prover.measurement()  # public: the OS can compute it
    print("prover measurement:", "".join(f"{w:08x}" for w in measurement[:4]), "…")

    # The OS ferries the triple into the verifier's shared page.
    verifier.buffer().write_words(kernel, data, offset=_OFF_DATA)
    verifier.buffer().write_words(kernel, measurement, offset=_OFF_MEAS)
    verifier.buffer().write_words(kernel, mac, offset=_OFF_MAC)
    err, accepted = verifier.call()
    print(f"verifier on honest attestation: accepted={bool(accepted)}")
    assert accepted == 1

    # A forged MAC is rejected.
    forged = list(mac)
    forged[0] ^= 1
    verifier.buffer().write_words(kernel, forged, offset=_OFF_MAC)
    err, accepted = verifier.call()
    print(f"verifier on forged MAC: accepted={bool(accepted)}")
    assert accepted == 0

    # The right MAC bound to the *wrong* identity is rejected too: the
    # OS claims the attestation came from the verifier's measurement.
    verifier.buffer().write_words(kernel, mac, offset=_OFF_MAC)
    verifier.buffer().write_words(kernel, verifier.measurement(), offset=_OFF_MEAS)
    err, accepted = verifier.call()
    print(f"verifier on wrong measurement: accepted={bool(accepted)}")
    assert accepted == 0

    prover.teardown()
    verifier.teardown()
    print("attested channel demo complete")


if __name__ == "__main__":
    main()
