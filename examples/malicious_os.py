#!/usr/bin/env python3
"""The threat model, exercised: a hostile OS attacks a victim enclave.

The paper's adversary controls all privileged normal-world software
(section 3.1).  This example plays that adversary against a victim
enclave holding a secret, and shows each attack bouncing off the monitor
or the hardware model:

1. direct reads/writes of secure memory (hardware faults);
2. the aliased InitAddrspace(p, p) bug from section 9.1 (rejected);
3. MapSecure sourcing contents from monitor memory (rejected);
4. mapping a victim's page into an attacker enclave (rejected);
5. re-entering a suspended thread to clobber its context (rejected);
6. removing pages of a running enclave (rejected);
7. random SMC fuzzing with invariant checking over the whole run;
8. what the OS *does* learn: exception types, exit values, and spare
   consumption — exactly the declassified set of section 6.2.
"""

from repro.arm.assembler import Assembler
from repro.monitor.errors import KomErr
from repro.monitor.komodo import KomodoMonitor
from repro.monitor.layout import SMC, SVC, Mapping
from repro.osmodel.adversary import AdversarialOS
from repro.osmodel.kernel import OSKernel
from repro.sdk.builder import CODE_VA, DATA_VA, EnclaveBuilder
from repro.spec.invariants import collect_violations
from repro.verification.extract import extract_pagedb

SECRET = 0xDEADC0DE


def build_victim(kernel: OSKernel):
    """A victim enclave with a secret in a private data page.

    Its program loops adding the secret to a register; it never exits,
    so the OS only ever sees INTERRUPTED from it.
    """
    asm = Assembler()
    asm.mov32("r4", DATA_VA)
    asm.ldr("r5", "r4", 0)
    asm.label("loop")
    asm.add("r6", "r6", "r5")
    asm.b("loop")
    return (
        EnclaveBuilder(kernel)
        .add_code(asm)
        .add_data(contents=[SECRET], writable=False)
        .add_thread(CODE_VA)
        .build()
    )


def main() -> None:
    monitor = KomodoMonitor(secure_pages=64, step_budget=500)
    kernel = OSKernel(monitor)
    victim = build_victim(kernel)
    attacker = AdversarialOS(monitor, seed=7)

    # 1. Hardware-level probing of secure memory.
    attacker.probe_secure_memory(samples=16)
    print(f"1. secure-memory probes: {attacker.log.faults_taken} faults, 0 reads")

    # 2. The aliasing bug the unverified prototype had (section 9.1).
    free_page = kernel.alloc_page()
    err = attacker.aliased_init_addrspace(free_page)
    print(f"2. InitAddrspace(p, p) -> {err.name}")
    assert err is KomErr.INVALID_PAGENO

    # 3. MapSecure from monitor memory (the validity subtlety of 9.1).
    err, _ = monitor.smc(SMC.INIT_ADDRSPACE, free_page, kernel.alloc_page())
    assert err is KomErr.SUCCESS
    attack_as = free_page
    l2 = kernel.init_l2table(attack_as, 0)
    mapping = Mapping(va=0x1000, readable=True, writable=True, executable=False)
    err = attacker.map_secure_from_monitor_memory(
        attack_as, kernel.alloc_page(), mapping.encode()
    )
    print(f"3. MapSecure(from monitor image) -> {err.name}")
    assert err is KomErr.INSECURE_INVALID

    # 4. Map the *victim's* secret page into the attacker enclave.
    secret_page = victim.data_pages[DATA_VA]
    err, _ = monitor.smc(
        SMC.MAP_SECURE, attack_as, secret_page, mapping.encode(), 0
    )
    print(f"4. MapSecure(victim's page) -> {err.name} (double-mapping refused)")
    assert err is KomErr.PAGEINUSE

    # 5. Interrupt the victim mid-computation, then try to re-enter it
    #    (which would reset its registers) instead of resuming.
    monitor.schedule_interrupt(10)
    err, _ = victim.enter()
    assert err is KomErr.INTERRUPTED
    err = attacker.reenter_suspended_thread(victim.thread)
    print(f"5. Enter(suspended thread) -> {err.name}")
    assert err is KomErr.ALREADY_ENTERED

    # 6. Remove pages of the still-running victim.
    err = attacker.remove_running_enclave_page(secret_page)
    print(f"6. Remove(running enclave's page) -> {err.name}")
    assert err is KomErr.NOT_STOPPED

    # 7. What the OS legitimately learns (section 6.2): only the
    #    exception type — never the registers or memory of the enclave.
    err, value = victim.resume()
    print(
        f"7. resumed victim -> {err.name}, value={value} "
        "(the OS sees INTERRUPTED and nothing else)"
    )
    assert err is KomErr.INTERRUPTED and value == 0

    # 8. Fuzz the SMC interface and check every PageDB invariant after.
    #    (Last: the fuzzer may legitimately Stop the victim's enclave.)
    attacker.fuzz_smcs(count=150)
    violations = collect_violations(
        extract_pagedb(monitor.state), monitor.state.memmap
    )
    print(
        f"8. {attacker.log.smcs_issued} hostile SMCs issued; "
        f"invariant violations: {len(violations)}"
    )
    assert not violations

    print("all attacks defeated; the declassified channel is all that remains")


if __name__ == "__main__":
    main()
