"""Komodo reproduction: software enclaves on a simulated ARM/TrustZone.

An executable reproduction of "Komodo: Using verification to disentangle
secure-enclave hardware from software" (SOSP 2017).  The public API
surfaces the pieces a downstream user composes:

>>> from repro import KomodoMonitor, OSKernel, EnclaveBuilder
>>> from repro.arm.assembler import Assembler
>>> from repro.monitor.layout import SVC
>>> monitor = KomodoMonitor(secure_pages=64)
>>> kernel = OSKernel(monitor)
>>> asm = Assembler().mul("r0", "r0", "r1").svc(SVC.EXIT)
>>> enclave = EnclaveBuilder(kernel).add_code(asm).add_thread(0x10000).build()
>>> enclave.call(6, 7)[1]
42

Subpackages: ``arm`` (machine model), ``crypto``, ``monitor`` (the
paper's contribution), ``spec`` (executable functional specification),
``verification`` (refinement checking), ``security`` (noninterference),
``osmodel``, ``sdk``, ``apps``, ``multicore``, ``tools``.
"""

from repro.monitor.errors import KomErr
from repro.monitor.komodo import KomodoMonitor
from repro.monitor.layout import Mapping, SMC, SVC
from repro.osmodel.kernel import OSKernel
from repro.sdk.builder import EnclaveBuilder, EnclaveHandle
from repro.sdk.native import NativeEnclaveProgram
from repro.verification.refinement import CheckedMonitor

__version__ = "1.0.0"

__all__ = [
    "CheckedMonitor",
    "EnclaveBuilder",
    "EnclaveHandle",
    "KomErr",
    "KomodoMonitor",
    "Mapping",
    "NativeEnclaveProgram",
    "OSKernel",
    "SMC",
    "SVC",
    "__version__",
]
