"""User-mode execution engine.

Runs enclave code on the simulated machine: each instruction is fetched
through the enclave's page tables (rooted at TTBR0), decoded, executed,
and charged cycles.  Execution continues until an *exception*: a
supervisor call, a translation/permission fault (data or prefetch abort),
an undefined instruction, or an injected interrupt.  The CPU then
performs architectural exception entry — banking the return address into
the target mode's LR and the CPSR into its SPSR — and reports the
exception to the caller (the monitor's exception-handler state machine,
paper Figure 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.arm.bits import (
    add_wrap,
    asr,
    get_bit,
    lsl,
    lsr,
    mul_wrap,
    not_word,
    ror,
    sub_wrap,
    to_signed,
    to_word,
)
from repro.arm.instructions import (
    CONDITIONAL_BRANCHES,
    Instruction,
    condition_passes,
    decode,
)
from repro.arm.machine import MachineState
from repro.arm.memory import WORDSIZE
from repro.arm.modes import EXCEPTION_MODE, ExceptionKind, Mode
from repro.arm.pagetable import PageTableWalker
from repro.arm.registers import PSR


class ExitReason(enum.Enum):
    """Why user-mode execution stopped."""

    SVC = "svc"
    IRQ = "irq"
    FIQ = "fiq"
    ABORT = "abort"
    UNDEFINED = "undefined"
    STEP_LIMIT = "step_limit"  # harness budget exhausted (not architectural)


_EXIT_TO_EXCEPTION = {
    ExitReason.SVC: ExceptionKind.SVC,
    ExitReason.IRQ: ExceptionKind.IRQ,
    ExitReason.FIQ: ExceptionKind.FIQ,
    ExitReason.ABORT: ExceptionKind.ABORT,
    ExitReason.UNDEFINED: ExceptionKind.UNDEFINED,
}


@dataclass
class ExecutionResult:
    """Outcome of a user-mode run."""

    reason: ExitReason
    svc_number: int = 0  # immediate of the SVC instruction, if any
    fault_address: int = 0  # faulting VA for aborts
    steps: int = 0  # instructions retired

    @property
    def exception(self) -> ExceptionKind:
        return _EXIT_TO_EXCEPTION[self.reason]


class _UserFault(Exception):
    def __init__(self, vaddr: int):
        super().__init__(f"user fault at {vaddr:#010x}")
        self.vaddr = vaddr


class _UserUndefined(Exception):
    pass


class CPU:
    """Interprets user-mode instruction streams against a MachineState."""

    def __init__(self, state: MachineState):
        self.state = state
        self.walker = PageTableWalker(state.memory)
        #: Optional microarchitectural observation trace.  When a list is
        #: attached, every fetch/load/store appends ("fetch"|"load"|
        #: "store", vaddr) — the address trace a cache-level attacker
        #: observes, used by the side-channel analyser.
        self.access_trace = None

    # -- translation -----------------------------------------------------

    def _translate(self, vaddr: int, write: bool, execute: bool) -> int:
        if self.state.ttbr0 is None:
            raise _UserFault(vaddr)
        translation = self.walker.walk(self.state.ttbr0, vaddr)
        if translation is None:
            raise _UserFault(vaddr)
        if write and not translation.writable:
            raise _UserFault(vaddr)
        if execute and not translation.executable:
            raise _UserFault(vaddr)
        if not write and not execute and not translation.readable:
            raise _UserFault(vaddr)
        return translation.phys_addr(vaddr)

    def _load(self, vaddr: int) -> int:
        if vaddr % WORDSIZE:
            raise _UserFault(vaddr)
        paddr = self._translate(vaddr, write=False, execute=False)
        if self.access_trace is not None:
            self.access_trace.append(("load", vaddr))
        self.state.charge(self.state.costs.mem_access)
        return self.state.memory.read_word(paddr)

    def _store(self, vaddr: int, value: int) -> None:
        if vaddr % WORDSIZE:
            raise _UserFault(vaddr)
        paddr = self._translate(vaddr, write=True, execute=False)
        if self.access_trace is not None:
            self.access_trace.append(("store", vaddr))
        self.state.charge(self.state.costs.mem_access)
        self.state.memory.write_word(paddr, value)
        self.state.tlb.note_store(paddr)

    def _fetch(self, pc: int) -> Instruction:
        if pc % WORDSIZE:
            raise _UserFault(pc)
        paddr = self._translate(pc, write=False, execute=True)
        if self.access_trace is not None:
            self.access_trace.append(("fetch", pc))
        word = self.state.memory.read_word(paddr)
        instr = decode(word)
        if instr is None:
            raise _UserUndefined()
        return instr

    # -- register operand helpers ------------------------------------------

    def _read_reg(self, index: int) -> int:
        regs = self.state.regs
        if index == 13:
            return regs.read_sp(Mode.USR)
        if index == 14:
            return regs.read_lr(Mode.USR)
        return regs.read_gpr(index)

    def _write_reg(self, index: int, value: int) -> None:
        regs = self.state.regs
        if index == 13:
            regs.write_sp(value, Mode.USR)
        elif index == 14:
            regs.write_lr(value, Mode.USR)
        else:
            regs.write_gpr(index, value)

    # -- flags -----------------------------------------------------------------

    def _set_flags_cmp(self, a: int, b: int) -> None:
        result = sub_wrap(a, b)
        cpsr = self.state.regs.cpsr
        cpsr.n = bool(get_bit(result, 31))
        cpsr.z = result == 0
        cpsr.c = a >= b  # no borrow
        cpsr.v = (to_signed(a) - to_signed(b)) != to_signed(result)

    def _set_flags_tst(self, a: int, b: int) -> None:
        result = a & b
        cpsr = self.state.regs.cpsr
        cpsr.n = bool(get_bit(result, 31))
        cpsr.z = result == 0

    # -- the run loop ---------------------------------------------------------

    def run(
        self,
        entry_pc: int,
        max_steps: int = 1_000_000,
        interrupt_after: Optional[int] = None,
    ) -> ExecutionResult:
        """Execute user-mode code from ``entry_pc`` until an exception.

        ``interrupt_after`` models the attacker-controlled external
        interrupt line: after that many retired instructions an IRQ is
        taken (interrupts are enabled during enclave execution).

        On return, architectural exception entry has been performed: the
        machine is in the exception's target mode, LR_<mode> holds the
        preferred return address and SPSR_<mode> the user-mode CPSR.
        """
        state = self.state
        if state.regs.cpsr.mode is not Mode.USR:
            raise RuntimeError("CPU.run requires user mode (use monitor entry paths)")
        state.tlb.require_consistent()
        pc = to_word(entry_pc)
        steps = 0
        while True:
            if interrupt_after is not None and steps >= interrupt_after:
                self._exception_entry(ExceptionKind.IRQ, pc)
                return ExecutionResult(ExitReason.IRQ, steps=steps)
            if steps >= max_steps:
                # Harness budget: modelled as an interrupt so the monitor
                # path is identical to a timer interrupt firing.
                self._exception_entry(ExceptionKind.IRQ, pc)
                return ExecutionResult(ExitReason.STEP_LIMIT, steps=steps)
            try:
                instr = self._fetch(pc)
            except _UserFault as fault:
                self._exception_entry(ExceptionKind.ABORT, pc)
                return ExecutionResult(
                    ExitReason.ABORT, fault_address=fault.vaddr, steps=steps
                )
            except _UserUndefined:
                self._exception_entry(ExceptionKind.UNDEFINED, pc)
                return ExecutionResult(ExitReason.UNDEFINED, steps=steps)
            try:
                next_pc, svc = self._execute(instr, pc)
            except _UserFault as fault:
                self._exception_entry(ExceptionKind.ABORT, pc)
                return ExecutionResult(
                    ExitReason.ABORT, fault_address=fault.vaddr, steps=steps
                )
            except _UserUndefined:
                self._exception_entry(ExceptionKind.UNDEFINED, pc)
                return ExecutionResult(ExitReason.UNDEFINED, steps=steps)
            steps += 1
            state.charge(state.costs.instruction)
            if svc is not None:
                self._exception_entry(ExceptionKind.SVC, add_wrap(pc, WORDSIZE))
                return ExecutionResult(ExitReason.SVC, svc_number=svc, steps=steps)
            pc = next_pc

    def _execute(self, instr: Instruction, pc: int):
        """Execute one instruction; returns (next_pc, svc_number_or_None)."""
        op = instr.op
        next_pc = add_wrap(pc, WORDSIZE)
        read = self._read_reg
        write = self._write_reg
        if op == "add":
            write(instr.rd, add_wrap(read(instr.rn), read(instr.rm)))
        elif op == "addi":
            write(instr.rd, add_wrap(read(instr.rn), instr.imm))
        elif op == "sub":
            write(instr.rd, sub_wrap(read(instr.rn), read(instr.rm)))
        elif op == "subi":
            write(instr.rd, sub_wrap(read(instr.rn), instr.imm))
        elif op == "rsb":
            write(instr.rd, sub_wrap(read(instr.rm), read(instr.rn)))
        elif op == "and":
            write(instr.rd, read(instr.rn) & read(instr.rm))
        elif op == "orr":
            write(instr.rd, read(instr.rn) | read(instr.rm))
        elif op == "eor":
            write(instr.rd, read(instr.rn) ^ read(instr.rm))
        elif op == "bic":
            write(instr.rd, read(instr.rn) & not_word(read(instr.rm)))
        elif op == "mov":
            write(instr.rd, read(instr.rm))
        elif op == "mvn":
            write(instr.rd, not_word(read(instr.rm)))
        elif op == "mul":
            write(instr.rd, mul_wrap(read(instr.rn), read(instr.rm)))
        elif op == "lsl":
            write(instr.rd, lsl(read(instr.rn), read(instr.rm) & 0xFF))
        elif op == "lsr":
            write(instr.rd, lsr(read(instr.rn), read(instr.rm) & 0xFF))
        elif op == "asr":
            write(instr.rd, asr(read(instr.rn), read(instr.rm) & 0xFF))
        elif op == "ror":
            write(instr.rd, ror(read(instr.rn), read(instr.rm) & 0xFF))
        elif op == "lsli":
            write(instr.rd, lsl(read(instr.rn), instr.imm))
        elif op == "lsri":
            write(instr.rd, lsr(read(instr.rn), instr.imm))
        elif op == "asri":
            write(instr.rd, asr(read(instr.rn), instr.imm))
        elif op == "movw":
            write(instr.rd, instr.imm)
        elif op == "movt":
            write(instr.rd, (read(instr.rd) & 0xFFFF) | (instr.imm << 16))
        elif op == "cmp":
            self._set_flags_cmp(read(instr.rn), read(instr.rm))
        elif op == "cmpi":
            self._set_flags_cmp(read(instr.rn), instr.imm)
        elif op == "tst":
            self._set_flags_tst(read(instr.rn), read(instr.rm))
        elif op == "ldr":
            write(instr.rd, self._load(add_wrap(read(instr.rn), instr.imm)))
        elif op == "str":
            self._store(add_wrap(read(instr.rn), instr.imm), read(instr.rd))
        elif op == "ldrr":
            write(instr.rd, self._load(add_wrap(read(instr.rn), read(instr.rm))))
        elif op == "strr":
            self._store(add_wrap(read(instr.rn), read(instr.rm)), read(instr.rd))
        elif op == "b":
            next_pc = add_wrap(pc, (instr.imm + 1) * WORDSIZE)
            self.state.charge(self.state.costs.branch)
        elif op in CONDITIONAL_BRANCHES:
            cpsr = self.state.regs.cpsr
            if condition_passes(op, cpsr.n, cpsr.z, cpsr.c, cpsr.v):
                next_pc = add_wrap(pc, (instr.imm + 1) * WORDSIZE)
                self.state.charge(self.state.costs.branch)
        elif op == "bl":
            self._write_reg(14, next_pc)
            next_pc = add_wrap(pc, (instr.imm + 1) * WORDSIZE)
            self.state.charge(self.state.costs.branch)
        elif op == "bxlr":
            next_pc = self._read_reg(14)
            self.state.charge(self.state.costs.branch)
        elif op == "svc":
            return next_pc, instr.imm
        elif op == "nop":
            pass
        elif op in ("udf", "smc"):
            # SMC from user mode is undefined, as on real hardware.
            raise _UserUndefined()
        else:  # pragma: no cover - decode only produces known ops
            raise _UserUndefined()
        return next_pc, None

    # -- exception entry ------------------------------------------------------

    def _exception_entry(self, kind: ExceptionKind, return_pc: int) -> None:
        """Architectural exception entry from user mode.

        Banks the return address in LR_<mode> and the user CPSR in
        SPSR_<mode>, switches mode, and masks interrupts — the side
        effects the paper's model singles out as crucial (section 5.1).
        """
        state = self.state
        target = EXCEPTION_MODE[kind]
        user_cpsr = state.regs.cpsr.copy()
        state.regs.write_spsr(user_cpsr, target)
        state.regs.write_lr(return_pc, target)
        state.regs.cpsr = PSR(mode=target, irq_masked=True, fiq_masked=True)
        state.charge(state.costs.exception_entry)
