"""User-mode execution engines.

Runs enclave code on the simulated machine: each instruction is fetched
through the enclave's page tables (rooted at TTBR0), decoded, executed,
and charged cycles.  Execution continues until an *exception*: a
supervisor call, a translation/permission fault (data or prefetch abort),
an undefined instruction, or an injected interrupt.  The CPU then
performs architectural exception entry — banking the return address into
the target mode's LR and the CPSR into its SPSR — and reports the
exception to the caller (the monitor's exception-handler state machine,
paper Figure 3).

Three engines implement the same architecture (DESIGN.md, "Fast-path
engine" and "Turbo engine"):

* ``CPU(state, engine="reference")`` — the reference interpreter.  Every
  fetch re-walks the page tables and re-decodes the instruction word;
  per-op handlers come from a dispatch table built out of the
  ``arm.instructions`` format metadata.

* ``CPU(state, engine="fast")`` (the default) — layers two
  microarchitectural caches on top: a decoded-instruction cache keyed by
  physical address and validated against ``PhysicalMemory.generation``,
  and a micro-TLB keyed by virtual page and validated against
  ``TLB.version``.  Both live in ``MachineState.uarch`` so snapshots
  never share them.

* ``CPU(state, engine="turbo")`` — compiles straight-line basic blocks
  into single Python functions (``arm.blocks``) and dispatches whole
  blocks, with one interrupt-window check and one cycle-accounting
  flush per block; it inherits the fast engine's caches for its
  single-step fallback and reuses the same invalidation contracts.

The default tier comes from the ``KOMODO_ENGINE`` environment variable
(``REPRO_CPU_ENGINE`` is honoured as a legacy alias).  The engines
share one table of operand semantics, so an instruction means the same
thing in all of them by construction; the differential test suite
(tests/arm/test_engine_differential.py) checks the rest — cycle
counts, access traces, faults — is bit-identical too.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.arm.bits import (
    add_wrap,
    asr,
    get_bit,
    lsl,
    lsr,
    sub_wrap,
    to_signed,
    to_word,
)
from repro.arm.bits import ror as ror_word
from repro.arm import blocks as _blocks
from repro.arm.instructions import (
    CONDITIONAL_BRANCHES,
    FORMATS,
    Instruction,
    condition_passes,
    decode,
)
from repro.arm.machine import MachineState
from repro.arm.memory import WORDSIZE
from repro.arm.modes import EXCEPTION_MODE, ExceptionKind, Mode, bank_for
from repro.arm.pagetable import PageTableWalker
from repro.arm.registers import PSR

_M = 0xFFFFFFFF
_USR_BANK = bank_for(Mode.USR)

ENGINES = ("fast", "reference", "turbo")
DEFAULT_ENGINE = os.environ.get(
    "KOMODO_ENGINE", os.environ.get("REPRO_CPU_ENGINE", "fast")
)


class ExitReason(enum.Enum):
    """Why user-mode execution stopped."""

    SVC = "svc"
    IRQ = "irq"
    FIQ = "fiq"
    ABORT = "abort"
    UNDEFINED = "undefined"
    STEP_LIMIT = "step_limit"  # harness budget exhausted (not architectural)


_EXIT_TO_EXCEPTION = {
    ExitReason.SVC: ExceptionKind.SVC,
    ExitReason.IRQ: ExceptionKind.IRQ,
    ExitReason.FIQ: ExceptionKind.FIQ,
    ExitReason.ABORT: ExceptionKind.ABORT,
    ExitReason.UNDEFINED: ExceptionKind.UNDEFINED,
}


@dataclass
class ExecutionResult:
    """Outcome of a user-mode run."""

    reason: ExitReason
    svc_number: int = 0  # immediate of the SVC instruction, if any
    fault_address: int = 0  # faulting VA for aborts
    steps: int = 0  # instructions retired

    @property
    def exception(self) -> ExceptionKind:
        return _EXIT_TO_EXCEPTION[self.reason]


class _UserFault(Exception):
    def __init__(self, vaddr: int):
        super().__init__(f"user fault at {vaddr:#010x}")
        self.vaddr = vaddr


class _UserUndefined(Exception):
    pass


class CPU:
    """Interprets user-mode instruction streams against a MachineState.

    ``CPU(state)`` builds the engine named by ``engine`` (default: the
    fast path); ``CPU(state, engine="reference")`` builds the reference
    interpreter.  Both are instances of this class.
    """

    engine = "reference"

    def __new__(cls, state: MachineState = None, engine: Optional[str] = None):
        if cls is CPU:
            resolved = engine if engine is not None else DEFAULT_ENGINE
            if resolved == "fast":
                return super().__new__(FastCPU)
            if resolved == "turbo":
                return super().__new__(TurboCPU)
            if resolved != "reference":
                raise ValueError(f"unknown CPU engine {resolved!r} (expected one of {ENGINES})")
        return super().__new__(cls)

    def __init__(self, state: MachineState, engine: Optional[str] = None):
        self.state = state
        self.walker = PageTableWalker(state.memory)
        #: Optional microarchitectural observation trace.  When a list is
        #: attached, every fetch/load/store appends ("fetch"|"load"|
        #: "store", vaddr) — the address trace a cache-level attacker
        #: observes, used by the side-channel analyser.
        self.access_trace = None

    # -- translation -----------------------------------------------------

    def _translate(self, vaddr: int, write: bool, execute: bool) -> int:
        if self.state.ttbr0 is None:
            raise _UserFault(vaddr)
        translation = self.walker.walk(self.state.ttbr0, vaddr)
        if translation is None:
            raise _UserFault(vaddr)
        if write and not translation.writable:
            raise _UserFault(vaddr)
        if execute and not translation.executable:
            raise _UserFault(vaddr)
        if not write and not execute and not translation.readable:
            raise _UserFault(vaddr)
        return translation.phys_addr(vaddr)

    def _load(self, vaddr: int) -> int:
        if vaddr % WORDSIZE:
            raise _UserFault(vaddr)
        paddr = self._translate(vaddr, write=False, execute=False)
        if self.access_trace is not None:
            self.access_trace.append(("load", vaddr))
        self.state.charge(self.state.costs.mem_access)
        return self.state.memory.read_word(paddr)

    def _store(self, vaddr: int, value: int) -> int:
        if vaddr % WORDSIZE:
            raise _UserFault(vaddr)
        paddr = self._translate(vaddr, write=True, execute=False)
        if self.access_trace is not None:
            self.access_trace.append(("store", vaddr))
        self.state.charge(self.state.costs.mem_access)
        self.state.memory.write_word(paddr, value)
        self.state.tlb.note_store(paddr)
        # The physical address lets the turbo tier's compiled blocks
        # detect stores into their own span (self-modifying code).
        return paddr

    def _fetch(self, pc: int):
        if pc % WORDSIZE:
            raise _UserFault(pc)
        paddr = self._translate(pc, write=False, execute=True)
        if self.access_trace is not None:
            self.access_trace.append(("fetch", pc))
        word = self.state.memory.read_word(paddr)
        instr = decode(word)
        if instr is None:
            raise _UserUndefined()
        return instr

    # -- register operand helpers ------------------------------------------

    def _read_reg(self, index: int) -> int:
        regs = self.state.regs
        if index == 13:
            return regs.read_sp(Mode.USR)
        if index == 14:
            return regs.read_lr(Mode.USR)
        return regs.read_gpr(index)

    def _write_reg(self, index: int, value: int) -> None:
        regs = self.state.regs
        if index == 13:
            regs.write_sp(value, Mode.USR)
        elif index == 14:
            regs.write_lr(value, Mode.USR)
        else:
            regs.write_gpr(index, value)

    # -- flags -----------------------------------------------------------------

    def _set_flags_cmp(self, a: int, b: int) -> None:
        result = sub_wrap(a, b)
        cpsr = self.state.regs.cpsr
        cpsr.n = bool(get_bit(result, 31))
        cpsr.z = result == 0
        cpsr.c = a >= b  # no borrow
        cpsr.v = (to_signed(a) - to_signed(b)) != to_signed(result)

    def _set_flags_tst(self, a: int, b: int) -> None:
        result = a & b
        cpsr = self.state.regs.cpsr
        cpsr.n = bool(get_bit(result, 31))
        cpsr.z = result == 0

    # -- the run loop ---------------------------------------------------------

    def run(
        self,
        entry_pc: int,
        max_steps: int = 1_000_000,
        interrupt_after: Optional[int] = None,
    ) -> ExecutionResult:
        """Execute user-mode code from ``entry_pc`` until an exception.

        ``interrupt_after`` models the attacker-controlled external
        interrupt line: after that many retired instructions an IRQ is
        taken (interrupts are enabled during enclave execution).

        On return, architectural exception entry has been performed: the
        machine is in the exception's target mode, LR_<mode> holds the
        preferred return address and SPSR_<mode> the user-mode CPSR.
        """
        state = self.state
        if state.regs.cpsr.mode is not Mode.USR:
            raise RuntimeError("CPU.run requires user mode (use monitor entry paths)")
        state.tlb.require_consistent()
        pc = to_word(entry_pc)
        steps = 0
        while True:
            if interrupt_after is not None and steps >= interrupt_after:
                self._exception_entry(ExceptionKind.IRQ, pc)
                return ExecutionResult(ExitReason.IRQ, steps=steps)
            if steps >= max_steps:
                # Harness budget: modelled as an interrupt so the monitor
                # path is identical to a timer interrupt firing.
                self._exception_entry(ExceptionKind.IRQ, pc)
                return ExecutionResult(ExitReason.STEP_LIMIT, steps=steps)
            try:
                instr = self._fetch(pc)
            except _UserFault as fault:
                self._exception_entry(ExceptionKind.ABORT, pc)
                return ExecutionResult(
                    ExitReason.ABORT, fault_address=fault.vaddr, steps=steps
                )
            except _UserUndefined:
                self._exception_entry(ExceptionKind.UNDEFINED, pc)
                return ExecutionResult(ExitReason.UNDEFINED, steps=steps)
            try:
                next_pc, svc = self._execute(instr, pc)
            except _UserFault as fault:
                self._exception_entry(ExceptionKind.ABORT, pc)
                return ExecutionResult(
                    ExitReason.ABORT, fault_address=fault.vaddr, steps=steps
                )
            except _UserUndefined:
                self._exception_entry(ExceptionKind.UNDEFINED, pc)
                return ExecutionResult(ExitReason.UNDEFINED, steps=steps)
            steps += 1
            state.charge(state.costs.instruction)
            if svc is not None:
                self._exception_entry(ExceptionKind.SVC, add_wrap(pc, WORDSIZE))
                return ExecutionResult(ExitReason.SVC, svc_number=svc, steps=steps)
            pc = next_pc

    def _execute(self, instr: Instruction, pc: int):
        """Execute one instruction; returns (next_pc, svc_number_or_None)."""
        handler = _DISPATCH.get(instr.op)
        if handler is None:  # pragma: no cover - decode only produces known ops
            raise _UserUndefined()
        return handler(self, instr, pc)

    # -- exception entry ------------------------------------------------------

    def _exception_entry(self, kind: ExceptionKind, return_pc: int) -> None:
        """Architectural exception entry from user mode.

        Banks the return address in LR_<mode> and the user CPSR in
        SPSR_<mode>, switches mode, and masks interrupts — the side
        effects the paper's model singles out as crucial (section 5.1).
        """
        state = self.state
        target = EXCEPTION_MODE[kind]
        user_cpsr = state.regs.cpsr.copy()
        state.regs.write_spsr(user_cpsr, target)
        state.regs.write_lr(return_pc, target)
        state.regs.cpsr = PSR(mode=target, irq_masked=True, fiq_masked=True)
        state.charge(state.costs.exception_entry)


# ---------------------------------------------------------------------------
# Operand semantics, shared by both engines
# ---------------------------------------------------------------------------

#: rrr-format ALU semantics: (rn_value, rm_value) -> rd_value.  ``rsb``
#: is reverse subtract; register shift amounts use the low byte, as on ARM.
_ALU_RRR: Dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: (a + b) & _M,
    "sub": lambda a, b: (a - b) & _M,
    "rsb": lambda a, b: (b - a) & _M,
    "and": lambda a, b: a & b,
    "orr": lambda a, b: a | b,
    "eor": lambda a, b: a ^ b,
    "bic": lambda a, b: a & ~b & _M,
    "mul": lambda a, b: (a * b) & _M,
    "lsl": lambda a, b: lsl(a, b & 0xFF),
    "lsr": lambda a, b: lsr(a, b & 0xFF),
    "asr": lambda a, b: asr(a, b & 0xFF),
    "ror": lambda a, b: ror_word(a, b & 0xFF),
}

#: rri-format ALU semantics: (rn_value, imm16) -> rd_value.
_ALU_RRI: Dict[str, Callable[[int, int], int]] = {
    "addi": lambda a, imm: (a + imm) & _M,
    "subi": lambda a, imm: (a - imm) & _M,
    "lsli": lsl,
    "lsri": lsr,
    "asri": asr,
}

#: rr-format ALU semantics: rm_value -> rd_value.
_ALU_RR: Dict[str, Callable[[int], int]] = {
    "mov": lambda a: a,
    "mvn": lambda a: ~a & _M,
}

#: Conditional-branch predicates over the CPSR (same truth table as
#: instructions.condition_passes; a property test pins the equivalence).
_CONDITIONS: Dict[str, Callable[[PSR], bool]] = {
    "beq": lambda p: p.z,
    "bne": lambda p: not p.z,
    "blt": lambda p: p.n != p.v,
    "bge": lambda p: p.n == p.v,
    "bgt": lambda p: not p.z and p.n == p.v,
    "ble": lambda p: p.z or p.n != p.v,
    "bcs": lambda p: p.c,
    "bcc": lambda p: not p.c,
}
assert set(_CONDITIONS) == set(CONDITIONAL_BRANCHES)


# ---------------------------------------------------------------------------
# Reference dispatch table (Instruction-driven handlers)
# ---------------------------------------------------------------------------


def _ref_rrr(sem):
    def handler(cpu, instr, pc):
        cpu._write_reg(instr.rd, sem(cpu._read_reg(instr.rn), cpu._read_reg(instr.rm)))
        return (pc + WORDSIZE) & _M, None

    return handler


def _ref_rri(sem):
    def handler(cpu, instr, pc):
        cpu._write_reg(instr.rd, sem(cpu._read_reg(instr.rn), instr.imm))
        return (pc + WORDSIZE) & _M, None

    return handler


def _ref_rr(sem):
    def handler(cpu, instr, pc):
        cpu._write_reg(instr.rd, sem(cpu._read_reg(instr.rm)))
        return (pc + WORDSIZE) & _M, None

    return handler


def _ref_movw(cpu, instr, pc):
    cpu._write_reg(instr.rd, instr.imm)
    return (pc + WORDSIZE) & _M, None


def _ref_movt(cpu, instr, pc):
    cpu._write_reg(instr.rd, (cpu._read_reg(instr.rd) & 0xFFFF) | (instr.imm << 16))
    return (pc + WORDSIZE) & _M, None


def _ref_cmp(cpu, instr, pc):
    cpu._set_flags_cmp(cpu._read_reg(instr.rn), cpu._read_reg(instr.rm))
    return (pc + WORDSIZE) & _M, None


def _ref_cmpi(cpu, instr, pc):
    cpu._set_flags_cmp(cpu._read_reg(instr.rn), instr.imm)
    return (pc + WORDSIZE) & _M, None


def _ref_tst(cpu, instr, pc):
    cpu._set_flags_tst(cpu._read_reg(instr.rn), cpu._read_reg(instr.rm))
    return (pc + WORDSIZE) & _M, None


def _ref_ldr(cpu, instr, pc):
    cpu._write_reg(instr.rd, cpu._load((cpu._read_reg(instr.rn) + instr.imm) & _M))
    return (pc + WORDSIZE) & _M, None


def _ref_str(cpu, instr, pc):
    cpu._store((cpu._read_reg(instr.rn) + instr.imm) & _M, cpu._read_reg(instr.rd))
    return (pc + WORDSIZE) & _M, None


def _ref_ldrr(cpu, instr, pc):
    cpu._write_reg(
        instr.rd, cpu._load((cpu._read_reg(instr.rn) + cpu._read_reg(instr.rm)) & _M)
    )
    return (pc + WORDSIZE) & _M, None


def _ref_strr(cpu, instr, pc):
    cpu._store(
        (cpu._read_reg(instr.rn) + cpu._read_reg(instr.rm)) & _M, cpu._read_reg(instr.rd)
    )
    return (pc + WORDSIZE) & _M, None


def _ref_b(cpu, instr, pc):
    cpu.state.charge(cpu.state.costs.branch)
    return (pc + (instr.imm + 1) * WORDSIZE) & _M, None


def _ref_cond(cpu, instr, pc):
    cpsr = cpu.state.regs.cpsr
    if condition_passes(instr.op, cpsr.n, cpsr.z, cpsr.c, cpsr.v):
        cpu.state.charge(cpu.state.costs.branch)
        return (pc + (instr.imm + 1) * WORDSIZE) & _M, None
    return (pc + WORDSIZE) & _M, None


def _ref_bl(cpu, instr, pc):
    cpu._write_reg(14, (pc + WORDSIZE) & _M)
    cpu.state.charge(cpu.state.costs.branch)
    return (pc + (instr.imm + 1) * WORDSIZE) & _M, None


def _ref_bxlr(cpu, instr, pc):
    cpu.state.charge(cpu.state.costs.branch)
    return cpu._read_reg(14), None


def _ref_svc(cpu, instr, pc):
    return (pc + WORDSIZE) & _M, instr.imm


def _ref_nop(cpu, instr, pc):
    return (pc + WORDSIZE) & _M, None


def _ref_undefined(cpu, instr, pc):
    # SMC from user mode is undefined, as on real hardware; so is udf.
    raise _UserUndefined()


def _build_dispatch() -> Dict[str, Callable]:
    table: Dict[str, Callable] = {}
    for op in FORMATS:
        if op in _ALU_RRR:
            table[op] = _ref_rrr(_ALU_RRR[op])
        elif op in _ALU_RRI:
            table[op] = _ref_rri(_ALU_RRI[op])
        elif op in _ALU_RR:
            table[op] = _ref_rr(_ALU_RR[op])
        elif op in _CONDITIONS:
            table[op] = _ref_cond
    table.update(
        movw=_ref_movw,
        movt=_ref_movt,
        cmp=_ref_cmp,
        cmpi=_ref_cmpi,
        tst=_ref_tst,
        ldr=_ref_ldr,
        str=_ref_str,
        ldrr=_ref_ldrr,
        strr=_ref_strr,
        b=_ref_b,
        bl=_ref_bl,
        bxlr=_ref_bxlr,
        svc=_ref_svc,
        nop=_ref_nop,
        udf=_ref_undefined,
        smc=_ref_undefined,
    )
    missing = set(FORMATS) - set(table)
    if missing:  # pragma: no cover - completeness checked at import
        raise AssertionError(f"no dispatch handler for {sorted(missing)}")
    return table


_DISPATCH = _build_dispatch()


# ---------------------------------------------------------------------------
# Fast engine: compiled micro-ops + decode cache + micro-TLB
# ---------------------------------------------------------------------------


def _reader(index: int):
    """A regs -> value closure for one operand register."""
    if index == 13:
        return lambda regs: regs.sp_bank[_USR_BANK]
    if index == 14:
        return lambda regs: regs.lr_bank[_USR_BANK]

    def read(regs, _i=index):
        return regs.gprs[_i]

    return read


def _writer(index: int):
    """A (regs, value) -> None closure for one destination register.

    Values produced by the semantic tables are already 32-bit masked, so
    the writer stores them directly into the banked register file.
    """
    if index == 13:

        def write_sp(regs, value):
            regs.sp_bank[_USR_BANK] = value

        return write_sp
    if index == 14:

        def write_lr(regs, value):
            regs.lr_bank[_USR_BANK] = value

        return write_lr

    def write(regs, value, _i=index):
        regs.gprs[_i] = value

    return write


def _compile_rrr(sem):
    def compiler(instr):
        rn, rm, wd = _reader(instr.rn), _reader(instr.rm), _writer(instr.rd)

        def fn(cpu, pc):
            regs = cpu.state.regs
            wd(regs, sem(rn(regs), rm(regs)))
            return (pc + WORDSIZE) & _M, None

        return fn

    return compiler


def _compile_rri(sem):
    def compiler(instr):
        rn, wd, imm = _reader(instr.rn), _writer(instr.rd), instr.imm

        def fn(cpu, pc):
            regs = cpu.state.regs
            wd(regs, sem(rn(regs), imm))
            return (pc + WORDSIZE) & _M, None

        return fn

    return compiler


def _compile_rr(sem):
    def compiler(instr):
        rm, wd = _reader(instr.rm), _writer(instr.rd)

        def fn(cpu, pc):
            regs = cpu.state.regs
            wd(regs, sem(rm(regs)))
            return (pc + WORDSIZE) & _M, None

        return fn

    return compiler


def _compile_movw(instr):
    wd, imm = _writer(instr.rd), instr.imm

    def fn(cpu, pc):
        wd(cpu.state.regs, imm)
        return (pc + WORDSIZE) & _M, None

    return fn


def _compile_movt(instr):
    rd, wd, high = _reader(instr.rd), _writer(instr.rd), instr.imm << 16

    def fn(cpu, pc):
        regs = cpu.state.regs
        wd(regs, (rd(regs) & 0xFFFF) | high)
        return (pc + WORDSIZE) & _M, None

    return fn


def _compile_cmp(instr):
    rn, rm = _reader(instr.rn), _reader(instr.rm)

    def fn(cpu, pc):
        regs = cpu.state.regs
        cpu._set_flags_cmp(rn(regs), rm(regs))
        return (pc + WORDSIZE) & _M, None

    return fn


def _compile_cmpi(instr):
    rn, imm = _reader(instr.rn), instr.imm

    def fn(cpu, pc):
        cpu._set_flags_cmp(rn(cpu.state.regs), imm)
        return (pc + WORDSIZE) & _M, None

    return fn


def _compile_tst(instr):
    rn, rm = _reader(instr.rn), _reader(instr.rm)

    def fn(cpu, pc):
        regs = cpu.state.regs
        cpu._set_flags_tst(rn(regs), rm(regs))
        return (pc + WORDSIZE) & _M, None

    return fn


def _compile_ldr(instr):
    rn, wd, imm = _reader(instr.rn), _writer(instr.rd), instr.imm

    def fn(cpu, pc):
        regs = cpu.state.regs
        wd(regs, cpu._load((rn(regs) + imm) & _M))
        return (pc + WORDSIZE) & _M, None

    return fn


def _compile_str(instr):
    rn, rd, imm = _reader(instr.rn), _reader(instr.rd), instr.imm

    def fn(cpu, pc):
        regs = cpu.state.regs
        cpu._store((rn(regs) + imm) & _M, rd(regs))
        return (pc + WORDSIZE) & _M, None

    return fn


def _compile_ldrr(instr):
    rn, rm, wd = _reader(instr.rn), _reader(instr.rm), _writer(instr.rd)

    def fn(cpu, pc):
        regs = cpu.state.regs
        wd(regs, cpu._load((rn(regs) + rm(regs)) & _M))
        return (pc + WORDSIZE) & _M, None

    return fn


def _compile_strr(instr):
    rn, rm, rd = _reader(instr.rn), _reader(instr.rm), _reader(instr.rd)

    def fn(cpu, pc):
        regs = cpu.state.regs
        cpu._store((rn(regs) + rm(regs)) & _M, rd(regs))
        return (pc + WORDSIZE) & _M, None

    return fn


def _compile_b(instr):
    delta = (instr.imm + 1) * WORDSIZE

    def fn(cpu, pc):
        state = cpu.state
        state.charge(state.costs.branch)
        return (pc + delta) & _M, None

    return fn


def _compile_cond(instr):
    delta = (instr.imm + 1) * WORDSIZE
    cond = _CONDITIONS[instr.op]

    def fn(cpu, pc):
        state = cpu.state
        if cond(state.regs.cpsr):
            state.charge(state.costs.branch)
            return (pc + delta) & _M, None
        return (pc + WORDSIZE) & _M, None

    return fn


def _compile_bl(instr):
    delta = (instr.imm + 1) * WORDSIZE
    wlr = _writer(14)

    def fn(cpu, pc):
        state = cpu.state
        wlr(state.regs, (pc + WORDSIZE) & _M)
        state.charge(state.costs.branch)
        return (pc + delta) & _M, None

    return fn


def _compile_bxlr(instr):
    rlr = _reader(14)

    def fn(cpu, pc):
        state = cpu.state
        state.charge(state.costs.branch)
        return rlr(state.regs), None

    return fn


def _compile_svc(instr):
    svc_number = instr.imm

    def fn(cpu, pc):
        return (pc + WORDSIZE) & _M, svc_number

    return fn


def _compile_nop(instr):
    def fn(cpu, pc):
        return (pc + WORDSIZE) & _M, None

    return fn


def _compile_undefined(instr):
    def fn(cpu, pc):
        raise _UserUndefined()

    return fn


def _build_compilers() -> Dict[str, Callable[[Instruction], Callable]]:
    table: Dict[str, Callable[[Instruction], Callable]] = {}
    for op in FORMATS:
        if op in _ALU_RRR:
            table[op] = _compile_rrr(_ALU_RRR[op])
        elif op in _ALU_RRI:
            table[op] = _compile_rri(_ALU_RRI[op])
        elif op in _ALU_RR:
            table[op] = _compile_rr(_ALU_RR[op])
        elif op in _CONDITIONS:
            table[op] = _compile_cond
    table.update(
        movw=_compile_movw,
        movt=_compile_movt,
        cmp=_compile_cmp,
        cmpi=_compile_cmpi,
        tst=_compile_tst,
        ldr=_compile_ldr,
        str=_compile_str,
        ldrr=_compile_ldrr,
        strr=_compile_strr,
        b=_compile_b,
        bl=_compile_bl,
        bxlr=_compile_bxlr,
        svc=_compile_svc,
        nop=_compile_nop,
        udf=_compile_undefined,
        smc=_compile_undefined,
    )
    missing = set(FORMATS) - set(table)
    if missing:  # pragma: no cover - completeness checked at import
        raise AssertionError(f"no fast-path compiler for {sorted(missing)}")
    return table


_COMPILERS = _build_compilers()


class FastCPU(CPU):
    """The fast-path engine: micro-TLB + decoded-instruction cache.

    Architectural behaviour is identical to the reference engine; the
    caches live in ``state.uarch`` and are invalidated by the contracts
    described in DESIGN.md ("Fast-path engine"):

    * translations are reused only while ``TLB.version`` is unchanged —
      every flush, TTBR load, and consistency-poisoning store bumps it;
    * decoded instructions are reused only while
      ``PhysicalMemory.generation`` is unchanged; on a generation miss
      the instruction word is re-read and re-validated, so self-modifying
      code re-decodes exactly where the reference engine would see the
      new word.
    """

    engine = "fast"

    def __init__(self, state: MachineState, engine: Optional[str] = None):
        super().__init__(state)

    def _translate(self, vaddr: int, write: bool, execute: bool) -> int:
        state = self.state
        uarch = state.uarch
        if uarch.utlb_version != state.tlb.version:
            uarch.utlb = {}
            uarch.utlb_version = state.tlb.version
        translation = uarch.utlb.get(vaddr >> 12)
        if translation is None:
            if state.ttbr0 is None:
                raise _UserFault(vaddr)
            translation = self.walker.walk(state.ttbr0, vaddr)
            if translation is None:
                # Failed walks are never cached: the fault is re-derived
                # from the live tables every time, like the reference.
                raise _UserFault(vaddr)
            uarch.utlb[vaddr >> 12] = translation
        if write and not translation.writable:
            raise _UserFault(vaddr)
        if execute and not translation.executable:
            raise _UserFault(vaddr)
        if not write and not execute and not translation.readable:
            raise _UserFault(vaddr)
        return translation.phys_base | (vaddr & 0xFFF)

    def _fetch(self, pc: int):
        if pc % WORDSIZE:
            raise _UserFault(pc)
        paddr = self._translate(pc, write=False, execute=True)
        if self.access_trace is not None:
            self.access_trace.append(("fetch", pc))
        memory = self.state.memory
        icache = self.state.uarch.icache
        entry = icache.get(paddr)
        if entry is not None:
            if entry[0] == memory.generation:
                return entry[2]
            # Some store happened since this entry was cached; re-read
            # the word.  If it is unchanged the micro-op is still good.
            word = memory.read_word(paddr)
            if word == entry[1]:
                entry[0] = memory.generation
                return entry[2]
        else:
            word = memory.read_word(paddr)
        instr = decode(word)
        if instr is None:
            raise _UserUndefined()
        fn = _COMPILERS[instr.op](instr)
        icache[paddr] = [memory.generation, word, fn]
        return fn

    def _execute(self, instr, pc: int):
        if instr.__class__ is Instruction:
            # Direct calls (tests, tools) hand us a decoded Instruction;
            # route it through the shared dispatch table.
            return CPU._execute(self, instr, pc)
        return instr(self, pc)


# ---------------------------------------------------------------------------
# Turbo engine: basic-block compilation on top of the fast engine
# ---------------------------------------------------------------------------


class TurboCPU(FastCPU):
    """The turbo tier: compiled basic blocks dispatched whole.

    Straight-line instruction runs are compiled once (``arm.blocks``)
    and then executed as a single Python call, with registers and flags
    in locals.  Architectural behaviour is identical to the reference
    engine:

    * asynchronous exceptions (``interrupt_after``, ``max_steps``) are
      delivered at exactly the reference engine's instruction
      boundaries — a block is only dispatched when it fits entirely
      inside the remaining window, otherwise execution falls back to
      single-stepping through the inherited fast-engine path;
    * a mid-block data abort retires exactly the instructions before
      the faulting one (``cpu._retired``, maintained by the generated
      code) and flushes their register/flag/cycle effects;
    * stores re-check ``TLB.version`` and the block's own physical span
      and bail out to the dispatch loop when stale, so self-modifying
      code and translation changes behave as under single-step;
    * the block cache is validated against ``PhysicalMemory.generation``
      with word-compare revalidation and bounded by an LRU cap
      (``blocks.BLOCK_CACHE_CAP``).
    """

    engine = "turbo"

    def __init__(self, state: MachineState, engine: Optional[str] = None):
        super().__init__(state)
        #: Instructions retired by the innermost compiled-block call and
        #: the faulting instruction's offset within its last loop
        #: iteration; written by generated code in its ``finally`` flush.
        self._retired = 0
        self._fault_off = 0

    def _store(self, vaddr: int, value: int) -> int:
        # Chain-link maintenance: a store that may rewrite a compiled
        # block's words invalidates every block-to-block chain link
        # (the links skip per-dispatch revalidation).  Inline stores in
        # generated code perform the same check themselves.
        paddr = super()._store(vaddr, value)
        uarch = self.state.uarch
        if paddr >> 12 in uarch.code_pages:
            uarch.chain_gen += 1
        return paddr

    def run(
        self,
        entry_pc: int,
        max_steps: int = 1_000_000,
        interrupt_after: Optional[int] = None,
    ) -> ExecutionResult:
        state = self.state
        if state.regs.cpsr.mode is not Mode.USR:
            raise RuntimeError("CPU.run requires user mode (use monitor entry paths)")
        state.tlb.require_consistent()
        pc = to_word(entry_pc)
        steps = 0
        # Hot-loop locals.  The one-entry fetch-translation cache
        # (vpage/pbase, guarded by TLB.version) and the inline block
        # lookup shave two dict probes off every block dispatch; both
        # fall back to the full paths on any miss or version change.
        tlb = state.tlb
        memory = state.memory
        uarch = state.uarch
        bcache = uarch.bcache
        cap = _blocks.BLOCK_CACHE_CAP
        traced = self.access_trace is not None
        fslot = 6 if traced else 2  # blocks._FNT / blocks._FN
        # Chain-stamp sync: anything may have mutated memory since the
        # last run (monitor page operations, injected bit flips).  One
        # conservative chain_gen bump severs every recorded link; the
        # slow dispatch path below re-validates and re-stamps them.
        if memory.generation != uarch.chain_memgen:
            uarch.chain_gen += 1
            uarch.chain_memgen = memory.generation
        last_vpage = -1
        last_pbase = 0
        last_tv = -1
        # The last block whose exit pc had no (valid) chain link yet:
        # once the successor block for that pc is resolved, record the
        # link so the next dispatch hops directly.
        pred = None
        pred_key = 0
        while True:
            if interrupt_after is not None and steps >= interrupt_after:
                self._exception_entry(ExceptionKind.IRQ, pc)
                return ExecutionResult(ExitReason.IRQ, steps=steps)
            if steps >= max_steps:
                self._exception_entry(ExceptionKind.IRQ, pc)
                return ExecutionResult(ExitReason.STEP_LIMIT, steps=steps)
            entry = None
            budget = 0
            if not pc & 3:
                tv = tlb.version
                vpage = pc >> 12
                if vpage == last_vpage and tv == last_tv:
                    paddr = last_pbase | (pc & 0xFFF)
                else:
                    try:
                        paddr = self._translate(pc, write=False, execute=True)
                    except _UserFault as fault:
                        self._exception_entry(ExceptionKind.ABORT, pc)
                        return ExecutionResult(
                            ExitReason.ABORT, fault_address=fault.vaddr, steps=steps
                        )
                    last_vpage = vpage
                    last_pbase = paddr & ~0xFFF
                    last_tv = tv
                entry = bcache.get(paddr)
                if (
                    entry is None
                    or entry[0] != memory.generation
                    or (traced and entry[6] is None)
                ):
                    entry = _blocks.lookup(self, paddr, traced)
                elif 2 * len(bcache) >= cap and next(reversed(bcache)) != paddr:
                    bcache[paddr] = bcache.pop(paddr)  # LRU touch
                budget = max_steps - steps
                if interrupt_after is not None:
                    window = interrupt_after - steps
                    if window < budget:
                        budget = window
                if entry is not None and entry[3] > budget:
                    # The block would run through an asynchronous
                    # exception boundary; single-step up to it instead.
                    entry = None
            if entry is not None:
                if pred is not None:
                    if pc == pred_key:
                        _blocks.link(pred, pred_key, entry, tlb.version, uarch.chain_gen)
                    pred = None
                # Chained dispatch: after each block returns, follow its
                # recorded link for the produced pc directly — skipping
                # translation, cache probe, and revalidation — as long
                # as the link's TLB.version/chain_gen stamps are current
                # and the successor fits the remaining exception window.
                while True:
                    self._retired = 0
                    try:
                        next_pc, svc = entry[fslot](self, pc, budget)
                    except _UserFault as fault:
                        steps += self._retired
                        self._exception_entry(
                            ExceptionKind.ABORT,
                            (pc + self._fault_off * WORDSIZE) & _M,
                        )
                        return ExecutionResult(
                            ExitReason.ABORT, fault_address=fault.vaddr, steps=steps
                        )
                    steps += self._retired
                    if svc is not None:
                        self._exception_entry(ExceptionKind.SVC, next_pc)
                        return ExecutionResult(
                            ExitReason.SVC, svc_number=svc, steps=steps
                        )
                    pc = next_pc
                    link = entry[4].get(pc)  # blocks._CHAIN
                    if (
                        link is None
                        or link[1] != tlb.version
                        or link[2] != uarch.chain_gen
                    ):
                        pred = entry
                        pred_key = pc
                        break
                    succ = link[0]
                    budget = max_steps - steps
                    if interrupt_after is not None:
                        window = interrupt_after - steps
                        if window < budget:
                            budget = window
                    if succ[3] > budget or succ[fslot] is None:
                        pred = entry
                        pred_key = pc
                        break
                    entry = succ
                continue
            # Single-step fallback: misaligned pc, an op the block
            # compiler excludes (udf/smc), or a block longer than the
            # remaining interrupt/step window.  Uses the inherited
            # fast-engine fetch/execute path, which matches the
            # reference loop instruction for instruction.
            try:
                fn = self._fetch(pc)
            except _UserFault as fault:
                self._exception_entry(ExceptionKind.ABORT, pc)
                return ExecutionResult(
                    ExitReason.ABORT, fault_address=fault.vaddr, steps=steps
                )
            except _UserUndefined:
                self._exception_entry(ExceptionKind.UNDEFINED, pc)
                return ExecutionResult(ExitReason.UNDEFINED, steps=steps)
            try:
                next_pc, svc = self._execute(fn, pc)
            except _UserFault as fault:
                self._exception_entry(ExceptionKind.ABORT, pc)
                return ExecutionResult(
                    ExitReason.ABORT, fault_address=fault.vaddr, steps=steps
                )
            except _UserUndefined:
                self._exception_entry(ExceptionKind.UNDEFINED, pc)
                return ExecutionResult(ExitReason.UNDEFINED, steps=steps)
            steps += 1
            state.charge(state.costs.instruction)
            if svc is not None:
                self._exception_entry(ExceptionKind.SVC, add_wrap(pc, WORDSIZE))
                return ExecutionResult(ExitReason.SVC, svc_number=svc, steps=steps)
            pc = next_pc
