"""Disassembler: instruction words back to readable assembly.

The inverse of the assembler, used for debugging and forensics: given
words from a measured enclave page (or a whole page table walk away),
render the program a human can read.  Round-tripping through
``decode`` means the disassembly is exactly what the CPU will execute —
there is no second decoder to drift.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.arm.instructions import (
    BRANCH_OPS,
    FORMATS,
    OPERAND_LAYOUT,
    Instruction,
    decode,
)

_REG_NAMES = {i: f"r{i}" for i in range(13)}
_REG_NAMES[13] = "sp"
_REG_NAMES[14] = "lr"


def _reg(index: int) -> str:
    return _REG_NAMES.get(index, f"?{index}")


def _operand(token: str, instr: Instruction) -> str:
    """Render one OPERAND_LAYOUT token against a concrete instruction."""
    if token == "offset":
        sign = "+" if instr.imm >= 0 else ""
        return f".{sign}{instr.imm + 1}"
    if token == "#imm":
        # Branch/SVC call numbers read naturally in decimal; data
        # immediates in hex (addresses, masks, constants).
        style = "#{imm}" if FORMATS[instr.op][1] == "svc" else "#{imm:#x}"
        return style.format(imm=instr.imm)
    if token.startswith("["):
        inner = token[1:-1].split(", ")
        return "[" + ", ".join(_operand(part, instr) for part in inner) + "]"
    return _reg(getattr(instr, token))


def render(instr: Instruction) -> str:
    """Render one instruction in the assembler's notation.

    Operand order and grouping come from ``OPERAND_LAYOUT`` — the same
    table the static analyser uses — so the disassembler cannot drift
    from the instruction set's own description of its formats.
    """
    layout = OPERAND_LAYOUT[FORMATS[instr.op][1]]
    if not layout:
        return instr.op
    return f"{instr.op} " + ", ".join(_operand(tok, instr) for tok in layout)


def disassemble_word(word: int) -> str:
    """Disassemble one word; undefined encodings render as ``.word``."""
    instr = decode(word)
    if instr is None:
        return f".word {word:#010x}"
    return render(instr)


def disassemble(
    words: Sequence[int], base_va: int = 0, annotate_targets: bool = True
) -> List[str]:
    """Disassemble a program, one line per word, with addresses and
    resolved branch targets."""
    lines = []
    for index, word in enumerate(words):
        va = base_va + index * 4
        text = disassemble_word(word)
        instr = decode(word)
        if (
            annotate_targets
            and instr is not None
            and instr.op in BRANCH_OPS
        ):
            target = va + (instr.imm + 1) * 4
            text += f"    ; -> {target:#x}"
        lines.append(f"{va:#010x}:  {text}")
    return lines


def dump_page(memory, base: int, limit: Optional[int] = None) -> str:
    """Disassemble the start of a physical page (stops at the first run
    of undefined words, which usually marks the end of the program)."""
    from repro.arm.memory import WORDS_PER_PAGE

    count = limit or WORDS_PER_PAGE
    words = memory.read_words(base, count)
    # Trim the trailing all-zero tail common in padded code pages.
    while words and words[-1] == 0:
        words.pop()
    return "\n".join(disassemble(words, base_va=base))
