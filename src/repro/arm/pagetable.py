"""ARM short-descriptor page tables for the enclave address space.

Komodo gives every enclave a 1 GB virtual address space translated by a
two-level hierarchical page table in the ARM short-descriptor format with
4 kB small pages (paper sections 4 and 5.1).  Per the paper's "idiomatic
specification" approach, only one format is modelled — anything else is
an unrecognised entry and user execution over it is undefined, which
forces the monitor to build conforming tables.

Geometry (documented deviation, see DESIGN.md): the L1 table occupies one
4 kB secure page and has ``L1_ENTRIES`` slots, each mapping a 4 MB slice
of the 1 GB space via one L2 table; an L2 table also occupies one 4 kB
secure page and has 1024 entries of 4 kB pages.  Real Komodo packs four
1 kB ARM L2 tables per page; collapsing them into one table per page
preserves the API (``InitL2PTable(l1index)``) and every invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.arm.bits import WORDSIZE, get_bits
from repro.arm.memory import PAGE_SIZE, PhysicalMemory

ENCLAVE_VSPACE_SIZE = 1 << 30  # 1 GB, the TTBR0-translated region
L2_SPAN = 1 << 22  # each L2 table maps 4 MB
L1_ENTRIES = ENCLAVE_VSPACE_SIZE // L2_SPAN  # 256
L2_ENTRIES = L2_SPAN // PAGE_SIZE  # 1024

# Descriptor type bits (low two bits of an entry).
DESC_INVALID = 0b00
DESC_L1_COARSE = 0b01  # L1 entry pointing at an L2 table
DESC_L2_SMALL = 0b10  # L2 entry mapping a 4 kB small page

# Permission/attribute bits we pack into L2 small-page descriptors.
# These stand in for the AP/XN encodings of the real format; they are
# decoded only by this module so the choice is internal.
PERM_R = 1 << 4
PERM_W = 1 << 5
PERM_X = 1 << 6
PERM_SECURE = 1 << 7  # set when the target is a secure page

PERM_MASK = PERM_R | PERM_W | PERM_X | PERM_SECURE
ADDR_MASK = 0xFFFFF000


class PageTableError(Exception):
    """Raised when building or walking a malformed page table."""


@dataclass(frozen=True)
class Translation:
    """Result of a successful page-table walk."""

    phys_base: int  # physical base of the 4 kB frame
    readable: bool
    writable: bool
    executable: bool
    secure: bool

    def phys_addr(self, vaddr: int) -> int:
        return self.phys_base | (vaddr & (PAGE_SIZE - 1))


def l1_index(vaddr: int) -> int:
    """L1 slot covering ``vaddr``."""
    return get_bits(vaddr, 29, 22)


def l2_index(vaddr: int) -> int:
    """L2 slot covering ``vaddr``."""
    return get_bits(vaddr, 21, 12)


def in_enclave_vspace(vaddr: int) -> bool:
    return 0 <= vaddr < ENCLAVE_VSPACE_SIZE


def make_l1_entry(l2_base: int) -> int:
    """Build an L1 coarse-table descriptor pointing at ``l2_base``."""
    if l2_base % PAGE_SIZE:
        raise PageTableError("L2 table base must be page aligned")
    return (l2_base & ADDR_MASK) | DESC_L1_COARSE


def make_l2_entry(
    frame_base: int, readable: bool, writable: bool, executable: bool, secure: bool
) -> int:
    """Build an L2 small-page descriptor for a 4 kB frame."""
    if frame_base % PAGE_SIZE:
        raise PageTableError("frame base must be page aligned")
    entry = (frame_base & ADDR_MASK) | DESC_L2_SMALL
    if readable:
        entry |= PERM_R
    if writable:
        entry |= PERM_W
    if executable:
        entry |= PERM_X
    if secure:
        entry |= PERM_SECURE
    return entry


def entry_type(entry: int) -> int:
    return entry & 0b11


def entry_target(entry: int) -> int:
    return entry & ADDR_MASK


class PageTableWalker:
    """Walks a two-level table rooted at a physical L1 base address.

    The walk reads descriptors from physical memory exactly as the MMU
    would, so any monitor bug that wrote a malformed descriptor is
    observable here.
    """

    def __init__(self, memory: PhysicalMemory):
        self.memory = memory

    def walk(self, l1_base: int, vaddr: int) -> Optional[Translation]:
        """Translate ``vaddr``; returns None when unmapped (a fault)."""
        if not in_enclave_vspace(vaddr):
            return None
        l1_entry = self.memory.read_word(l1_base + l1_index(vaddr) * WORDSIZE)
        if entry_type(l1_entry) != DESC_L1_COARSE:
            return None
        l2_base = entry_target(l1_entry)
        l2_entry = self.memory.read_word(l2_base + l2_index(vaddr) * WORDSIZE)
        if entry_type(l2_entry) != DESC_L2_SMALL:
            return None
        return Translation(
            phys_base=entry_target(l2_entry),
            readable=bool(l2_entry & PERM_R),
            writable=bool(l2_entry & PERM_W),
            executable=bool(l2_entry & PERM_X),
            secure=bool(l2_entry & PERM_SECURE),
        )

    def writable_frames(self, l1_base: int) -> List[int]:
        """Physical bases of every frame mapped writable under ``l1_base``.

        This is the set the paper's model havocs after user execution:
        user code may have modified exactly these frames.
        """
        frames = []
        # view_words: zero-copy scans (same one-transaction accounting
        # as read_words); nothing mutates memory while the views live.
        for l1_entry in self.memory.view_words(l1_base, L1_ENTRIES):
            if entry_type(l1_entry) != DESC_L1_COARSE:
                continue
            for l2_entry in self.memory.view_words(entry_target(l1_entry), L2_ENTRIES):
                if entry_type(l2_entry) == DESC_L2_SMALL and l2_entry & PERM_W:
                    frames.append(entry_target(l2_entry))
        return frames

    def mapped_vaddrs(self, l1_base: int) -> List[int]:
        """Page-aligned virtual addresses with a valid mapping."""
        vaddrs = []
        for i, l1_entry in enumerate(self.memory.view_words(l1_base, L1_ENTRIES)):
            if entry_type(l1_entry) != DESC_L1_COARSE:
                continue
            l2_entries = self.memory.view_words(entry_target(l1_entry), L2_ENTRIES)
            for j, l2_entry in enumerate(l2_entries):
                if entry_type(l2_entry) == DESC_L2_SMALL:
                    vaddrs.append((i << 22) | (j << 12))
        return vaddrs
