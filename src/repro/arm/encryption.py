"""Memory encryption for the physical-attack threat model (section 3.2).

The paper considers two variants of the threat model, split on whether
physical attacks on RAM are in scope.  When they are, the hardware must
protect secure memory with encryption and integrity (SGX's memory
encryption engine) or keep it on-chip; when they are not, "all that is
needed in hardware is an IOMMU-like filter" — which is what the base
``PhysicalMemory`` models with its world checks.

``EncryptedMemory`` models the stronger variant: words in the secure
region are stored encrypted (keystream derived per address from a
device key) with a per-word authentication tag.  The CPU-side interface
is unchanged — secure-world software reads plaintext — but the
*physical* interface a cold-boot or bus attacker uses sees only
ciphertext, and tampering with ciphertext or tags is detected on the
next CPU read, modelling the integrity half of the engine.

As in the paper, the mechanism is hardware configuration: the monitor
is oblivious to which variant it runs on (its proofs hold for both; the
variants differ only in which *physical* attacker they defeat).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.arm.bits import WORDSIZE, to_word
from repro.arm.memory import WORDS_PER_PAGE, MemoryFault, MemoryMap, PhysicalMemory
from repro.crypto.sha256 import sha256


class IntegrityViolation(MemoryFault):
    """The memory engine detected tampering (machine-check on real HW)."""

    def __init__(self, address: int):
        super().__init__(address, "memory integrity violation")


class EncryptedMemory(PhysicalMemory):
    """PhysicalMemory with an encryption engine over the secure region.

    Confidentiality: stored words are XORed with a per-address keystream
    derived from the device key.  Integrity: each stored word carries a
    tag binding (key, address, ciphertext); CPU reads verify it.

    ``physical_read`` / ``physical_write`` model the attacker's direct
    access to the RAM chips, bypassing the CPU package entirely.
    """

    def __init__(self, memmap: MemoryMap, device_key: int = 0x5EED):
        super().__init__(memmap)
        self._device_key = device_key
        self._tags: Dict[int, int] = {}

    # -- the engine -----------------------------------------------------

    def _protected(self, address: int) -> bool:
        return self.map.is_secure(address) or self.map.is_monitor(address)

    def _pad(self, address: int) -> int:
        digest = sha256(
            b"mee-pad" + self._device_key.to_bytes(8, "big") + address.to_bytes(8, "big")
        )
        return int.from_bytes(digest[:4], "big")

    def _tag(self, address: int, ciphertext: int) -> int:
        digest = sha256(
            b"mee-tag"
            + self._device_key.to_bytes(8, "big")
            + address.to_bytes(8, "big")
            + ciphertext.to_bytes(4, "big")
        )
        return int.from_bytes(digest[:4], "big")

    # -- CPU-side access (decrypting/verifying) ---------------------------

    def read_word(self, address: int) -> int:
        stored = super().read_word(address)
        if not self._protected(address):
            return stored
        expected = self._tags.get(address)
        if expected is None:
            if stored != 0:
                raise IntegrityViolation(address)
            return 0  # never-written words read as zero, untagged
        if self._tag(address, stored) != expected:
            raise IntegrityViolation(address)
        return stored ^ self._pad(address)

    def write_word(self, address: int, value: int) -> None:
        if not self._protected(address):
            super().write_word(address, value)
            return
        ciphertext = to_word(value) ^ self._pad(address)
        super().write_word(address, ciphertext)
        self._tags[address] = self._tag(address, ciphertext)

    # -- bulk helpers --------------------------------------------------------
    # The base class implements these as raw slice operations on the flat
    # store; here every word must pass through the engine (per-address
    # keystream and tags), so they go word by word through the overrides.

    def read_words(self, address: int, count: int) -> List[int]:
        return [self.read_word(address + i * WORDSIZE) for i in range(count)]

    def view_words(self, address: int, count: int) -> List[int]:
        # Never the base class's zero-copy window: a raw view would hand
        # out ciphertext and skip tag verification.  Word-wise like every
        # other bulk op here (one read transaction per word).
        return self.read_words(address, count)

    def write_words(self, address: int, values: Iterable[int]) -> None:
        for i, value in enumerate(values):
            self.write_word(address + i * WORDSIZE, value)

    def zero_page(self, base: int) -> None:
        for i in range(WORDS_PER_PAGE):
            self.write_word(base + i * WORDSIZE, 0)

    def copy_page(self, src: int, dst: int) -> None:
        for i in range(WORDS_PER_PAGE):
            self.write_word(dst + i * WORDSIZE, self.read_word(src + i * WORDSIZE))

    # -- the physical attacker's interface ----------------------------------

    def physical_read(self, address: int) -> int:
        """Cold-boot / bus-snoop view: raw stored bits, no decryption."""
        return super().read_word(address)

    def physical_write(self, address: int, value: int) -> None:
        """Bus tamper: overwrite raw RAM, bypassing the engine.  The
        forgery is caught at the next CPU read of the word."""
        super().write_word(address, value)

    def physical_move(self, src: int, dst: int) -> None:
        """Splicing attack: relocate ciphertext+tag to another address.
        Address-bound tags make the relocated word unreadable."""
        super().write_word(dst, super().read_word(src))
        if src in self._tags:
            self._tags[dst] = self._tags[src]

    # -- copies ------------------------------------------------------------------

    def copy(self) -> "EncryptedMemory":
        dup = EncryptedMemory(self.map, device_key=self._device_key)
        dup._buf[:] = self._buf
        dup._tags = dict(self._tags)
        return dup
