"""32-bit word arithmetic helpers.

Everything in the machine model operates on 32-bit unsigned words.  These
helpers centralise wrapping arithmetic, alignment checks and bitfield
manipulation so the rest of the model never has to reason about Python's
unbounded integers.
"""

from __future__ import annotations

WORD_BITS = 32
WORDSIZE = 4
WORD_MASK = 0xFFFFFFFF
MAX_WORD = WORD_MASK


def to_word(value: int) -> int:
    """Truncate an arbitrary integer to a 32-bit unsigned word."""
    return value & WORD_MASK


def is_word(value: int) -> bool:
    """Return True if ``value`` is already a valid 32-bit unsigned word."""
    return isinstance(value, int) and 0 <= value <= WORD_MASK


def word_aligned(address: int) -> bool:
    """Return True if ``address`` is word (4-byte) aligned."""
    return address % WORDSIZE == 0


def align_down(address: int, alignment: int) -> int:
    """Round ``address`` down to a multiple of ``alignment``."""
    return address - (address % alignment)


def align_up(address: int, alignment: int) -> int:
    """Round ``address`` up to a multiple of ``alignment``."""
    return align_down(address + alignment - 1, alignment)


def add_wrap(a: int, b: int) -> int:
    """32-bit wrapping addition."""
    return (a + b) & WORD_MASK


def sub_wrap(a: int, b: int) -> int:
    """32-bit wrapping subtraction."""
    return (a - b) & WORD_MASK


def mul_wrap(a: int, b: int) -> int:
    """32-bit wrapping multiplication (low half of the product)."""
    return (a * b) & WORD_MASK


def not_word(a: int) -> int:
    """Bitwise NOT within 32 bits."""
    return (~a) & WORD_MASK


def lsl(value: int, amount: int) -> int:
    """Logical shift left; shifts of 32 or more produce zero."""
    if amount >= WORD_BITS:
        return 0
    return (value << amount) & WORD_MASK


def lsr(value: int, amount: int) -> int:
    """Logical shift right; shifts of 32 or more produce zero."""
    if amount >= WORD_BITS:
        return 0
    return (value & WORD_MASK) >> amount


def asr(value: int, amount: int) -> int:
    """Arithmetic shift right on the 32-bit two's-complement value."""
    signed = to_signed(value)
    if amount >= WORD_BITS:
        amount = WORD_BITS - 1
    return (signed >> amount) & WORD_MASK


def ror(value: int, amount: int) -> int:
    """Rotate right within 32 bits."""
    amount %= WORD_BITS
    if amount == 0:
        return value & WORD_MASK
    value &= WORD_MASK
    return ((value >> amount) | (value << (WORD_BITS - amount))) & WORD_MASK


def to_signed(value: int) -> int:
    """Interpret a 32-bit word as a signed two's-complement integer."""
    value &= WORD_MASK
    if value & 0x80000000:
        return value - (1 << WORD_BITS)
    return value


def from_signed(value: int) -> int:
    """Encode a signed integer (−2^31..2^31−1) as a 32-bit word."""
    return value & WORD_MASK


def get_bit(value: int, bit: int) -> int:
    """Extract a single bit (0 or 1)."""
    return (value >> bit) & 1


def set_bit(value: int, bit: int, on: bool) -> int:
    """Return ``value`` with bit ``bit`` set or cleared."""
    if on:
        return (value | (1 << bit)) & WORD_MASK
    return value & not_word(1 << bit)


def get_bits(value: int, high: int, low: int) -> int:
    """Extract the inclusive bitfield ``value[high:low]``."""
    width = high - low + 1
    return (value >> low) & ((1 << width) - 1)


def set_bits(value: int, high: int, low: int, field: int) -> int:
    """Return ``value`` with the inclusive bitfield ``[high:low]`` replaced."""
    width = high - low + 1
    mask = ((1 << width) - 1) << low
    return (value & not_word(mask)) | ((field << low) & mask)


def words_to_bytes(words: list) -> bytes:
    """Pack a list of 32-bit words into big-endian bytes.

    Big-endian packing matches the byte order the monitor's SHA-256 code
    consumes words in; the choice is internal and consistent everywhere.
    """
    out = bytearray()
    for word in words:
        out += word.to_bytes(4, "big")
    return bytes(out)


def bytes_to_words(data: bytes) -> list:
    """Unpack big-endian bytes (length a multiple of 4) into words."""
    if len(data) % 4 != 0:
        raise ValueError("byte string length must be a multiple of 4")
    return [int.from_bytes(data[i : i + 4], "big") for i in range(0, len(data), 4)]
