"""Cycle-cost model standing in for the Raspberry Pi 2 hardware.

The paper's evaluation (Table 3) reports cycle counts measured on a
900 MHz Cortex-A7.  We replace the silicon with a cost model: every
machine-visible operation the monitor or an enclave performs charges a
constant from this table.  The constants are calibrated once against the
paper's *null SMC* anchor (123 cycles) and the SHA-256 throughput implied
by the Attest row; everything else is derived from operation counts, so
the *shape* of Table 3 (orderings, ratios such as Enter < Resume <
Enter+Exit, hash-dominated Attest/Verify, zero-fill-dominated MapData)
emerges from the implementation rather than being hard-coded.

All constants are plain attributes so ablation benchmarks can build
variant models (e.g. free TLB flushes) to quantify the optimisations the
paper says it omitted (section 8.1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass
class CostModel:
    """Per-operation cycle costs."""

    # Basic pipeline costs.
    instruction: int = 1  # base cost of a simple ALU instruction
    mem_access: int = 3  # one word load/store (L1-hit flavour)
    branch: int = 2  # taken structured-control-flow edge

    # Exception and mode-switch machinery.
    exception_entry: int = 18  # vector fetch + mode switch + PSR banking
    exception_return: int = 12  # MOVS PC, LR style return
    world_switch: int = 14  # extra cost of crossing the SMC boundary
    ttbr_write: int = 9  # TTBR0 load incl. required barriers
    tlb_flush: int = 260  # full unified TLB invalidate + DSB/ISB barriers
    banked_reg_access: int = 6  # MRS/MSR of a banked register + store/load
    user_entry: int = 40  # SPSR setup + MOVS PC, LR pipeline drain
    enclave_exit: int = 190  # banked-register restore + monitor unwind
    context_restore_word: int = 5  # one word of saved thread context

    # Bulk memory operations (per page).
    page_zero: int = 5650  # zero-fill 1024 words (store-multiple loop)
    page_copy: int = 5400  # copy 1024 words

    # Cryptography.
    sha256_block: int = 2450  # one 64-byte compression (incl. schedule)
    sha256_init: int = 40  # load IV constants
    sha256_finish: int = 90  # padding bookkeeping + digest store
    mac_compare_word: int = 96  # constant-time compare + arg revalidation

    # Hardware random number generator (per 32-bit word).
    rng_word: int = 150

    def variant(self, **overrides: int) -> "CostModel":
        """A copy of this model with some constants replaced.

        Used by the ablation benchmarks, e.g. ``variant(tlb_flush=0)`` to
        model the skip-flush-on-reentry optimisation from section 8.1.
        """
        return replace(self, **overrides)


#: Latencies the paper quotes for SGX enclave crossings (section 8.1,
#: citing Orenbach et al.), used by the comparison benchmark.
SGX_EENTER_CYCLES = 3800
SGX_EEXIT_CYCLES = 3300
SGX_FULL_CROSSING_CYCLES = 7100
