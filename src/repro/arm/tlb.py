"""TLB consistency model (paper section 5.1).

The model does not track individual TLB entries; it tracks a single
consistency flag.  Executing a full-TLB flush marks the TLB consistent.
Loading the page-table base register, or storing to an address inside the
live first-level table or any second-level table it references, marks the
TLB inconsistent.  The monitor must re-establish consistency (or prove a
store did not touch the tables) before entering an enclave; the model
enforces the "or flush" half by requiring the flag to be set at entry.

``version`` is the fast-path coherence hook: it is bumped by every event
after which cached translations may no longer match a fresh page-table
walk — a flush, a TTBR load, or a store that poisons consistency.  The
execution engine's micro-TLB (machine.UArchState) discards itself when
the version changes, so the architectural flush discipline is exactly
what keeps the fast path coherent.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.arm.memory import PAGE_SIZE, PhysicalMemory
from repro.arm.pagetable import DESC_L1_COARSE, L1_ENTRIES, entry_target, entry_type

_PAGE_MASK = ~(PAGE_SIZE - 1)


class TLB:
    """The TLB consistency flag plus the page-table footprint it watches."""

    def __init__(self) -> None:
        self.consistent = True
        self._table_pages: Set[int] = set()
        self.flush_count = 0
        #: Bumped whenever cached translations may have gone stale.
        self.version = 0
        self._memory: Optional[PhysicalMemory] = None
        self._l1_base: Optional[int] = None

    def flush(self) -> None:
        """A full TLB flush re-establishes consistency."""
        self.consistent = True
        self.flush_count += 1
        self.version += 1

    def set_ttbr(self, memory: Optional[PhysicalMemory], l1_base: Optional[int]) -> None:
        """Model a TTBR0 load: recompute the watched footprint; the TLB
        becomes inconsistent until flushed."""
        self.consistent = False
        self.version += 1
        self._memory = memory
        self._l1_base = l1_base
        self._recompute_footprint()

    def _recompute_footprint(self) -> None:
        self._table_pages = set()
        memory, l1_base = self._memory, self._l1_base
        if memory is None or l1_base is None:
            return
        self._table_pages.add(l1_base & _PAGE_MASK)
        for entry in memory.view_words(l1_base, L1_ENTRIES):
            if entry_type(entry) == DESC_L1_COARSE:
                self._table_pages.add(entry_target(entry))

    def note_store(self, address: int) -> None:
        """Record a store; stores into the live tables poison the TLB.

        A store into the first-level table may install a pointer to a new
        second-level table, so the watched footprint is recomputed there —
        subsequent stores into that L2 page must poison too, even before
        the next TTBR load.
        """
        page = address & _PAGE_MASK
        if page in self._table_pages:
            self.consistent = False
            self.version += 1
            if self._l1_base is not None and page == self._l1_base & _PAGE_MASK:
                self._recompute_footprint()

    def require_consistent(self) -> None:
        """Entry-time check the monitor relies on before running user code."""
        if not self.consistent:
            raise TLBInconsistent("enclave entry with inconsistent TLB")

    def copy(self, memory: Optional[PhysicalMemory] = None) -> "TLB":
        """Duplicate the consistency state, rebinding the watched memory.

        ``memory`` should be the copied machine's PhysicalMemory so the
        duplicate watches (and on L1 stores, re-walks) the right store.
        """
        dup = TLB()
        dup.consistent = self.consistent
        dup._table_pages = set(self._table_pages)
        dup.flush_count = self.flush_count
        dup.version = self.version
        dup._memory = memory if memory is not None else self._memory
        dup._l1_base = self._l1_base
        return dup


class TLBInconsistent(Exception):
    """Raised when user execution would begin with a stale TLB."""
