"""TLB consistency model (paper section 5.1).

The model does not track individual TLB entries; it tracks a single
consistency flag.  Executing a full-TLB flush marks the TLB consistent.
Loading the page-table base register, or storing to an address inside the
live first-level table or any second-level table it references, marks the
TLB inconsistent.  The monitor must re-establish consistency (or prove a
store did not touch the tables) before entering an enclave; the model
enforces the "or flush" half by requiring the flag to be set at entry.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.arm.bits import WORDSIZE
from repro.arm.memory import PAGE_SIZE, PhysicalMemory
from repro.arm.pagetable import DESC_L1_COARSE, L1_ENTRIES, entry_target, entry_type


class TLB:
    """The TLB consistency flag plus the page-table footprint it watches."""

    def __init__(self) -> None:
        self.consistent = True
        self._table_pages: Set[int] = set()
        self.flush_count = 0

    def flush(self) -> None:
        """A full TLB flush re-establishes consistency."""
        self.consistent = True
        self.flush_count += 1

    def set_ttbr(self, memory: Optional[PhysicalMemory], l1_base: Optional[int]) -> None:
        """Model a TTBR0 load: recompute the watched footprint; the TLB
        becomes inconsistent until flushed."""
        self.consistent = False
        self._table_pages = set()
        if memory is None or l1_base is None:
            return
        self._table_pages.add(l1_base & ~(PAGE_SIZE - 1))
        for i in range(L1_ENTRIES):
            entry = memory.read_word(l1_base + i * WORDSIZE)
            if entry_type(entry) == DESC_L1_COARSE:
                self._table_pages.add(entry_target(entry))

    def note_store(self, address: int) -> None:
        """Record a store; stores into the live tables poison the TLB."""
        if (address & ~(PAGE_SIZE - 1)) in self._table_pages:
            self.consistent = False

    def require_consistent(self) -> None:
        """Entry-time check the monitor relies on before running user code."""
        if not self.consistent:
            raise TLBInconsistent("enclave entry with inconsistent TLB")


class TLBInconsistent(Exception):
    """Raised when user execution would begin with a stale TLB."""
