"""Processor modes and TrustZone worlds (paper Figure 1).

A TrustZone CPU runs in one of two *worlds*: normal world (the untrusted
OS and its applications) and secure world (the Komodo monitor and the
enclaves it manages).  Each world has a user mode and five equally
privileged exception modes; secure world additionally has *monitor mode*,
entered by the SMC instruction, which is where the Komodo monitor runs.
"""

from __future__ import annotations

import enum


class Mode(enum.Enum):
    """ARMv7 processor modes, with their architectural mode-field encodings."""

    USR = 0b10000
    FIQ = 0b10001
    IRQ = 0b10010
    SVC = 0b10011
    MON = 0b10110
    ABT = 0b10111
    UND = 0b11011
    SYS = 0b11111

    @property
    def encoding(self) -> int:
        """The five-bit CPSR.M encoding for this mode."""
        return self.value

    @property
    def privileged(self) -> bool:
        """Every mode except user mode is privileged."""
        return self is not Mode.USR


class World(enum.Enum):
    """TrustZone worlds, selected by the SCR.NS bit."""

    SECURE = 0
    NORMAL = 1


#: Modes that have their own banked SP and LR registers.  User and system
#: mode share one bank ("usr"); monitor mode is only reachable in secure
#: world.  FIQ additionally banks R8-R12, which (as in the paper's model)
#: we do not model because the monitor never uses FIQ-banked registers.
BANKED_MODES = (Mode.USR, Mode.FIQ, Mode.IRQ, Mode.SVC, Mode.MON, Mode.ABT, Mode.UND)

#: Modes that have a Saved Program Status Register.  User/system mode has
#: no SPSR: there is no exception return from user mode.
SPSR_MODES = (Mode.FIQ, Mode.IRQ, Mode.SVC, Mode.MON, Mode.ABT, Mode.UND)


def bank_for(mode: Mode) -> Mode:
    """Map a mode to the register bank it uses for SP/LR."""
    if mode is Mode.SYS:
        return Mode.USR
    return mode


def mode_from_encoding(encoding: int) -> Mode:
    """Decode a five-bit CPSR.M field; raises ValueError if undefined."""
    for mode in Mode:
        if mode.value == encoding:
            return mode
    raise ValueError(f"undefined mode encoding {encoding:#07b}")


class ExceptionKind(enum.Enum):
    """The exception classes the model takes (paper section 5.1).

    Reset and FIQ exist architecturally; the monitor configures the
    machine so that the relevant set is: SMC (taken in monitor mode),
    SVC (supervisor call), IRQ/FIQ (interrupts), prefetch/data abort
    (page faults), and undefined instruction.
    """

    SMC = "smc"
    SVC = "svc"
    IRQ = "irq"
    FIQ = "fiq"
    ABORT = "abort"
    UNDEFINED = "undefined"


#: The mode an exception is taken in.  SMC traps to monitor mode; in the
#: Komodo configuration interrupts taken during enclave execution are also
#: routed to monitor mode (SCR.IRQ/FIQ set), which we model directly.
EXCEPTION_MODE = {
    ExceptionKind.SMC: Mode.MON,
    ExceptionKind.SVC: Mode.SVC,
    ExceptionKind.IRQ: Mode.IRQ,
    ExceptionKind.FIQ: Mode.FIQ,
    ExceptionKind.ABORT: Mode.ABT,
    ExceptionKind.UNDEFINED: Mode.UND,
}
