"""Register file with ARM register banking.

The 32-bit ARM architecture banks SP, LR and SPSR by mode: user-mode code
accessing SP reads the concrete register SP_usr while monitor-mode code
reads SP_mon, and so on (paper section 5.1).  The register file stores one
copy of R0-R12, a banked SP/LR per bank, and a banked SPSR per exception
mode, plus the CPSR fields the model needs (mode, interrupt masks, and
the NZCV condition flags used by comparison results).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.arm.bits import WORD_MASK, get_bit, set_bit, to_word
from repro.arm.modes import BANKED_MODES, SPSR_MODES, Mode, bank_for

#: Symbolic register names accepted by the instruction operands.
GENERAL_REGISTERS = tuple(f"r{i}" for i in range(13))
SPECIAL_REGISTERS = ("sp", "lr")
ALL_OPERAND_REGISTERS = GENERAL_REGISTERS + SPECIAL_REGISTERS

# CPSR bit positions (architectural).
CPSR_N_BIT = 31
CPSR_Z_BIT = 30
CPSR_C_BIT = 29
CPSR_V_BIT = 28
CPSR_I_BIT = 7
CPSR_F_BIT = 6
CPSR_MODE_MASK = 0b11111


@dataclass
class PSR:
    """A program status register: condition flags, interrupt masks, mode."""

    n: bool = False
    z: bool = False
    c: bool = False
    v: bool = False
    irq_masked: bool = True
    fiq_masked: bool = True
    mode: Mode = Mode.SVC

    def to_word(self) -> int:
        """Encode into the architectural CPSR/SPSR word layout."""
        word = self.mode.encoding
        word = set_bit(word, CPSR_N_BIT, self.n)
        word = set_bit(word, CPSR_Z_BIT, self.z)
        word = set_bit(word, CPSR_C_BIT, self.c)
        word = set_bit(word, CPSR_V_BIT, self.v)
        word = set_bit(word, CPSR_I_BIT, self.irq_masked)
        word = set_bit(word, CPSR_F_BIT, self.fiq_masked)
        return word

    @classmethod
    def from_word(cls, word: int) -> "PSR":
        """Decode from the architectural word layout."""
        from repro.arm.modes import mode_from_encoding

        return cls(
            n=bool(get_bit(word, CPSR_N_BIT)),
            z=bool(get_bit(word, CPSR_Z_BIT)),
            c=bool(get_bit(word, CPSR_C_BIT)),
            v=bool(get_bit(word, CPSR_V_BIT)),
            irq_masked=bool(get_bit(word, CPSR_I_BIT)),
            fiq_masked=bool(get_bit(word, CPSR_F_BIT)),
            mode=mode_from_encoding(word & CPSR_MODE_MASK),
        )

    def copy(self) -> "PSR":
        return PSR(self.n, self.z, self.c, self.v, self.irq_masked, self.fiq_masked, self.mode)


def _zero_bank() -> Dict[Mode, int]:
    return {bank_for(mode): 0 for mode in BANKED_MODES}


def _zero_spsrs() -> Dict[Mode, PSR]:
    return {mode: PSR() for mode in SPSR_MODES}


@dataclass
class RegisterFile:
    """Core registers R0-R12 plus banked SP/LR/SPSR and the CPSR.

    The program counter is not modelled as a register: following the
    paper, control flow is structured and the PC only becomes visible
    through LR at exception entry.
    """

    gprs: Dict[int, int] = field(default_factory=lambda: {i: 0 for i in range(13)})
    sp_bank: Dict[Mode, int] = field(default_factory=_zero_bank)
    lr_bank: Dict[Mode, int] = field(default_factory=_zero_bank)
    spsr_bank: Dict[Mode, PSR] = field(default_factory=_zero_spsrs)
    cpsr: PSR = field(default_factory=PSR)

    # -- general purpose registers -------------------------------------

    def read_gpr(self, index: int) -> int:
        """Read R0-R12."""
        return self.gprs[index]

    def write_gpr(self, index: int, value: int) -> None:
        """Write R0-R12, truncating to 32 bits."""
        if index not in self.gprs:
            raise KeyError(f"no such general-purpose register r{index}")
        self.gprs[index] = to_word(value)

    # -- banked registers ----------------------------------------------

    @property
    def mode(self) -> Mode:
        return self.cpsr.mode

    def read_sp(self, mode: Mode = None) -> int:
        """Read the SP banked for ``mode`` (default: the current mode)."""
        bank = bank_for(mode or self.mode)
        return self.sp_bank[bank]

    def write_sp(self, value: int, mode: Mode = None) -> None:
        bank = bank_for(mode or self.mode)
        self.sp_bank[bank] = to_word(value)

    def read_lr(self, mode: Mode = None) -> int:
        """Read the LR banked for ``mode`` (default: the current mode)."""
        bank = bank_for(mode or self.mode)
        return self.lr_bank[bank]

    def write_lr(self, value: int, mode: Mode = None) -> None:
        bank = bank_for(mode or self.mode)
        self.lr_bank[bank] = to_word(value)

    def read_spsr(self, mode: Mode = None) -> PSR:
        """Read the SPSR banked for ``mode``; user mode has none."""
        mode = mode or self.mode
        if mode not in self.spsr_bank:
            raise KeyError(f"mode {mode} has no SPSR")
        return self.spsr_bank[mode]

    def write_spsr(self, psr: PSR, mode: Mode = None) -> None:
        mode = mode or self.mode
        if mode not in self.spsr_bank:
            raise KeyError(f"mode {mode} has no SPSR")
        self.spsr_bank[mode] = psr.copy()

    # -- operand-level access ------------------------------------------

    def read_operand(self, name: str) -> int:
        """Read a register by operand name ('r0'..'r12', 'sp', 'lr')."""
        if name in GENERAL_REGISTERS:
            return self.read_gpr(int(name[1:]))
        if name == "sp":
            return self.read_sp()
        if name == "lr":
            return self.read_lr()
        raise KeyError(f"unknown register operand {name!r}")

    def write_operand(self, name: str, value: int) -> None:
        """Write a register by operand name."""
        if name in GENERAL_REGISTERS:
            self.write_gpr(int(name[1:]), value)
        elif name == "sp":
            self.write_sp(value)
        elif name == "lr":
            self.write_lr(value)
        else:
            raise KeyError(f"unknown register operand {name!r}")

    # -- snapshots -------------------------------------------------------

    def user_visible(self) -> Dict[str, int]:
        """The registers visible to user-mode code: R0-R12, SP_usr, LR_usr."""
        view = {f"r{i}": self.gprs[i] for i in range(13)}
        view["sp"] = self.sp_bank[Mode.USR]
        view["lr"] = self.lr_bank[Mode.USR]
        return view

    def load_user_visible(self, view: Dict[str, int]) -> None:
        """Restore the user-visible registers from a snapshot."""
        for i in range(13):
            self.gprs[i] = to_word(view[f"r{i}"])
        self.sp_bank[Mode.USR] = to_word(view["sp"])
        self.lr_bank[Mode.USR] = to_word(view["lr"])

    def copy(self) -> "RegisterFile":
        """Deep copy of the register file."""
        dup = RegisterFile()
        dup.gprs = dict(self.gprs)
        dup.sp_bank = dict(self.sp_bank)
        dup.lr_bank = dict(self.lr_bank)
        dup.spsr_bank = {mode: psr.copy() for mode, psr in self.spsr_bank.items()}
        dup.cpsr = self.cpsr.copy()
        return dup

    def scrub_gprs(self, keep: tuple = ()) -> None:
        """Zero every general-purpose register not listed in ``keep``.

        The monitor uses this on return paths to prevent information
        leaks through registers (paper section 5.2).
        """
        for i in range(13):
            if f"r{i}" not in keep:
                self.gprs[i] = 0
