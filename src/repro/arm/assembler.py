"""Structured assembler for enclave programs.

A small program builder in the spirit of Vale's structured control flow:
programs are written as sequences of instruction emitters plus labels,
and branch targets are resolved symbolically at assembly time.  The
output is a list of 32-bit instruction words ready to be placed into
enclave data pages by the SDK loader.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from repro.arm.instructions import BRANCH_OPS, Instruction, encode
from repro.arm.memory import WORDSIZE

Operand = Union[int, str]


class AssemblerError(Exception):
    """Raised on unknown labels, duplicate labels, or bad operands."""


def reg(name: Union[int, str]) -> int:
    """Resolve a register operand: an index, 'rN', 'sp', or 'lr'."""
    if isinstance(name, int):
        if not 0 <= name <= 14:
            raise AssemblerError(f"register index {name} out of range")
        return name
    lowered = name.lower()
    if lowered == "sp":
        return 13
    if lowered == "lr":
        return 14
    if lowered.startswith("r") and lowered[1:].isdigit():
        index = int(lowered[1:])
        if 0 <= index <= 12:
            return index
    raise AssemblerError(f"unknown register {name!r}")


class Assembler:
    """Builds a flat instruction stream with symbolic labels.

    Methods named after mnemonics append instructions; ``label`` defines
    a branch target; ``assemble`` resolves labels and encodes.  The
    fluent style keeps enclave programs readable::

        asm = Assembler()
        asm.movw("r0", 0)
        asm.label("loop")
        asm.addi("r0", "r0", 1)
        asm.cmpi("r0", 10)
        asm.bne("loop")
        asm.svc(SVC_EXIT)
        words = asm.assemble()
    """

    def __init__(self) -> None:
        # Each item is either a resolved Instruction or a pending branch
        # (op, label) tuple to fix up once all labels are known.
        self._items: List[Union[Instruction, Tuple[str, str]]] = []
        self._labels: Dict[str, int] = {}

    # -- label management -------------------------------------------------

    def label(self, name: str) -> "Assembler":
        if name in self._labels:
            raise AssemblerError(f"duplicate label {name!r}")
        self._labels[name] = len(self._items)
        return self

    @property
    def position(self) -> int:
        """Current instruction index (useful for size assertions)."""
        return len(self._items)

    # -- instruction emitters ----------------------------------------------

    def _emit3(self, op: str, rd: Operand, rn: Operand, rm: Operand) -> "Assembler":
        self._items.append(Instruction(op, rd=reg(rd), rn=reg(rn), rm=reg(rm)))
        return self

    def _emit_rri(self, op: str, rd: Operand, rn: Operand, imm: int) -> "Assembler":
        self._items.append(Instruction(op, rd=reg(rd), rn=reg(rn), imm=imm))
        return self

    def add(self, rd, rn, rm):
        return self._emit3("add", rd, rn, rm)

    def addi(self, rd, rn, imm):
        return self._emit_rri("addi", rd, rn, imm)

    def sub(self, rd, rn, rm):
        return self._emit3("sub", rd, rn, rm)

    def subi(self, rd, rn, imm):
        return self._emit_rri("subi", rd, rn, imm)

    def rsb(self, rd, rn, rm):
        return self._emit3("rsb", rd, rn, rm)

    def and_(self, rd, rn, rm):
        return self._emit3("and", rd, rn, rm)

    def orr(self, rd, rn, rm):
        return self._emit3("orr", rd, rn, rm)

    def eor(self, rd, rn, rm):
        return self._emit3("eor", rd, rn, rm)

    def bic(self, rd, rn, rm):
        return self._emit3("bic", rd, rn, rm)

    def mul(self, rd, rn, rm):
        return self._emit3("mul", rd, rn, rm)

    def lsl(self, rd, rn, rm):
        return self._emit3("lsl", rd, rn, rm)

    def lsr(self, rd, rn, rm):
        return self._emit3("lsr", rd, rn, rm)

    def asr(self, rd, rn, rm):
        return self._emit3("asr", rd, rn, rm)

    def ror(self, rd, rn, rm):
        return self._emit3("ror", rd, rn, rm)

    def lsli(self, rd, rn, imm):
        return self._emit_rri("lsli", rd, rn, imm)

    def lsri(self, rd, rn, imm):
        return self._emit_rri("lsri", rd, rn, imm)

    def asri(self, rd, rn, imm):
        return self._emit_rri("asri", rd, rn, imm)

    def mov(self, rd, rm):
        self._items.append(Instruction("mov", rd=reg(rd), rm=reg(rm)))
        return self

    def mvn(self, rd, rm):
        self._items.append(Instruction("mvn", rd=reg(rd), rm=reg(rm)))
        return self

    def movw(self, rd, imm):
        self._items.append(Instruction("movw", rd=reg(rd), imm=imm & 0xFFFF))
        return self

    def movt(self, rd, imm):
        self._items.append(Instruction("movt", rd=reg(rd), imm=imm & 0xFFFF))
        return self

    def mov32(self, rd, value: int) -> "Assembler":
        """Load an arbitrary 32-bit constant (movw + movt pair)."""
        self.movw(rd, value & 0xFFFF)
        if value >> 16:
            self.movt(rd, (value >> 16) & 0xFFFF)
        return self

    def cmp(self, rn, rm):
        self._items.append(Instruction("cmp", rn=reg(rn), rm=reg(rm)))
        return self

    def cmpi(self, rn, imm):
        self._items.append(Instruction("cmpi", rn=reg(rn), imm=imm))
        return self

    def tst(self, rn, rm):
        self._items.append(Instruction("tst", rn=reg(rn), rm=reg(rm)))
        return self

    def ldr(self, rd, rn, offset: int = 0):
        return self._emit_rri("ldr", rd, rn, offset)

    def str_(self, rd, rn, offset: int = 0):
        return self._emit_rri("str", rd, rn, offset)

    def ldrr(self, rd, rn, rm):
        return self._emit3("ldrr", rd, rn, rm)

    def strr(self, rd, rn, rm):
        return self._emit3("strr", rd, rn, rm)

    def _branch(self, op: str, target: str) -> "Assembler":
        self._items.append((op, target))
        return self

    def b(self, target):
        return self._branch("b", target)

    def beq(self, target):
        return self._branch("beq", target)

    def bne(self, target):
        return self._branch("bne", target)

    def blt(self, target):
        return self._branch("blt", target)

    def bge(self, target):
        return self._branch("bge", target)

    def bgt(self, target):
        return self._branch("bgt", target)

    def ble(self, target):
        return self._branch("ble", target)

    def bcs(self, target):
        return self._branch("bcs", target)

    def bcc(self, target):
        return self._branch("bcc", target)

    def bl(self, target):
        return self._branch("bl", target)

    def bxlr(self):
        self._items.append(Instruction("bxlr"))
        return self

    def svc(self, number: int):
        self._items.append(Instruction("svc", imm=number))
        return self

    def udf(self):
        self._items.append(Instruction("udf"))
        return self

    def nop(self):
        self._items.append(Instruction("nop"))
        return self

    # -- assembly ---------------------------------------------------------------

    def instructions(self) -> List[Instruction]:
        """The instruction stream with branch labels resolved to offsets."""
        resolved: List[Instruction] = []
        for index, item in enumerate(self._items):
            if isinstance(item, Instruction):
                resolved.append(item)
                continue
            op, target = item
            if op not in BRANCH_OPS:
                raise AssemblerError(f"{op!r} is not a branch")
            if target not in self._labels:
                raise AssemblerError(f"undefined label {target!r}")
            # Branch semantics: next_pc = pc + (offset + 1) words.
            offset = self._labels[target] - index - 1
            resolved.append(Instruction(op, imm=offset))
        return resolved

    def assemble(self) -> List[int]:
        """Encode to 32-bit instruction words."""
        return [encode(instr) for instr in self.instructions()]

    def size_bytes(self) -> int:
        return len(self._items) * WORDSIZE
