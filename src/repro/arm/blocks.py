"""Basic-block compiler for the turbo execution tier.

The fast engine (``cpu.FastCPU``) removed page-table walks and decode
work from the hot loop but still pays one Python dispatch — closure
call, trace check, step/cycle bookkeeping, two ``try`` frames — per
instruction.  The turbo tier removes that too: straight-line runs of
instructions are discovered at their first execution and compiled into
a single Python function whose body chains the operand semantics of
every instruction in the run, with register values and NZCV flags held
in Python locals.  One call then retires the whole block.

Block discovery stops at any *unconditional* control transfer
(``b``/``bl``/``bxlr``), at ``svc`` (exception exit), before any op
that is undefined from user mode (``udf``/``smc``, left to the
single-step path so exception entry stays in one place), and at a page
boundary — the next word sits behind a different translation, which
must be re-checked.  Conditional branches do *not* end a block: they
compile into side exits (taken path returns to the dispatch loop, fall
through continues inside the block), so a loop body with early-outs
still dispatches as one superblock.

Cycle accuracy (DESIGN.md, "Turbo engine"): the generated code charges
``costs.instruction`` once per *retired* instruction via a running
counter flushed in a ``finally`` block, charges branch/memory costs at
the same program points as the reference interpreter, and appends the
same ``("fetch", pc)`` access-trace entries instruction by instruction.
If a load or store faults mid-block, the ``finally`` flush writes back
exactly the registers and flags of the instructions that completed —
straight-line locals hold precisely the architectural state as of the
last retired instruction — so an abort observes the same machine as
under single-step execution.

Invalidation reuses the fast engine's machinery:

* ``PhysicalMemory.generation`` — a compiled block caches the words it
  was built from; on a generation mismatch the words are re-read and
  compared, so self-modifying code rebuilds exactly where the
  reference engine would see new words.
* ``TLB.version`` — a store inside a block re-checks the version and
  the block's own physical span, and bails out to the dispatch loop if
  either changed (an architecturally invisible early exit: the loop
  refetches through the live page tables, faulting where the reference
  engine would).

The block cache lives in ``MachineState.uarch.bcache`` (never shared by
snapshots) and is bounded by ``BLOCK_CACHE_CAP`` with LRU eviction so
long fault campaigns cannot grow it without bound.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.arm.bits import asr, lsl, lsr, to_signed
from repro.arm.bits import ror as ror_word
from repro.arm.instructions import (
    BRANCH_OPS,
    CONDITIONAL_BRANCHES,
    FORMATS,
    Instruction,
    decode,
)
from repro.arm.memory import PAGE_SIZE, MemoryFault, PhysicalMemory, WORDSIZE
from repro.arm.modes import Mode, bank_for

_M = 0xFFFFFFFF
_USR_BANK = bank_for(Mode.USR)

#: Ops that end a basic block: control *unconditionally* leaves the
#: straight line.  Conditional branches compile into side exits instead.
TERMINATORS = frozenset({"b", "bl", "bxlr", "svc"})
#: Ops never compiled into a block: undefined from user mode, handled
#: by the single-step path so exception entry has one implementation.
EXCLUDED = frozenset({"udf", "smc"})

#: LRU bound on compiled blocks per machine (``uarch.bcache``).
BLOCK_CACHE_CAP = 2048

#: Conditional-branch predicates over the flag locals (same truth table
#: as cpu._CONDITIONS, restated over ``fn_``/``fz_``/``fc_``/``fv_``).
_COND_EXPR = {
    "beq": "fz_",
    "bne": "not fz_",
    "blt": "fn_ != fv_",
    "bge": "fn_ == fv_",
    "bgt": "not fz_ and fn_ == fv_",
    "ble": "fz_ or fn_ != fv_",
    "bcs": "fc_",
    "bcc": "not fc_",
}
assert set(_COND_EXPR) == set(CONDITIONAL_BRANCHES)

#: Globals visible to generated block bodies.
_CODEGEN_GLOBALS = {
    "_USRB": _USR_BANK,
    "_lsl": lsl,
    "_lsr": lsr,
    "_asr": asr,
    "_ror": ror_word,
    "_ts": to_signed,
}

_FLAG_SETTERS = frozenset({"cmp", "cmpi", "tst"})


# ---------------------------------------------------------------------------
# Discovery
# ---------------------------------------------------------------------------


def _read_line(memory: PhysicalMemory, paddr: int, count: int) -> List[int]:
    """Read up to ``count`` words at ``paddr``, truncating at the first
    unreadable word.

    Discovery reads ahead of execution, so it may touch words the
    program never reaches; ``EncryptedMemory`` raises on tampered words
    the reference engine would never read.  Truncating keeps those words
    out of the block — execution then reaches them (or not) through the
    single-step path, faulting exactly where the reference does.
    """
    try:
        return memory.read_words(paddr, count)
    except MemoryFault:
        words: List[int] = []
        for i in range(count):
            try:
                words.append(memory.read_word(paddr + i * WORDSIZE))
            except MemoryFault:
                break
        return words


def discover(
    memory: PhysicalMemory, paddr: int
) -> Tuple[List[Instruction], List[int]]:
    """Decode the basic block starting at physical address ``paddr``.

    Returns the decoded instructions and the words they came from
    (equal length).  The block ends at the first unconditional
    terminator (included), before the first undecodable/excluded word,
    or at the page boundary; conditional branches are included and
    decoding continues past them (they become side exits).
    """
    count = (PAGE_SIZE - (paddr & (PAGE_SIZE - 1))) // WORDSIZE
    raw = _read_line(memory, paddr, count)
    instrs: List[Instruction] = []
    words: List[int] = []
    for word in raw:
        instr = decode(word)
        if instr is None or instr.op in EXCLUDED:
            break
        instrs.append(instr)
        words.append(word)
        if instr.op in TERMINATORS:
            break
    return instrs, words


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------


def _operands(instr: Instruction) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """(registers read, registers written) by one instruction."""
    op = instr.op
    fmt = FORMATS[op][1]
    if fmt == "rrr":
        return (instr.rn, instr.rm), (instr.rd,)
    if fmt == "rri":
        return (instr.rn,), (instr.rd,)
    if fmt == "rr":
        return (instr.rm,), (instr.rd,)
    if fmt == "ri":
        if op == "movt":
            return (instr.rd,), (instr.rd,)
        return (), (instr.rd,)
    if fmt == "cmp_r":
        return (instr.rn, instr.rm), ()
    if fmt == "cmp_i":
        return (instr.rn,), ()
    if fmt == "mem_i":
        if op == "ldr":
            return (instr.rn,), (instr.rd,)
        return (instr.rn, instr.rd), ()
    if fmt == "mem_r":
        if op == "ldrr":
            return (instr.rn, instr.rm), (instr.rd,)
        return (instr.rn, instr.rm, instr.rd), ()
    if op == "bl":
        return (), (14,)
    if op == "bxlr":
        return (14,), ()
    return (), ()  # b, conditionals, svc, nop


def _alu_expr(instr: Instruction) -> str:
    """The rd-value expression for an ALU-class instruction, over the
    register locals.  Mirrors cpu._ALU_RRR/_ALU_RRI/_ALU_RR exactly."""
    op = instr.op
    a = f"r{instr.rn}_"
    b = f"r{instr.rm}_"
    imm = instr.imm
    if op == "add":
        return f"({a} + {b}) & 0xFFFFFFFF"
    if op == "sub":
        return f"({a} - {b}) & 0xFFFFFFFF"
    if op == "rsb":
        return f"({b} - {a}) & 0xFFFFFFFF"
    if op == "and":
        return f"{a} & {b}"
    if op == "orr":
        return f"{a} | {b}"
    if op == "eor":
        return f"{a} ^ {b}"
    if op == "bic":
        return f"{a} & ~{b} & 0xFFFFFFFF"
    if op == "mul":
        return f"({a} * {b}) & 0xFFFFFFFF"
    if op in ("lsl", "lsr", "asr", "ror"):
        return f"_{op}({a}, {b} & 0xFF)"
    if op == "addi":
        return f"({a} + {imm}) & 0xFFFFFFFF" if imm else a
    if op == "subi":
        return f"({a} - {imm}) & 0xFFFFFFFF" if imm else a
    if op == "lsli":
        if imm >= 32:
            return "0"
        return f"(({a} << {imm}) & 0xFFFFFFFF)" if imm else a
    if op == "lsri":
        if imm >= 32:
            return "0"
        return f"({a} >> {imm})" if imm else a
    if op == "asri":
        return f"_asr({a}, {imm})"
    if op == "mov":
        return b
    if op == "mvn":
        return f"~{b} & 0xFFFFFFFF"
    if op == "movw":
        return str(imm)
    if op == "movt":
        return f"(r{instr.rd}_ & 0xFFFF) | {imm << 16}"
    raise AssertionError(f"not an ALU op: {op}")  # pragma: no cover


_ALU_OPS = frozenset(
    op
    for op, (_, fmt) in FORMATS.items()
    if fmt in ("rrr", "rri", "rr", "ri")
)


def compile_block(instrs: List[Instruction], paddr: int) -> Callable:
    """Compile a decoded basic block into one Python function.

    The function has signature ``fn(cpu, pc) -> (next_pc, svc_or_None)``
    where ``pc`` is the virtual address of the block's first
    instruction.  It sets ``cpu._retired`` to the number of retired
    instructions and charges their ``costs.instruction`` cycles even
    when a memory op raises mid-block.
    """
    length = len(instrs)
    reads, writes = set(), set()
    for instr in instrs:
        r, w = _operands(instr)
        reads.update(r)
        writes.update(w)
    touched = reads | writes
    sets_flags = any(instr.op in _FLAG_SETTERS for instr in instrs)
    reads_flags = any(instr.op in CONDITIONAL_BRANCHES for instr in instrs)
    has_load = any(instr.op in ("ldr", "ldrr") for instr in instrs)
    has_store = any(instr.op in ("str", "strr") for instr in instrs)

    lines: List[str] = []
    emit = lines.append
    emit("def _block(cpu, pc):")
    emit("    state = cpu.state")
    emit("    regs = state.regs")
    if any(index < 13 for index in touched):
        emit("    gprs = regs.gprs")
    emit("    trace = cpu.access_trace")
    emit("    _costs = state.costs")
    emit("    n = 0")
    for index in sorted(touched):
        if index == 13:
            emit("    r13_ = regs.sp_bank[_USRB]")
        elif index == 14:
            emit("    r14_ = regs.lr_bank[_USRB]")
        else:
            emit(f"    r{index}_ = gprs[{index}]")
    if sets_flags or reads_flags:
        emit("    _psr = regs.cpsr")
        emit("    fn_ = _psr.n; fz_ = _psr.z; fc_ = _psr.c; fv_ = _psr.v")
    if has_load:
        emit("    load = cpu._load")
    if has_store:
        emit("    store = cpu._store")
        emit("    _tlb = state.tlb")
        emit("    _tv = _tlb.version")
    emit("    try:")

    span_lo, span_hi = paddr, paddr + length * WORDSIZE
    terminated = False
    for i, instr in enumerate(instrs):
        op = instr.op
        off = i * WORDSIZE
        fetch_pc = "pc" if i == 0 else f"pc + {off}"
        emit(f"        if trace is not None: trace.append(('fetch', {fetch_pc}))")
        if op in _ALU_OPS:
            emit(f"        r{instr.rd}_ = {_alu_expr(instr)}")
        elif op == "cmp" or op == "cmpi":
            a = f"r{instr.rn}_"
            b = f"r{instr.rm}_" if op == "cmp" else str(instr.imm)
            emit(f"        _r = ({a} - {b}) & 0xFFFFFFFF")
            emit("        fn_ = _r >= 0x80000000")
            emit("        fz_ = _r == 0")
            emit(f"        fc_ = {a} >= {b}")
            emit(f"        fv_ = (_ts({a}) - _ts({b})) != _ts(_r)")
        elif op == "tst":
            emit(f"        _r = r{instr.rn}_ & r{instr.rm}_")
            emit("        fn_ = _r >= 0x80000000")
            emit("        fz_ = _r == 0")
        elif op in ("ldr", "ldrr"):
            if op == "ldr":
                addr = (
                    f"(r{instr.rn}_ + {instr.imm}) & 0xFFFFFFFF"
                    if instr.imm
                    else f"r{instr.rn}_"
                )
            else:
                addr = f"(r{instr.rn}_ + r{instr.rm}_) & 0xFFFFFFFF"
            emit(f"        n = {i}")
            emit(f"        r{instr.rd}_ = load({addr})")
        elif op in ("str", "strr"):
            if op == "str":
                addr = (
                    f"(r{instr.rn}_ + {instr.imm}) & 0xFFFFFFFF"
                    if instr.imm
                    else f"r{instr.rn}_"
                )
            else:
                addr = f"(r{instr.rn}_ + r{instr.rm}_) & 0xFFFFFFFF"
            emit(f"        n = {i}")
            emit(f"        _sp = store({addr}, r{instr.rd}_)")
            emit(f"        n = {i + 1}")
            # The store may have rewritten the block's own remaining
            # words, or poisoned a translation the remaining fetches
            # depend on; bail to the dispatch loop, which refetches
            # through the live tables (an invisible early exit).
            emit(
                f"        if _tv != _tlb.version or"
                f" {span_lo} <= _sp < {span_hi}:"
            )
            emit(f"            return ((pc + {off + WORDSIZE}) & 0xFFFFFFFF, None)")
        elif op == "nop":
            pass
        elif op in ("b", "bl"):
            emit(f"        n = {length}")
            if op == "bl":
                emit(f"        r14_ = (pc + {off + WORDSIZE}) & 0xFFFFFFFF")
            emit("        state.cycles = state.cycles + _costs.branch")
            delta = off + (instr.imm + 1) * WORDSIZE
            emit(f"        return ((pc + {delta}) & 0xFFFFFFFF, None)")
            terminated = True
        elif op in CONDITIONAL_BRANCHES:
            # Side exit: taken returns to the dispatch loop, not taken
            # falls through to the rest of the block.
            delta = off + (instr.imm + 1) * WORDSIZE
            emit(f"        if {_COND_EXPR[op]}:")
            emit(f"            n = {i + 1}")
            emit("            state.cycles = state.cycles + _costs.branch")
            emit(f"            return ((pc + {delta}) & 0xFFFFFFFF, None)")
        elif op == "bxlr":
            emit(f"        n = {length}")
            emit("        state.cycles = state.cycles + _costs.branch")
            emit("        return (r14_, None)")
            terminated = True
        elif op == "svc":
            emit(f"        n = {length}")
            emit(f"        return ((pc + {off + WORDSIZE}) & 0xFFFFFFFF, {instr.imm})")
            terminated = True
        else:  # pragma: no cover - discovery admits only the ops above
            raise AssertionError(f"uncompilable op in block: {op}")
    if not terminated:
        # Page-boundary fall-through: continue at the next page's first
        # word through the dispatch loop (fresh translation check).
        emit(f"        n = {length}")
        emit(f"        return ((pc + {length * WORDSIZE}) & 0xFFFFFFFF, None)")

    emit("    finally:")
    emit("        cpu._retired = n")
    emit("        state.cycles = state.cycles + n * _costs.instruction")
    for index in sorted(writes):
        if index == 13:
            emit("        regs.sp_bank[_USRB] = r13_")
        elif index == 14:
            emit("        regs.lr_bank[_USRB] = r14_")
        else:
            emit(f"        gprs[{index}] = r{index}_")
    if sets_flags:
        emit("        _psr.n = fn_; _psr.z = fz_; _psr.c = fc_; _psr.v = fv_")

    source = "\n".join(lines)
    namespace = dict(_CODEGEN_GLOBALS)
    exec(compile(source, f"<block@{paddr:#x}>", "exec"), namespace)
    fn = namespace["_block"]
    fn.__source__ = source  # introspection hook for tests/debugging
    return fn


# ---------------------------------------------------------------------------
# The block cache
# ---------------------------------------------------------------------------

#: bcache entry layout: [generation, words, fn, length]
_GEN, _WORDS, _FN, _LEN = range(4)


def lookup(cpu, paddr: int) -> Optional[list]:
    """Find or build the compiled block at physical address ``paddr``.

    Entries are validated like the fast engine's decode cache: reused
    while ``memory.generation`` is unchanged; on a mismatch the source
    words are re-read and compared, so an unrelated store revalidates
    cheaply while self-modifying code recompiles.  Returns ``None``
    when no block starts here (first word undecodable or excluded).
    """
    state = cpu.state
    memory = state.memory
    bcache = state.uarch.bcache
    entry = bcache.get(paddr)
    if entry is not None:
        if entry[_GEN] != memory.generation:
            try:
                words = memory.read_words(paddr, entry[_LEN])
            except MemoryFault:
                words = None
            if words == entry[_WORDS]:
                entry[_GEN] = memory.generation
            else:
                del bcache[paddr]
                entry = None
        if entry is not None:
            # Recency is only tracked once the cache could plausibly
            # evict (at least half full): below that, eviction order is
            # irrelevant and the touch is pure per-dispatch overhead.
            if 2 * len(bcache) >= BLOCK_CACHE_CAP and next(reversed(bcache)) != paddr:
                bcache[paddr] = bcache.pop(paddr)  # LRU touch
            return entry
    instrs, words = discover(memory, paddr)
    if not instrs:
        return None
    fn = compile_block(instrs, paddr)
    if len(bcache) >= BLOCK_CACHE_CAP:
        del bcache[next(iter(bcache))]
    entry = [memory.generation, words, fn, len(instrs)]
    bcache[paddr] = entry
    return entry
