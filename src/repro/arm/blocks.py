"""Basic-block and region compiler for the turbo execution tier (v2).

The fast engine (``cpu.FastCPU``) removed page-table walks and decode
work from the hot loop but still pays one Python dispatch — closure
call, trace check, step/cycle bookkeeping, two ``try`` frames — per
instruction.  The turbo tier removes that too: straight-line runs of
instructions are discovered at their first execution and compiled into
a single Python function whose body chains the operand semantics of
every instruction in the run, with register values and NZCV flags held
in Python locals.  One call then retires many instructions.

Turbo v2 (DESIGN.md, "Turbo engine") adds four layers on top of the
original per-block compiler, all bit-identical to the reference engine:

* **Region compilation** — a compiled unit is no longer one basic
  block but the set of blocks inside one physical page reachable from
  the entry through *static* branch targets.  Intra-region control
  flow (loop back-edges, if/else diamonds, in-page calls) becomes a
  label hop inside one generated function — registers and flags stay
  in locals across it — and the dispatch loop is re-entered only at
  region exits (``bxlr``, ``svc``, cross-page branches) and at
  interrupt-window/step-budget boundaries.  Each hop first checks that
  the target leg fits the remaining budget (passed in as an argument),
  so asynchronous exceptions are delivered at exactly the block
  boundaries the per-block dispatcher would have used.

* **Block chaining** — the dispatch loop records, per region exit pc,
  which compiled region ran next, and follows those links directly on
  later dispatches (``cpu.TurboCPU.run``).  Links are validated
  against ``TLB.version`` (the virtual target must still map the same
  physical code) and ``UArchState.chain_gen`` (no store can have
  rewritten any compiled region's words) — see ``link``/``unlink``.

* **Inline memory fast paths** — when the machine's memory is exactly
  ``PhysicalMemory`` (never ``EncryptedMemory``, whose per-word
  keystream and tags must not be bypassed), loads and stores hit the
  flat word store directly through the micro-TLB, falling back to the
  engine's ``_load``/``_store`` helpers for misses, faults, and
  unmapped physical targets.  Read/write transaction counts, cycle
  charges, and ``memory.generation`` bumps are accumulated in locals
  and flushed in the ``finally`` block — they are observable only
  between runs, so deferral is invisible.

* **Untraced/traced variants** — regions compiled for a CPU without an
  ``access_trace`` omit trace bookkeeping entirely; attaching a trace
  selects (and lazily compiles) a traced variant of the same region
  that appends the same ``fetch``/``load``/``store`` entries as the
  reference engine, instruction by instruction.

Block discovery is unchanged from v1: a block stops at any
*unconditional* control transfer (``b``/``bl``/``bxlr``), at ``svc``
(exception exit), before any op that is undefined from user mode
(``udf``/``smc``), and at a page boundary.  Conditional branches
compile into side exits (or intra-region hops).

Why regions never outrun the page tables: every instruction of a
region lies in the entry's physical page, and a pc's offset within its
virtual page always equals its offset within the translated physical
page, so an intra-region hop stays under the *same* translation the
dispatcher validated at region entry.  Translations can only change
via a store into the live page-table footprint, and every such store
bails out of the region at once (the ``TLB.version`` re-check below).

Cycle accuracy: the generated code charges ``costs.instruction`` once
per *retired* instruction and branch/memory costs at the same program
points as the reference interpreter, all flushed in the ``finally``
block.  If a load or store faults mid-region, the flush writes back
exactly the registers and flags of the instructions that completed,
and ``cpu._fault_off`` holds the faulting instruction's word offset
from the entry pc so the abort return address matches single-step
execution.

Invalidation reuses the fast engine's machinery:

* ``PhysicalMemory.generation`` — a compiled region caches the words
  it was built from; on a generation mismatch the words are re-read
  and compared, so self-modifying code rebuilds exactly where the
  reference engine would see new words.
* ``TLB.version`` — a store inside a region re-checks the version and
  the region's own physical page, and bails out to the dispatch loop
  if either may be stale (an architecturally invisible early exit: the
  loop refetches through the live page tables, faulting where the
  reference engine would).

The block cache lives in ``MachineState.uarch.bcache`` (never shared by
snapshots) and is bounded by ``BLOCK_CACHE_CAP`` with LRU eviction;
eviction and invalidation tear down every chain link into and out of
the dead entry (``unlink``) so no dangling chain can resurrect it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.arm.bits import asr, lsl, lsr
from repro.arm.instructions import (
    BRANCH_OPS,
    CONDITIONAL_BRANCHES,
    FORMATS,
    Instruction,
    decode,
)
from repro.arm.memory import PAGE_SIZE, MemoryFault, PhysicalMemory, WORDSIZE
from repro.arm.modes import Mode, bank_for

_M = 0xFFFFFFFF
_USR_BANK = bank_for(Mode.USR)

#: Ops that end a basic block: control *unconditionally* leaves the
#: straight line.  Conditional branches compile into side exits instead.
TERMINATORS = frozenset({"b", "bl", "bxlr", "svc"})
#: Ops never compiled into a block: undefined from user mode, handled
#: by the single-step path so exception entry has one implementation.
EXCLUDED = frozenset({"udf", "smc"})

#: LRU bound on compiled regions per machine (``uarch.bcache``).
BLOCK_CACHE_CAP = 2048

#: Bound on basic blocks merged into one compiled region (a page can
#: hold more only with heavily overlapping decode starts).
REGION_BLOCK_CAP = 48

#: Bound on outgoing chain links per region (megamorphic exits — e.g.
#: a ``bxlr`` returning to many call sites — stop chaining past this).
CHAIN_CAP = 8
#: Bound on recorded back-links per region; a link is only created
#: while its teardown bookkeeping has room, so ``unlink`` is complete.
BACKLINK_CAP = 32

#: Conditional-branch predicates over the flag locals (same truth table
#: as cpu._CONDITIONS, restated over ``fn_``/``fz_``/``fc_``/``fv_``).
_COND_EXPR = {
    "beq": "fz_",
    "bne": "not fz_",
    "blt": "fn_ != fv_",
    "bge": "fn_ == fv_",
    "bgt": "not fz_ and fn_ == fv_",
    "ble": "fz_ or fn_ != fv_",
    "bcs": "fc_",
    "bcc": "not fc_",
}
assert set(_COND_EXPR) == set(CONDITIONAL_BRANCHES)

#: Globals visible to generated region bodies.
_CODEGEN_GLOBALS = {
    "_USRB": _USR_BANK,
    "_lsl": lsl,
    "_lsr": lsr,
    "_asr": asr,
}

_FLAG_SETTERS = frozenset({"cmp", "cmpi", "tst"})


# ---------------------------------------------------------------------------
# Discovery
# ---------------------------------------------------------------------------


def _read_line(memory: PhysicalMemory, paddr: int, count: int) -> List[int]:
    """Read up to ``count`` words at ``paddr``, truncating at the first
    unreadable word.

    Discovery reads ahead of execution, so it may touch words the
    program never reaches; ``EncryptedMemory`` raises on tampered words
    the reference engine would never read.  Truncating keeps those words
    out of the block — execution then reaches them (or not) through the
    single-step path, faulting exactly where the reference does.
    """
    try:
        return memory.read_words(paddr, count)
    except MemoryFault:
        words: List[int] = []
        for i in range(count):
            try:
                words.append(memory.read_word(paddr + i * WORDSIZE))
            except MemoryFault:
                break
        return words


def discover(
    memory: PhysicalMemory, paddr: int
) -> Tuple[List[Instruction], List[int]]:
    """Decode the basic block starting at physical address ``paddr``.

    Returns the decoded instructions and the words they came from
    (equal length).  The block ends at the first unconditional
    terminator (included), before the first undecodable/excluded word,
    or at the page boundary; conditional branches are included and
    decoding continues past them (they become side exits).
    """
    count = (PAGE_SIZE - (paddr & (PAGE_SIZE - 1))) // WORDSIZE
    raw = _read_line(memory, paddr, count)
    instrs: List[Instruction] = []
    words: List[int] = []
    for word in raw:
        instr = decode(word)
        if instr is None or instr.op in EXCLUDED:
            break
        instrs.append(instr)
        words.append(word)
        if instr.op in TERMINATORS:
            break
    return instrs, words


def _branch_woff(woff: int, index: int, instr: Instruction) -> int:
    """Branch target's word offset from the region entry, for a branch
    at instruction ``index`` of the member block at word offset
    ``woff`` (both relative to the region's entry address)."""
    return woff + index + instr.imm + 1


def discover_region(
    memory: PhysicalMemory, paddr: int
) -> Tuple[List[Tuple[int, List[Instruction]]], List[int], int]:
    """Discover the compilation region entered at ``paddr``.

    Returns ``(members, words, woff)``: the member blocks as ``(word
    offset from paddr, instructions)`` pairs with the entry block
    first, the contiguous word span covering every member (for
    generation revalidation), and that span's starting word offset
    from ``paddr`` (non-positive; in-page backward branches pull the
    span backwards).

    Members are found by following static branch targets (``b``,
    ``bl``, conditionals) that stay inside the entry's page — the one
    page whose translation is pinned for the whole region (see module
    docstring).  Targets outside the page, to undecodable words, or
    past ``REGION_BLOCK_CAP`` become region exits handled by the
    dispatch loop.  For any memory type other than plain
    ``PhysicalMemory`` the region is the entry block alone: the
    revalidation span may cover words between blocks that an
    ``EncryptedMemory`` would refuse to read.
    """
    page_off = paddr & (PAGE_SIZE - 1)
    expand = type(memory) is PhysicalMemory
    members: Dict[int, List[Instruction]] = {}
    member_words: Dict[int, List[int]] = {}
    order: List[int] = []
    queue = [0]
    while queue and len(order) < REGION_BLOCK_CAP:
        woff = queue.pop(0)
        if woff in members:
            continue
        instrs, words = discover(memory, paddr + woff * WORDSIZE)
        if not instrs:
            continue
        members[woff] = instrs
        member_words[woff] = words
        order.append(woff)
        if not expand:
            break
        for i, instr in enumerate(instrs):
            if instr.op in BRANCH_OPS:
                target = _branch_woff(woff, i, instr)
                byte_off = page_off + target * WORDSIZE
                if 0 <= byte_off < PAGE_SIZE and target not in members:
                    queue.append(target)
    if not order:
        return [], [], 0
    region = [(woff, members[woff]) for woff in order]
    lo = min(members)
    hi = max(woff + len(instrs) for woff, instrs in members.items())
    if len(order) == 1 and lo == 0:
        words = member_words[0]
    else:
        words = memory.read_words(paddr + lo * WORDSIZE, hi - lo)
    return region, words, lo


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------


def _operands(instr: Instruction) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """(registers read, registers written) by one instruction."""
    op = instr.op
    fmt = FORMATS[op][1]
    if fmt == "rrr":
        return (instr.rn, instr.rm), (instr.rd,)
    if fmt == "rri":
        return (instr.rn,), (instr.rd,)
    if fmt == "rr":
        return (instr.rm,), (instr.rd,)
    if fmt == "ri":
        if op == "movt":
            return (instr.rd,), (instr.rd,)
        return (), (instr.rd,)
    if fmt == "cmp_r":
        return (instr.rn, instr.rm), ()
    if fmt == "cmp_i":
        return (instr.rn,), ()
    if fmt == "mem_i":
        if op == "ldr":
            return (instr.rn,), (instr.rd,)
        return (instr.rn, instr.rd), ()
    if fmt == "mem_r":
        if op == "ldrr":
            return (instr.rn, instr.rm), (instr.rd,)
        return (instr.rn, instr.rm, instr.rd), ()
    if op == "bl":
        return (), (14,)
    if op == "bxlr":
        return (14,), ()
    return (), ()  # b, conditionals, svc, nop


def _alu_expr(instr: Instruction) -> str:
    """The rd-value expression for an ALU-class instruction, over the
    register locals.  Mirrors cpu._ALU_RRR/_ALU_RRI/_ALU_RR exactly."""
    op = instr.op
    a = f"r{instr.rn}_"
    b = f"r{instr.rm}_"
    imm = instr.imm
    if op == "add":
        return f"({a} + {b}) & 0xFFFFFFFF"
    if op == "sub":
        return f"({a} - {b}) & 0xFFFFFFFF"
    if op == "rsb":
        return f"({b} - {a}) & 0xFFFFFFFF"
    if op == "and":
        return f"{a} & {b}"
    if op == "orr":
        return f"{a} | {b}"
    if op == "eor":
        return f"{a} ^ {b}"
    if op == "bic":
        return f"{a} & ~{b} & 0xFFFFFFFF"
    if op == "mul":
        return f"({a} * {b}) & 0xFFFFFFFF"
    if op in ("lsl", "lsr", "asr"):
        return f"_{op}({a}, {b} & 0xFF)"
    if op == "addi":
        return f"({a} + {imm}) & 0xFFFFFFFF" if imm else a
    if op == "subi":
        return f"({a} - {imm}) & 0xFFFFFFFF" if imm else a
    if op == "lsli":
        if imm >= 32:
            return "0"
        return f"(({a} << {imm}) & 0xFFFFFFFF)" if imm else a
    if op == "lsri":
        if imm >= 32:
            return "0"
        return f"({a} >> {imm})" if imm else a
    if op == "asri":
        return f"_asr({a}, {imm})"
    if op == "mov":
        return b
    if op == "mvn":
        return f"~{b} & 0xFFFFFFFF"
    if op == "movw":
        return str(imm)
    if op == "movt":
        return f"(r{instr.rd}_ & 0xFFFF) | {imm << 16}"
    raise AssertionError(f"not an ALU op: {op}")  # pragma: no cover


_ALU_OPS = frozenset(
    op
    for op, (_, fmt) in FORMATS.items()
    if fmt in ("rrr", "rri", "rr", "ri") and op != "ror"
)


def _mem_addr(instr: Instruction) -> str:
    """Effective-address expression for a load/store."""
    if instr.op in ("ldr", "str"):
        if instr.imm:
            return f"(r{instr.rn}_ + {instr.imm}) & 0xFFFFFFFF"
        return f"r{instr.rn}_"
    return f"(r{instr.rn}_ + r{instr.rm}_) & 0xFFFFFFFF"


def compile_region(
    region: List[Tuple[int, List[Instruction]]],
    paddr: int,
    traced: bool = False,
    mem: Optional[PhysicalMemory] = None,
) -> Callable:
    """Compile a discovered region into one Python function.

    The function has signature ``fn(cpu, pc, budget) -> (next_pc,
    svc_or_None)`` where ``pc`` is the virtual address of the region's
    entry and ``budget`` is the number of instructions the caller
    allows before the next asynchronous-exception boundary (the caller
    guarantees the *entry block* fits; every intra-region hop re-checks
    its own target against what remains).  It sets ``cpu._retired`` to
    the total number of retired instructions, ``cpu._fault_off`` to the
    faulting instruction's word offset from ``pc`` (for the abort
    return address), and charges cycles/ops in a ``finally`` flush even
    when a memory op raises mid-region.

    ``traced`` selects the variant that appends access-trace entries;
    ``mem`` enables the inline memory fast path and must be the
    machine's memory *only* when it is exactly ``PhysicalMemory``
    (an ``EncryptedMemory`` word must never bypass its engine).
    """
    labels = {woff: idx for idx, (woff, _) in enumerate(region)}
    lengths = {woff: len(instrs) for woff, instrs in region}
    page_off = paddr & (PAGE_SIZE - 1)
    ppage = paddr >> 12

    def hop_target(woff: int, i: int, instr: Instruction) -> Optional[int]:
        """The member word-offset a static branch lands on, if any."""
        target = _branch_woff(woff, i, instr)
        byte_off = page_off + target * WORDSIZE
        if 0 <= byte_off < PAGE_SIZE and target in labels:
            return target
        return None

    all_instrs = [instr for _, instrs in region for instr in instrs]
    reads, writes = set(), set()
    for instr in all_instrs:
        r, w = _operands(instr)
        reads.update(r)
        writes.update(w)
    touched = reads | writes
    sets_flags = any(instr.op in _FLAG_SETTERS for instr in all_instrs)
    reads_flags = any(instr.op in CONDITIONAL_BRANCHES for instr in all_instrs)
    has_load = any(instr.op in ("ldr", "ldrr") for instr in all_instrs)
    has_store = any(instr.op in ("str", "strr") for instr in all_instrs)
    has_branch = any(
        instr.op in BRANCH_OPS or instr.op == "bxlr" for instr in all_instrs
    )
    inline = mem is not None and (has_load or has_store)
    has_hops = any(
        instr.op in BRANCH_OPS and hop_target(woff, i, instr) is not None
        for woff, instrs in region
        for i, instr in enumerate(instrs)
    )
    multi = len(region) > 1

    lines: List[str] = []
    emit = lines.append
    emit("def _block(cpu, pc, budget):")
    emit("    state = cpu.state")
    emit("    regs = state.regs")
    if any(index < 13 for index in touched):
        emit("    gprs = regs.gprs")
    if traced:
        emit("    trace = cpu.access_trace")
    emit("    _c = state.costs")
    emit("    _ci = _c.instruction")
    if has_branch:
        emit("    _cb = _c.branch")
    if inline:
        emit("    _cm = _c.mem_access")
    for index in sorted(touched):
        if index == 13:
            emit("    r13_ = regs.sp_bank[_USRB]")
        elif index == 14:
            emit("    r14_ = regs.lr_bank[_USRB]")
        else:
            emit(f"    r{index}_ = gprs[{index}]")
    if sets_flags or reads_flags:
        emit("    _psr = regs.cpsr")
        emit("    fn_ = _psr.n; fz_ = _psr.z; fc_ = _psr.c; fv_ = _psr.v")
    if has_load or has_store:
        emit("    _tlb = state.tlb")
    if inline:
        emit("    _uarch = state.uarch")
        emit("    if _uarch.utlb_version != _tlb.version:")
        emit("        _uarch.utlb = {}")
        emit("        _uarch.utlb_version = _tlb.version")
        emit("    _utlb = _uarch.utlb")
    if has_load:
        emit("    load = cpu._load")
        if inline:
            emit("    nr = 0")
    if has_store:
        emit("    store = cpu._store")
        emit("    _tv = _tlb.version")
        if inline:
            emit("    gw = 0")
            emit("    _tp = _tlb._table_pages")
            emit("    _cpg = _uarch.code_pages")
    if has_branch:
        emit("    nb = 0")
    emit("    done = 0")
    emit("    n = 0")
    if multi and (has_load or has_store):
        emit("    fo = 0")
    if multi:
        emit("    L = 0")
    emit("    try:")
    if has_hops:
        emit("        while True:")
        emit("            n = 0")
        body_indent = "            "
    else:
        body_indent = "        "

    def emit_leg(woff: int, instrs: List[Instruction], label: int, B: str) -> None:
        length = len(instrs)
        terminated = False
        for i, instr in enumerate(instrs):
            op = instr.op
            byte = (woff + i) * WORDSIZE
            if traced:
                fetch_pc = "pc" if byte == 0 else f"pc + {byte}"
                emit(f"{B}trace.append(('fetch', {fetch_pc}))")
            if op == "ror":
                emit(f"{B}_t = r{instr.rm}_ & 31")
                emit(
                    f"{B}r{instr.rd}_ = "
                    f"(r{instr.rn}_ >> _t | r{instr.rn}_ << 32 - _t) & 0xFFFFFFFF"
                )
            elif op in _ALU_OPS:
                emit(f"{B}r{instr.rd}_ = {_alu_expr(instr)}")
            elif op == "cmp" or op == "cmpi":
                a = f"r{instr.rn}_"
                b = f"r{instr.rm}_" if op == "cmp" else str(instr.imm)
                emit(f"{B}_r = ({a} - {b}) & 0xFFFFFFFF")
                emit(f"{B}fn_ = _r >= 0x80000000")
                emit(f"{B}fz_ = _r == 0")
                emit(f"{B}fc_ = {a} >= {b}")
                # Signed-overflow of a - b, restated bitwise (identical
                # to the reference's to_signed comparison for words).
                emit(f"{B}fv_ = (({a} ^ {b}) & ({a} ^ _r)) >= 0x80000000")
            elif op == "tst":
                emit(f"{B}_r = r{instr.rn}_ & r{instr.rm}_")
                emit(f"{B}fn_ = _r >= 0x80000000")
                emit(f"{B}fz_ = _r == 0")
            elif op in ("ldr", "ldrr"):
                emit(f"{B}n = {i}")
                if multi:
                    emit(f"{B}fo = {woff + i}")
                if not inline:
                    emit(f"{B}r{instr.rd}_ = load({_mem_addr(instr)})")
                else:
                    emit(f"{B}a_ = {_mem_addr(instr)}")
                    emit(f"{B}t_ = _utlb.get(a_ >> 12)")
                    emit(f"{B}if t_ is None or not t_.readable or a_ & 3:")
                    emit(f"{B}    r{instr.rd}_ = load(a_)")
                    emit(f"{B}else:")
                    emit(f"{B}    _o = (t_.phys_base | a_ & 0xFFF) - _mb")
                    emit(f"{B}    if 0 <= _o < _ms:")
                    if traced:
                        emit(f"{B}        trace.append(('load', a_))")
                    emit(f"{B}        r{instr.rd}_ = _mw[_o >> 2]")
                    emit(f"{B}        nr += 1")
                    emit(f"{B}    else:")
                    emit(f"{B}        r{instr.rd}_ = load(a_)")
            elif op in ("str", "strr"):
                emit(f"{B}n = {i}")
                if multi:
                    emit(f"{B}fo = {woff + i}")
                if not inline:
                    emit(f"{B}_sp = store({_mem_addr(instr)}, r{instr.rd}_)")
                else:
                    emit(f"{B}a_ = {_mem_addr(instr)}")
                    emit(f"{B}t_ = _utlb.get(a_ >> 12)")
                    emit(f"{B}if t_ is None or not t_.writable or a_ & 3:")
                    emit(f"{B}    _sp = store(a_, r{instr.rd}_)")
                    emit(f"{B}else:")
                    emit(f"{B}    _sp = t_.phys_base | a_ & 0xFFF")
                    emit(f"{B}    _o = _sp - _mb")
                    emit(f"{B}    if 0 <= _o < _ms:")
                    if traced:
                        emit(f"{B}        trace.append(('store', a_))")
                    emit(f"{B}        _mw[_o >> 2] = r{instr.rd}_")
                    emit(f"{B}        _md.add(_o >> 12)")
                    emit(f"{B}        gw += 1")
                    emit(f"{B}        if _sp >> 12 in _cpg:")
                    emit(f"{B}            _uarch.chain_gen += 1")
                    emit(f"{B}        if _sp & 0xFFFFF000 in _tp:")
                    emit(f"{B}            _tlb.note_store(_sp)")
                    emit(f"{B}    else:")
                    emit(f"{B}        _sp = store(a_, r{instr.rd}_)")
                emit(f"{B}n = {i + 1}")
                # The store may have rewritten the region's own page or
                # poisoned a translation the remaining fetches depend
                # on; bail to the dispatch loop, which refetches through
                # the live tables (an invisible early exit).
                emit(
                    f"{B}if _tv != _tlb.version or _sp >> 12 == {ppage}:"
                )
                emit(
                    f"{B}    return ((pc + {byte + WORDSIZE}) & 0xFFFFFFFF, None)"
                )
            elif op == "nop":
                pass
            elif op in ("b", "bl"):
                if op == "bl":
                    emit(f"{B}r14_ = (pc + {byte + WORDSIZE}) & 0xFFFFFFFF")
                emit(f"{B}nb += 1")
                target = hop_target(woff, i, instr)
                if target is not None:
                    emit(f"{B}done += {length}")
                    emit(f"{B}n = 0")
                    emit(f"{B}if budget - done >= {lengths[target]}:")
                    if labels[target] != label:
                        emit(f"{B}    L = {labels[target]}")
                    emit(f"{B}    continue")
                    emit(
                        f"{B}return ((pc + {(target - woff) * WORDSIZE + woff * WORDSIZE})"
                        " & 0xFFFFFFFF, None)"
                    )
                else:
                    delta = _branch_woff(woff, i, instr) * WORDSIZE
                    emit(f"{B}n = {length}")
                    emit(f"{B}return ((pc + {delta}) & 0xFFFFFFFF, None)")
                terminated = True
            elif op in CONDITIONAL_BRANCHES:
                # Side exit: taken hops inside the region or returns to
                # the dispatch loop; not taken falls through.
                emit(f"{B}if {_COND_EXPR[op]}:")
                emit(f"{B}    nb += 1")
                target = hop_target(woff, i, instr)
                if target is not None:
                    emit(f"{B}    done += {i + 1}")
                    emit(f"{B}    n = 0")
                    emit(f"{B}    if budget - done >= {lengths[target]}:")
                    if labels[target] != label:
                        emit(f"{B}        L = {labels[target]}")
                    emit(f"{B}        continue")
                    emit(
                        f"{B}    return ((pc + {target * WORDSIZE}) & 0xFFFFFFFF, None)"
                    )
                else:
                    delta = _branch_woff(woff, i, instr) * WORDSIZE
                    emit(f"{B}    n = {i + 1}")
                    emit(f"{B}    return ((pc + {delta}) & 0xFFFFFFFF, None)")
            elif op == "bxlr":
                emit(f"{B}n = {length}")
                emit(f"{B}nb += 1")
                emit(f"{B}return (r14_, None)")
                terminated = True
            elif op == "svc":
                emit(f"{B}n = {length}")
                emit(
                    f"{B}return ((pc + {byte + WORDSIZE}) & 0xFFFFFFFF, {instr.imm})"
                )
                terminated = True
            else:  # pragma: no cover - discovery admits only these ops
                raise AssertionError(f"uncompilable op in block: {op}")
        if not terminated:
            # Page-boundary fall-through: continue at the next page's
            # first word through the dispatch loop (fresh translation).
            emit(f"{B}n = {length}")
            emit(
                f"{B}return ((pc + {(woff + length) * WORDSIZE}) & 0xFFFFFFFF, None)"
            )

    if not multi:
        woff, instrs = region[0]
        emit_leg(woff, instrs, 0, body_indent)
    else:
        for idx, (woff, instrs) in enumerate(region):
            kw = "if" if idx == 0 else "elif"
            emit(f"{body_indent}{kw} L == {idx}:")
            emit_leg(woff, instrs, idx, body_indent + "    ")

    emit("    finally:")
    emit("        cpu._retired = done + n")
    if multi and (has_load or has_store):
        emit("        cpu._fault_off = fo")
    else:
        emit("        cpu._fault_off = n")
    cycle_terms = "(done + n) * _ci"
    if has_branch:
        cycle_terms += " + nb * _cb"
    if inline:
        if has_load and has_store:
            cycle_terms += " + (nr + gw) * _cm"
        elif has_load:
            cycle_terms += " + nr * _cm"
        else:
            cycle_terms += " + gw * _cm"
    emit(f"        state.cycles = state.cycles + {cycle_terms}")
    if inline and has_load:
        emit("        _mem.read_ops = _mem.read_ops + nr")
    if inline and has_store:
        emit("        if gw:")
        emit("            _mem.generation = _mem.generation + gw")
        emit("            _mem.write_ops = _mem.write_ops + gw")
    for index in sorted(writes):
        if index == 13:
            emit("        regs.sp_bank[_USRB] = r13_")
        elif index == 14:
            emit("        regs.lr_bank[_USRB] = r14_")
        else:
            emit(f"        gprs[{index}] = r{index}_")
    if sets_flags:
        emit("        _psr.n = fn_; _psr.z = fz_; _psr.c = fc_; _psr.v = fv_")

    source = "\n".join(lines)
    namespace = dict(_CODEGEN_GLOBALS)
    if inline:
        # Bake the memory geometry in: the store view, base, size, and
        # dirty-page set are fixed object identities for a machine's
        # lifetime (snapshots restore in place — the dirty set is only
        # ever cleared, never rebound; copies get their own uarch and
        # recompile).
        namespace["_mem"] = mem
        namespace["_mw"] = mem._store
        namespace["_mb"] = mem._base
        namespace["_ms"] = mem._size
        namespace["_md"] = mem._dirty
    exec(compile(source, f"<block@{paddr:#x}>", "exec"), namespace)
    fn = namespace["_block"]
    fn.__source__ = source  # introspection hook for tests/debugging
    return fn


def compile_block(
    instrs: List[Instruction],
    paddr: int,
    traced: bool = False,
    mem: Optional[PhysicalMemory] = None,
) -> Callable:
    """Compile a single basic block (a one-member region)."""
    return compile_region([(0, instrs)], paddr, traced=traced, mem=mem)


# ---------------------------------------------------------------------------
# The block cache
# ---------------------------------------------------------------------------

#: bcache entry layout.  Slots 0-3 are the v1 layout (validation
#: generation, source words, untraced function, entry-block instruction
#: count — the budget the dispatcher must guarantee); v2 appends the
#: chain-link dict (exit pc -> [successor entry, TLB.version stamp,
#: chain_gen stamp]), the back-link list (pairs of (predecessor entry,
#: exit pc), for teardown), the lazily compiled traced variant, and the
#: word offset of the validation span relative to the entry address.
_GEN, _WORDS, _FN, _LEN, _CHAIN, _INL, _FNT, _WOFF = range(8)


def _inline_mem(cpu) -> Optional[PhysicalMemory]:
    """The memory object iff the inline fast path is allowed for it."""
    memory = cpu.state.memory
    return memory if type(memory) is PhysicalMemory else None


def link(pred: list, key: int, succ: list, tv: int, chain_gen: int) -> None:
    """Record (or re-stamp) the chain link ``pred --key--> succ``.

    ``key`` is the exit pc ``pred`` produced; ``tv``/``chain_gen`` are
    the stamps under which the link was observed valid (the target
    translation and every compiled region's words are unchanged while
    both still match).  Links are only created while the chain and
    back-link tables have room, so ``unlink`` can always find them.
    """
    chain = pred[_CHAIN]
    old = chain.get(key)
    if old is not None:
        if old[0] is succ:
            old[1] = tv
            old[2] = chain_gen
            return
        inl = old[0][_INL]
        inl[:] = [bl for bl in inl if bl[0] is not pred or bl[1] != key]
        del chain[key]
    if len(chain) >= CHAIN_CAP or len(succ[_INL]) >= BACKLINK_CAP:
        return
    chain[key] = [succ, tv, chain_gen]
    succ[_INL].append((pred, key))


def unlink(entry: list) -> None:
    """Tear down every chain link into and out of ``entry``.

    Called when an entry leaves the cache (LRU eviction or
    invalidation by changed words) so no predecessor's chain can
    dispatch a dead region and no back-link keeps it alive.
    """
    for pred, key in entry[_INL]:
        stale = pred[_CHAIN].get(key)
        if stale is not None and stale[0] is entry:
            del pred[_CHAIN][key]
    entry[_INL].clear()
    for key, out in entry[_CHAIN].items():
        inl = out[0][_INL]
        if inl:
            inl[:] = [bl for bl in inl if bl[0] is not entry]
    entry[_CHAIN].clear()


def _compile_traced(cpu, paddr: int) -> Callable:
    """Lazily build the traced variant of a just-validated entry.

    The entry was (re)validated against the current generation, so
    re-discovery sees exactly the words it was compiled from.
    """
    region, _, _ = discover_region(cpu.state.memory, paddr)
    return compile_region(region, paddr, traced=True, mem=_inline_mem(cpu))


def lookup(cpu, paddr: int, traced: bool = False) -> Optional[list]:
    """Find or build the compiled region entered at ``paddr``.

    Entries are validated like the fast engine's decode cache: reused
    while ``memory.generation`` is unchanged; on a mismatch the source
    words are re-read and compared, so an unrelated store revalidates
    cheaply while self-modifying code recompiles.  Returns ``None``
    when no block starts here (first word undecodable or excluded).
    ``traced`` additionally ensures the traced variant is compiled.
    """
    state = cpu.state
    memory = state.memory
    uarch = state.uarch
    bcache = uarch.bcache
    entry = bcache.get(paddr)
    if entry is not None:
        if entry[_GEN] != memory.generation:
            try:
                words = memory.read_words(
                    paddr + entry[_WOFF] * WORDSIZE, len(entry[_WORDS])
                )
            except MemoryFault:
                words = None
            if words == entry[_WORDS]:
                entry[_GEN] = memory.generation
            else:
                unlink(entry)
                del bcache[paddr]
                entry = None
        if entry is not None:
            # Recency is only tracked once the cache could plausibly
            # evict (at least half full): below that, eviction order is
            # irrelevant and the touch is pure per-dispatch overhead.
            if 2 * len(bcache) >= BLOCK_CACHE_CAP and next(reversed(bcache)) != paddr:
                bcache[paddr] = bcache.pop(paddr)  # LRU touch
            if traced and entry[_FNT] is None:
                entry[_FNT] = _compile_traced(cpu, paddr)
            return entry
    region, words, woff = discover_region(memory, paddr)
    if not region:
        return None
    mem = _inline_mem(cpu)
    fn = compile_region(region, paddr, mem=mem)
    fnt = compile_region(region, paddr, traced=True, mem=mem) if traced else None
    if len(bcache) >= BLOCK_CACHE_CAP:
        unlink(bcache.pop(next(iter(bcache))))
    entry = [memory.generation, words, fn, len(region[0][1]), {}, [], fnt, woff]
    bcache[paddr] = entry
    uarch.code_pages.add(paddr >> 12)
    return entry
