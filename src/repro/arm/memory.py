"""Physical memory and the platform memory map (paper Figure 4).

The model follows the paper's memory-model decisions (section 5.1):
memory is a mapping from word-aligned physical addresses to 32-bit
values, and only aligned word accesses exist, so accesses to distinct
addresses are independent.

The platform map mirrors the prototype's bootloader-established layout:
a monitor image region (code and globals), a monitor stack, a region of
*secure pages* reserved for enclaves and protected by hardware from
normal-world access, and the remaining RAM as *insecure* memory fully
accessible to the OS.

Storage is a flat ``bytearray`` covering the whole RAM range (the
regions tile one contiguous span by construction) viewed through a
``memoryview`` cast to native 32-bit words, so word access is an index
operation and the bulk page helpers — zero, copy, burst read/write,
and the zero-copy ``view_words`` window — are single slice operations.
``generation`` counts every mutation; the fast-path execution engine
uses it to invalidate its decoded-instruction cache (see DESIGN.md,
"Fast-path engine").  ``read_ops`` and ``write_ops`` count read/write
*transactions* — a bulk ``read_words`` or ``zero_page`` is one burst —
which the page-table walker's regression tests use to pin its access
complexity and the turbo engine's tests use to pin the inline
memory-path accounting.
"""

from __future__ import annotations

from array import array
from copy import deepcopy as _deepcopy
from typing import Dict, Iterable, List

from repro.arm.bits import WORDSIZE, word_aligned
from repro.arm.modes import World

PAGE_SIZE = 0x1000
WORDS_PER_PAGE = PAGE_SIZE // WORDSIZE

#: Typecode of a 32-bit unsigned array element on this platform.
_TYPECODE = next(tc for tc in ("I", "L") if array(tc).itemsize == 4)


class MemoryFault(Exception):
    """Raised on an access the hardware would fault: unmapped address,
    misaligned word access, or a world-protection violation."""

    def __init__(self, address: int, reason: str):
        super().__init__(f"memory fault at {address:#010x}: {reason}")
        self.address = address
        self.reason = reason


class Region:
    """A contiguous physical region ``[base, base+size)``."""

    __slots__ = ("name", "base", "size", "limit")

    def __init__(self, name: str, base: int, size: int):
        self.name = name
        self.base = base
        self.size = size
        self.limit = base + size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.limit

    def overlaps(self, other: "Region") -> bool:
        return self.base < other.limit and other.base < self.limit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Region({self.name!r}, {self.base:#x}, {self.size:#x})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Region)
            and (self.name, self.base, self.size) == (other.name, other.base, other.size)
        )

    def __hash__(self) -> int:
        return hash((self.name, self.base, self.size))


class MemoryMap:
    """The platform physical memory map.

    Defaults give a small SoC-like map: 64 KiB of monitor image/data,
    16 KiB of monitor stack, a configurable number of secure pages, and
    1 MiB of insecure RAM for the OS.  All regions are page aligned and
    disjoint; the constructor checks this.
    """

    def __init__(
        self,
        secure_pages: int = 64,
        insecure_size: int = 0x100000,
        monitor_image_size: int = 0x10000,
        monitor_stack_size: int = 0x4000,
    ):
        if secure_pages < 1:
            raise ValueError("need at least one secure page")
        base = 0x8000_0000
        self.monitor_image = Region("monitor_image", base, monitor_image_size)
        base = self.monitor_image.limit
        self.monitor_stack = Region("monitor_stack", base, monitor_stack_size)
        base = self.monitor_stack.limit
        self.secure = Region("secure", base, secure_pages * PAGE_SIZE)
        base = self.secure.limit
        self.insecure = Region("insecure", base, insecure_size)
        self.secure_pages = secure_pages
        regions = self.regions()
        for i, first in enumerate(regions):
            if first.base % PAGE_SIZE or first.size % PAGE_SIZE:
                raise ValueError(f"region {first.name} is not page aligned")
            for second in regions[i + 1 :]:
                if first.overlaps(second):
                    raise ValueError(f"regions {first.name} and {second.name} overlap")

    def regions(self) -> List[Region]:
        return [self.monitor_image, self.monitor_stack, self.secure, self.insecure]

    # -- secure page numbering -----------------------------------------

    def page_base(self, pageno: int) -> int:
        """Physical base address of secure page ``pageno``."""
        if not self.valid_pageno(pageno):
            raise ValueError(f"invalid secure page number {pageno}")
        return self.secure.base + pageno * PAGE_SIZE

    def pageno_of(self, address: int) -> int:
        """Secure page number containing ``address`` (must be secure)."""
        if not self.secure.contains(address):
            raise ValueError(f"{address:#x} is not in the secure region")
        return (address - self.secure.base) // PAGE_SIZE

    def valid_pageno(self, pageno: int) -> bool:
        return isinstance(pageno, int) and 0 <= pageno < self.secure_pages

    # -- address classification ------------------------------------------

    def is_secure(self, address: int) -> bool:
        return self.secure.contains(address)

    def is_insecure(self, address: int) -> bool:
        return self.insecure.contains(address)

    def is_monitor(self, address: int) -> bool:
        return self.monitor_image.contains(address) or self.monitor_stack.contains(address)

    def is_valid(self, address: int) -> bool:
        return any(region.contains(address) for region in self.regions())

    def insecure_page_aligned(self, address: int) -> bool:
        """True if ``address`` is a page-aligned address of an insecure page.

        The paper (section 9.1) notes the subtlety this check fixes: an
        address passed by the OS for MapSecure/MapInsecure must not only
        avoid the secure region, it must also avoid the monitor's own
        image and stack.  We classify strictly by region.
        """
        return address % PAGE_SIZE == 0 and self.is_insecure(address)


class PhysicalMemory:
    """Word-granularity physical memory with world-based protection.

    Accesses carry the world performing them; normal-world accesses to
    secure or monitor regions fault, which models the TrustZone-aware
    memory controller that partitions RAM between worlds.
    """

    def __init__(self, memmap: MemoryMap):
        self.map = memmap
        regions = memmap.regions()
        base = min(region.base for region in regions)
        limit = max(region.limit for region in regions)
        if sum(region.size for region in regions) != limit - base:
            # Flat addressing requires the regions to tile one span; the
            # MemoryMap constructor lays them out back to back.
            raise ValueError("memory map regions must tile a contiguous range")
        self._base = base
        self._size = limit - base
        #: Backing bytes; ``_store`` is a word-cast view of this buffer.
        #: Snapshots copy ``_buf`` (a view slice would alias, not copy).
        self._buf = bytearray(self._size)
        self._store = memoryview(self._buf).cast(_TYPECODE)
        #: Bumped on every mutation; invalidates fast-path caches.
        self.generation = 0
        #: Read transactions issued (a bulk read counts once).
        self.read_ops = 0
        #: Write transactions issued (a bulk zero/copy/write counts once).
        self.write_ops = 0
        #: Pages (``offset >> 12``) written since the last snapshot
        #: anchor.  Mutated in place only — the turbo engine bakes this
        #: set's identity into compiled code, exactly like ``_store``.
        self._dirty: set = set()
        #: Token of the snapshot the dirty set is relative to (0 = no
        #: anchor).  See ``MachineState.snapshot``/``restore``.
        self._snap_token = 0

    # -- raw access (no protection; used by the monitor and the loader) --

    def read_word(self, address: int) -> int:
        offset = address - self._base
        if not offset & 3 and 0 <= offset < self._size:
            self.read_ops += 1
            return self._store[offset >> 2]
        raise self._fault(address, "read")

    def write_word(self, address: int, value: int) -> None:
        offset = address - self._base
        if not offset & 3 and 0 <= offset < self._size:
            self._store[offset >> 2] = value & 0xFFFFFFFF
            self._dirty.add(offset >> 12)
            self.generation += 1
            self.write_ops += 1
            return
        raise self._fault(address, "write")

    def _fault(self, address: int, what: str) -> MemoryFault:
        if not word_aligned(address):
            return MemoryFault(address, f"misaligned word {what}")
        return MemoryFault(address, f"{what} of unmapped address")

    # -- world-checked access (used by OS code and devices) --------------

    def checked_read(self, address: int, world: World) -> int:
        self._check(address, world, "read")
        return self.read_word(address)

    def checked_write(self, address: int, value: int, world: World) -> None:
        self._check(address, world, "write")
        self.write_word(address, value)

    def _check(self, address: int, world: World, what: str) -> None:
        if world is World.NORMAL and (
            self.map.is_secure(address) or self.map.is_monitor(address)
        ):
            raise MemoryFault(address, f"normal-world {what} of protected memory")

    # -- bulk helpers (slice operations on the flat store) ----------------

    def _span(self, address: int, count: int) -> int:
        """Word index of ``address`` when ``[address, address+4*count)``
        lies inside the store, else a fault."""
        offset = address - self._base
        if not offset & 3 and 0 <= offset and offset + count * WORDSIZE <= self._size:
            return offset >> 2
        raise self._fault(address, "read")

    def read_words(self, address: int, count: int) -> List[int]:
        if count == 0:
            return []
        start = self._span(address, count)
        self.read_ops += 1
        return self._store[start : start + count].tolist()

    def view_words(self, address: int, count: int):
        """Zero-copy read-only window over ``count`` words at ``address``.

        One read transaction, like ``read_words``, but without
        materialising a list: page-table scans and hash ingestion index
        straight into the backing store.  The view is read-only and
        *live* — it observes later stores — so callers must consume it
        before mutating memory.  ``EncryptedMemory`` overrides this
        word-wise (every word must pass through the engine).
        """
        start = self._span(address, count)
        self.read_ops += 1
        return self._store[start : start + count].toreadonly()

    def write_words(self, address: int, values: Iterable[int]) -> None:
        words = [value & 0xFFFFFFFF for value in values]
        if not words:
            return
        offset = address - self._base
        if offset & 3 or offset < 0 or offset + len(words) * WORDSIZE > self._size:
            raise self._fault(address, "write")
        start = offset >> 2
        self._store[start : start + len(words)] = array(_TYPECODE, words)
        self._dirty.update(
            range(offset >> 12, (offset + len(words) * WORDSIZE - 1 >> 12) + 1)
        )
        self.generation += 1
        self.write_ops += 1

    def read_page(self, base: int) -> List[int]:
        """Read a whole page as a list of words."""
        return self.read_words(base, WORDS_PER_PAGE)

    def zero_page(self, base: int) -> None:
        """Zero-fill a whole page (one bulk byte-slice store)."""
        offset = base - self._base
        if offset & 3 or offset < 0 or offset + PAGE_SIZE > self._size:
            raise self._fault(base, "write")
        self._buf[offset : offset + PAGE_SIZE] = _ZERO_PAGE
        # Word alignment suffices here, so the page span may straddle
        # two dirty pages.
        self._dirty.update(range(offset >> 12, (offset + PAGE_SIZE - 1 >> 12) + 1))
        self.generation += 1
        self.write_ops += 1

    def copy_page(self, src: int, dst: int) -> None:
        """Copy one page from ``src`` to ``dst`` (one bulk byte slice)."""
        src_off = self._span(src, WORDS_PER_PAGE) << 2
        self.read_ops += 1
        offset = dst - self._base
        if offset & 3 or offset < 0 or offset + PAGE_SIZE > self._size:
            raise self._fault(dst, "write")
        self._buf[offset : offset + PAGE_SIZE] = self._buf[
            src_off : src_off + PAGE_SIZE
        ]
        self._dirty.update(range(offset >> 12, (offset + PAGE_SIZE - 1 >> 12) + 1))
        self.generation += 1
        self.write_ops += 1

    def snapshot_region(self, region: Region) -> Dict[int, int]:
        """Sparse snapshot of the words stored within ``region``."""
        start = self._span(region.base, region.size // WORDSIZE)
        words = self._store[start : start + region.size // WORDSIZE].tolist()
        base = region.base
        return {
            base + (i << 2): value for i, value in enumerate(words) if value
        }

    def copy(self) -> "PhysicalMemory":
        dup = PhysicalMemory(self.map)
        dup._buf[:] = self._buf
        return dup

    def __deepcopy__(self, memo):
        # The word-cast memoryview is not picklable/deep-copyable;
        # duplicate the backing bytes and re-cast a fresh view instead.
        cls = self.__class__
        dup = cls.__new__(cls)
        memo[id(self)] = dup
        for key, value in self.__dict__.items():
            if key == "_buf":
                dup._buf = bytearray(self._buf)
            elif key != "_store":
                setattr(dup, key, _deepcopy(value, memo))
        dup._store = memoryview(dup._buf).cast(_TYPECODE)
        return dup


_ZERO_PAGE = bytes(PAGE_SIZE)
