"""ARMv7 / TrustZone machine-model substrate.

This package is an executable port of the machine model that the Komodo
paper specifies in Dafny (SOSP'17, section 5.1): a subset of the ARMv7
architecture covering core and banked registers, user and privileged
modes, TrustZone worlds, short-descriptor page tables, TLB consistency,
exceptions, and the semantics of the instructions the monitor and
enclaves need.  A calibrated cycle-cost model replaces the Raspberry Pi
hardware used in the paper's evaluation.
"""

from repro.arm.bits import WORD_BITS, WORD_MASK, WORDSIZE
from repro.arm.cpu import CPU, ExecutionResult
from repro.arm.machine import MachineState
from repro.arm.memory import PAGE_SIZE, MemoryMap, PhysicalMemory
from repro.arm.modes import Mode, World

__all__ = [
    "CPU",
    "ExecutionResult",
    "MachineState",
    "MemoryMap",
    "Mode",
    "PAGE_SIZE",
    "PhysicalMemory",
    "WORDSIZE",
    "WORD_BITS",
    "WORD_MASK",
    "World",
]
