"""The complete machine state.

A machine state bundles everything visible about the simulated CPU and
platform: the register file, physical memory, TrustZone world, the
control registers the monitor touches (TTBR0, SCR.NS, the VBAR-selected
exception vector is implicit), the TLB consistency flag, the pending
interrupt line, and the cycle counter driven by the cost model.

Two hooks support the crash-consistency subsystem (``repro.faults``):

* ``fault_plan`` — when set, every machine-visible monitor operation
  (``mon_write_word``, ``mon_zero_page``, ``mon_copy_page``, journal
  stage/commit/apply) first passes through ``fault_point``, which lets
  an injection plan abort execution there by raising ``FaultInjected``
  — simulating a watchdog reset or power loss inside the monitor.
* ``txn`` — when set, monitor stores are buffered in the attached
  transaction (``repro.monitor.journal.MonitorTransaction``) instead of
  hitting physical memory; monitor reads merge the buffered view.  The
  cycle cost of a buffered store is charged at record time, so the cost
  model is unchanged from the eager-write monitor.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from typing import Optional

from repro.arm.costs import CostModel
from repro.arm.memory import PAGE_SIZE, MemoryMap, PhysicalMemory
from repro.arm.modes import Mode, World
from repro.arm.registers import PSR, RegisterFile
from repro.arm.tlb import TLB

#: Process-wide snapshot token source.  Each ``MachineState.snapshot``
#: draws a fresh token and anchors the memory's dirty-page set to it;
#: ``restore`` may take the O(dirty-pages) delta path only when the
#: snapshot's token is still the memory's anchor.  Token 0 never issues,
#: so a never-snapshotted memory (``_snap_token == 0``) never matches.
_SNAP_TOKENS = itertools.count(1)

#: Escape hatch: set ``REPRO_NO_DELTA_RESTORE=1`` to force every restore
#: down the full-buffer path — the equivalence oracle the delta path is
#: pinned against.
DELTA_RESTORE = os.environ.get("REPRO_NO_DELTA_RESTORE", "") != "1"


class FaultInjected(Exception):
    """A simulated crash (watchdog reset / power loss) inside the monitor.

    Raised by a fault-injection plan at a machine-visible monitor
    operation.  Everything volatile — registers, the monitor's Python
    call stack, a buffered transaction — is conceptually lost with the
    machine; only physical memory survives.  The OS-visible way back is
    ``KomodoMonitor.recover()``.
    """

    def __init__(self, op_index: int, kind: str, detail: int = 0):
        super().__init__(
            f"injected fault at monitor operation #{op_index} ({kind} {detail:#x})"
        )
        self.op_index = op_index
        self.kind = kind
        self.detail = detail


class UArchState:
    """Microarchitectural caches owned by the fast and turbo engines.

    Nothing here is architecturally visible: the caches hold decoded
    instructions and compiled basic blocks (keyed by physical address,
    validated against ``PhysicalMemory.generation``) and translations
    (keyed by virtual page, validated against ``TLB.version``).  A
    ``MachineState.copy()`` never shares this state — each snapshot
    warms its own caches.
    """

    __slots__ = (
        "icache",
        "utlb",
        "utlb_version",
        "bcache",
        "code_pages",
        "chain_gen",
        "chain_memgen",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.icache = {}
        self.utlb = {}
        self.utlb_version = -1
        self.bcache = {}
        #: Physical pages holding any compiled block's source words
        #: (grow-only; bounded by the number of physical pages).
        self.code_pages = set()
        #: Bumped whenever a store may have rewritten compiled code
        #: (any CPU store into ``code_pages``, or — detected lazily at
        #: run entry via ``chain_memgen`` — any mutation between runs).
        #: Turbo chain links are validated against this, not against
        #: ``memory.generation``, so ordinary data stores do not sever
        #: block-to-block chains.
        self.chain_gen = 0
        #: ``memory.generation`` as of the last chain-stamp sync.
        self.chain_memgen = -1


@dataclass
class MachineState:
    """Registers + memory + control state of the simulated platform."""

    memmap: MemoryMap
    memory: PhysicalMemory
    regs: RegisterFile = field(default_factory=RegisterFile)
    tlb: TLB = field(default_factory=TLB)
    world: World = World.SECURE
    ttbr0: Optional[int] = None  # physical base of the live enclave L1 table
    pending_interrupt: bool = False
    cycles: int = 0
    costs: CostModel = field(default_factory=CostModel)
    uarch: UArchState = field(default_factory=UArchState)
    #: Active fault-injection plan (duck-typed; see repro.faults.injector).
    fault_plan: Optional[object] = None
    #: Active monitor transaction (see repro.monitor.journal); monitor
    #: stores buffer here until the commit point.
    txn: Optional[object] = None

    @classmethod
    def boot(cls, secure_pages: int = 64, insecure_size: int = 0x100000) -> "MachineState":
        """A freshly booted machine: secure world, SVC mode, zeroed RAM."""
        memmap = MemoryMap(secure_pages=secure_pages, insecure_size=insecure_size)
        state = cls(memmap=memmap, memory=PhysicalMemory(memmap))
        state.regs.cpsr = PSR(mode=Mode.SVC, irq_masked=True, fiq_masked=True)
        return state

    # -- cycle accounting --------------------------------------------------

    def charge(self, cycles: int) -> None:
        """Advance the cycle counter."""
        self.cycles += cycles

    # -- control registers -------------------------------------------------

    def load_ttbr0(self, l1_base: Optional[int]) -> None:
        """Load the enclave page-table base; poisons the TLB."""
        self.ttbr0 = l1_base
        self.tlb.set_ttbr(self.memory, l1_base)
        self.charge(self.costs.ttbr_write)

    def flush_tlb(self) -> None:
        self.tlb.flush()
        self.charge(self.costs.tlb_flush)

    # -- fault injection ---------------------------------------------------

    def fault_point(self, kind: str, detail: int = 0) -> None:
        """An injection point: a watchdog reset may fire here.

        Called immediately *before* each machine-visible monitor
        operation takes effect, so an abort at operation N leaves the
        effects of operations 1..N-1 only.
        """
        plan = self.fault_plan
        if plan is not None:
            plan.visit(self, kind, detail)

    # -- monitor-visible memory helpers (cycle charged) ---------------------

    def mon_read_word(self, address: int) -> int:
        self.charge(self.costs.mem_access)
        if self.txn is not None:
            buffered = self.txn.read(address)
            if buffered is not None:
                return buffered
        return self.memory.read_word(address)

    def mon_read_words(self, address: int, count: int):
        """Bulk monitor read merging any buffered transaction state.

        Uncharged, like the raw ``memory.read_words`` burst it replaces
        (callers charge the work that consumes the data, e.g. hashing).
        """
        if self.txn is not None:
            return self.txn.read_words(self.memory, address, count)
        return self.memory.read_words(address, count)

    def mon_write_word(self, address: int, value: int) -> None:
        self.charge(self.costs.mem_access)
        self.fault_point("write", address)
        if self.txn is not None:
            self.txn.record_write(address, value)
            return
        self.memory.write_word(address, value)
        self.tlb.note_store(address)

    def mon_zero_page(self, base: int) -> None:
        self.charge(self.costs.page_zero)
        self.fault_point("zero-page", base)
        if self.txn is not None:
            self.txn.record_zero(base)
            return
        self.memory.zero_page(base)
        # Zeroing a page that holds a live page table must poison the
        # TLB exactly like a word store would; one probe covers the page.
        self.tlb.note_store(base)

    def mon_copy_page(self, src: int, dst: int) -> None:
        self.charge(self.costs.page_copy)
        self.fault_point("copy-page", dst)
        if self.txn is not None:
            self.txn.record_copy_page(self.memory, src, dst)
            return
        self.memory.copy_page(src, dst)
        self.tlb.note_store(dst)

    # -- fault injection (corruption) ---------------------------------------

    def flip_bit(self, address: int, bit: int) -> int:
        """Model a DRAM disturbance: invert one bit of a stored word.

        This is not a CPU access — it bypasses world checks, charges no
        cycles, counts no read transaction, and does not pass through an
        open transaction's buffer (the flip hits the physical cell, not
        the monitor's pending store).  TLB consistency is poisoned as
        for any store so cached translations cannot outlive the flipped
        word.  Returns the new word value.
        """
        if not 0 <= bit < 32:
            raise ValueError(f"bit index {bit} out of range")
        memory = self.memory
        saved_reads, saved_writes = memory.read_ops, memory.write_ops
        try:
            value = memory.read_word(address) ^ (1 << bit)
            memory.write_word(address, value)
        finally:
            memory.read_ops = saved_reads
            memory.write_ops = saved_writes
        self.tlb.note_store(address)
        return value

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> "MachineSnapshot":
        """Capture an O(memory) checkpoint for in-place ``restore``.

        Much cheaper than ``copy``/``copy.deepcopy``: physical memory is
        one flat ``array`` slice, registers and the TLB are small.  The
        fault campaigns use this to capture a lifecycle prefix once and
        restore it per injected fault instead of re-running from boot.

        The machine must be quiescent: no open monitor transaction (a
        transaction buffers stores outside physical memory, so a
        checkpoint through it would tear).
        """
        if self.txn is not None:
            raise ValueError("cannot snapshot with an open monitor transaction")
        memory = self.memory
        tags = getattr(memory, "_tags", None)  # EncryptedMemory tag store
        # Re-anchor the dirty-page set: from here on it records exactly
        # the pages that diverge from this checkpoint, so a restore of
        # *this* snapshot may copy back only those pages.
        token = next(_SNAP_TOKENS)
        memory._snap_token = token
        memory._dirty.clear()
        return MachineSnapshot(
            token=token,
            # bytes(), not a slice: slicing the memoryview-backed store
            # would alias the live buffer instead of copying it.
            store=bytes(memory._buf),
            generation=memory.generation,
            read_ops=memory.read_ops,
            write_ops=memory.write_ops,
            tags=dict(tags) if tags is not None else None,
            regs=self.regs.copy(),
            tlb=self.tlb.copy(),
            world=self.world,
            ttbr0=self.ttbr0,
            pending_interrupt=self.pending_interrupt,
            cycles=self.cycles,
        )

    def restore(self, snap: "MachineSnapshot", delta: Optional[bool] = None) -> None:
        """Rewind this machine, in place, to a ``snapshot()`` checkpoint.

        Physical memory is restored by slice assignment (object identity
        is preserved, so the page-table walker and TLB keep watching the
        same store), registers and the TLB are replaced by fresh copies
        of the checkpoint, and the microarchitectural caches are reset —
        exactly the cold-cache state a deep copy would start from, so
        snapshot-accelerated campaigns are bit-identical to re-execution.
        A snapshot can be restored any number of times.

        When ``snap`` is the snapshot the memory's dirty-page set is
        anchored to, only the dirtied pages are copied back —
        O(dirty-pages) instead of O(memory).  Any token mismatch (an
        older snapshot, a different machine's snapshot, a never-anchored
        memory) falls back to the full-buffer copy and re-anchors.
        ``delta=False`` (or ``REPRO_NO_DELTA_RESTORE=1``) forces the
        full path — the equivalence oracle.  Either path leaves the
        buffer byte-identical to ``snap.store``.
        """
        if delta is None:
            delta = DELTA_RESTORE
        memory = self.memory
        dirty = memory._dirty
        if delta and snap.token == memory._snap_token and snap.token:
            if dirty:
                buf, store = memory._buf, snap.store
                for page in dirty:
                    offset = page << 12
                    buf[offset : offset + PAGE_SIZE] = store[
                        offset : offset + PAGE_SIZE
                    ]
                dirty.clear()
        else:
            memory._buf[:] = snap.store
            memory._snap_token = snap.token
            dirty.clear()
        memory.generation = snap.generation
        memory.read_ops = snap.read_ops
        memory.write_ops = snap.write_ops
        if snap.tags is not None:
            memory._tags = dict(snap.tags)
        self.regs = snap.regs.copy()
        self.tlb = snap.tlb.copy(memory=memory)
        self.world = snap.world
        self.ttbr0 = snap.ttbr0
        self.pending_interrupt = snap.pending_interrupt
        self.cycles = snap.cycles
        self.uarch.reset()
        self.fault_plan = None
        self.txn = None

    def copy(self) -> "MachineState":
        """Deep copy (used by the refinement and noninterference harnesses)."""
        memory = self.memory.copy()
        dup = MachineState(
            memmap=self.memmap,
            memory=memory,
            regs=self.regs.copy(),
            tlb=self.tlb.copy(memory=memory),
            world=self.world,
            ttbr0=self.ttbr0,
            pending_interrupt=self.pending_interrupt,
            cycles=self.cycles,
            costs=self.costs,
            uarch=UArchState(),
        )
        return dup


class MachineSnapshot:
    """An immutable-by-convention machine checkpoint (see
    ``MachineState.snapshot``): the flat word store, the memory
    engine's tag table if any, the register file, the TLB consistency
    state, and the scalar control state.  ``memmap``/``costs`` are not
    captured — they are constant for a machine's lifetime."""

    __slots__ = (
        "token",
        "store",
        "generation",
        "read_ops",
        "write_ops",
        "tags",
        "regs",
        "tlb",
        "world",
        "ttbr0",
        "pending_interrupt",
        "cycles",
    )

    def __init__(
        self,
        token,
        store,
        generation,
        read_ops,
        write_ops,
        tags,
        regs,
        tlb,
        world,
        ttbr0,
        pending_interrupt,
        cycles,
    ):
        self.token = token
        self.store = store
        self.generation = generation
        self.read_ops = read_ops
        self.write_ops = write_ops
        self.tags = tags
        self.regs = regs
        self.tlb = tlb
        self.world = world
        self.ttbr0 = ttbr0
        self.pending_interrupt = pending_interrupt
        self.cycles = cycles
