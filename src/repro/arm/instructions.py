"""Instruction set for user-mode (enclave) execution.

The paper's machine model specifies the semantics of 25 instructions and
treats user-mode execution abstractly (havoc).  This reproduction goes
one step further for fidelity: enclave code is *actually executed* — it
is assembled to 32-bit words, placed in enclave data pages, then fetched
through the enclave's page tables, decoded, and interpreted.

Encodings are model-internal, not real ARM encodings.  The paper's own
toolchain has the same property: Vale represents instructions as ASTs and
a trusted printer emits concrete assembly; here the trusted boundary is
the encode/decode pair, which round-trips exactly (a property test checks
this for all instructions).

Register operands are indices 0-15: 0-12 name R0-R12, 13 names SP and
14 names LR (the user-mode banks).  The PC is not a register operand;
control flow happens only through branch instructions, mirroring the
paper's decision not to model arbitrary PC writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.arm.bits import WORD_MASK, get_bits, to_signed  # noqa: F401

REG_SP = 13
REG_LR = 14
NUM_OPERAND_REGS = 15


class EncodingError(Exception):
    """Raised when an instruction cannot be encoded or decoded."""


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction: mnemonic plus operand fields.

    Fields not used by a mnemonic are zero.  ``imm`` holds the 16-bit
    immediate for ALU/memory forms and the signed word offset for
    branches (already sign-extended at decode time).
    """

    op: str
    rd: int = 0
    rn: int = 0
    rm: int = 0
    imm: int = 0

    def __str__(self) -> str:
        return f"{self.op} rd={self.rd} rn={self.rn} rm={self.rm} imm={self.imm:#x}"


# Mnemonic -> (opcode, format) where format is one of:
#   "rrr": rd, rn, rm            "rri": rd, rn, imm16
#   "rr":  rd, rm                "ri":  rd, imm16
#   "cmp_r": rn, rm              "cmp_i": rn, imm16
#   "mem_i": rd, rn, imm16       "mem_r": rd, rn, rm
#   "b":   signed 24-bit word offset
#   "svc": imm24                 "none": no operands
FORMATS: Dict[str, Tuple[int, str]] = {
    "add": (0x01, "rrr"),
    "addi": (0x02, "rri"),
    "sub": (0x03, "rrr"),
    "subi": (0x04, "rri"),
    "rsb": (0x05, "rrr"),
    "and": (0x06, "rrr"),
    "orr": (0x07, "rrr"),
    "eor": (0x08, "rrr"),
    "bic": (0x09, "rrr"),
    "mov": (0x0A, "rr"),
    "mvn": (0x0B, "rr"),
    "mul": (0x0C, "rrr"),
    "lsl": (0x0D, "rrr"),
    "lsr": (0x0E, "rrr"),
    "asr": (0x0F, "rrr"),
    "ror": (0x10, "rrr"),
    "lsli": (0x11, "rri"),
    "lsri": (0x12, "rri"),
    "asri": (0x13, "rri"),
    "movw": (0x14, "ri"),
    "movt": (0x15, "ri"),
    "cmp": (0x16, "cmp_r"),
    "cmpi": (0x17, "cmp_i"),
    "tst": (0x18, "cmp_r"),
    "ldr": (0x20, "mem_i"),
    "str": (0x21, "mem_i"),
    "ldrr": (0x22, "mem_r"),
    "strr": (0x23, "mem_r"),
    "b": (0x30, "b"),
    "beq": (0x31, "b"),
    "bne": (0x32, "b"),
    "blt": (0x33, "b"),
    "bge": (0x34, "b"),
    "bgt": (0x35, "b"),
    "ble": (0x36, "b"),
    "bcs": (0x37, "b"),
    "bcc": (0x38, "b"),
    "bl": (0x39, "b"),
    "bxlr": (0x3A, "none"),
    "svc": (0x40, "svc"),
    "udf": (0x41, "none"),
    "nop": (0x42, "none"),
    "smc": (0x43, "svc"),
}

_BY_OPCODE = {opcode: (name, fmt) for name, (opcode, fmt) in FORMATS.items()}

BRANCH_OPS = frozenset(op for op, (_, fmt) in FORMATS.items() if fmt == "b")
CONDITIONAL_BRANCHES = BRANCH_OPS - {"b", "bl"}


# ---------------------------------------------------------------------------
# Per-instruction metadata
# ---------------------------------------------------------------------------

#: Operand rendering layout per format: which fields appear, in order,
#: and how.  ``#imm`` renders as an immediate; ``[rn, …]`` groups the
#: address operand of memory forms.  The disassembler and the static
#: analyser both consume this table, so there is exactly one place that
#: knows what a format's operands are.
OPERAND_LAYOUT: Dict[str, Tuple[str, ...]] = {
    "rrr": ("rd", "rn", "rm"),
    "rri": ("rd", "rn", "#imm"),
    "rr": ("rd", "rm"),
    "ri": ("rd", "#imm"),
    "cmp_r": ("rn", "rm"),
    "cmp_i": ("rn", "#imm"),
    "mem_i": ("rd", "[rn, #imm]"),
    "mem_r": ("rd", "[rn, rm]"),
    "b": ("offset",),
    "svc": ("#imm",),
    "none": (),
}

_GPR_ARGS = tuple(range(13))  # r0-r12: the SVC argument/result window

#: Mnemonics that read the NZCV flags (conditional branches).
FLAG_READERS = CONDITIONAL_BRANCHES
#: Mnemonics that set flags (the compare family).
FLAG_SETTERS = frozenset({"cmp", "cmpi", "tst"})


@dataclass(frozen=True)
class InstrMeta:
    """Static facts about one decoded instruction.

    ``reads``/``writes`` are register indices (13 = SP, 14 = LR).  SVCs
    conservatively read and write the whole r0-r12 window: the monitor
    passes r0-r12 as arguments and writes results back into it.
    """

    reads: Tuple[int, ...]
    writes: Tuple[int, ...]
    sets_flags: bool
    reads_flags: bool
    is_branch: bool
    is_conditional: bool
    is_call: bool
    is_return: bool
    memory: Optional[str]  # "load" | "store" | None
    is_svc: bool
    is_privileged: bool  # SMC-class: undefined from user mode
    is_trap: bool  # udf

    @property
    def is_memory_op(self) -> bool:
        return self.memory is not None

    @property
    def falls_through(self) -> bool:
        """Can execution continue at the next instruction?

        Unconditional branches and returns never fall through; neither
        do privileged/trap instructions (they raise an exception).  An
        SVC resumes at the next instruction unless the monitor ends the
        thread (``svc EXIT``), which the analyser decides from the call
        number, not from here.
        """
        if self.is_branch and not (self.is_conditional or self.is_call):
            return False
        if self.is_return or self.is_privileged or self.is_trap:
            return False
        return True


def metadata(instr: Instruction) -> InstrMeta:
    """Compute the metadata for one instruction."""
    op = instr.op
    if op not in FORMATS:
        raise EncodingError(f"unknown mnemonic {op!r}")
    fmt = FORMATS[op][1]
    reads: Tuple[int, ...] = ()
    writes: Tuple[int, ...] = ()
    memory: Optional[str] = None
    if fmt == "rrr":
        reads, writes = (instr.rn, instr.rm), (instr.rd,)
    elif fmt == "rri":
        reads, writes = (instr.rn,), (instr.rd,)
    elif fmt == "rr":
        reads, writes = (instr.rm,), (instr.rd,)
    elif fmt == "ri":
        # movt inserts into the destination's top half: it reads rd too.
        reads = (instr.rd,) if op == "movt" else ()
        writes = (instr.rd,)
    elif fmt == "cmp_r":
        reads = (instr.rn, instr.rm)
    elif fmt == "cmp_i":
        reads = (instr.rn,)
    elif fmt == "mem_i":
        if op == "ldr":
            reads, writes, memory = (instr.rn,), (instr.rd,), "load"
        else:  # str
            reads, memory = (instr.rn, instr.rd), "store"
    elif fmt == "mem_r":
        if op == "ldrr":
            reads, writes, memory = (instr.rn, instr.rm), (instr.rd,), "load"
        else:  # strr
            reads, memory = (instr.rn, instr.rm, instr.rd), "store"
    elif fmt == "svc":
        if op == "svc":
            reads, writes = _GPR_ARGS, _GPR_ARGS
    elif fmt == "b":
        if op == "bl":
            writes = (REG_LR,)
    elif fmt == "none":
        if op == "bxlr":
            reads = (REG_LR,)
    return InstrMeta(
        reads=reads,
        writes=writes,
        sets_flags=op in FLAG_SETTERS,
        reads_flags=op in FLAG_READERS,
        is_branch=op in BRANCH_OPS,
        is_conditional=op in CONDITIONAL_BRANCHES,
        is_call=op == "bl",
        is_return=op == "bxlr",
        memory=memory,
        is_svc=op == "svc",
        is_privileged=op == "smc",
        is_trap=op == "udf",
    )


def branch_target_index(instr: Instruction, index: int) -> Optional[int]:
    """Word index a branch at ``index`` transfers to, or None if the
    instruction is not a PC-relative branch (``bxlr`` is indirect)."""
    if instr.op in BRANCH_OPS:
        return index + instr.imm + 1
    return None


def _check_reg(index: int) -> int:
    if not 0 <= index < NUM_OPERAND_REGS:
        raise EncodingError(f"register index {index} out of range")
    return index


def _check_imm16(imm: int) -> int:
    if not 0 <= imm <= 0xFFFF:
        raise EncodingError(f"immediate {imm:#x} does not fit in 16 bits")
    return imm


def encode(instr: Instruction) -> int:
    """Encode an instruction into its 32-bit word."""
    if instr.op not in FORMATS:
        raise EncodingError(f"unknown mnemonic {instr.op!r}")
    opcode, fmt = FORMATS[instr.op]
    word = opcode << 24
    if fmt == "rrr":
        word |= _check_reg(instr.rd) << 20
        word |= _check_reg(instr.rn) << 16
        word |= _check_reg(instr.rm) << 12
    elif fmt == "rri":
        word |= _check_reg(instr.rd) << 20
        word |= _check_reg(instr.rn) << 16
        word |= _check_imm16(instr.imm)
    elif fmt == "rr":
        word |= _check_reg(instr.rd) << 20
        word |= _check_reg(instr.rm) << 12
    elif fmt == "ri":
        word |= _check_reg(instr.rd) << 20
        word |= _check_imm16(instr.imm)
    elif fmt == "cmp_r":
        word |= _check_reg(instr.rn) << 16
        word |= _check_reg(instr.rm) << 12
    elif fmt == "cmp_i":
        word |= _check_reg(instr.rn) << 16
        word |= _check_imm16(instr.imm)
    elif fmt == "mem_i":
        word |= _check_reg(instr.rd) << 20
        word |= _check_reg(instr.rn) << 16
        word |= _check_imm16(instr.imm)
    elif fmt == "mem_r":
        word |= _check_reg(instr.rd) << 20
        word |= _check_reg(instr.rn) << 16
        word |= _check_reg(instr.rm) << 12
    elif fmt == "b":
        if not -(1 << 23) <= instr.imm < (1 << 23):
            raise EncodingError(f"branch offset {instr.imm} out of range")
        word |= instr.imm & 0xFFFFFF
    elif fmt == "svc":
        if not 0 <= instr.imm <= 0xFFFFFF:
            raise EncodingError(f"call number {instr.imm:#x} out of range")
        word |= instr.imm
    elif fmt == "none":
        pass
    else:  # pragma: no cover - exhaustive over FORMATS
        raise EncodingError(f"unhandled format {fmt!r}")
    return word & WORD_MASK


def decode(word: int) -> Optional[Instruction]:
    """Decode a 32-bit word; returns None for undefined encodings.

    An undefined encoding is architecturally an undefined-instruction
    exception, which the CPU raises when decode returns None.
    """
    opcode = (word >> 24) & 0xFF
    if opcode not in _BY_OPCODE:
        return None
    op, fmt = _BY_OPCODE[opcode]
    rd = (word >> 20) & 0xF
    rn = (word >> 16) & 0xF
    rm = (word >> 12) & 0xF
    imm16 = word & 0xFFFF
    if fmt == "rrr" or fmt == "mem_r":
        if max(rd, rn, rm) >= NUM_OPERAND_REGS:
            return None
        return Instruction(op, rd=rd, rn=rn, rm=rm)
    if fmt == "rri" or fmt == "mem_i":
        if max(rd, rn) >= NUM_OPERAND_REGS:
            return None
        return Instruction(op, rd=rd, rn=rn, imm=imm16)
    if fmt == "rr":
        if max(rd, rm) >= NUM_OPERAND_REGS:
            return None
        return Instruction(op, rd=rd, rm=rm)
    if fmt == "ri":
        if rd >= NUM_OPERAND_REGS:
            return None
        return Instruction(op, rd=rd, imm=imm16)
    if fmt == "cmp_r":
        if max(rn, rm) >= NUM_OPERAND_REGS:
            return None
        return Instruction(op, rn=rn, rm=rm)
    if fmt == "cmp_i":
        if rn >= NUM_OPERAND_REGS:
            return None
        return Instruction(op, rn=rn, imm=imm16)
    if fmt == "b":
        offset = word & 0xFFFFFF
        if offset & 0x800000:
            offset -= 1 << 24
        return Instruction(op, imm=offset)
    if fmt == "svc":
        return Instruction(op, imm=word & 0xFFFFFF)
    if fmt == "none":
        return Instruction(op)
    return None  # pragma: no cover - exhaustive over formats


def condition_passes(op: str, n: bool, z: bool, c: bool, v: bool) -> bool:
    """Evaluate a conditional branch's condition against the NZCV flags."""
    if op == "beq":
        return z
    if op == "bne":
        return not z
    if op == "blt":
        return n != v
    if op == "bge":
        return n == v
    if op == "bgt":
        return not z and n == v
    if op == "ble":
        return z or n != v
    if op == "bcs":
        return c
    if op == "bcc":
        return not c
    raise EncodingError(f"{op!r} is not a conditional branch")
