"""Applications built on the public enclave API.

* ``notary`` — the paper's evaluation workload (section 8.2), runnable
  both inside a Komodo enclave and as a plain "Linux process" on the
  same cost model, which is how Figure 5 compares the two.
* ``remote_attestation`` — the trusted quoting enclave the paper defers
  (section 4), turning local attestations into remotely verifiable
  quotes.
* ``sealed_storage`` — measurement-bound data-at-rest built on the
  Attest SVC used as a key-derivation function.
* ``checksum`` — a CRC-32 service implemented in pure enclave machine
  code, exercising the interpreted execution path at scale.
"""

from repro.apps.checksum import ChecksumService, crc32_words
from repro.apps.notary import NativeNotary, NotaryEnclave, NotaryReceipt
from repro.apps.remote_attestation import Quote, QuotingEnclave, verify_quote
from repro.apps.sealed_storage import SealError, seal, unseal

__all__ = [
    "ChecksumService",
    "NativeNotary",
    "NotaryEnclave",
    "NotaryReceipt",
    "crc32_words",
    "Quote",
    "QuotingEnclave",
    "SealError",
    "seal",
    "unseal",
    "verify_quote",
]
