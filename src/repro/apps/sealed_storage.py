"""Sealed storage: measurement-bound data-at-rest for enclaves.

SGX derives per-enclave *sealing keys* so an enclave can encrypt state,
hand the ciphertext to the untrusted OS for storage, and recover it in a
later incarnation — but only if its measurement matches.  Komodo's
primitive set supports the same pattern without any new monitor call:
the Attest SVC is a MAC keyed with the boot secret over (measurement,
enclave-chosen data), which makes ``Attest(label)`` a key-derivation
function that only an enclave with the *same measurement on the same
machine* can recompute.

This module builds sealed storage on that observation:

* ``seal``: inside the enclave, derive ``k = Attest(label)``, encrypt
  the payload with a SHA-256-CTR stream keyed by ``k``, append a MAC
  (HMAC over the ciphertext keyed by a second derived key), and hand
  the blob to the OS.
* ``unseal``: a later enclave instance re-derives the keys — succeeding
  only if its measurement matches — checks the MAC and decrypts.

Everything here runs *inside* enclaves through the ordinary SVC
interface; the OS only ever sees ciphertext.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.arm.bits import bytes_to_words, words_to_bytes
from repro.crypto.hmac import constant_time_equal, hmac_sha256_words
from repro.crypto.sha256 import sha256
from repro.sdk.native import NativeContext

#: Domain-separation labels for the two derived keys.  The label is the
#: 8-word "data" input of the Attest MAC.
_ENC_LABEL = bytes_to_words(sha256(b"komodo-seal-enc"))[:8]
_MAC_LABEL = bytes_to_words(sha256(b"komodo-seal-mac"))[:8]

_MAC_WORDS = 8


class SealError(Exception):
    """Unsealing failed: wrong enclave identity or tampered blob."""


def _derive_key(ctx: NativeContext, label: Sequence[int]) -> List[int]:
    """Attest-as-KDF: only this measurement on this machine derives it."""
    return ctx.attest(list(label))


def _keystream(key_words: Sequence[int], length_words: int) -> List[int]:
    """SHA-256 counter-mode keystream over the derived key."""
    stream: List[int] = []
    key_bytes = words_to_bytes(list(key_words))
    counter = 0
    while len(stream) < length_words:
        block = sha256(key_bytes + counter.to_bytes(8, "big"))
        stream.extend(bytes_to_words(block))
        counter += 1
    return stream[:length_words]


def seal(ctx: NativeContext, payload_words: Sequence[int]) -> List[int]:
    """Seal a payload to this enclave's identity.

    Returns the blob the enclave hands to the OS:
    ``[length] ++ ciphertext ++ mac[8]``.
    """
    payload = [w & 0xFFFFFFFF for w in payload_words]
    enc_key = _derive_key(ctx, _ENC_LABEL)
    mac_key = _derive_key(ctx, _MAC_LABEL)
    stream = _keystream(enc_key, len(payload))
    ciphertext = [p ^ s for p, s in zip(payload, stream)]
    mac = hmac_sha256_words(mac_key, [len(payload)] + ciphertext)
    return [len(payload)] + ciphertext + mac


def unseal(ctx: NativeContext, blob: Sequence[int]) -> List[int]:
    """Recover a sealed payload; raises SealError on identity mismatch
    or tampering (both manifest as a MAC failure)."""
    if len(blob) < 1 + _MAC_WORDS:
        raise SealError("blob too short")
    length = blob[0]
    if length < 0 or len(blob) != 1 + length + _MAC_WORDS:
        raise SealError("blob length inconsistent")
    ciphertext = list(blob[1 : 1 + length])
    mac = list(blob[1 + length :])
    mac_key = _derive_key(ctx, _MAC_LABEL)
    expected = hmac_sha256_words(mac_key, [length] + ciphertext)
    if not constant_time_equal(expected, mac):
        raise SealError("MAC mismatch: wrong identity or tampered blob")
    enc_key = _derive_key(ctx, _ENC_LABEL)
    stream = _keystream(enc_key, length)
    return [c ^ s for c, s in zip(ciphertext, stream)]
