"""Remote attestation via a trusted quoting enclave.

The paper implements *local* attestation as a monitor primitive and
"defers remote attestation to a trusted enclave (that we have yet to
implement)" (section 4).  This module implements that enclave, closing
the loop the paper sketches:

* The **quoting enclave** (QE) generates an RSA signing key pair on
  first entry and publishes the public key together with a *local*
  attestation binding SHA-256(pubkey) to the QE's own measurement.

* A relying party provisions trust in the QE out of band: it learns the
  QE's expected measurement (which anyone can recompute from the QE's
  code) and obtains the public key through any channel, checking the
  binding on a machine it trusts.  This mirrors SGX's quoting-enclave
  architecture with the vendor provisioning step collapsed to
  measurement pinning.

* Any other enclave asks for a **quote**: it attests locally (the
  monitor MAC over its measurement and its chosen report data), and the
  OS ferries (measurement, data, mac) to the QE through shared insecure
  memory.  The QE verifies the MAC via the Verify SVC — only the monitor
  holds the key, so a valid MAC proves the triple originated from a real
  local attestation on this machine — and signs
  ``SHA-256("komodo-quote" ‖ measurement ‖ data)`` with its RSA key.

* ``verify_quote`` runs anywhere (the remote party): it checks the RSA
  signature against the QE public key and compares the quoted
  measurement against the expected one.

The untrusted OS carries every message, and can of course corrupt or
replay them — the tests check that every such tampering is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.arm.bits import bytes_to_words, words_to_bytes
from repro.crypto import rsa
from repro.crypto.rng import HardwareRNG
from repro.crypto.sha256 import sha256
from repro.monitor.errors import KomErr
from repro.osmodel.kernel import OSKernel
from repro.sdk.builder import EnclaveBuilder, EnclaveHandle
from repro.sdk.native import NativeContext, NativeEnclaveProgram

QE_OP_INIT = 1
QE_OP_QUOTE = 2

#: Virtual layout inside the quoting enclave.
QE_STATE_VA = 0x0010_0000
QE_SHARED_VA = 0x0020_0000

QE_RSA_BITS = 512
_RSA_WORDS = QE_RSA_BITS // 32

# State-page layout (words).
_ST_MAGIC = 0
_ST_N = 1
_ST_D = _ST_N + _RSA_WORDS
_QE_MAGIC = 0x51554F54  # "QUOT"

# Shared-page layout (words).
_SH_PUBKEY = 0  # out: QE public modulus
_SH_BIND_MAC = _SH_PUBKEY + _RSA_WORDS  # out: local attestation of pubkey
_SH_MEAS = _SH_BIND_MAC + 8  # in: requester measurement[8]
_SH_DATA = _SH_MEAS + 8  # in: requester report data[8]
_SH_MAC = _SH_DATA + 8  # in: requester local-attestation mac[8]
_SH_QUOTE = _SH_MAC + 8  # out: RSA quote signature

_QUOTE_TAG = b"komodo-quote"


@dataclass(frozen=True)
class Quote:
    """A remotely verifiable attestation statement."""

    measurement: Tuple[int, ...]  # the quoted enclave's identity
    report_data: Tuple[int, ...]  # enclave-chosen binding data
    signature: bytes  # RSA signature by the quoting enclave

    def message(self) -> bytes:
        return (
            _QUOTE_TAG
            + words_to_bytes(list(self.measurement))
            + words_to_bytes(list(self.report_data))
        )


def verify_quote(
    quote: Quote,
    qe_pubkey_n: int,
    expected_measurement: Optional[List[int]] = None,
) -> bool:
    """The remote party's check: signature valid, identity as expected."""
    key = rsa.RSAKeyPair(n=qe_pubkey_n, e=65537, d=0)
    if not rsa.verify(key, quote.message(), quote.signature):
        return False
    if expected_measurement is not None:
        if tuple(expected_measurement) != quote.measurement:
            return False
    return True


def _int_to_words(value: int, count: int) -> List[int]:
    return bytes_to_words(value.to_bytes(count * 4, "big"))


def _words_to_int(words: List[int]) -> int:
    return int.from_bytes(words_to_bytes(words), "big")


def _qe_body(ctx: NativeContext, op: int, _b: int, _c: int):
    """The quoting enclave's program."""
    costs = ctx.monitor.state.costs
    if op == QE_OP_INIT:
        if ctx.read_word(QE_STATE_VA + _ST_MAGIC * 4) == _QE_MAGIC:
            return 0

        class _SvcRNG(HardwareRNG):
            def read_word(inner) -> int:  # noqa: N805 - closure style
                return ctx.get_random()

        key = rsa.generate_keypair(QE_RSA_BITS, _SvcRNG())
        yield
        ctx.write_word(QE_STATE_VA + _ST_MAGIC * 4, _QE_MAGIC)
        ctx.write_words(QE_STATE_VA + _ST_N * 4, _int_to_words(key.n, _RSA_WORDS))
        ctx.write_words(QE_STATE_VA + _ST_D * 4, _int_to_words(key.d, _RSA_WORDS))
        n_words = _int_to_words(key.n, _RSA_WORDS)
        ctx.write_words(QE_SHARED_VA + _SH_PUBKEY * 4, n_words)
        digest = sha256(words_to_bytes(n_words))
        binding = ctx.attest(bytes_to_words(digest)[:8])
        ctx.write_words(QE_SHARED_VA + _SH_BIND_MAC * 4, binding)
        return 0
    if op == QE_OP_QUOTE:
        if ctx.read_word(QE_STATE_VA + _ST_MAGIC * 4) != _QE_MAGIC:
            return 0xFFFFFFFF
        measurement = ctx.read_words(QE_SHARED_VA + _SH_MEAS * 4, 8)
        data = ctx.read_words(QE_SHARED_VA + _SH_DATA * 4, 8)
        mac = ctx.read_words(QE_SHARED_VA + _SH_MAC * 4, 8)
        yield
        # The core trust decision: only MACs the monitor itself minted
        # verify, so a valid triple proves a genuine local attestation.
        if not ctx.verify(data, measurement, mac):
            return 0xFFFFFFFE
        key = rsa.RSAKeyPair(
            n=_words_to_int(ctx.read_words(QE_STATE_VA + _ST_N * 4, _RSA_WORDS)),
            e=65537,
            d=_words_to_int(ctx.read_words(QE_STATE_VA + _ST_D * 4, _RSA_WORDS)),
        )
        message = (
            _QUOTE_TAG + words_to_bytes(measurement) + words_to_bytes(data)
        )
        blocks = (len(message) + 9 + 63) // 64
        ctx.charge(costs.sha256_init + blocks * costs.sha256_block + costs.sha256_finish)
        signature = rsa.sign(key, message, on_cost=ctx.charge)
        ctx.write_words(QE_SHARED_VA + _SH_QUOTE * 4, bytes_to_words(signature))
        return 0
    return 0xFFFFFFFD
    yield  # pragma: no cover - generator marker


class QuotingEnclave:
    """Host-side wrapper around the quoting enclave."""

    def __init__(self, kernel: OSKernel):
        self.kernel = kernel
        builder = EnclaveBuilder(kernel)
        builder.add_data(va=QE_STATE_VA, writable=True)
        builder.add_shared_buffer(va=QE_SHARED_VA, writable=True)
        builder.set_native_program(NativeEnclaveProgram("quoting-enclave", _qe_body))
        self.handle: EnclaveHandle = builder.build()
        self.pubkey_n: Optional[int] = None
        self.binding_mac: Optional[List[int]] = None

    def _call(self, op: int) -> int:
        err, value = self.handle.call(op)
        if err is not KomErr.SUCCESS:
            raise RuntimeError(f"quoting enclave call failed: {err!r}")
        return value

    def measurement(self) -> List[int]:
        """The QE's identity, which a relying party pins out of band."""
        return self.handle.measurement()

    def init(self) -> Tuple[int, List[int]]:
        """Generate the quoting key; returns (pubkey_n, binding MAC)."""
        result = self._call(QE_OP_INIT)
        if result != 0:
            raise RuntimeError(f"quoting enclave init failed: {result:#x}")
        shared = self.handle.buffer(0)
        n_words = shared.read_words(self.kernel, _RSA_WORDS, offset=_SH_PUBKEY)
        self.pubkey_n = _words_to_int(n_words)
        self.binding_mac = shared.read_words(self.kernel, 8, offset=_SH_BIND_MAC)
        return (self.pubkey_n, self.binding_mac)

    def quote(
        self, measurement: List[int], data: List[int], mac: List[int]
    ) -> Optional[Quote]:
        """Ask the QE to convert a local attestation into a quote.

        Returns None when the QE rejects the triple (invalid MAC).
        """
        shared = self.handle.buffer(0)
        shared.write_words(self.kernel, measurement, offset=_SH_MEAS)
        shared.write_words(self.kernel, data, offset=_SH_DATA)
        shared.write_words(self.kernel, mac, offset=_SH_MAC)
        result = self._call(QE_OP_QUOTE)
        if result != 0:
            return None
        signature_words = shared.read_words(self.kernel, _RSA_WORDS, offset=_SH_QUOTE)
        return Quote(
            measurement=tuple(measurement),
            report_data=tuple(data),
            signature=words_to_bytes(signature_words),
        )

    def teardown(self) -> None:
        self.handle.teardown()
