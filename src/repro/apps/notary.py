"""The trusted notary (paper section 8.2).

The notary assigns logical timestamps to documents so they can be
conclusively ordered.  On first entry it constructs an RSA key pair,
initialises a monotonic counter, and returns an attestation of its
initial state (binding the public key to the enclave measurement).  On
subsequent calls it hashes the provided document together with the
current counter value, signs the hash, increments the counter, and
returns the signature.

Two deployments share the same logic and the same cycle-cost model:

* ``NotaryEnclave`` — a native enclave program; documents arrive through
  shared insecure pages, state (key + counter) lives in secure pages.
* ``NativeNotary`` — the same computation as a plain "Linux process",
  with no monitor mediation; the Figure 5 baseline.

Since notarisation is dominated by CPU-intensive hashing and signing,
the two should perform equivalently — the point of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.arm.bits import bytes_to_words, words_to_bytes
from repro.arm.costs import CostModel
from repro.arm.memory import PAGE_SIZE, WORDS_PER_PAGE
from repro.crypto import rsa
from repro.crypto.rng import HardwareRNG
from repro.crypto.sha256 import SHA256, sha256
from repro.monitor.errors import KomErr
from repro.monitor.komodo import KomodoMonitor
from repro.osmodel.kernel import OSKernel
from repro.sdk.builder import EnclaveBuilder, EnclaveHandle
from repro.sdk.native import NativeContext, NativeEnclaveProgram

# Notary operations (passed as arg1 to Enter).
OP_INIT = 1
OP_NOTARIZE = 2
OP_GET_COUNTER = 3

# Virtual layout inside the notary enclave.
STATE_VA = 0x0010_0000  # secure page holding key + counter
SHARED_BASE_VA = 0x0020_0000  # control page, then document pages

#: RSA modulus size.  512 bits keeps pure-Python keygen fast while the
#: cost model scales signing cost with the modulus, preserving shape.
RSA_BITS = 512
_RSA_WORDS = RSA_BITS // 32

# State-page layout (words).
_ST_MAGIC = 0
_ST_COUNTER = 1
_ST_N = 2
_ST_D = _ST_N + _RSA_WORDS
_STATE_MAGIC = 0x4E4F5452  # "NOTR"

# Control-page layout (words): outputs written by the enclave.
_CTL_PUBKEY = 0  # n (modulus), _RSA_WORDS words
_CTL_MAC = _CTL_PUBKEY + _RSA_WORDS  # attestation MAC, 8 words
_CTL_SIG = _CTL_MAC + 8  # signature, _RSA_WORDS words
_CTL_COUNTER = _CTL_SIG + _RSA_WORDS  # counter used for the signature


@dataclass
class NotaryReceipt:
    """A notarisation receipt: the counter value and the signature."""

    counter: int
    signature: bytes

    def verify(self, pubkey_n: int, document: bytes) -> bool:
        """Check the receipt against the notary's public key."""
        key = rsa.RSAKeyPair(n=pubkey_n, e=65537, d=0)
        message = document + self.counter.to_bytes(4, "big")
        return rsa.verify(key, message, self.signature)


def _int_to_words(value: int, count: int) -> List[int]:
    return bytes_to_words(value.to_bytes(count * 4, "big"))


def _words_to_int(words: List[int]) -> int:
    return int.from_bytes(words_to_bytes(words), "big")


def _charge_hash(charge, data_len: int, costs: CostModel) -> None:
    """Charge SHA-256 cost for hashing ``data_len`` bytes (padding incl.)."""
    blocks = (data_len + 9 + 63) // 64
    charge(costs.sha256_init + blocks * costs.sha256_block + costs.sha256_finish)


def _sign_with_cost(
    key: rsa.RSAKeyPair, message: bytes, charge, costs: CostModel
) -> bytes:
    _charge_hash(charge, len(message), costs)
    return rsa.sign(key, message, on_cost=charge)


# ---------------------------------------------------------------------------
# Enclave deployment
# ---------------------------------------------------------------------------


def _notary_body(ctx: NativeContext, op: int, arg2: int, arg3: int):
    """The notary's enclave program (one invocation per Enter)."""
    costs = ctx.monitor.state.costs
    if op == OP_INIT:
        if ctx.read_word(STATE_VA + _ST_MAGIC * 4) == _STATE_MAGIC:
            return 0  # already initialised; idempotent
        # Key generation draws from the monitor's secure RNG.
        rng_words: List[int] = []

        class _SvcRNG(HardwareRNG):
            def read_word(inner) -> int:  # noqa: N805 - closure style
                word = ctx.get_random()
                rng_words.append(word)
                return word

        key = rsa.generate_keypair(RSA_BITS, _SvcRNG())
        yield  # preemption point after the expensive keygen
        ctx.write_word(STATE_VA + _ST_MAGIC * 4, _STATE_MAGIC)
        ctx.write_word(STATE_VA + _ST_COUNTER * 4, 0)
        ctx.write_words(STATE_VA + _ST_N * 4, _int_to_words(key.n, _RSA_WORDS))
        ctx.write_words(STATE_VA + _ST_D * 4, _int_to_words(key.d, _RSA_WORDS))
        # Publish the public key and attest to it: MAC over the enclave
        # measurement and the first 8 words of SHA-256(n).
        n_words = _int_to_words(key.n, _RSA_WORDS)
        ctx.write_words(SHARED_BASE_VA + _CTL_PUBKEY * 4, n_words)
        digest = sha256(words_to_bytes(n_words))
        data = bytes_to_words(digest)[:8]
        mac = ctx.attest(data)
        ctx.write_words(SHARED_BASE_VA + _CTL_MAC * 4, mac)
        return 0
    if op == OP_GET_COUNTER:
        return ctx.read_word(STATE_VA + _ST_COUNTER * 4)
    if op == OP_NOTARIZE:
        if ctx.read_word(STATE_VA + _ST_MAGIC * 4) != _STATE_MAGIC:
            return 0xFFFFFFFF  # not initialised
        doc_len = arg2
        if doc_len % 4 or doc_len > 0x100000:
            return 0xFFFFFFFE  # reject unaligned/oversized documents
        counter = ctx.read_word(STATE_VA + _ST_COUNTER * 4)
        # Hash the document incrementally, yielding between pages so a
        # long document stays preemptible.
        hasher = SHA256()
        doc_va = SHARED_BASE_VA + PAGE_SIZE
        remaining = doc_len
        offset = 0
        while remaining > 0:
            chunk = min(remaining, PAGE_SIZE)
            hasher.update(ctx.read_bytes(doc_va + offset, chunk))
            ctx.charge((chunk // 64) * costs.sha256_block)
            offset += chunk
            remaining -= chunk
            yield
        hasher.update(counter.to_bytes(4, "big"))
        digest = hasher.digest()
        key = rsa.RSAKeyPair(
            n=_words_to_int(ctx.read_words(STATE_VA + _ST_N * 4, _RSA_WORDS)),
            e=65537,
            d=_words_to_int(ctx.read_words(STATE_VA + _ST_D * 4, _RSA_WORDS)),
        )
        # Sign digest-of(document ‖ counter).  _sign_with_cost re-hashes
        # internally from the message; here the message is the digest
        # plus counter, so hashing cost of the body was charged above.
        signature = _sign_with_cost(
            key, digest + counter.to_bytes(4, "big"), ctx.charge, costs
        )
        ctx.write_words(SHARED_BASE_VA + _CTL_SIG * 4, bytes_to_words(signature))
        ctx.write_word(SHARED_BASE_VA + _CTL_COUNTER * 4, counter)
        ctx.write_word(STATE_VA + _ST_COUNTER * 4, counter + 1)
        return counter
    return 0xFFFFFFFD  # unknown operation


class NotaryEnclave:
    """Host-side wrapper: builds the notary enclave and drives it."""

    def __init__(self, kernel: OSKernel, max_doc_bytes: int = 512 * 1024):
        self.kernel = kernel
        self.max_doc_bytes = max_doc_bytes
        doc_pages = (max_doc_bytes + PAGE_SIZE - 1) // PAGE_SIZE
        builder = EnclaveBuilder(kernel)
        builder.add_data(va=STATE_VA, writable=True)
        builder.add_shared_buffer(va=SHARED_BASE_VA, writable=True)
        for i in range(doc_pages):
            builder.add_shared_buffer(
                va=SHARED_BASE_VA + PAGE_SIZE * (1 + i), writable=True
            )
        builder.set_native_program(NativeEnclaveProgram("notary", _notary_body))
        self.handle: EnclaveHandle = builder.build()
        self.pubkey_n: Optional[int] = None
        self.attestation_mac: Optional[List[int]] = None

    def _call(self, op: int, arg2: int = 0) -> int:
        err, value = self.handle.call(op, arg2, 0)
        if err is not KomErr.SUCCESS:
            raise RuntimeError(f"notary call failed: {err!r}")
        return value

    def init(self) -> Tuple[int, List[int]]:
        """First entry: key generation + attestation of the public key."""
        self._call(OP_INIT)
        control = self.handle.buffer(0)
        n_words = control.read_words(self.kernel, _RSA_WORDS, offset=_CTL_PUBKEY)
        self.pubkey_n = _words_to_int(n_words)
        self.attestation_mac = control.read_words(self.kernel, 8, offset=_CTL_MAC)
        return (self.pubkey_n, self.attestation_mac)

    def notarize(self, document: bytes) -> NotaryReceipt:
        """Stamp a document; returns the receipt the OS observes."""
        if len(document) % 4:
            document = document + b"\x00" * (4 - len(document) % 4)
        if len(document) > self.max_doc_bytes:
            raise ValueError("document too large for the shared region")
        words = bytes_to_words(document)
        # The OS stages the document in the shared pages.
        for i, buffer in enumerate(self.handle.buffers[1:]):
            start = i * WORDS_PER_PAGE
            if start >= len(words):
                break
            buffer.write_words(self.kernel, words[start : start + WORDS_PER_PAGE])
        counter = self._call(OP_NOTARIZE, len(document))
        control = self.handle.buffer(0)
        sig_words = control.read_words(self.kernel, _RSA_WORDS, offset=_CTL_SIG)
        return NotaryReceipt(
            counter=counter, signature=words_to_bytes(sig_words)
        )

    def counter(self) -> int:
        return self._call(OP_GET_COUNTER)

    def verify_receipt(self, document: bytes, receipt: NotaryReceipt) -> bool:
        """Verify signature over digest(document ‖ counter) ‖ counter."""
        if self.pubkey_n is None:
            raise RuntimeError("notary not initialised")
        if len(document) % 4:
            document = document + b"\x00" * (4 - len(document) % 4)
        digest = sha256(document + receipt.counter.to_bytes(4, "big"))
        key = rsa.RSAKeyPair(n=self.pubkey_n, e=65537, d=0)
        message = digest + receipt.counter.to_bytes(4, "big")
        return rsa.verify(key, message, receipt.signature)

    def teardown(self) -> None:
        self.handle.teardown()


# ---------------------------------------------------------------------------
# Native-process deployment (the Figure 5 baseline)
# ---------------------------------------------------------------------------


class NativeNotary:
    """The notary as a plain Linux process: same logic, same cost model,
    no monitor crossings, no page-table-mediated memory access."""

    def __init__(self, costs: Optional[CostModel] = None, seed: int = 0xC0FFEE):
        self.costs = costs or CostModel()
        self.cycles = 0
        self._rng = HardwareRNG(seed)
        self._key: Optional[rsa.RSAKeyPair] = None
        self._counter = 0

    def _charge(self, cycles: int) -> None:
        self.cycles += cycles

    def init(self) -> int:
        self._key = rsa.generate_keypair(RSA_BITS, self._rng)
        self._counter = 0
        return self._key.n

    def notarize(self, document: bytes) -> NotaryReceipt:
        if self._key is None:
            raise RuntimeError("notary not initialised")
        if len(document) % 4:
            document = document + b"\x00" * (4 - len(document) % 4)
        counter = self._counter
        self._charge((len(document) // 64) * self.costs.sha256_block)
        digest = sha256(document + counter.to_bytes(4, "big"))
        signature = _sign_with_cost(
            self._key, digest + counter.to_bytes(4, "big"), self._charge, self.costs
        )
        self._counter += 1
        return NotaryReceipt(counter=counter, signature=signature)

    def verify_receipt(self, document: bytes, receipt: NotaryReceipt) -> bool:
        if len(document) % 4:
            document = document + b"\x00" * (4 - len(document) % 4)
        digest = sha256(document + receipt.counter.to_bytes(4, "big"))
        message = digest + receipt.counter.to_bytes(4, "big")
        key = rsa.RSAKeyPair(n=self._key.n, e=65537, d=0)
        return rsa.verify(key, message, receipt.signature)
