"""A checksum service implemented entirely in enclave machine code.

Unlike the native-program applications, this service's logic is pure ARM
assembly executed instruction by instruction through the enclave's page
tables — a demonstration that non-trivial measured programs run on the
machine model.  It computes a word-granular CRC-32 (reflected,
polynomial 0xEDB88320) over data the OS places in a shared insecure
buffer, and returns the checksum through the Exit value.

The measured program *is* the service's identity: any change to the CRC
code changes the enclave measurement, so a caller that verifies the
measurement knows exactly which checksum algorithm ran.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.arm.assembler import Assembler
from repro.arm.memory import WORDS_PER_PAGE
from repro.monitor.errors import KomErr
from repro.monitor.layout import SVC
from repro.osmodel.kernel import OSKernel
from repro.sdk.builder import CODE_VA, SHARED_VA, EnclaveBuilder, EnclaveHandle

CRC_POLY = 0xEDB88320


def crc32_words(words: Sequence[int]) -> int:
    """Reference implementation: the same word-level CRC in Python."""
    crc = 0xFFFFFFFF
    for word in words:
        crc ^= word & 0xFFFFFFFF
        for _ in range(32):
            if crc & 1:
                crc = (crc >> 1) ^ CRC_POLY
            else:
                crc >>= 1
    return crc ^ 0xFFFFFFFF


def crc_program() -> Assembler:
    """The enclave program: r0 = word count; data at SHARED_VA.

    Register allocation: r4 = buffer cursor, r5 = remaining words,
    r6 = crc accumulator, r7 = current word, r8 = bit counter,
    r9 = polynomial, r10 = constant 1.
    """
    asm = Assembler()
    asm.mov("r5", "r0")  # word count
    asm.mov32("r4", SHARED_VA)
    asm.mov32("r6", 0xFFFFFFFF)
    asm.mov32("r9", CRC_POLY)
    asm.movw("r10", 1)
    asm.cmpi("r5", 0)
    asm.beq("done")
    asm.label("word_loop")
    asm.ldr("r7", "r4", 0)
    asm.eor("r6", "r6", "r7")
    asm.movw("r8", 32)
    asm.label("bit_loop")
    asm.tst("r6", "r10")
    asm.beq("even")
    asm.lsri("r6", "r6", 1)
    asm.eor("r6", "r6", "r9")
    asm.b("bit_done")
    asm.label("even")
    asm.lsri("r6", "r6", 1)
    asm.label("bit_done")
    asm.subi("r8", "r8", 1)
    asm.cmpi("r8", 0)
    asm.bne("bit_loop")
    asm.addi("r4", "r4", 4)
    asm.subi("r5", "r5", 1)
    asm.cmpi("r5", 0)
    asm.bne("word_loop")
    asm.label("done")
    asm.mvn("r0", "r6")  # final xor with 0xFFFFFFFF
    asm.svc(SVC.EXIT)
    return asm


class ChecksumService:
    """Host-side wrapper around the checksum enclave."""

    def __init__(self, kernel: OSKernel):
        self.kernel = kernel
        self.handle: EnclaveHandle = (
            EnclaveBuilder(kernel)
            .add_code(crc_program())
            .add_shared_buffer(va=SHARED_VA)
            .add_thread(CODE_VA)
            .build()
        )

    def measurement(self) -> List[int]:
        return self.handle.measurement()

    def checksum(self, words: Sequence[int]) -> int:
        """Stage the words and run the service to completion."""
        if len(words) > WORDS_PER_PAGE:
            raise ValueError("data exceeds the shared buffer")
        self.handle.buffer().write_words(self.kernel, list(words))
        err, value = self.handle.call(len(words))
        if err is not KomErr.SUCCESS:
            raise RuntimeError(f"checksum service failed: {err!r}")
        return value

    def teardown(self) -> None:
        self.handle.teardown()
