"""HMAC-SHA256 (RFC 2104), built on the from-scratch SHA-256.

Komodo's local attestation is a MAC over (measurement, enclave-supplied
data) keyed with a boot-time secret (paper section 4).  The monitor-side
preconditions mirror the paper's: keys and messages on the attestation
path are block-aligned word sequences, which keeps padding reasoning
trivial.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.arm.bits import to_word
from repro.crypto.sha256 import BLOCK_SIZE, SHA256, sha256

_IPAD = 0x36
_OPAD = 0x5C


def hmac_sha256(
    key: bytes, message: bytes, on_block: Optional[Callable[[], None]] = None
) -> bytes:
    """Standard HMAC-SHA256 over byte strings."""
    if len(key) > BLOCK_SIZE:
        key = sha256(key)
    key = key + b"\x00" * (BLOCK_SIZE - len(key))
    inner = SHA256(on_block=on_block)
    inner.update(bytes(b ^ _IPAD for b in key))
    inner.update(message)
    outer = SHA256(on_block=on_block)
    outer.update(bytes(b ^ _OPAD for b in key))
    outer.update(inner.digest())
    return outer.digest()


def hmac_sha256_words(
    key_words: Sequence[int],
    message_words: Sequence[int],
    on_block: Optional[Callable[[], None]] = None,
) -> List[int]:
    """HMAC over word sequences, returning 8 words (the monitor's shape)."""
    key = b"".join(to_word(w).to_bytes(4, "big") for w in key_words)
    message = b"".join(to_word(w).to_bytes(4, "big") for w in message_words)
    mac = hmac_sha256(key, message, on_block=on_block)
    return [int.from_bytes(mac[i : i + 4], "big") for i in range(0, 32, 4)]


def constant_time_equal(a: Sequence[int], b: Sequence[int]) -> bool:
    """Compare two word sequences without early exit.

    The real monitor's comparison is data-independent in its address
    trace; this mirrors that property at the model level.
    """
    if len(a) != len(b):
        return False
    difference = 0
    for x, y in zip(a, b):
        difference |= to_word(x) ^ to_word(y)
    return difference == 0
