"""Hardware random-number generator interface.

The prototype platform (Raspberry Pi 2) provides a hardware TRNG; the
monitor reads it at boot to derive the attestation key, and exposes it to
enclaves through the GetRandom SVC (paper Table 1).  We substitute a
deterministic DRBG (SHA-256 in counter mode over a seed) behind the same
interface: callers see a stream of 32-bit words.  Determinism is a
feature for the harness — noninterference bisimulation requires the two
compared executions to draw identical randomness (paper section 6.3's
"unknown integer seed").
"""

from __future__ import annotations

from typing import List

from repro.crypto.sha256 import sha256


class HardwareRNG:
    """SHA-256-CTR DRBG behind a hardware-TRNG-shaped interface."""

    def __init__(self, seed: int = 0xC0FFEE):
        self._seed = seed
        self._counter = 0
        self._pool: List[int] = []
        self.words_drawn = 0

    def read_word(self) -> int:
        """Draw one 32-bit random word (models a device-register read)."""
        if not self._pool:
            material = self._seed.to_bytes(16, "big") + self._counter.to_bytes(8, "big")
            digest = sha256(material)
            self._counter += 1
            self._pool = [
                int.from_bytes(digest[i : i + 4], "big") for i in range(0, 32, 4)
            ]
        self.words_drawn += 1
        return self._pool.pop()

    def read_words(self, count: int) -> List[int]:
        return [self.read_word() for _ in range(count)]

    def fork(self) -> "HardwareRNG":
        """An identical copy (same seed, same position in the stream)."""
        dup = HardwareRNG(self._seed)
        dup._counter = self._counter
        dup._pool = list(self._pool)
        dup.words_drawn = self.words_drawn
        return dup
