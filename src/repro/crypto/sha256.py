"""SHA-256, implemented from scratch (FIPS 180-4).

The monitor uses SHA-256 for two purposes: the incremental enclave
measurement computed during construction, and as the compression core of
the HMAC used for local attestation.  As in the paper's implementation
(section 7.2), the monitor only ever hashes block-aligned data, so the
incremental interface exposes a block-at-a-time ``update_block`` used by
the measurement code, alongside a conventional byte-stream interface.

A cycle-accounting hook lets the monitor charge the cost model per
compression; the implementation itself is pure.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.arm.bits import add_wrap, ror, to_word

BLOCK_SIZE = 64  # bytes
DIGEST_SIZE = 32  # bytes
DIGEST_WORDS = 8

# First 32 bits of the fractional parts of the cube roots of the first
# 64 primes (the standard round constants).
_K = [
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
    0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
    0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC,
    0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7,
    0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
    0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
    0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3,
    0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5,
    0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
    0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
]

# Initial hash values: first 32 bits of the fractional parts of the
# square roots of the first 8 primes.
_H0 = [
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
]


def _compress(state: List[int], block: Sequence[int]) -> List[int]:
    """One SHA-256 compression over a 16-word block."""
    w = list(block)
    for t in range(16, 64):
        s0 = ror(w[t - 15], 7) ^ ror(w[t - 15], 18) ^ (w[t - 15] >> 3)
        s1 = ror(w[t - 2], 17) ^ ror(w[t - 2], 19) ^ (w[t - 2] >> 10)
        w.append(to_word(w[t - 16] + s0 + w[t - 7] + s1))
    a, b, c, d, e, f, g, h = state
    for t in range(64):
        big_s1 = ror(e, 6) ^ ror(e, 11) ^ ror(e, 25)
        ch = (e & f) ^ (to_word(~e) & g)
        temp1 = to_word(h + big_s1 + ch + _K[t] + w[t])
        big_s0 = ror(a, 2) ^ ror(a, 13) ^ ror(a, 22)
        maj = (a & b) ^ (a & c) ^ (b & c)
        temp2 = to_word(big_s0 + maj)
        h = g
        g = f
        f = e
        e = to_word(d + temp1)
        d = c
        c = b
        b = a
        a = to_word(temp1 + temp2)
    return [
        add_wrap(state[0], a),
        add_wrap(state[1], b),
        add_wrap(state[2], c),
        add_wrap(state[3], d),
        add_wrap(state[4], e),
        add_wrap(state[5], f),
        add_wrap(state[6], g),
        add_wrap(state[7], h),
    ]


class SHA256:
    """Incremental SHA-256.

    ``on_block`` is an optional callback invoked once per compression; the
    monitor uses it to charge ``CostModel.sha256_block`` cycles so hashing
    cost scales with the data actually hashed.
    """

    def __init__(self, on_block: Optional[Callable[[], None]] = None):
        self._state = list(_H0)
        self._buffer = bytearray()
        self._length = 0  # total bytes consumed
        self._on_block = on_block
        self._finished = False

    # -- block-aligned interface (monitor measurement path) ---------------

    @property
    def state_words(self) -> List[int]:
        """The current 8-word chaining state (stored in addrspace pages)."""
        return list(self._state)

    @classmethod
    def from_state(
        cls,
        state: Sequence[int],
        length: int,
        on_block: Optional[Callable[[], None]] = None,
    ) -> "SHA256":
        """Rebuild an incremental hash from saved chaining state.

        The monitor persists the measurement's chaining state and running
        length inside the addrspace page between MapSecure calls; this
        constructor resumes from that representation.  ``length`` must be
        block aligned (the monitor only hashes block-aligned data).
        """
        if len(state) != DIGEST_WORDS:
            raise ValueError("chaining state must be 8 words")
        if length % BLOCK_SIZE:
            raise ValueError("resumed length must be block aligned")
        hasher = cls(on_block=on_block)
        hasher._state = [to_word(w) for w in state]
        hasher._length = length
        return hasher

    def update_block_words(self, words: Sequence[int]) -> None:
        """Consume one 64-byte block given as 16 words."""
        if self._finished:
            raise RuntimeError("hash already finalised")
        if self._buffer:
            raise RuntimeError("block interface mixed with unaligned bytes")
        if len(words) != 16:
            raise ValueError("a block is exactly 16 words")
        self._state = _compress(self._state, [to_word(w) for w in words])
        self._length += BLOCK_SIZE
        if self._on_block:
            self._on_block()

    # -- byte-stream interface ------------------------------------------------

    def update(self, data: bytes) -> None:
        if self._finished:
            raise RuntimeError("hash already finalised")
        self._buffer += data
        self._length += len(data)
        while len(self._buffer) >= BLOCK_SIZE:
            block = self._buffer[:BLOCK_SIZE]
            del self._buffer[:BLOCK_SIZE]
            words = [int.from_bytes(block[i : i + 4], "big") for i in range(0, 64, 4)]
            self._state = _compress(self._state, words)
            if self._on_block:
                self._on_block()

    def digest(self) -> bytes:
        """Finalise (pad) and return the 32-byte digest."""
        if not self._finished:
            bit_length = self._length * 8
            padding = b"\x80" + b"\x00" * ((55 - self._length) % 64)
            self.update(padding + bit_length.to_bytes(8, "big"))
            # update() adjusted _length for the padding; that is fine, we
            # never use it again.
            self._finished = True
            self._digest_words = list(self._state)
        return b"".join(w.to_bytes(4, "big") for w in self._digest_words)

    def digest_words(self) -> List[int]:
        """The digest as 8 words (the monitor's native representation)."""
        self.digest()
        return list(self._digest_words)

    def hexdigest(self) -> str:
        return self.digest().hex()


def sha256(data: bytes) -> bytes:
    """One-shot SHA-256."""
    hasher = SHA256()
    hasher.update(data)
    return hasher.digest()


def sha256_words(words: Sequence[int]) -> List[int]:
    """One-shot SHA-256 over a word sequence, returning 8 words."""
    hasher = SHA256()
    hasher.update(b"".join(to_word(w).to_bytes(4, "big") for w in words))
    return hasher.digest_words()
