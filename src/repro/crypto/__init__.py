"""Cryptographic substrate.

The paper's prototype borrows a verified ARM SHA-256 from Vale and builds
an HMAC-SHA256 attestation MAC on top, with a hardware RNG supplying the
boot-time attestation secret.  This package provides from-scratch Python
implementations of the same primitives (tested against standard vectors
and ``hashlib``), plus the RSA signing the notary application needs.
"""

from repro.crypto.hmac import hmac_sha256, hmac_sha256_words
from repro.crypto.rng import HardwareRNG
from repro.crypto.sha256 import SHA256, sha256

__all__ = ["HardwareRNG", "SHA256", "hmac_sha256", "hmac_sha256_words", "sha256"]
