"""RSA signing, from scratch, for the notary application.

The paper's notary enclave (section 8.2) constructs an RSA key pair on
first entry and signs SHA-256 hashes of documents.  We implement the
pieces it needs: Miller–Rabin primality testing, key generation driven by
an explicit RNG (so enclave and native runs can be made identical), and
a PKCS#1-v1.5-style signature over a SHA-256 digest.

This is a functional model, not hardened cryptography: no blinding, no
constant-time bignum arithmetic.  The evaluation only needs the cost
*shape* (CPU-bound signing dominating notarisation latency), which the
cost hooks provide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.crypto.rng import HardwareRNG
from repro.crypto.sha256 import sha256

# DER prefix identifying a SHA-256 DigestInfo in PKCS#1 v1.5 signatures.
_SHA256_DIGEST_INFO = bytes.fromhex("3031300d060960864801650304020105000420")

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
]


def _rng_int(rng: HardwareRNG, bits: int) -> int:
    """Draw a ``bits``-wide integer from the hardware RNG."""
    words = (bits + 31) // 32
    value = 0
    for _ in range(words):
        value = (value << 32) | rng.read_word()
    return value & ((1 << bits) - 1)


def is_probable_prime(n: int, rng: HardwareRNG, rounds: int = 16) -> bool:
    """Miller–Rabin primality test with RNG-chosen witnesses."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = 2 + _rng_int(rng, n.bit_length()) % (n - 3)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: HardwareRNG) -> int:
    """Generate an odd prime of exactly ``bits`` bits."""
    while True:
        candidate = _rng_int(rng, bits)
        candidate |= (1 << (bits - 1)) | 1  # full width, odd
        if is_probable_prime(candidate, rng):
            return candidate


@dataclass
class RSAKeyPair:
    """An RSA key pair (n, e, d) with the modulus size in bytes."""

    n: int
    e: int
    d: int

    @property
    def size_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8


def generate_keypair(bits: int, rng: HardwareRNG, e: int = 65537) -> RSAKeyPair:
    """Generate an RSA key pair of ``bits`` modulus bits."""
    if bits < 128:
        raise ValueError("modulus too small to be meaningful")
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        try:
            d = pow(e, -1, phi)
        except ValueError:
            continue
        if n.bit_length() == bits:
            return RSAKeyPair(n=n, e=e, d=d)


def _pad_digest(digest: bytes, size: int) -> int:
    """EMSA-PKCS1-v1_5 encoding of a SHA-256 digest."""
    payload = _SHA256_DIGEST_INFO + digest
    if size < len(payload) + 11:
        raise ValueError("modulus too small for PKCS#1 v1.5 padding")
    padded = b"\x00\x01" + b"\xff" * (size - len(payload) - 3) + b"\x00" + payload
    return int.from_bytes(padded, "big")


def sign(
    key: RSAKeyPair, message: bytes, on_cost: Optional[Callable[[int], None]] = None
) -> bytes:
    """Sign SHA-256(message); ``on_cost`` receives a modexp cost estimate."""
    digest = sha256(message)
    encoded = _pad_digest(digest, key.size_bytes)
    if on_cost:
        # One modular exponentiation: ~bits squarings + ~bits/2 multiplies,
        # each quadratic in the word count of the modulus.
        words = (key.n.bit_length() + 31) // 32
        on_cost(int(1.5 * key.n.bit_length() * words * words))
    signature = pow(encoded, key.d, key.n)
    return signature.to_bytes(key.size_bytes, "big")


def verify(key: RSAKeyPair, message: bytes, signature: bytes) -> bool:
    """Verify a signature produced by ``sign``."""
    if len(signature) != key.size_bytes:
        return False
    value = int.from_bytes(signature, "big")
    if value >= key.n:
        return False
    recovered = pow(value, key.e, key.n)
    expected = _pad_digest(sha256(message), key.size_bytes)
    return recovered == expected
