"""PageDB validity invariants (paper section 5.2).

A valid PageDB satisfies internal-consistency invariants: reference
counts are correct; internal references (including page-table pointers)
point to pages of the correct type belonging to the same address space;
and all leaf pages mapped in a page table are either insecure pages or
data pages allocated to the same address space.  The paper proves every
SMC and SVC preserves these; the harness *checks* them after every call.
"""

from __future__ import annotations

from typing import List

from repro.arm.memory import PAGE_SIZE, WORDS_PER_PAGE
from repro.arm.pagetable import L1_ENTRIES, L2_ENTRIES
from repro.monitor.layout import AddrspaceState
from repro.spec.pagedb import (
    AbsAddrspace,
    AbsData,
    AbsFree,
    AbsL1,
    AbsL2,
    AbsPageDb,
    AbsSpare,
    AbsThread,
)


class InvariantViolation(AssertionError):
    """A PageDB state failed a validity invariant."""


def check_invariants(db: AbsPageDb, memmap=None) -> None:
    """Check every validity invariant; raises InvariantViolation.

    ``memmap`` (optional) enables the insecure-range checks on insecure
    mappings; without it those are skipped.
    """
    failures = collect_violations(db, memmap) + collect_refcount_violations(db)
    if failures:
        raise InvariantViolation("; ".join(failures))


def collect_violations(db: AbsPageDb, memmap=None) -> List[str]:
    """All invariant violations in ``db`` (empty list = valid)."""
    failures: List[str] = []
    for pageno in range(db.npages):
        entry = db[pageno]
        if isinstance(entry, AbsFree):
            continue
        if isinstance(entry, AbsAddrspace):
            failures += _check_addrspace(db, pageno, entry)
        elif isinstance(entry, AbsThread):
            failures += _check_owned(db, pageno, entry.addrspace, "thread")
            failures += _check_thread(db, pageno, entry)
        elif isinstance(entry, AbsL1):
            failures += _check_owned(db, pageno, entry.addrspace, "L1 table")
            if not _owner_stopped(db, entry.addrspace):
                failures += _check_l1(db, pageno, entry)
        elif isinstance(entry, AbsL2):
            failures += _check_owned(db, pageno, entry.addrspace, "L2 table")
            if not _owner_stopped(db, entry.addrspace):
                failures += _check_l2(db, pageno, entry, memmap)
        elif isinstance(entry, AbsData):
            failures += _check_owned(db, pageno, entry.addrspace, "data page")
            if len(entry.contents) != WORDS_PER_PAGE:
                failures.append(f"data page {pageno} has wrong contents size")
        elif isinstance(entry, AbsSpare):
            failures += _check_owned(db, pageno, entry.addrspace, "spare page")
        else:
            failures.append(f"page {pageno} has unknown entry type {type(entry)}")
    return failures


def collect_refcount_violations(db: AbsPageDb) -> List[str]:
    """Audit every addrspace refcount against a from-scratch recount.

    Independent of :func:`collect_violations`'s per-addrspace check (which
    goes through ``AbsPageDb.pages_of``): this sweeps the whole PageDB
    once, tallies ownership attributions itself, and compares.  A bug in
    ``pages_of`` therefore cannot mask a refcount drift — the two checks
    only agree when both the counts and the ownership index are right.
    Used as the per-path postcondition of the symbolic SMC-path explorer.
    """
    counts = {}
    failures: List[str] = []
    for pageno in range(db.npages):
        entry = db[pageno]
        if isinstance(entry, AbsFree) or isinstance(entry, AbsAddrspace):
            continue
        owner = entry.addrspace
        counts[owner] = counts.get(owner, 0) + 1
    for owner in sorted(counts):
        if not db.valid_pageno(owner) or not isinstance(db[owner], AbsAddrspace):
            failures.append(
                f"refcount audit: {counts[owner]} page(s) attribute ownership "
                f"to {owner}, which is not an addrspace"
            )
    for pageno in range(db.npages):
        entry = db[pageno]
        if isinstance(entry, AbsAddrspace):
            recount = counts.get(pageno, 0)
            if entry.refcount != recount:
                failures.append(
                    f"refcount audit: addrspace {pageno} claims "
                    f"{entry.refcount} owned pages, recount found {recount}"
                )
    return failures


def collect_quarantine_violations(db: AbsPageDb, quarantined) -> List[str]:
    """The graceful-degradation property of the memory-integrity layer.

    A quarantined page keeps its PageDB entry (so refcounts and audits
    stay consistent), and quarantining force-stops exactly the owning
    addrspace: every page in ``quarantined`` must therefore still be
    allocated, and its owner must be a stopped addrspace.  Anything else
    means corruption escaped containment — the one thing the subsystem
    exists to prevent.
    """
    failures: List[str] = []
    for pageno in quarantined:
        if not db.valid_pageno(pageno):
            failures.append(f"quarantined page {pageno} out of range")
            continue
        entry = db[pageno]
        if isinstance(entry, AbsFree):
            failures.append(
                f"quarantined page {pageno} is free (flag not retired on Remove)"
            )
            continue
        owner = pageno if isinstance(entry, AbsAddrspace) else entry.addrspace
        if not _owner_stopped(db, owner):
            failures.append(
                f"quarantined page {pageno}: owner {owner} is not a stopped addrspace"
            )
    return failures


def _owner_stopped(db: AbsPageDb, addrspace: int) -> bool:
    """Page-table well-formedness is not required of *stopped* enclaves:
    the OS may Remove their pages in any order, leaving dangling table
    references, and a stopped enclave can never execute over them (the
    invariant weakening the paper describes for deallocation)."""
    if not db.valid_pageno(addrspace):
        return False
    entry = db[addrspace]
    return isinstance(entry, AbsAddrspace) and entry.state is AddrspaceState.STOPPED


def _check_owned(db: AbsPageDb, pageno: int, addrspace: int, kind: str) -> List[str]:
    """An allocated page's owner must be a live addrspace page."""
    if not db.valid_pageno(addrspace):
        return [f"{kind} {pageno} has invalid owner {addrspace}"]
    if not isinstance(db[addrspace], AbsAddrspace):
        return [f"{kind} {pageno} owner {addrspace} is not an addrspace"]
    return []


def _check_addrspace(db: AbsPageDb, pageno: int, entry: AbsAddrspace) -> List[str]:
    failures = []
    # Refcount correctness: counts every owned page except itself.
    owned = [p for p in db.pages_of(pageno) if p != pageno]
    if entry.refcount != len(owned):
        failures.append(
            f"addrspace {pageno} refcount {entry.refcount} != owned {len(owned)}"
        )
    # The L1 pointer references an L1 table of this addrspace.  A stopped
    # addrspace may already have had its L1 table removed (dangling
    # pointers are harmless once execution is impossible).
    if entry.state is not AddrspaceState.STOPPED:
        if not db.valid_pageno(entry.l1pt):
            failures.append(f"addrspace {pageno} l1pt {entry.l1pt} invalid")
        else:
            l1 = db[entry.l1pt]
            if not isinstance(l1, AbsL1):
                failures.append(
                    f"addrspace {pageno} l1pt {entry.l1pt} not an L1 table"
                )
            elif l1.addrspace != pageno:
                failures.append(f"addrspace {pageno} l1pt belongs to {l1.addrspace}")
    if entry.state not in (
        AddrspaceState.INIT,
        AddrspaceState.FINAL,
        AddrspaceState.STOPPED,
    ):
        failures.append(f"addrspace {pageno} has invalid state {entry.state}")
    # A finalised addrspace has a measurement; an INIT one does not.
    if entry.state is AddrspaceState.INIT and entry.measurement is not None:
        failures.append(f"addrspace {pageno} measured before finalisation")
    if entry.state is AddrspaceState.FINAL and entry.measurement is None:
        failures.append(f"addrspace {pageno} finalised without measurement")
    return failures


def _check_thread(db: AbsPageDb, pageno: int, entry: AbsThread) -> List[str]:
    failures = []
    if entry.entered and entry.context is None:
        failures.append(f"thread {pageno} entered without saved context")
    if not entry.entered and entry.context is not None:
        failures.append(f"thread {pageno} has stale context")
    if entry.context is not None and len(entry.context) != 17:
        failures.append(f"thread {pageno} context has wrong arity")
    if entry.in_handler and entry.fault_handler == 0:
        # A live handler frame with no registered handler is unreachable:
        # the upcall requires a handler, and clearing it from inside the
        # handler is rejected (INVALID_CALL).  Catches torn crash states.
        failures.append(f"thread {pageno} in fault handler without a registered handler")
    return failures


def _check_l1(db: AbsPageDb, pageno: int, entry: AbsL1) -> List[str]:
    failures = []
    if len(entry.entries) != L1_ENTRIES:
        return [f"L1 table {pageno} has wrong arity"]
    seen = set()
    for index, l2page in enumerate(entry.entries):
        if l2page is None:
            continue
        if not db.valid_pageno(l2page):
            failures.append(f"L1 {pageno}[{index}] -> invalid page {l2page}")
            continue
        target = db[l2page]
        if not isinstance(target, AbsL2):
            failures.append(f"L1 {pageno}[{index}] -> non-L2 page {l2page}")
        elif target.addrspace != entry.addrspace:
            failures.append(f"L1 {pageno}[{index}] crosses addrspaces")
        if l2page in seen:
            failures.append(f"L1 {pageno} references L2 {l2page} twice")
        seen.add(l2page)
    return failures


def _check_l2(db: AbsPageDb, pageno: int, entry: AbsL2, memmap) -> List[str]:
    failures = []
    if len(entry.entries) != L2_ENTRIES:
        return [f"L2 table {pageno} has wrong arity"]
    for index, mapping in enumerate(entry.entries):
        if mapping is None:
            continue
        both = mapping.secure_page is not None and mapping.insecure_base is not None
        neither = mapping.secure_page is None and mapping.insecure_base is None
        if both or neither:
            failures.append(f"L2 {pageno}[{index}] malformed mapping")
            continue
        if mapping.secure_page is not None:
            # Leaf secure pages must be data pages of the same addrspace.
            target = mapping.secure_page
            if not db.valid_pageno(target):
                failures.append(f"L2 {pageno}[{index}] -> invalid page {target}")
            elif not isinstance(db[target], AbsData):
                failures.append(f"L2 {pageno}[{index}] -> non-data secure page")
            elif db[target].addrspace != entry.addrspace:
                failures.append(f"L2 {pageno}[{index}] maps another enclave's page")
        else:
            # Insecure mappings must target insecure RAM and be
            # non-executable (the OS can rewrite them at will).
            if mapping.executable:
                failures.append(f"L2 {pageno}[{index}] executable insecure mapping")
            if memmap is not None:
                base = mapping.insecure_base
                if base % PAGE_SIZE or not memmap.is_insecure(base):
                    failures.append(
                        f"L2 {pageno}[{index}] insecure mapping outside insecure RAM"
                    )
        if not mapping.readable:
            failures.append(f"L2 {pageno}[{index}] unreadable mapping")
    return failures
