"""Abstract PageDB: the specification's view of secure pages.

The abstract representation deliberately hides implementation detail
(paper section 5.2): page tables are entries in an abstract data type,
the enclave measurement is an unbounded sequence of words, and data-page
contents are word tuples.  The concrete monitor is free to choose any
in-memory representation that *refines* this one; the extraction function
in ``repro.verification.extract`` witnesses that refinement.

Entries are immutable; spec functions return new PageDBs, which keeps the
spec honestly side-effect free and makes bisimulation cheap (structural
equality).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.arm.memory import WORDS_PER_PAGE
from repro.arm.pagetable import L1_ENTRIES, L2_ENTRIES
from repro.monitor.layout import AddrspaceState


@dataclass(frozen=True)
class AbsFree:
    """An unallocated secure page."""


@dataclass(frozen=True)
class AbsAddrspace:
    """An address-space page: the identity of an enclave."""

    state: AddrspaceState
    refcount: int
    l1pt: int
    #: The sequence of words measured so far (the spec's unbounded
    #: measurement); hashed only at finalisation.
    measured: Tuple[int, ...] = ()
    #: The 8-word measurement, present once finalised.
    measurement: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True)
class AbsThread:
    """A thread page: entry point plus (when suspended) saved context."""

    addrspace: int
    entrypoint: int
    entered: bool = False
    #: Saved user-visible context when suspended: (r0..r12, sp, lr, pc, cpsr)
    context: Optional[Tuple[int, ...]] = None
    #: Dispatcher interface (section 9.2): registered fault-handler VA
    #: (0 = none) and whether the handler frame is live.
    fault_handler: int = 0
    in_handler: bool = False


@dataclass(frozen=True)
class AbsL1:
    """A first-level page table: L1_ENTRIES optional L2 page numbers."""

    addrspace: int
    entries: Tuple[Optional[int], ...] = (None,) * L1_ENTRIES


@dataclass(frozen=True)
class AbsMappingEntry:
    """One L2 slot: a secure page or an insecure physical frame."""

    secure_page: Optional[int]  # secure pageno, or None for insecure
    insecure_base: Optional[int]  # physical base, or None for secure
    readable: bool
    writable: bool
    executable: bool


@dataclass(frozen=True)
class AbsL2:
    """A second-level page table: L2_ENTRIES optional mappings."""

    addrspace: int
    entries: Tuple[Optional[AbsMappingEntry], ...] = (None,) * L2_ENTRIES


@dataclass(frozen=True)
class AbsData:
    """A secure data page with its full contents."""

    addrspace: int
    contents: Tuple[int, ...] = (0,) * WORDS_PER_PAGE


@dataclass(frozen=True)
class AbsSpare:
    """A spare page donated by the OS, not yet mapped by the enclave."""

    addrspace: int


AbsEntry = object  # union of the entry dataclasses above


@dataclass(frozen=True)
class AbsPageDb:
    """The abstract PageDB: page number -> entry, for npages pages."""

    npages: int
    entries: Tuple[AbsEntry, ...]

    @classmethod
    def initial(cls, npages: int) -> "AbsPageDb":
        return cls(npages=npages, entries=tuple(AbsFree() for _ in range(npages)))

    def __getitem__(self, pageno: int) -> AbsEntry:
        return self.entries[pageno]

    def valid_pageno(self, pageno: int) -> bool:
        return isinstance(pageno, int) and 0 <= pageno < self.npages

    def updated(self, pageno: int, entry: AbsEntry) -> "AbsPageDb":
        """A copy with one entry replaced."""
        entries = list(self.entries)
        entries[pageno] = entry
        return AbsPageDb(npages=self.npages, entries=tuple(entries))

    def updated_many(self, changes: Dict[int, AbsEntry]) -> "AbsPageDb":
        entries = list(self.entries)
        for pageno, entry in changes.items():
            entries[pageno] = entry
        return AbsPageDb(npages=self.npages, entries=tuple(entries))

    # -- queries used throughout the spec and the security relations ------

    def is_free(self, pageno: int) -> bool:
        return isinstance(self[pageno], AbsFree)

    def free_pages(self) -> List[int]:
        return [i for i in range(self.npages) if self.is_free(i)]

    def owner_of(self, pageno: int) -> Optional[int]:
        """The addrspace a page belongs to (an addrspace owns itself)."""
        entry = self[pageno]
        if isinstance(entry, AbsFree):
            return None
        if isinstance(entry, AbsAddrspace):
            return pageno
        return entry.addrspace

    def pages_of(self, addrspace: int) -> List[int]:
        """All pages belonging to ``addrspace`` (including itself)."""
        return [
            i for i in range(self.npages) if self.owner_of(i) == addrspace
        ]

    def addrspaces(self) -> List[int]:
        return [
            i for i in range(self.npages) if isinstance(self[i], AbsAddrspace)
        ]

    def l2_tables_of(self, addrspace: int) -> List[int]:
        return [
            i
            for i in range(self.npages)
            if isinstance(self[i], AbsL2) and self[i].addrspace == addrspace
        ]

    def mapped_entries(self, addrspace: int) -> List[Tuple[int, int, AbsMappingEntry]]:
        """All live mappings of an addrspace: (l1index, l2index, entry)."""
        entry = self[addrspace]
        if not isinstance(entry, AbsAddrspace):
            return []
        l1 = self[entry.l1pt]
        if not isinstance(l1, AbsL1):
            return []
        result = []
        for l1index, l2page in enumerate(l1.entries):
            if l2page is None:
                continue
            l2 = self[l2page]
            if not isinstance(l2, AbsL2):
                continue
            for l2index, mapping in enumerate(l2.entries):
                if mapping is not None:
                    result.append((l1index, l2index, mapping))
        return result
