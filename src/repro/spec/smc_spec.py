"""Pure-functional SMC specification (paper section 5.2).

Each non-executing monitor call is specified as a pure function that,
given an input PageDB and call parameters, computes an error/success code
and a resulting PageDB.  The implementation is checked against these
functions by the refinement harness; equality of the resulting abstract
states *is* the refinement relation.

Measurement in the spec is the unbounded sequence of measured words; the
implementation's incremental SHA-256 chaining state refines it (checked
by re-hashing the abstract sequence, see ``repro.verification``).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.arm.pagetable import L1_ENTRIES
from repro.monitor.errors import KomErr
from repro.monitor.layout import AddrspaceState, Mapping, mapping_word_valid
from repro.monitor.measurement import MEASURE_INITTHREAD, MEASURE_MAPSECURE
from repro.spec.pagedb import (
    AbsAddrspace,
    AbsData,
    AbsFree,
    AbsL1,
    AbsL2,
    AbsMappingEntry,
    AbsPageDb,
    AbsSpare,
    AbsThread,
)

SpecResult = Tuple[KomErr, AbsPageDb]

#: Words per measurement record (one SHA-256 block), as in the monitor.
_RECORD_WORDS = 16


def _record(tag: int, arg1: int, arg2: int) -> Tuple[int, ...]:
    return tuple([tag, arg1, arg2] + [0] * (_RECORD_WORDS - 3))


def spec_get_physpages(db: AbsPageDb) -> Tuple[KomErr, int, AbsPageDb]:
    return (KomErr.SUCCESS, db.npages, db)


def spec_init_addrspace(db: AbsPageDb, as_page: int, l1pt_page: int) -> SpecResult:
    if not db.valid_pageno(as_page) or not db.valid_pageno(l1pt_page):
        return (KomErr.INVALID_PAGENO, db)
    if as_page == l1pt_page:
        return (KomErr.INVALID_PAGENO, db)
    if not db.is_free(as_page) or not db.is_free(l1pt_page):
        return (KomErr.PAGEINUSE, db)
    new = db.updated_many(
        {
            as_page: AbsAddrspace(
                state=AddrspaceState.INIT, refcount=1, l1pt=l1pt_page
            ),
            l1pt_page: AbsL1(addrspace=as_page),
        }
    )
    return (KomErr.SUCCESS, new)


def _addrspace_err(db: AbsPageDb, as_page: int) -> Optional[KomErr]:
    if not db.valid_pageno(as_page):
        return KomErr.INVALID_PAGENO
    if not isinstance(db[as_page], AbsAddrspace):
        return KomErr.INVALID_ADDRSPACE
    return None


def _init_addrspace_err(db: AbsPageDb, as_page: int) -> Optional[KomErr]:
    err = _addrspace_err(db, as_page)
    if err is not None:
        return err
    state = db[as_page].state
    if state is AddrspaceState.FINAL:
        return KomErr.ALREADY_FINAL
    if state is AddrspaceState.STOPPED:
        return KomErr.STOPPED
    return None


def _bump(entry: AbsAddrspace, delta: int = 1, **changes) -> AbsAddrspace:
    from dataclasses import replace

    return replace(entry, refcount=entry.refcount + delta, **changes)


def spec_init_thread(
    db: AbsPageDb, as_page: int, thread_page: int, entry: int
) -> SpecResult:
    err = _init_addrspace_err(db, as_page)
    if err is not None:
        return (err, db)
    if not db.valid_pageno(thread_page):
        return (KomErr.INVALID_PAGENO, db)
    if not db.is_free(thread_page):
        return (KomErr.PAGEINUSE, db)
    aspace = db[as_page]
    new = db.updated_many(
        {
            thread_page: AbsThread(addrspace=as_page, entrypoint=entry),
            as_page: _bump(
                aspace,
                measured=aspace.measured + _record(MEASURE_INITTHREAD, entry, 0),
            ),
        }
    )
    return (KomErr.SUCCESS, new)


def spec_init_l2ptable(
    db: AbsPageDb, as_page: int, l2pt_page: int, l1index: int
) -> SpecResult:
    err = _init_addrspace_err(db, as_page)
    if err is not None:
        return (err, db)
    if not db.valid_pageno(l2pt_page):
        return (KomErr.INVALID_PAGENO, db)
    if not db.is_free(l2pt_page):
        return (KomErr.PAGEINUSE, db)
    if not 0 <= l1index < L1_ENTRIES:
        return (KomErr.INVALID_MAPPING, db)
    aspace = db[as_page]
    l1 = db[aspace.l1pt]
    if l1.entries[l1index] is not None:
        return (KomErr.ADDRINUSE, db)
    entries = list(l1.entries)
    entries[l1index] = l2pt_page
    new = db.updated_many(
        {
            l2pt_page: AbsL2(addrspace=as_page),
            aspace.l1pt: AbsL1(addrspace=as_page, entries=tuple(entries)),
            as_page: _bump(aspace),
        }
    )
    return (KomErr.SUCCESS, new)


def spec_alloc_spare(db: AbsPageDb, as_page: int, spare_page: int) -> SpecResult:
    err = _addrspace_err(db, as_page)
    if err is not None:
        return (err, db)
    if db[as_page].state is AddrspaceState.STOPPED:
        return (KomErr.STOPPED, db)
    if not db.valid_pageno(spare_page):
        return (KomErr.INVALID_PAGENO, db)
    if not db.is_free(spare_page):
        return (KomErr.PAGEINUSE, db)
    new = db.updated_many(
        {
            spare_page: AbsSpare(addrspace=as_page),
            as_page: _bump(db[as_page]),
        }
    )
    return (KomErr.SUCCESS, new)


def _l2_slot(db: AbsPageDb, as_page: int, mapping: Mapping):
    """Locate the L2 table + slot for a mapping: (err, l2page, l2index)."""
    aspace = db[as_page]
    l1 = db[aspace.l1pt]
    l2page = l1.entries[mapping.l1index]
    if l2page is None:
        return (KomErr.INVALID_MAPPING, None, None)
    return (None, l2page, mapping.l2index)


def spec_map_secure(
    db: AbsPageDb,
    as_page: int,
    data_page: int,
    mapping_word: int,
    contents: Sequence[int],
    insecure_valid: bool,
) -> SpecResult:
    """MapSecure: ``contents`` is the source page's words (or zeros).

    ``insecure_valid`` abstracts the machine-level check that the source
    address is a page-aligned insecure address (the spec has no memory
    map, so validity is a parameter supplied by the extraction layer).
    """
    err = _init_addrspace_err(db, as_page)
    if err is not None:
        return (err, db)
    if not db.valid_pageno(data_page):
        return (KomErr.INVALID_PAGENO, db)
    if not db.is_free(data_page):
        return (KomErr.PAGEINUSE, db)
    if not mapping_word_valid(mapping_word):
        return (KomErr.INVALID_MAPPING, db)
    if not insecure_valid:
        return (KomErr.INSECURE_INVALID, db)
    mapping = Mapping.decode(mapping_word)
    err, l2page, l2index = _l2_slot(db, as_page, mapping)
    if err is not None:
        return (err, db)
    l2 = db[l2page]
    if l2.entries[l2index] is not None:
        return (KomErr.ADDRINUSE, db)
    entries = list(l2.entries)
    entries[l2index] = AbsMappingEntry(
        secure_page=data_page,
        insecure_base=None,
        readable=mapping.readable,
        writable=mapping.writable,
        executable=mapping.executable,
    )
    aspace = db[as_page]
    measured = (
        aspace.measured
        + _record(MEASURE_MAPSECURE, mapping_word, 0)
        + tuple(contents)
    )
    new = db.updated_many(
        {
            data_page: AbsData(addrspace=as_page, contents=tuple(contents)),
            l2page: AbsL2(addrspace=as_page, entries=tuple(entries)),
            as_page: _bump(aspace, measured=measured),
        }
    )
    return (KomErr.SUCCESS, new)


def spec_map_insecure(
    db: AbsPageDb,
    as_page: int,
    mapping_word: int,
    target: int,
    insecure_valid: bool,
) -> SpecResult:
    err = _init_addrspace_err(db, as_page)
    if err is not None:
        return (err, db)
    if not mapping_word_valid(mapping_word):
        return (KomErr.INVALID_MAPPING, db)
    mapping = Mapping.decode(mapping_word)
    if mapping.executable:
        return (KomErr.INVALID_MAPPING, db)
    if not insecure_valid:
        return (KomErr.INSECURE_INVALID, db)
    err, l2page, l2index = _l2_slot(db, as_page, mapping)
    if err is not None:
        return (err, db)
    l2 = db[l2page]
    if l2.entries[l2index] is not None:
        return (KomErr.ADDRINUSE, db)
    entries = list(l2.entries)
    entries[l2index] = AbsMappingEntry(
        secure_page=None,
        insecure_base=target,
        readable=mapping.readable,
        writable=mapping.writable,
        executable=False,
    )
    new = db.updated(l2page, AbsL2(addrspace=as_page, entries=tuple(entries)))
    return (KomErr.SUCCESS, new)


def spec_finalise(db: AbsPageDb, as_page: int) -> SpecResult:
    err = _init_addrspace_err(db, as_page)
    if err is not None:
        return (err, db)
    from dataclasses import replace

    from repro.crypto.sha256 import SHA256

    aspace = db[as_page]
    hasher = SHA256()
    hasher.update(b"".join((w & 0xFFFFFFFF).to_bytes(4, "big") for w in aspace.measured))
    digest = tuple(hasher.digest_words())
    new = db.updated(
        as_page,
        replace(aspace, state=AddrspaceState.FINAL, measurement=digest),
    )
    return (KomErr.SUCCESS, new)


def spec_stop(db: AbsPageDb, as_page: int) -> SpecResult:
    err = _addrspace_err(db, as_page)
    if err is not None:
        return (err, db)
    from dataclasses import replace

    new = db.updated(as_page, replace(db[as_page], state=AddrspaceState.STOPPED))
    return (KomErr.SUCCESS, new)


def spec_remove(db: AbsPageDb, pageno: int) -> SpecResult:
    if not db.valid_pageno(pageno):
        return (KomErr.INVALID_PAGENO, db)
    entry = db[pageno]
    if isinstance(entry, AbsFree):
        return (KomErr.INVALID_PAGENO, db)
    if isinstance(entry, AbsAddrspace):
        if entry.state is not AddrspaceState.STOPPED:
            return (KomErr.NOT_STOPPED, db)
        if entry.refcount != 0:
            return (KomErr.PAGEINUSE, db)
        return (KomErr.SUCCESS, db.updated(pageno, AbsFree()))
    owner = entry.addrspace
    if not isinstance(entry, AbsSpare):
        if db[owner].state is not AddrspaceState.STOPPED:
            return (KomErr.NOT_STOPPED, db)
    changes = {pageno: AbsFree(), owner: _bump(db[owner], delta=-1)}
    # Removing an L2 table or data page from a *stopped* enclave may
    # leave dangling references in sibling tables; a stopped enclave can
    # never execute, so the spec (like the implementation) permits it.
    new = db.updated_many(changes)
    return (KomErr.SUCCESS, new)
