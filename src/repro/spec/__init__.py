"""Executable functional specification (paper section 5.2).

A pure-functional port of Komodo's trusted Dafny specification: an
abstract PageDB ADT, validity invariants, and one pure function per SMC
and SVC mapping an input PageDB and call parameters to an error code and
resulting PageDB.  The implementation in ``repro.monitor`` is checked
against this spec by ``repro.verification`` (refinement), and the
security properties of ``repro.security`` are stated over these abstract
states — the same layering as the paper's proofs.
"""

from repro.spec.pagedb import (
    AbsAddrspace,
    AbsData,
    AbsFree,
    AbsL1,
    AbsL2,
    AbsMappingEntry,
    AbsPageDb,
    AbsSpare,
    AbsThread,
)
from repro.spec.invariants import check_invariants, InvariantViolation

__all__ = [
    "AbsAddrspace",
    "AbsData",
    "AbsFree",
    "AbsL1",
    "AbsL2",
    "AbsMappingEntry",
    "AbsPageDb",
    "AbsSpare",
    "AbsThread",
    "InvariantViolation",
    "check_invariants",
]
