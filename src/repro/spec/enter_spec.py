"""Spec-side Enter/Resume validation (paper section 5.2).

Enter and Resume involve enclave execution, so their full specification
is relational; but their *validation* — which error an ill-formed call
must return without executing anything — is a pure function of the
abstract PageDB, given here.  The refinement checker uses it to pin the
implementation's error codes on every failed Enter/Resume, and the spec
tests exercise it directly.

The order of checks is part of the OS-visible behaviour (the first
failing check's error is returned) and therefore part of the spec.
"""

from __future__ import annotations

from typing import Optional

from repro.monitor.errors import KomErr
from repro.monitor.layout import AddrspaceState
from repro.spec.pagedb import AbsAddrspace, AbsPageDb, AbsThread


def spec_validate_execution(
    db: AbsPageDb, thread_page: int, want_entered: bool
) -> Optional[KomErr]:
    """The error a malformed Enter (want_entered=False) or Resume
    (want_entered=True) must return, or None when execution proceeds."""
    if not db.valid_pageno(thread_page):
        return KomErr.INVALID_PAGENO
    entry = db[thread_page]
    if not isinstance(entry, AbsThread):
        return KomErr.INVALID_THREAD
    aspace = db[entry.addrspace]
    if not isinstance(aspace, AbsAddrspace):  # pragma: no cover - invariant
        return KomErr.INVALID_ADDRSPACE
    if aspace.state is AddrspaceState.INIT:
        return KomErr.NOT_FINAL
    if aspace.state is AddrspaceState.STOPPED:
        return KomErr.STOPPED
    if want_entered and not entry.entered:
        return KomErr.NOT_ENTERED
    if not want_entered and entry.entered:
        return KomErr.ALREADY_ENTERED
    return None


#: The complete set of error codes Enter/Resume may return to the OS
#: once execution has begun (the declassified exception channel).
EXECUTION_RESULT_ERRORS = frozenset(
    {KomErr.SUCCESS, KomErr.INTERRUPTED, KomErr.FAULT}
)
