"""Pure-functional SVC specification (paper section 5.2).

The SVC specs are logically nested inside Enter/Resume in the paper's
specification; here they are standalone pure functions over the abstract
PageDB, invoked by the refinement checker with the identity of the
calling enclave.  Attest/Verify/GetRandom do not change the PageDB, so
only the dynamic-memory SVCs appear here.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.arm.memory import WORDS_PER_PAGE
from repro.arm.pagetable import L1_ENTRIES
from repro.monitor.errors import KomErr
from repro.monitor.layout import Mapping, mapping_word_valid
from repro.spec.pagedb import (
    AbsData,
    AbsL1,
    AbsL2,
    AbsMappingEntry,
    AbsPageDb,
    AbsSpare,
)

SpecResult = Tuple[KomErr, AbsPageDb]


def _owned_err(
    db: AbsPageDb, asno: int, pageno: int, expected_type
) -> Optional[KomErr]:
    if not db.valid_pageno(pageno):
        return KomErr.INVALID_PAGENO
    entry = db[pageno]
    if not isinstance(entry, expected_type):
        return KomErr.PAGEINUSE
    if entry.addrspace != asno:
        return KomErr.INVALID_PAGENO
    return None


def spec_svc_init_l2ptable(
    db: AbsPageDb, asno: int, spare_page: int, l1index: int
) -> SpecResult:
    err = _owned_err(db, asno, spare_page, AbsSpare)
    if err is not None:
        return (err, db)
    if not 0 <= l1index < L1_ENTRIES:
        return (KomErr.INVALID_MAPPING, db)
    aspace = db[asno]
    l1 = db[aspace.l1pt]
    if l1.entries[l1index] is not None:
        return (KomErr.ADDRINUSE, db)
    entries = list(l1.entries)
    entries[l1index] = spare_page
    new = db.updated_many(
        {
            spare_page: AbsL2(addrspace=asno),
            aspace.l1pt: AbsL1(addrspace=asno, entries=tuple(entries)),
        }
    )
    return (KomErr.SUCCESS, new)


def spec_svc_map_data(
    db: AbsPageDb, asno: int, spare_page: int, mapping_word: int
) -> SpecResult:
    err = _owned_err(db, asno, spare_page, AbsSpare)
    if err is not None:
        return (err, db)
    if not mapping_word_valid(mapping_word):
        return (KomErr.INVALID_MAPPING, db)
    mapping = Mapping.decode(mapping_word)
    aspace = db[asno]
    l1 = db[aspace.l1pt]
    l2page = l1.entries[mapping.l1index]
    if l2page is None:
        return (KomErr.INVALID_MAPPING, db)
    l2 = db[l2page]
    if l2.entries[mapping.l2index] is not None:
        return (KomErr.ADDRINUSE, db)
    entries = list(l2.entries)
    entries[mapping.l2index] = AbsMappingEntry(
        secure_page=spare_page,
        insecure_base=None,
        readable=mapping.readable,
        writable=mapping.writable,
        executable=mapping.executable,
    )
    new = db.updated_many(
        {
            spare_page: AbsData(
                addrspace=asno, contents=(0,) * WORDS_PER_PAGE
            ),
            l2page: AbsL2(addrspace=asno, entries=tuple(entries)),
        }
    )
    return (KomErr.SUCCESS, new)


def spec_svc_unmap_data(
    db: AbsPageDb, asno: int, data_page: int, mapping_word: int
) -> SpecResult:
    err = _owned_err(db, asno, data_page, AbsData)
    if err is not None:
        return (err, db)
    if not mapping_word_valid(mapping_word):
        return (KomErr.INVALID_MAPPING, db)
    mapping = Mapping.decode(mapping_word)
    aspace = db[asno]
    l1 = db[aspace.l1pt]
    l2page = l1.entries[mapping.l1index]
    if l2page is None:
        return (KomErr.INVALID_MAPPING, db)
    l2 = db[l2page]
    slot = l2.entries[mapping.l2index]
    if slot is None or slot.secure_page != data_page:
        return (KomErr.INVALID_MAPPING, db)
    entries = list(l2.entries)
    entries[mapping.l2index] = None
    new = db.updated_many(
        {
            data_page: AbsSpare(addrspace=asno),
            l2page: AbsL2(addrspace=asno, entries=tuple(entries)),
        }
    )
    return (KomErr.SUCCESS, new)
