"""Saga coordination for composite multi-enclave pipelines.

The OS schedules each pipeline stage on its own core: an untrusted
*pump* script polls the stage enclave (one ``Enter`` per poll round)
and respawns it after injected crashes with seeded exponential backoff
(``repro.util.backoff``).  A *coordinator* script on another core
drives whole transactions through the pipeline's ingress/egress
channels, retransmitting requests, detecting replies, and — when asked
— compensating a transaction mid-flight by sending an abort that the
stages translate into the two-enclave commit's rollback.

Everything here is untrusted OS code: it can crash, stall, or be
replaced by an adversary without violating any stage invariant.  What
the saga layer adds is *liveness with a verdict*: every run terminates
either with replies for every request or with one of the typed errors
in ``repro.pipeline.errors`` — the contract the pipeline chaos campaign
gates on.

Scripts communicate through :class:`SagaState`, plain shared state
visible to all cores of one ``MultiCoreMachine`` — the model's stand-in
for the OS's own bookkeeping, which needs no monitor involvement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.monitor.errors import KomErr
from repro.monitor.layout import SMC
from repro.pipeline import stages as st
from repro.pipeline.errors import (
    PipelineError,
    SagaStalled,
    StageRetryExhausted,
    TransactionAborted,
)
from repro.pipeline.txchannel import TxFrame
from repro.util.backoff import BackoffPolicy

#: Request retransmission schedule, in poll-round units.  When it is
#: exhausted the coordinator keeps listening (replies are retransmitted
#: by the egress stage) until the round budget declares a stall.
RETRY_POLICY = BackoffPolicy(base_delay=2, attempts=16, cap=32)

#: Stage respawn schedule after a crash, in poll-round units.
RESPAWN_POLICY = BackoffPolicy(base_delay=1, attempts=16, cap=8)

DEFAULT_CRASH_BUDGET = 8
DEFAULT_ROUND_BUDGET = 600


@dataclass
class SagaState:
    """Shared OS-side bookkeeping for one pipeline run."""

    done: bool = False
    error: Optional[PipelineError] = None
    replies: List[TxFrame] = field(default_factory=list)
    checksums: List[int] = field(default_factory=list)
    rounds: int = 0
    stage_crashes: Dict[str, int] = field(default_factory=dict)

    def fail(self, error: PipelineError) -> None:
        if self.error is None:
            self.error = error
        self.done = True

    def finish(self) -> None:
        self.done = True


# ---------------------------------------------------------------------------
# Stage pumps
# ---------------------------------------------------------------------------


def stage_pump(
    saga: SagaState,
    stage,
    *,
    crash_budget: int = DEFAULT_CRASH_BUDGET,
    policy: BackoffPolicy = RESPAWN_POLICY,
    start_after_rounds: int = 0,
):
    """A core-script factory that keeps one stage enclave polled.

    ``start_after_rounds`` delays the pump's first poll — modelling a
    starved or slowly-scheduled stage, which the compensation tests use
    to hold a transaction open long enough to abort it.
    """
    thread = stage.handle.thread
    name = stage.name

    def factory(core_id: int):
        return _pump_script(
            saga, name, thread, core_id, crash_budget, policy, start_after_rounds
        )

    return factory


def _pump_script(saga, name, thread, core_id, crash_budget, policy, start_after):
    backoff = policy.session(seed=core_id * 7919 + 1)
    crashes = 0

    def _crashed():
        nonlocal crashes
        crashes += 1
        saga.stage_crashes[name] = crashes
        if crashes > crash_budget:
            error = StageRetryExhausted(
                f"stage {name} failed {crashes} times (budget {crash_budget})"
            )
            saga.fail(error)
            raise error
        return backoff.next_delay() or 1

    for _ in range(start_after):
        if saga.done:
            return
        yield ("yield",)
    while not saga.done:
        result = yield ("smc", SMC.ENTER, thread, st.OP_POLL, 0, 0)
        while not saga.done:
            if result is None:
                # Crash mid-poll: the monitor recovered, the stage's
                # generator is gone.  Back off, then respawn — the poll
                # round is idempotent by construction.
                for _ in range(_crashed()):
                    if saga.done:
                        return
                    yield ("yield",)
                result = yield ("smc", SMC.ENTER, thread, st.OP_POLL, 0, 0)
                continue
            err, _value = result
            if err in (KomErr.INTERRUPTED, KomErr.ALREADY_ENTERED):
                result = yield ("smc", SMC.RESUME, thread)
                continue
            if err is KomErr.NOT_ENTERED:
                result = yield ("smc", SMC.ENTER, thread, st.OP_POLL, 0, 0)
                continue
            if err is KomErr.SUCCESS:
                break
            # Any other monitor verdict (FAULT, STOPPED, ...) burns a
            # respawn attempt so a wedged stage ends in a typed error
            # rather than an endless poll loop.
            for _ in range(_crashed()):
                if saga.done:
                    return
                yield ("yield",)
            result = yield ("smc", SMC.ENTER, thread, st.OP_POLL, 0, 0)
        yield ("yield",)


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------


def coordinator(
    saga: SagaState,
    pipeline,
    requests: Sequence[Sequence[int]],
    *,
    retry_policy: BackoffPolicy = RETRY_POLICY,
    round_budget: int = DEFAULT_ROUND_BUDGET,
    abort_after_rounds: Optional[Dict[int, int]] = None,
    checksum=None,
):
    """A core-script factory driving transactions 1..N through the
    pipeline.  ``abort_after_rounds`` maps a txid to the round count
    after which the coordinator compensates (sends an abort) instead of
    waiting for completion.  ``checksum`` (a ``ChecksumService``) adds a
    machine-code CRC leg over each successful reply — the pipeline's
    tri-engine differential anchor.
    """
    aborts = dict(abort_after_rounds or {})

    def factory(core_id: int):
        return _coordinator_script(
            saga, pipeline, requests, retry_policy, round_budget, aborts, checksum
        )

    return factory


def _coordinator_script(
    saga, pipeline, requests, retry_policy, round_budget, aborts, checksum
):
    try:
        for index, payload in enumerate(requests):
            txid = index + 1
            reply = yield from _drive_transaction(
                saga,
                pipeline,
                txid,
                list(payload),
                retry_policy,
                round_budget,
                aborts.get(txid),
            )
            saga.replies.append(reply)
            if (
                checksum is not None
                and reply.payload
                and reply.payload[0] == st.ST_OK
            ):
                value = yield from _checksum_leg(checksum, list(reply.payload[1:]))
                saga.checksums.append(value)
        saga.finish()
    except PipelineError as error:
        saga.fail(error)
        raise


def _drive_transaction(
    saga, pipeline, txid, payload, retry_policy, round_budget, abort_after
):
    backoff = retry_policy.session(seed=txid)
    rounds = 0
    due = 0  # round at which the next retransmission is owed
    aborting = False
    while True:
        rounds += 1
        saga.rounds += 1
        if rounds > round_budget:
            raise SagaStalled(
                f"txn {txid} incomplete after {round_budget} rounds"
            )
        for frame in pipeline.egress.drain():
            if frame.opcode != st.MSG_REPLY or frame.txid != txid:
                continue  # stale reply retransmission for an older txn
            status = frame.payload[0] if frame.payload else st.ST_ABORTED
            if status == st.ST_ABORTED and not aborting:
                # The pipeline rolled the transaction back without the
                # coordinator asking — surfaced as a typed, retryable
                # verdict rather than silently dropped work.
                raise TransactionAborted(f"txn {txid} aborted by the pipeline")
            return frame
        if abort_after is not None and rounds >= abort_after and not aborting:
            aborting = True
            backoff = retry_policy.session(seed=txid ^ 0xAB0B7)
            due = rounds  # compensate immediately
        if rounds >= due:
            pipeline.ingress.send(
                txid,
                st.MSG_ABORT if aborting else st.MSG_REQ,
                [] if aborting else payload,
            )
            delay = backoff.next_delay()
            # An exhausted schedule stops retransmitting but keeps
            # listening: the egress stage republishes replies, and the
            # round budget still bounds the wait.
            due = rounds + delay if delay is not None else round_budget + 1
        yield ("yield",)


def _checksum_leg(checksum, words, crash_budget: int = DEFAULT_CRASH_BUDGET):
    """Run the machine-code CRC enclave over reply words, with the same
    crash-respawn discipline as a stage pump."""
    checksum.handle.buffer().write_words(checksum.kernel, words)
    thread = checksum.handle.thread
    crashes = 0
    result = yield ("smc", SMC.ENTER, thread, len(words), 0, 0)
    while True:
        if result is None:
            crashes += 1
            if crashes > crash_budget:
                raise StageRetryExhausted(
                    f"checksum leg failed {crashes} times"
                )
            result = yield ("smc", SMC.ENTER, thread, len(words), 0, 0)
            continue
        err, value = result
        if err in (KomErr.INTERRUPTED, KomErr.ALREADY_ENTERED):
            result = yield ("smc", SMC.RESUME, thread)
            continue
        if err is KomErr.NOT_ENTERED:
            result = yield ("smc", SMC.ENTER, thread, len(words), 0, 0)
            continue
        if err is KomErr.SUCCESS:
            return value
        crashes += 1
        if crashes > crash_budget:
            raise StageRetryExhausted(f"checksum leg rejected: {err!r}")
        result = yield ("smc", SMC.ENTER, thread, len(words), 0, 0)


# ---------------------------------------------------------------------------
# Whole-pipeline orchestration
# ---------------------------------------------------------------------------


@dataclass
class PipelineOutcome:
    """What one pipeline run produced (when it did not raise)."""

    replies: List[TxFrame]
    checksums: List[int]
    rounds: int
    stage_crashes: Dict[str, int]


def run_pipeline(
    pipeline,
    machine,
    requests: Sequence[Sequence[int]],
    *,
    abort_after_rounds: Optional[Dict[int, int]] = None,
    start_after_rounds: Optional[Dict[str, int]] = None,
    checksum=None,
    crash_budget: int = DEFAULT_CRASH_BUDGET,
    round_budget: int = DEFAULT_ROUND_BUDGET,
    retry_policy: BackoffPolicy = RETRY_POLICY,
    respawn_policy: BackoffPolicy = RESPAWN_POLICY,
    max_steps: int = 100_000,
) -> PipelineOutcome:
    """Wire a coordinator plus one pump per stage into ``machine`` and
    run to completion.  Raises the coordinator's or a pump's typed
    ``PipelineError``; an interleaving that never terminates hits the
    scheduler's ``max_steps`` backstop (``RuntimeError`` — a hang, which
    the chaos gate treats as a hard violation).
    """
    saga = SagaState()
    delays = dict(start_after_rounds or {})
    machine.add_core(
        coordinator(
            saga,
            pipeline,
            requests,
            retry_policy=retry_policy,
            round_budget=round_budget,
            abort_after_rounds=abort_after_rounds,
            checksum=checksum,
        )
    )
    for stage in pipeline.stages:
        machine.add_core(
            stage_pump(
                saga,
                stage,
                crash_budget=crash_budget,
                policy=respawn_policy,
                start_after_rounds=delays.get(stage.name, 0),
            )
        )
    machine.run(max_steps=max_steps)
    if saga.error is not None:
        raise saga.error
    return PipelineOutcome(
        replies=list(saga.replies),
        checksums=list(saga.checksums),
        rounds=saga.rounds,
        stage_crashes=dict(saga.stage_crashes),
    )
