"""Untrusted operating system model.

The OS in Komodo's threat model is fully attacker-controlled; the monitor
trusts nothing it says.  This package provides both sides of that coin:
a *benign* OS (page allocator + the kernel-driver call sequences an
honest Linux module would issue, section 8.1) used by the SDK and
examples, and *adversarial* OS strategies used by the security tests —
argument fuzzing, interrupt injection, insecure-memory tampering, and
targeted attacks on known monitor obligations.
"""

from repro.osmodel.kernel import OSKernel, SharedBuffer
from repro.osmodel.adversary import AdversarialOS, AttackLog

__all__ = ["AdversarialOS", "AttackLog", "OSKernel", "SharedBuffer"]
