"""Adversarial OS strategies.

The threat model (paper section 3.1) grants the attacker full control of
privileged normal-world software: it may issue arbitrary SMC sequences
with arbitrary arguments, inject external interrupts at any point during
enclave execution, and read/write all insecure memory.  This module
packages those capabilities as reusable strategies for the security and
property tests:

* ``fuzz_smcs`` — random SMC call/argument sequences (the monitor must
  never crash, never break PageDB invariants, and never touch memory it
  must not).
* ``probe_secure_memory`` — attempted normal-world loads/stores of
  secure and monitor memory (must fault at the hardware model).
* ``interrupt_storm`` — Enter with interrupts scheduled at adversarially
  chosen points, exercising the context save/restore paths.
* ``targeted_attacks`` — a checklist of historically bug-prone calls,
  including the aliased-pages InitAddrspace and the monitor-address
  MapSecure from section 9.1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.arm.memory import MemoryFault
from repro.arm.modes import World
from repro.monitor.errors import KomErr
from repro.monitor.komodo import KomodoMonitor
from repro.monitor.layout import SMC


@dataclass
class AttackLog:
    """Record of what an adversarial run attempted and observed."""

    smcs_issued: int = 0
    faults_taken: int = 0
    successes: int = 0
    errors: List[Tuple[int, KomErr]] = field(default_factory=list)


class AdversarialOS:
    """An OS that attacks the monitor instead of cooperating with it."""

    def __init__(self, monitor: KomodoMonitor, seed: int = 1234):
        self.monitor = monitor
        self.random = random.Random(seed)
        self.log = AttackLog()

    # -- raw capability: arbitrary SMCs -----------------------------------

    def _random_arg(self) -> int:
        npages = self.monitor.pagedb.npages
        choices = [
            self.random.randrange(npages),  # plausible page number
            self.random.randrange(npages * 4),  # out-of-range page number
            self.random.getrandbits(32),  # garbage
            0,
            0xFFFFFFFF,
            self.monitor.state.memmap.monitor_image.base,  # monitor memory
            self.monitor.state.memmap.secure.base,  # secure memory
            self.monitor.state.memmap.insecure.base,  # valid insecure page
        ]
        return self.random.choice(choices)

    def fuzz_smcs(self, count: int = 200) -> AttackLog:
        """Issue ``count`` random SMCs with adversarial arguments."""
        callnos = [int(c) for c in SMC] + [0, 99, 0xFFFF]
        for _ in range(count):
            callno = self.random.choice(callnos)
            args = tuple(self._random_arg() for _ in range(4))
            if callno in (SMC.ENTER, SMC.RESUME):
                # Sometimes inject an interrupt mid-execution too.
                if self.random.random() < 0.5:
                    self.monitor.schedule_interrupt(self.random.randrange(64))
            err, _ = self.monitor.smc(callno, *args)
            self.log.smcs_issued += 1
            if err is KomErr.SUCCESS:
                self.log.successes += 1
            else:
                self.log.errors.append((callno, err))
        return self.log

    # -- raw capability: memory probing ----------------------------------------

    def probe_secure_memory(self, samples: int = 32) -> AttackLog:
        """Try to read and write protected memory from normal world."""
        state = self.monitor.state
        targets = []
        for region in (state.memmap.secure, state.memmap.monitor_image, state.memmap.monitor_stack):
            for _ in range(samples):
                offset = self.random.randrange(region.size // 4) * 4
                targets.append(region.base + offset)
        for address in targets:
            try:
                state.memory.checked_read(address, World.NORMAL)
            except MemoryFault:
                self.log.faults_taken += 1
            try:
                state.memory.checked_write(address, 0xDEADBEEF, World.NORMAL)
            except MemoryFault:
                self.log.faults_taken += 1
        return self.log

    # -- targeted attacks on known obligations ---------------------------------------

    def aliased_init_addrspace(self, pageno: int) -> KomErr:
        """InitAddrspace(p, p): the bug the unverified prototype had."""
        err, _ = self.monitor.smc(SMC.INIT_ADDRSPACE, pageno, pageno)
        return err

    def map_secure_from_monitor_memory(self, as_page: int, data_page: int, mapping: int) -> KomErr:
        """MapSecure sourcing 'insecure' contents from the monitor image —
        the validity subtlety of section 9.1."""
        err, _ = self.monitor.smc(
            SMC.MAP_SECURE,
            as_page,
            data_page,
            mapping,
            self.monitor.state.memmap.monitor_image.base,
        )
        return err

    def map_secure_from_secure_memory(self, as_page: int, data_page: int, mapping: int) -> KomErr:
        """MapSecure sourcing contents from another enclave's secure page."""
        err, _ = self.monitor.smc(
            SMC.MAP_SECURE,
            as_page,
            data_page,
            mapping,
            self.monitor.state.memmap.secure.base,
        )
        return err

    def reenter_suspended_thread(self, thread_page: int) -> KomErr:
        """Enter on a suspended thread must fail (ALREADY_ENTERED)."""
        err, _ = self.monitor.smc(SMC.ENTER, thread_page, 0, 0, 0)
        return err

    def remove_running_enclave_page(self, pageno: int) -> KomErr:
        """Remove a non-spare page of a non-stopped enclave must fail."""
        err, _ = self.monitor.smc(SMC.REMOVE, pageno)
        return err

    def interrupt_storm(
        self, thread_page: int, max_entries: int = 50, deadline_range: int = 16
    ) -> Tuple[KomErr, int, int]:
        """Run a thread, interrupting at random points and resuming.

        Returns the final (err, value) plus how many interrupts landed.
        """
        interrupts = 0
        self.monitor.schedule_interrupt(self.random.randrange(1, deadline_range))
        err, value = self.monitor.smc(SMC.ENTER, thread_page, 0, 0, 0)
        for _ in range(max_entries):
            if err is not KomErr.INTERRUPTED:
                break
            interrupts += 1
            self.monitor.schedule_interrupt(self.random.randrange(1, deadline_range))
            err, value = self.monitor.smc(SMC.RESUME, thread_page)
        else:
            err, value = self.monitor.smc(SMC.RESUME, thread_page)
        return (err, value, interrupts)
