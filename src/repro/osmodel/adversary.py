"""Adversarial OS strategies.

The threat model (paper section 3.1) grants the attacker full control of
privileged normal-world software: it may issue arbitrary SMC sequences
with arbitrary arguments, inject external interrupts at any point during
enclave execution, and read/write all insecure memory.  This module
packages those capabilities as reusable strategies for the security and
property tests:

* ``fuzz_smcs`` — random SMC call/argument sequences (the monitor must
  never crash, never break PageDB invariants, and never touch memory it
  must not).
* ``probe_secure_memory`` — attempted normal-world loads/stores of
  secure and monitor memory (must fault at the hardware model).
* ``interrupt_storm`` — Enter with interrupts scheduled at adversarially
  chosen points, exercising the context save/restore paths.
* ``targeted_attacks`` — a checklist of historically bug-prone calls,
  including the aliased-pages InitAddrspace and the monitor-address
  MapSecure from section 9.1.
* ``CrossEnclaveAdversary`` — attacks on *composite* pipelines: replay,
  reordering and corruption of the shared channel pages that carry
  cross-enclave traffic, plus hostile core scripts that interleave junk
  SMCs with the pipeline's own monitor calls on a multicore machine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.arm.memory import MemoryFault
from repro.arm.modes import World
from repro.monitor.errors import KomErr
from repro.monitor.komodo import KomodoMonitor
from repro.monitor.layout import SMC


@dataclass
class AttackLog:
    """Record of what an adversarial run attempted and observed."""

    smcs_issued: int = 0
    faults_taken: int = 0
    successes: int = 0
    errors: List[Tuple[int, KomErr]] = field(default_factory=list)


class AdversarialOS:
    """An OS that attacks the monitor instead of cooperating with it."""

    def __init__(self, monitor: KomodoMonitor, seed: int = 1234):
        self.monitor = monitor
        self.random = random.Random(seed)
        self.log = AttackLog()

    # -- raw capability: arbitrary SMCs -----------------------------------

    def _random_arg(self) -> int:
        npages = self.monitor.pagedb.npages
        choices = [
            self.random.randrange(npages),  # plausible page number
            self.random.randrange(npages * 4),  # out-of-range page number
            self.random.getrandbits(32),  # garbage
            0,
            0xFFFFFFFF,
            self.monitor.state.memmap.monitor_image.base,  # monitor memory
            self.monitor.state.memmap.secure.base,  # secure memory
            self.monitor.state.memmap.insecure.base,  # valid insecure page
        ]
        return self.random.choice(choices)

    def fuzz_smcs(self, count: int = 200) -> AttackLog:
        """Issue ``count`` random SMCs with adversarial arguments."""
        callnos = [int(c) for c in SMC] + [0, 99, 0xFFFF]
        for _ in range(count):
            callno = self.random.choice(callnos)
            args = tuple(self._random_arg() for _ in range(4))
            if callno in (SMC.ENTER, SMC.RESUME):
                # Sometimes inject an interrupt mid-execution too.
                if self.random.random() < 0.5:
                    self.monitor.schedule_interrupt(self.random.randrange(64))
            err, _ = self.monitor.smc(callno, *args)
            self.log.smcs_issued += 1
            if err is KomErr.SUCCESS:
                self.log.successes += 1
            else:
                self.log.errors.append((callno, err))
        return self.log

    # -- raw capability: memory probing ----------------------------------------

    def probe_secure_memory(self, samples: int = 32) -> AttackLog:
        """Try to read and write protected memory from normal world."""
        state = self.monitor.state
        targets = []
        for region in (state.memmap.secure, state.memmap.monitor_image, state.memmap.monitor_stack):
            for _ in range(samples):
                offset = self.random.randrange(region.size // 4) * 4
                targets.append(region.base + offset)
        for address in targets:
            try:
                state.memory.checked_read(address, World.NORMAL)
            except MemoryFault:
                self.log.faults_taken += 1
            try:
                state.memory.checked_write(address, 0xDEADBEEF, World.NORMAL)
            except MemoryFault:
                self.log.faults_taken += 1
        return self.log

    # -- targeted attacks on known obligations ---------------------------------------

    def aliased_init_addrspace(self, pageno: int) -> KomErr:
        """InitAddrspace(p, p): the bug the unverified prototype had."""
        err, _ = self.monitor.smc(SMC.INIT_ADDRSPACE, pageno, pageno)
        return err

    def map_secure_from_monitor_memory(self, as_page: int, data_page: int, mapping: int) -> KomErr:
        """MapSecure sourcing 'insecure' contents from the monitor image —
        the validity subtlety of section 9.1."""
        err, _ = self.monitor.smc(
            SMC.MAP_SECURE,
            as_page,
            data_page,
            mapping,
            self.monitor.state.memmap.monitor_image.base,
        )
        return err

    def map_secure_from_secure_memory(self, as_page: int, data_page: int, mapping: int) -> KomErr:
        """MapSecure sourcing contents from another enclave's secure page."""
        err, _ = self.monitor.smc(
            SMC.MAP_SECURE,
            as_page,
            data_page,
            mapping,
            self.monitor.state.memmap.secure.base,
        )
        return err

    def reenter_suspended_thread(self, thread_page: int) -> KomErr:
        """Enter on a suspended thread must fail (ALREADY_ENTERED)."""
        err, _ = self.monitor.smc(SMC.ENTER, thread_page, 0, 0, 0)
        return err

    def remove_running_enclave_page(self, pageno: int) -> KomErr:
        """Remove a non-spare page of a non-stopped enclave must fail."""
        err, _ = self.monitor.smc(SMC.REMOVE, pageno)
        return err

    def interrupt_storm(
        self, thread_page: int, max_entries: int = 50, deadline_range: int = 16
    ) -> Tuple[KomErr, int, int]:
        """Run a thread, interrupting at random points and resuming.

        Returns the final (err, value) plus how many interrupts landed.
        """
        interrupts = 0
        self.monitor.schedule_interrupt(self.random.randrange(1, deadline_range))
        err, value = self.monitor.smc(SMC.ENTER, thread_page, 0, 0, 0)
        for _ in range(max_entries):
            if err is not KomErr.INTERRUPTED:
                break
            interrupts += 1
            self.monitor.schedule_interrupt(self.random.randrange(1, deadline_range))
            err, value = self.monitor.smc(SMC.RESUME, thread_page)
        else:
            err, value = self.monitor.smc(SMC.RESUME, thread_page)
        return (err, value, interrupts)


@dataclass
class TamperLog:
    """Record of cross-enclave channel tampering."""

    replays: int = 0
    reorders: int = 0
    corruptions: int = 0
    hostile_smcs: int = 0


class CrossEnclaveAdversary:
    """Privileged-software attacks against composite enclave pipelines.

    The channel pages between pipeline stages are insecure memory, so
    the OS can replay, reorder, or scribble over any queued frame at any
    time, and it can run extra cores issuing arbitrary SMCs interleaved
    with the pipeline's own monitor calls.  None of that may change the
    pipeline's logical outcome: frames are MAC-authenticated (forgery
    requires the link key), sequence numbers are derived from durable
    transaction state (replays deduplicate), and every sender
    retransmits until acknowledged (drops and corruption only delay).

    The edge channels are keyed with the *public* edge key, so a replay
    of a genuine edge frame is also within the adversary's power — the
    stages' txid-monotonic dedup is what keeps effects exactly-once.
    """

    def __init__(self, kernel, seed: int = 0xADE5):
        self.kernel = kernel
        self.random = random.Random(seed)
        self.log = TamperLog()
        #: Raw messages captured off channels, kept for later replay.
        self.captured: List[List[int]] = []

    def _channel(self, base: int):
        from repro.sdk.channel import Channel, HostEndpoint

        return Channel(HostEndpoint(self.kernel, base))

    def _drain_raw(self, base: int) -> List[List[int]]:
        """Dequeue every queued message (the OS is the medium)."""
        from repro.sdk.channel import ChannelError

        ring = self._channel(base)
        messages: List[List[int]] = []
        while True:
            try:
                message = ring.receive()
            except ChannelError:
                ring.reset()
                return messages
            if message is None:
                return messages
            messages.append(message)

    def replay_frames(self, base: int, copies: int = 1) -> int:
        """Duplicate currently-queued frames (at-least-once delivery
        pushed to its limit): every queued message is re-enqueued
        ``copies`` extra times, and remembered for later replay."""
        ring = self._channel(base)
        messages = self._drain_raw(base)
        self.captured.extend(list(m) for m in messages)
        duplicated = 0
        for message in messages:
            ring.send(message)
        for message in messages:
            for _ in range(copies):
                if ring.send(message):
                    duplicated += 1
        self.log.replays += duplicated
        return duplicated

    def replay_captured(self, base: int, count: int = 1) -> int:
        """Re-inject frames captured earlier — possibly frames the
        receiver already consumed and acted on in a past round."""
        if not self.captured:
            return 0
        ring = self._channel(base)
        injected = 0
        for _ in range(count):
            message = self.random.choice(self.captured)
            if ring.send(list(message)):
                injected += 1
        self.log.replays += injected
        return injected

    def reorder_frames(self, base: int) -> int:
        """Shuffle the queued frames (the medium preserves no order)."""
        ring = self._channel(base)
        messages = self._drain_raw(base)
        self.random.shuffle(messages)
        for message in messages:
            ring.send(message)
        if len(messages) > 1:
            self.log.reorders += 1
        return len(messages)

    def corrupt_page(self, base: int, words: int = 4) -> None:
        """Scribble random garbage over the channel page — cursors,
        length headers and payload alike are fair game."""
        from repro.arm.bits import WORDSIZE
        from repro.arm.memory import WORDS_PER_PAGE

        for _ in range(words):
            offset = self.random.randrange(WORDS_PER_PAGE)
            self.kernel.write_insecure(
                base + offset * WORDSIZE, self.random.getrandbits(32)
            )
        self.log.corruptions += 1

    # -- hostile cores ----------------------------------------------------

    def _garbage_pageno(self) -> int:
        npages = self.kernel.monitor.pagedb.npages
        return self.random.choice(
            [
                self.random.randrange(npages, npages * 8),
                self.random.getrandbits(32),
                0xFFFFFFFF,
            ]
        )

    def hostile_core(self, channel_bases: Tuple[int, ...] = (), rounds: int = 60):
        """Script factory for :class:`repro.multicore.MultiCoreMachine`:
        a core that interleaves junk SMCs with the pipeline's traffic
        and periodically tampers with the given channel pages.

        Destructive calls (STOP/REMOVE/FINALISE/ENTER/RESUME) are aimed
        at garbage page numbers only: stopping a pipeline addrspace is
        within the threat model but trivially denies service, and these
        campaigns gate on *completion*, not availability under an OS
        that refuses to schedule the pipeline at all.
        """

        def factory(core_id: int):
            return self._hostile_script(tuple(channel_bases), rounds)

        return factory

    def _hostile_script(self, channel_bases: Tuple[int, ...], rounds: int):
        for _ in range(rounds):
            move = self.random.randrange(8)
            if move == 0:
                yield ("smc", SMC.QUERY)
            elif move == 1:
                yield ("smc", SMC.GET_PHYSPAGES)
            elif move == 2:
                yield ("smc", SMC.ENTER, self._garbage_pageno(), 0, 0, 0)
            elif move == 3:
                yield (
                    "smc",
                    self.random.choice(
                        (SMC.STOP, SMC.REMOVE, SMC.FINALISE, SMC.RESUME)
                    ),
                    self._garbage_pageno(),
                )
            elif move == 4 and channel_bases:
                base = self.random.choice(channel_bases)
                tamper = self.random.randrange(4)
                if tamper == 0:
                    self.replay_frames(base)
                elif tamper == 1:
                    self.replay_captured(base)
                elif tamper == 2:
                    self.reorder_frames(base)
                else:
                    self.corrupt_page(base)
                yield ("yield",)
                continue
            else:
                yield ("yield",)
                continue
            self.log.hostile_smcs += 1
