"""Benign OS kernel model.

Models the normal-world software stack the paper's evaluation uses: a
bootloader has already reserved secure memory and started the monitor;
Linux boots and a kernel driver issues SMCs to create and run enclaves
(section 8.1).  The kernel tracks which secure pages it believes are free
(the monitor does no allocation of its own — the OS must choose free
pages or calls fail, section 4), manages insecure RAM for staging enclave
contents and shared buffers, and wraps the SMC ABI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.arm.bits import WORDSIZE
from repro.arm.memory import PAGE_SIZE, WORDS_PER_PAGE
from repro.arm.modes import World
from repro.monitor.errors import KomErr
from repro.monitor.komodo import KomodoMonitor
from repro.monitor.layout import KOM_MAGIC, Mapping, SMC
from repro.util.backoff import Backoff, BackoffPolicy


class OSError_(Exception):
    """Raised when the kernel model cannot satisfy a request."""


@dataclass
class SharedBuffer:
    """An insecure page shared between the OS and an enclave."""

    base: int  # physical base address (page aligned)
    va: Optional[int] = None  # enclave virtual address once mapped

    def write_words(self, kernel: "OSKernel", words: Sequence[int], offset: int = 0) -> None:
        for i, word in enumerate(words):
            kernel.write_insecure(self.base + (offset + i) * WORDSIZE, word)

    def read_words(self, kernel: "OSKernel", count: int, offset: int = 0) -> List[int]:
        return [
            kernel.read_insecure(self.base + (offset + i) * WORDSIZE)
            for i in range(count)
        ]


class OSKernel:
    """The normal-world OS: secure-page bookkeeping + SMC issuing."""

    def __init__(self, monitor: KomodoMonitor):
        self.monitor = monitor
        err, npages = monitor.smc(SMC.GET_PHYSPAGES)
        if err is not KomErr.SUCCESS:
            raise OSError_("monitor did not report secure pages")
        err, magic = monitor.smc(SMC.QUERY)
        if err is not KomErr.SUCCESS or magic != KOM_MAGIC:
            raise OSError_("no Komodo monitor present")
        self.npages = npages
        self._free_pages = list(range(npages))
        insecure = monitor.state.memmap.insecure
        self._insecure_next = insecure.base
        self._insecure_limit = insecure.limit
        #: In-flight retry_with_backoff session, if one is mid-loop.  A
        #: monitor crash injected inside ``issue()`` unwinds past the
        #: loop and leaves the session attached — modelling a driver
        #: that died inside its wait loop — so campaign snapshot restore
        #: must clear it (repro.faults.snapshot.CampaignSnapshot).
        self._backoff: Optional[Backoff] = None

    # -- secure-page accounting ------------------------------------------

    def alloc_page(self) -> int:
        """Pick a secure page the OS believes is free."""
        if not self._free_pages:
            raise OSError_("out of secure pages")
        return self._free_pages.pop(0)

    def release_page(self, pageno: int) -> None:
        """Return a page to the OS free list (after a successful Remove)."""
        if pageno in self._free_pages:
            raise OSError_(f"double free of secure page {pageno}")
        self._free_pages.insert(0, pageno)

    @property
    def free_page_count(self) -> int:
        return len(self._free_pages)

    # -- insecure memory --------------------------------------------------------

    def alloc_insecure_page(self) -> int:
        """Carve a fresh page out of insecure RAM."""
        base = self._insecure_next
        if base + PAGE_SIZE > self._insecure_limit:
            raise OSError_("out of insecure RAM")
        self._insecure_next += PAGE_SIZE
        return base

    def write_insecure(self, address: int, value: int) -> None:
        """A normal-world store (fails on protected memory, as hardware would)."""
        self.monitor.state.memory.checked_write(address, value, World.NORMAL)

    def read_insecure(self, address: int) -> int:
        return self.monitor.state.memory.checked_read(address, World.NORMAL)

    def stage_page(self, words: Sequence[int]) -> int:
        """Copy up to a page of words into fresh insecure RAM; returns base."""
        if len(words) > WORDS_PER_PAGE:
            raise OSError_("staged contents exceed one page")
        base = self.alloc_insecure_page()
        for i, word in enumerate(words):
            self.write_insecure(base + i * WORDSIZE, word)
        return base

    # -- SMC wrappers -------------------------------------------------------------

    def smc(self, callno: int, *args: int) -> Tuple[KomErr, int]:
        return self.monitor.smc(callno, *args)

    def smc_checked(self, callno: int, *args: int) -> int:
        """Issue an SMC and raise if the monitor rejects it."""
        err, value = self.monitor.smc(callno, *args)
        if err is not KomErr.SUCCESS:
            raise OSError_(f"SMC {callno} failed: {err!r}")
        return value

    # -- high-level enclave operations (the kernel driver) ---------------------------

    def init_addrspace(self) -> Tuple[int, int]:
        """Create an addrspace; returns (addrspace pageno, l1pt pageno)."""
        as_page = self.alloc_page()
        l1pt_page = self.alloc_page()
        self.smc_checked(SMC.INIT_ADDRSPACE, as_page, l1pt_page)
        return (as_page, l1pt_page)

    def init_l2table(self, as_page: int, l1index: int) -> int:
        l2pt_page = self.alloc_page()
        self.smc_checked(SMC.INIT_L2PTABLE, as_page, l2pt_page, l1index)
        return l2pt_page

    def map_secure(
        self, as_page: int, mapping: Mapping, contents: Optional[Sequence[int]] = None
    ) -> int:
        """Allocate + map a secure data page; returns its page number."""
        data_page = self.alloc_page()
        source = 0 if contents is None else self.stage_page(contents)
        self.smc_checked(SMC.MAP_SECURE, as_page, data_page, mapping.encode(), source)
        return data_page

    def map_insecure(
        self, as_page: int, mapping: Mapping, base: Optional[int] = None
    ) -> SharedBuffer:
        """Map an insecure page into the enclave.

        By default a fresh page is carved out of insecure RAM; passing
        ``base`` maps an existing page instead, which is how two
        enclaves come to share one channel page (the composite-pipeline
        links map the same physical page into both stages).
        """
        if base is None:
            base = self.alloc_insecure_page()
        self.smc_checked(SMC.MAP_INSECURE, as_page, mapping.encode(), base)
        return SharedBuffer(base=base, va=mapping.va)

    def init_thread(self, as_page: int, entry: int) -> int:
        thread_page = self.alloc_page()
        self.smc_checked(SMC.INIT_THREAD, as_page, thread_page, entry)
        return thread_page

    def alloc_spare(self, as_page: int) -> int:
        spare_page = self.alloc_page()
        self.smc_checked(SMC.ALLOC_SPARE, as_page, spare_page)
        return spare_page

    def finalise(self, as_page: int) -> None:
        self.smc_checked(SMC.FINALISE, as_page)

    def enter(
        self, thread_page: int, arg1: int = 0, arg2: int = 0, arg3: int = 0
    ) -> Tuple[KomErr, int]:
        return self.smc(SMC.ENTER, thread_page, arg1, arg2, arg3)

    def resume(self, thread_page: int) -> Tuple[KomErr, int]:
        return self.smc(SMC.RESUME, thread_page)

    def run_to_completion(
        self,
        thread_page: int,
        arg1: int = 0,
        arg2: int = 0,
        arg3: int = 0,
        max_resumes: int = 10_000,
    ) -> Tuple[KomErr, int]:
        """Enter a thread and keep resuming across interrupts until it
        exits or faults — what a scheduler-driven kernel does."""
        err, value = self.enter(thread_page, arg1, arg2, arg3)
        resumes = 0
        while err is KomErr.INTERRUPTED:
            resumes += 1
            if resumes > max_resumes:
                raise OSError_("enclave did not terminate")
            err, value = self.resume(thread_page)
        return (err, value)

    def stop_and_remove(self, as_page: int, pages: Sequence[int]) -> None:
        """Tear an enclave down: Stop, then Remove every page, addrspace last."""
        self.smc_checked(SMC.STOP, as_page)
        for pageno in pages:
            if pageno == as_page:
                continue
            self.smc_checked(SMC.REMOVE, pageno)
            self.release_page(pageno)
        self.smc_checked(SMC.REMOVE, as_page)
        self.release_page(as_page)

    # -- crash recovery (the kernel driver's watchdog path) --------------------------

    #: For each idempotent-on-retry SMC, the errors that mean "the
    #: interrupted call actually completed before the crash".  The
    #: monitor's commit protocol guarantees an interrupted call landed in
    #: exactly the pre-call or the completed state; re-issuing it
    #: therefore either succeeds (pre-call) or fails with one of these
    #: (completed), and nothing else.
    _RETRY_COMPLETED_ERRORS = {
        SMC.INIT_ADDRSPACE: (KomErr.PAGEINUSE,),
        SMC.INIT_THREAD: (KomErr.PAGEINUSE,),
        SMC.INIT_L2PTABLE: (KomErr.PAGEINUSE, KomErr.ADDRINUSE),
        SMC.MAP_SECURE: (KomErr.PAGEINUSE, KomErr.ADDRINUSE),
        SMC.MAP_INSECURE: (KomErr.ADDRINUSE,),
        SMC.ALLOC_SPARE: (KomErr.PAGEINUSE,),
        SMC.FINALISE: (KomErr.ALREADY_FINAL,),
        SMC.REMOVE: (KomErr.INVALID_PAGENO,),
        SMC.STOP: (),
    }

    def retry_after_crash(self, callno: int, *args: int) -> Tuple[KomErr, int]:
        """Re-issue an SMC that was interrupted by a monitor crash.

        Call after ``monitor.recover()``.  Returns SUCCESS both when the
        retry completes the call and when the first attempt already had
        (detected via the call's characteristic already-done error), so
        the driver's state machine can continue as if the crash never
        happened.  Stop is naturally idempotent; Enter/Resume are
        execution calls handled by ``recover_execution`` instead.
        """
        err, value = self.smc(callno, *args)
        if err in self._RETRY_COMPLETED_ERRORS.get(callno, ()):
            return (KomErr.SUCCESS, value)
        return (err, value)

    # -- transient failures (the kernel driver's patience) ---------------------------

    def retry_with_backoff(
        self,
        issue,
        *,
        transient: Tuple[KomErr, ...] = (KomErr.PAGE_QUARANTINED,),
        attempts: int = 4,
        seed: int = 0,
        base_delay: int = 64,
        cap: Optional[int] = None,
        deadline: Optional[int] = None,
    ) -> Tuple[KomErr, int]:
        """Bounded retry of a transient SMC outcome, with seeded backoff.

        ``issue`` is a zero-argument callable returning ``(err, value)``
        — typically a lambda re-issuing one SMC.  Outcomes in
        ``transient`` may clear up after the system state changes:
        ``PAGE_QUARANTINED`` from a precheck that contained corruption
        in *some* page (the next attempt runs against the repaired
        state), or a contended monitor lock on a multicore platform.

        The backoff between attempts is a deterministic, seeded,
        exponentially growing spin (``repro.util.backoff``) charged to
        the machine's cycle counter — never wall-clock — so campaign
        runs that exercise this path are bit-reproducible and the cost
        model sees the waiting.  ``cap`` bounds a single spin;
        ``deadline`` (absolute, in cycles) refuses any wait that would
        end past it.  Returns the final ``(err, value)`` after at most
        ``attempts`` issues (the last error, still transient, if none
        succeeded or the deadline cut the loop short).
        """
        state = self.monitor.state
        policy = BackoffPolicy(
            base_delay=base_delay, attempts=attempts, cap=cap, deadline=deadline
        )
        # No try/finally on purpose: an injected crash escaping issue()
        # leaves the session attached (see __init__); snapshot restore
        # resets it so a rewound trial cannot inherit a stale deadline.
        self._backoff = session = policy.session(seed)
        err, value = issue()
        while err in transient:
            delay = session.next_delay(now=state.cycles)
            if delay is None:
                break
            state.charge(delay)
            err, value = issue()
        self._backoff = None
        return (err, value)

    def scrub(self) -> Tuple[int, int]:
        """Run the monitor's integrity sweep (``SMC_SCRUB``).

        Returns ``(fixed, quarantined)``: how many tags/pages the sweep
        repaired or healed, and how many pages it had to quarantine.
        """
        value = self.smc_checked(SMC.SCRUB)
        return (value >> 16, value & 0xFFFF)

    def recover_execution(
        self, thread_page: int, arg1: int = 0, arg2: int = 0, arg3: int = 0
    ) -> Tuple[KomErr, int]:
        """Resume running a thread whose Enter/Resume crashed.

        Depending on where the crash hit, the thread is either still
        suspended (entered, context saved — Resume it) or was never /
        no longer entered (Enter it fresh).  Either way, keep resuming
        across interrupts as ``run_to_completion`` does.
        """
        err, value = self.resume(thread_page)
        if err in (KomErr.NOT_ENTERED, KomErr.INVALID_THREAD):
            return self.run_to_completion(thread_page, arg1, arg2, arg3)
        resumes = 0
        while err is KomErr.INTERRUPTED:
            resumes += 1
            if resumes > 10_000:
                raise OSError_("enclave did not terminate after recovery")
            err, value = self.resume(thread_page)
        return (err, value)
