"""Fault injection and crash-consistency auditing for the monitor.

The paper's proofs quantify over *every* reachable state; this package
makes the states a watchdog reset can expose mid-SMC reachable in the
executable model and checks them:

* :mod:`repro.faults.injector` — deterministic plans that abort
  execution at the N-th machine-visible monitor operation;
* :mod:`repro.faults.audit` — post-crash consistency checking (spec
  invariants via extraction plus an independent machine-level walk);
* :mod:`repro.faults.campaign` — exhaustive per-step fault campaigns
  over a full enclave lifecycle, with OS-side retry to completion and
  a fast/reference differential mode;
* :mod:`repro.faults.bitflip` — exhaustive single-bit-flip campaigns
  against the memory-integrity engine: every injection must end
  benign, repaired, or quarantined-and-contained, never in a silent
  wrong result;
* :mod:`repro.faults.snapshot` — campaign checkpoints: capture a
  lifecycle prefix once and rewind it in place per injected fault,
  bit-identical to the per-trial deep-copy path but cheaper;
* :mod:`repro.faults.parallel` — sharded campaign execution: trials
  stripe across forked workers and the merged report is byte-identical
  to the serial one (the CLIs' ``--jobs N``).
"""

from repro.faults.audit import (
    audit_monitor,
    integrity_consistency,
    machine_consistency,
    secure_state_digest,
)
from repro.faults.bitflip import (
    BitflipCampaign,
    BitflipReport,
    FlipRecord,
    FlipSite,
)
from repro.faults.bitflip import run_differential as run_bitflip_differential
from repro.faults.campaign import (
    CampaignReport,
    LifecycleCampaign,
    StepReport,
    TrialRecord,
    run_differential,
)
from repro.faults.injector import FaultInjected, FaultPlan, inject
from repro.faults.snapshot import CampaignSnapshot

__all__ = [
    "BitflipCampaign",
    "BitflipReport",
    "CampaignReport",
    "CampaignSnapshot",
    "FaultInjected",
    "FaultPlan",
    "FlipRecord",
    "FlipSite",
    "LifecycleCampaign",
    "StepReport",
    "TrialRecord",
    "audit_monitor",
    "inject",
    "integrity_consistency",
    "machine_consistency",
    "run_bitflip_differential",
    "run_differential",
    "secure_state_digest",
]
