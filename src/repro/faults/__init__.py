"""Fault injection and crash-consistency auditing for the monitor.

The paper's proofs quantify over *every* reachable state; this package
makes the states a watchdog reset can expose mid-SMC reachable in the
executable model and checks them:

* :mod:`repro.faults.injector` — deterministic plans that abort
  execution at the N-th machine-visible monitor operation;
* :mod:`repro.faults.audit` — post-crash consistency checking (spec
  invariants via extraction plus an independent machine-level walk);
* :mod:`repro.faults.campaign` — exhaustive per-step fault campaigns
  over a full enclave lifecycle, with OS-side retry to completion and
  a fast/reference differential mode.
"""

from repro.faults.audit import audit_monitor, machine_consistency, secure_state_digest
from repro.faults.campaign import (
    CampaignReport,
    LifecycleCampaign,
    StepReport,
    run_differential,
)
from repro.faults.injector import FaultInjected, FaultPlan, inject

__all__ = [
    "CampaignReport",
    "FaultInjected",
    "FaultPlan",
    "LifecycleCampaign",
    "StepReport",
    "audit_monitor",
    "inject",
    "machine_consistency",
    "run_differential",
    "secure_state_digest",
]
