"""Exhaustive per-step fault campaigns over a full enclave lifecycle.

For every step of the lifecycle (init → map → finalise → enter → svc →
stop → remove), the campaign:

1. runs the step on a **discovery** copy of the machine, counting its
   machine-visible monitor operations and snapshotting the quiescent
   state at every transaction boundary;
2. for each operation index ``n``, runs a **trial** on a fresh copy with
   a plan that crashes the monitor at exactly the n-th operation, then
   invokes ``KomodoMonitor.recover()`` and checks:

   * the full audit (spec invariants + machine-level walk) is clean;
   * the secure-state digest equals one of the discovery snapshots —
     i.e. recovery landed in *exactly* the pre-call or the completed
     state (or, for execution calls, a quiescent boundary between
     their bookkeeping windows), never in between;
   * the OS retry path (``OSKernel.retry_after_crash`` /
     ``recover_execution``) then finishes the interrupted step and the
     whole remaining lifecycle, ending with every secure page free.

The campaign's enclave program performs no user-mode stores, so the
quiescent digests classify states exactly; randomness comes only from
the seeded ``HardwareRNG``, keeping every trial bit-deterministic.

``run_differential`` runs the same campaign under each requested
execution engine (any subset of fast/reference/turbo) and compares
their per-step operation counts, digests, and cycle counters —
injected aborts must not let the decode cache, micro-TLB, or compiled
block cache desynchronise from flat memory.

Trials default to snapshot acceleration: the pre-step state is
captured once per step (``CampaignSnapshot``) and rewound in place per
injected fault, instead of deep-copying the whole monitor per trial.
``use_snapshots=False`` keeps the original deep-copy path; both paths
produce bit-identical reports.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.arm.assembler import Assembler
from repro.arm.pagetable import l1_index
from repro.crypto.rng import HardwareRNG
from repro.faults.audit import audit_monitor, secure_state_digest
from repro.faults.injector import FaultInjected, FaultPlan, inject
from repro.faults.snapshot import CampaignSnapshot
from repro.monitor.errors import KomErr
from repro.monitor.komodo import KomodoMonitor
from repro.monitor.layout import SMC, SVC, Mapping, PageType
from repro.osmodel.kernel import OSKernel
from repro.util.watchdog import TrialTimeout, time_limit

#: Fixed secure-page assignment for the lifecycle enclave.
AS_PAGE, L1_PAGE, L2_PAGE, CODE_PAGE, THREAD_PAGE = 0, 1, 2, 3, 4
CODE_VA = 0x0001_0000
EXIT_VALUE = 0x600D
#: Teardown order: threads and data first, the addrspace last.
REMOVE_ORDER = (THREAD_PAGE, CODE_PAGE, L2_PAGE, L1_PAGE, AS_PAGE)

_EXECUTE = "execute"


@dataclass(frozen=True)
class _Step:
    """One lifecycle step: a plain SMC, or the composite execute step."""

    name: str
    callno: Optional[int]  # None for the composite execute step
    args: Tuple[int, ...] = ()


@dataclass
class TrialRecord:
    """One injected-fault trial.

    ``ordinal`` is the trial's index in the *serial* trial sequence
    (before any shard filtering), so a sharded campaign's records merge
    back into exactly the serial report (``repro.faults.parallel``).
    """

    ordinal: int
    abort_at: int
    violations: List[str] = field(default_factory=list)


@dataclass
class StepReport:
    """Per-step results, with violations in explicit buckets.

    ``pre_violations`` come from the discovery pass, each trial's
    violations live on its :class:`TrialRecord`, and ``post_violations``
    come from the clean-run audit — the flattened ``violations``
    property reproduces the historical (serial-order) list exactly.
    """

    name: str
    fault_points: int = 0
    pre_violations: List[str] = field(default_factory=list)
    trial_records: List[TrialRecord] = field(default_factory=list)
    post_violations: List[str] = field(default_factory=list)
    post_digest: str = ""
    post_cycles: int = 0

    @property
    def trials(self) -> int:
        return len(self.trial_records)

    @property
    def violations(self) -> List[str]:
        out = list(self.pre_violations)
        for record in self.trial_records:
            out.extend(record.violations)
        out.extend(self.post_violations)
        return out


@dataclass
class CampaignReport:
    engine: str
    seed: int
    steps: List[StepReport] = field(default_factory=list)

    @property
    def violations(self) -> List[str]:
        return [v for step in self.steps for v in step.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def total_trials(self) -> int:
        return sum(step.trials for step in self.steps)

    @property
    def total_fault_points(self) -> int:
        return sum(step.fault_points for step in self.steps)


def _program_words() -> List[int]:
    """The campaign enclave: one non-exit SVC, then Exit(0x600D).

    Deliberately store-free — user-mode stores are architecturally
    immediate, so a program that wrote memory would create states
    between transaction boundaries and break exact classification.
    """
    asm = Assembler()
    asm.svc(SVC.GET_RANDOM)
    asm.movw("r0", EXIT_VALUE)
    asm.svc(SVC.EXIT)
    return asm.assemble()


class LifecycleCampaign:
    """Run the exhaustive per-step fault campaign.

    Parameters
    ----------
    seed:
        drives the monitor's hardware RNG; the whole campaign is a
        deterministic function of (seed, engine, steps, stride).
    engine:
        execution engine for enclave code ("fast", "reference", or
        None for the default).
    inject_steps:
        restrict injection to steps whose name equals or starts with
        one of these tokens (e.g. ``["remove"]`` covers every Remove);
        all steps still *run* so the lifecycle advances.  None injects
        everywhere.
    stride:
        inject at every ``stride``-th operation index (1 = exhaustive).
    use_snapshots:
        capture the pre-step state once per step with
        ``CampaignSnapshot`` and rewind it in place per trial, instead
        of deep-copying the monitor per trial.  Reports are
        bit-identical either way (pinned by
        tests/faults/test_snapshot.py); snapshots are just faster.
    trial_timeout:
        optional wall-clock budget (seconds) per discovery run / trial;
        a wedged trial fails with a recorded violation instead of
        hanging the campaign (``repro.util.watchdog``).  None disables.
    shard:
        optional ``(index, count)``: run only trials whose serial
        ordinal is ``index`` modulo ``count``.  Discovery and the
        clean-run lifecycle still execute in full (they are what every
        shard's trials fork from), so ``count`` sharded reports merge
        back into exactly the serial report — see
        ``repro.faults.parallel``.
    """

    def __init__(
        self,
        seed: int = 0xC0FFEE,
        engine: Optional[str] = None,
        secure_pages: int = 16,
        inject_steps: Optional[Iterable[str]] = None,
        stride: int = 1,
        use_snapshots: bool = True,
        trial_timeout: Optional[float] = None,
        shard: Optional[Tuple[int, int]] = None,
    ) -> None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        if shard is not None and not 0 <= shard[0] < shard[1]:
            raise ValueError(f"shard index out of range: {shard}")
        self.seed = seed
        self.engine = engine
        self.secure_pages = secure_pages
        self.inject_steps = None if inject_steps is None else tuple(inject_steps)
        self.stride = stride
        self.use_snapshots = use_snapshots
        self.trial_timeout = trial_timeout
        self.shard = shard

    # -- machinery -------------------------------------------------------

    def _fresh_monitor(self) -> KomodoMonitor:
        monitor = KomodoMonitor(
            rng=HardwareRNG(self.seed),
            secure_pages=self.secure_pages,
            cpu_engine=self.engine,
        )
        # Stage the enclave program in insecure RAM (the OS's staging
        # page); every trial copy inherits it.
        state = monitor.state
        state.memory.write_words(state.memmap.insecure.base, _program_words())
        return monitor

    def _steps(self, monitor: KomodoMonitor) -> List[_Step]:
        staged = monitor.state.memmap.insecure.base
        code_mapping = Mapping(
            va=CODE_VA, readable=True, writable=False, executable=True
        ).encode()
        steps = [
            _Step("init_addrspace", SMC.INIT_ADDRSPACE, (AS_PAGE, L1_PAGE)),
            _Step(
                "init_l2ptable",
                SMC.INIT_L2PTABLE,
                (AS_PAGE, L2_PAGE, l1_index(CODE_VA)),
            ),
            _Step(
                "map_secure",
                SMC.MAP_SECURE,
                (AS_PAGE, CODE_PAGE, code_mapping, staged),
            ),
            _Step("init_thread", SMC.INIT_THREAD, (AS_PAGE, THREAD_PAGE, CODE_VA)),
            _Step("finalise", SMC.FINALISE, (AS_PAGE,)),
            _Step(_EXECUTE, None),
            _Step("stop", SMC.STOP, (AS_PAGE,)),
        ]
        steps.extend(
            _Step(f"remove_{['thread','code','l2','l1','as'][i]}", SMC.REMOVE, (p,))
            for i, p in enumerate(REMOVE_ORDER)
        )
        return steps

    def _injects(self, step: _Step) -> bool:
        if self.inject_steps is None:
            return True
        return any(
            step.name == token or step.name.startswith(token)
            for token in self.inject_steps
        )

    @staticmethod
    def _copy(monitor: KomodoMonitor) -> KomodoMonitor:
        # Decoded-instruction caches are heavy and rebuildable; reset
        # before copying so snapshots stay cheap.
        monitor.state.uarch.reset()
        return copy.deepcopy(monitor)

    @staticmethod
    def _run_step(monitor: KomodoMonitor, step: _Step) -> None:
        """Run one step to completion, asserting the expected result."""
        if step.callno is not None:
            err, _ = monitor.smc(step.callno, *step.args)
            if err is not KomErr.SUCCESS:
                raise RuntimeError(f"lifecycle step {step.name} failed: {err!r}")
            return
        # Composite execute: enter with an interrupt scheduled so the
        # save/resume path runs, then resume across interrupts.
        monitor.schedule_interrupt(1)
        err, value = monitor.smc(SMC.ENTER, THREAD_PAGE, 0, 0, 0)
        while err is KomErr.INTERRUPTED:
            err, value = monitor.smc(SMC.RESUME, THREAD_PAGE)
        if err is not KomErr.SUCCESS or value != EXIT_VALUE:
            raise RuntimeError(f"enclave run returned ({err!r}, {value:#x})")

    def _finish_after_crash(
        self,
        monitor: KomodoMonitor,
        steps: List[_Step],
        crashed_index: int,
    ) -> List[str]:
        """OS retry path: complete the interrupted step, then the rest."""
        problems: List[str] = []
        kernel = OSKernel(monitor)
        step = steps[crashed_index]
        if step.callno is not None:
            err, _ = kernel.retry_after_crash(step.callno, *step.args)
            if err is not KomErr.SUCCESS:
                problems.append(f"{step.name}: retry after crash failed: {err!r}")
                return problems
        else:
            err, value = kernel.recover_execution(THREAD_PAGE)
            if err is not KomErr.SUCCESS or value != EXIT_VALUE:
                problems.append(
                    f"{step.name}: recovery run returned ({err!r}, {value:#x})"
                )
                return problems
        for later in steps[crashed_index + 1 :]:
            try:
                self._run_step(monitor, later)
            except RuntimeError as exc:
                problems.append(f"after {step.name} crash: {exc}")
                return problems
        problems.extend(
            f"after {step.name} crash, final audit: {violation}"
            for violation in audit_monitor(monitor)
        )
        pagedb = monitor.pagedb
        not_free = [
            pageno
            for pageno in range(pagedb.npages)
            if pagedb.page_type(pageno) is not PageType.FREE
        ]
        if not_free:
            problems.append(
                f"after {step.name} crash, pages not freed by teardown: {not_free}"
            )
        return problems

    # -- the campaign ----------------------------------------------------

    def run(self) -> CampaignReport:
        report = CampaignReport(engine=self.engine or "default", seed=self.seed)
        monitor = self._fresh_monitor()
        steps = self._steps(monitor)
        for index, step in enumerate(steps):
            step_report = StepReport(name=step.name)
            report.steps.append(step_report)
            if self._injects(step):
                self._campaign_step(monitor, steps, index, step_report)
            # Advance the base machine through the step.
            self._run_step(monitor, step)
            clean = audit_monitor(monitor)
            step_report.post_violations.extend(
                f"{step.name}: clean-run audit: {violation}" for violation in clean
            )
            step_report.post_digest = secure_state_digest(monitor.state)
            step_report.post_cycles = monitor.state.cycles
        return report

    def _campaign_step(
        self,
        base: KomodoMonitor,
        steps: List[_Step],
        index: int,
        step_report: StepReport,
    ) -> None:
        step = steps[index]
        if self.use_snapshots:
            # Capture the pre-step state once; every probe/trial below
            # is an in-place rewind of `base` itself.
            checkpoint = CampaignSnapshot(base)

            def fork() -> KomodoMonitor:
                monitor, _ = checkpoint.restore()
                return monitor

            cleanup = fork
        else:

            def fork() -> KomodoMonitor:
                return self._copy(base)

            def cleanup() -> KomodoMonitor:
                return base

        # Discovery: count operations and snapshot quiescent boundaries.
        probe = fork()
        boundaries = {secure_state_digest(probe.state)}
        plan = FaultPlan(
            on_boundary=lambda state: boundaries.add(secure_state_digest(state))
        )
        try:
            with time_limit(self.trial_timeout, f"{step.name} discovery"):
                with inject(probe.state, plan):
                    self._run_step(probe, step)
        except TrialTimeout as exc:
            step_report.pre_violations.append(f"{step.name}: {exc}")
            cleanup()
            return
        boundaries.add(secure_state_digest(probe.state))
        step_report.fault_points = plan.count
        # Trials: crash at every (stride-th) operation.  Trials are
        # isolated (each forks/rewinds the pre-step state), so a shard
        # may skip any subset without perturbing the rest.
        for ordinal, abort_at in enumerate(range(1, plan.count + 1, self.stride)):
            if self.shard is not None and ordinal % self.shard[1] != self.shard[0]:
                continue
            trial = fork()
            record = TrialRecord(ordinal=ordinal, abort_at=abort_at)
            step_report.trial_records.append(record)
            try:
                with time_limit(self.trial_timeout, f"{step.name} op {abort_at}"):
                    self._trial(
                        trial, steps, index, abort_at, boundaries, record.violations
                    )
            except TrialTimeout as exc:
                # A timeout may strand the trial machine mid-step; the
                # next fork() rewind (or throwaway copy) discards it.
                record.violations.append(f"{step.name}: {exc}")
        # Leave `base` at the pre-step state for the clean run.
        cleanup()

    def _trial(
        self,
        trial: KomodoMonitor,
        steps: List[_Step],
        index: int,
        abort_at: int,
        boundaries,
        violations: List[str],
    ) -> None:
        step = steps[index]
        trial_plan = FaultPlan(abort_at=abort_at)
        crashed = False
        try:
            with inject(trial.state, trial_plan):
                self._run_step(trial, step)
        except FaultInjected:
            crashed = True
        if not crashed:
            violations.append(
                f"{step.name}: injection at op {abort_at} did not fire"
            )
            return
        kind, detail = trial_plan.trace[-1]
        where = f"{step.name} op {abort_at} ({kind} {detail:#x})"
        trial.recover()
        violations.extend(
            f"{where}: audit: {violation}" for violation in audit_monitor(trial)
        )
        if secure_state_digest(trial.state) not in boundaries:
            violations.append(
                f"{where}: recovered state is neither pre-call nor completed"
            )
        violations.extend(self._finish_after_crash(trial, steps, index))


def run_differential(
    seed: int = 0xC0FFEE,
    inject_steps: Optional[Iterable[str]] = None,
    stride: int = 1,
    secure_pages: int = 16,
    engines: Tuple[str, ...] = ("fast", "reference"),
    use_snapshots: bool = True,
    trial_timeout: Optional[float] = None,
    shard: Optional[Tuple[int, int]] = None,
) -> Tuple:
    """Run the campaign under each engine and compare them pairwise.

    Returns ``(*reports, mismatches)`` in ``engines`` order — the
    default two-engine call keeps the historical
    ``(fast, reference, mismatches)`` shape.  All engines must agree
    on every step's operation count, post-step digest, and cycle
    counter: an injected abort that left the decode cache, micro-TLB,
    or block cache inconsistent with flat memory would show up here.
    """
    if len(engines) < 2:
        raise ValueError("differential needs at least two engines")
    tokens = None if inject_steps is None else tuple(inject_steps)
    reports = []
    for engine in engines:
        campaign = LifecycleCampaign(
            seed=seed,
            engine=engine,
            secure_pages=secure_pages,
            inject_steps=tokens,
            stride=stride,
            use_snapshots=use_snapshots,
            trial_timeout=trial_timeout,
            shard=shard,
        )
        reports.append(campaign.run())
    return (*reports, compare_reports(engines, reports))


def compare_reports(
    engines: Sequence[str], reports: Sequence[CampaignReport]
) -> List[str]:
    """Pairwise engine comparison over already-run campaign reports.

    Factored out of :func:`run_differential` so the sharded runner
    (``repro.faults.parallel``) can recompute mismatches on *merged*
    reports — byte-identical to what a serial differential prints.
    """
    base_name, baseline = engines[0], reports[0]
    mismatches: List[str] = []
    for engine, report in zip(engines[1:], reports[1:]):
        for base_step, step in zip(baseline.steps, report.steps):
            if base_step.fault_points != step.fault_points:
                mismatches.append(
                    f"{step.name}: fault points differ "
                    f"({base_name} {base_step.fault_points}, "
                    f"{engine} {step.fault_points})"
                )
            if base_step.post_digest != step.post_digest:
                mismatches.append(
                    f"{step.name}: post-step state digests differ "
                    f"({base_name} vs {engine})"
                )
            if base_step.post_cycles != step.post_cycles:
                mismatches.append(
                    f"{step.name}: cycle counters differ "
                    f"({base_name} {base_step.post_cycles}, "
                    f"{engine} {step.post_cycles})"
                )
    return mismatches
