"""Exhaustive single-bit-flip campaigns against the integrity engine.

Two enclaves — a *victim* and a *bystander* — are built side by side;
at each quiescent lifecycle step the campaign flips one bit of one
monitor-critical word (PageDB entries, integrity-tag arrays, enclave
metadata pages, enclave code/data pages) and then lets the normal-world
OS drive the rest of the lifecycle.  Every trial must end in one of
three defensible outcomes:

* **benign** — the flip landed in a word nothing will ever trust again
  (a dirty flag, say); the engine's own consistency walk sees nothing
  wrong, and both enclaves run untouched;
* **repaired** — the flip hit the PageDB's triple redundancy or a
  healable engine flag; it is silently repaired/healed and both
  enclaves run untouched;
* **quarantined** — the flip destroyed page contents (or made a tag
  lie, which is indistinguishable); the monitor quarantines the page,
  force-stops exactly the owning addrspace, and the OS rebuilds that
  one enclave with :meth:`OSKernel.retry_with_backoff` while the other
  enclave completes its workload untouched.

A trial that ends any other way — a wrong enclave result, a rebuild of
the *un*-owning enclave, a dirty audit, or a final secure-state digest
differing from the unflipped golden run's — is a violation: corruption
escaped detection or containment.

The enclave program is store-free and draws no randomness, so the
post-teardown digest is a deterministic function of the lifecycle alone
and rebuilt enclaves reconverge bit-exactly onto the golden state (the
OS free-list discipline hands a rebuild the same page numbers).

The one word never flipped is the tag region's magic word: it models a
fuse/boot-ROM latch (set once by the bootloader, compared against an
immediate), not DRAM — and a flip there would silently disable the
engine, which is exactly the corruptible-status-word failure mode the
design avoids by *not* keying any trust decision off mutable state.

``run_differential`` repeats a campaign under each requested execution
engine (any subset of fast/reference/turbo): per-trial outcomes, final
digests and cycle counters must agree bit-for-bit.

Trials default to snapshot acceleration (``use_snapshots=True``): each
quiescent step state is captured once with ``CampaignSnapshot`` and
rewound in place per flip, instead of deep-copying the whole
monitor+kernel pair per trial.  ``use_snapshots=False`` keeps the
original deep-copy path; both produce bit-identical reports (pinned by
tests/faults/test_snapshot.py).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.arm.assembler import Assembler
from repro.arm.bits import WORDSIZE
from repro.arm.memory import PAGE_SIZE, WORDS_PER_PAGE
from repro.arm.pagetable import l1_index, l2_index
from repro.crypto.rng import HardwareRNG
from repro.faults.audit import audit_monitor, integrity_consistency, secure_state_digest
from repro.faults.snapshot import CampaignSnapshot
from repro.monitor import integrity
from repro.monitor.errors import KomErr
from repro.monitor.komodo import KomodoMonitor
from repro.monitor.layout import (
    AS_WORDS_USED,
    SMC,
    SVC,
    TH_WORDS_USED,
    Mapping,
    itag_dirty_addr,
    itag_entry_sum_addr,
    itag_page_tag_addr,
    itag_quarantine_addr,
    itag_replica_addr,
    pagedb_entry_addr,
)
from repro.osmodel.kernel import OSKernel
from repro.util.watchdog import TrialTimeout, time_limit

CODE_VA = 0x0001_0000
DATA_VA = CODE_VA + PAGE_SIZE
EXIT_VALUE = 0x600D

#: Flip-target families selectable from the CLI.
TARGET_FAMILIES = ("pagedb", "itag", "metadata", "data")


def _program_words() -> List[int]:
    """The campaign enclave: Exit(0x600D), nothing else.

    Store-free (stores are architecturally immediate and would make the
    final digest depend on where a rebuild restarted) and — unlike the
    crash-campaign program — free of ``GET_RANDOM``: a rebuilt enclave
    re-runs from scratch, and an RNG draw would advance the hardware
    RNG differently from the golden run.
    """
    asm = Assembler()
    asm.movw("r0", EXIT_VALUE)
    asm.svc(SVC.EXIT)
    return asm.assemble()


def _data_pattern() -> List[int]:
    """Recognisable non-zero contents for each enclave's data page."""
    return [(0xDA7A0000 ^ (i * 0x01010101)) & 0xFFFFFFFF for i in range(64)]


@dataclass(frozen=True)
class EnclavePages:
    """The fixed secure-page footprint of one campaign enclave."""

    name: str
    as_page: int
    l1: int
    l2: int
    code: int
    data: int
    thread: int

    @property
    def all_pages(self) -> Tuple[int, ...]:
        return (self.as_page, self.l1, self.l2, self.code, self.data, self.thread)

    #: Teardown order: children first, the addrspace last, matching the
    #: free-list discipline that makes a rebuild re-draw the same pages.
    @property
    def remove_order(self) -> Tuple[int, ...]:
        return (self.thread, self.data, self.code, self.l2, self.l1, self.as_page)


@dataclass(frozen=True)
class FlipSite:
    """One injectable word: label, physical address, owning enclave."""

    label: str
    address: int
    owner: Optional[str]  # enclave name, or None for shared structures


@dataclass
class _Outcome:
    """Everything observable about one post-flip lifecycle completion."""

    results: Dict[str, Tuple[KomErr, int]] = field(default_factory=dict)
    rebuilt: List[str] = field(default_factory=list)
    quarantine_errors: int = 0  # PAGE_QUARANTINED returns the OS saw
    scrub_repaired: int = 0
    scrub_quarantined: int = 0
    problems: List[str] = field(default_factory=list)
    final_digest: str = ""
    final_cycles: int = 0


@dataclass
class FlipRecord:
    """One flip trial.

    ``ordinal`` is the trial's index in the *serial* (site × bit,
    strided) sequence, so sharded campaigns merge back into exactly the
    serial report (``repro.faults.parallel``).  A timed-out trial keeps
    its slot with ``outcome="timeout"``/empty digest/cycles ``-1`` so
    the differential records stay aligned.
    """

    ordinal: int
    site: str
    bit: int
    outcome: str = ""
    digest: str = ""
    cycles: int = -1
    violations: List[str] = field(default_factory=list)


@dataclass
class StepSummary:
    """Per-step results; the flat lists the differential comparisons and
    the CLI table use are derived from the per-trial records."""

    name: str
    sites: int = 0
    pre_violations: List[str] = field(default_factory=list)
    flip_records: List[FlipRecord] = field(default_factory=list)

    @property
    def trials(self) -> int:
        return len(self.flip_records)

    @property
    def benign(self) -> int:
        return sum(1 for r in self.flip_records if r.outcome == "benign")

    @property
    def repaired(self) -> int:
        return sum(1 for r in self.flip_records if r.outcome == "repaired")

    @property
    def quarantined(self) -> int:
        return sum(1 for r in self.flip_records if r.outcome == "quarantined")

    @property
    def violations(self) -> List[str]:
        out = list(self.pre_violations)
        for record in self.flip_records:
            out.extend(record.violations)
        return out

    # Per-trial projections, in site×bit order — the differential hook.
    @property
    def trial_outcomes(self) -> List[str]:
        return [r.outcome for r in self.flip_records]

    @property
    def trial_digests(self) -> List[str]:
        return [r.digest for r in self.flip_records]

    @property
    def trial_cycles(self) -> List[int]:
        return [r.cycles for r in self.flip_records]


@dataclass
class BitflipReport:
    engine: str
    seed: int
    stride: int
    steps: List[StepSummary] = field(default_factory=list)

    @property
    def violations(self) -> List[str]:
        return [v for step in self.steps for v in step.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def total_trials(self) -> int:
        return sum(step.trials for step in self.steps)

    @property
    def outcome_counts(self) -> Dict[str, int]:
        return {
            "benign": sum(s.benign for s in self.steps),
            "repaired": sum(s.repaired for s in self.steps),
            "quarantined": sum(s.quarantined for s in self.steps),
        }


class BitflipCampaign:
    """Flip every (strided) bit of every monitor-critical word.

    Parameters
    ----------
    seed:
        drives the monitor RNG and the OS backoff jitter; a campaign is
        a deterministic function of (seed, engine, targets, stride).
    engine:
        enclave execution engine ("fast", "reference", or None).
    targets:
        subset of :data:`TARGET_FAMILIES` to inject into (None = all).
    stride:
        inject every ``stride``-th (site, bit) pair (1 = exhaustive).
    use_snapshots:
        checkpoint each quiescent step once and rewind in place per
        flip instead of deep-copying monitor+kernel per trial; reports
        are bit-identical either way.
    trial_timeout:
        optional wall-clock budget (seconds) per trial; a wedged trial
        is recorded as a violation instead of hanging the campaign
        (``repro.util.watchdog``).  None disables.
    shard:
        optional ``(index, count)``: run only trials whose serial
        ordinal is ``index`` modulo ``count``.  Enclave building, the
        golden runs, and site enumeration still execute in full, so
        sharded reports merge back into exactly the serial report —
        see ``repro.faults.parallel``.
    """

    def __init__(
        self,
        seed: int = 0xB17F11B,
        engine: Optional[str] = None,
        secure_pages: int = 16,
        targets: Optional[Iterable[str]] = None,
        stride: int = 1,
        use_snapshots: bool = True,
        trial_timeout: Optional[float] = None,
        shard: Optional[Tuple[int, int]] = None,
    ) -> None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        if shard is not None and not 0 <= shard[0] < shard[1]:
            raise ValueError(f"shard index out of range: {shard}")
        self.seed = seed
        self.engine = engine
        self.secure_pages = secure_pages
        if targets is None:
            self.targets = frozenset(TARGET_FAMILIES)
        else:
            self.targets = frozenset(targets)
            unknown = self.targets - frozenset(TARGET_FAMILIES)
            if unknown:
                raise ValueError(f"unknown flip-target families: {sorted(unknown)}")
        self.stride = stride
        self.use_snapshots = use_snapshots
        self.trial_timeout = trial_timeout
        self.shard = shard

    # -- lifecycle machinery ---------------------------------------------

    def _fresh(self) -> Tuple[KomodoMonitor, OSKernel]:
        monitor = KomodoMonitor(
            rng=HardwareRNG(self.seed),
            secure_pages=self.secure_pages,
            cpu_engine=self.engine,
        )
        return monitor, OSKernel(monitor)

    def _build_enclave(self, kernel: OSKernel, name: str) -> EnclavePages:
        as_page, l1 = kernel.init_addrspace()
        l2 = kernel.init_l2table(as_page, l1_index(CODE_VA))
        code = kernel.map_secure(
            as_page,
            Mapping(va=CODE_VA, readable=True, writable=False, executable=True),
            contents=_program_words(),
        )
        data = kernel.map_secure(
            as_page,
            Mapping(va=DATA_VA, readable=True, writable=True, executable=False),
            contents=_data_pattern(),
        )
        thread = kernel.init_thread(as_page, CODE_VA)
        return EnclavePages(
            name=name, as_page=as_page, l1=l1, l2=l2, code=code, data=data, thread=thread
        )

    def _teardown(self, kernel: OSKernel, enclave: EnclavePages) -> List[str]:
        """Stop/Remove an enclave, tolerating already-removed pages.

        Releases pages in child-first order so the OS free list hands a
        subsequent rebuild the identical page numbers.
        """
        problems: List[str] = []
        kernel.smc(SMC.STOP, enclave.as_page)
        for pageno in enclave.remove_order:
            err, _ = kernel.smc(SMC.REMOVE, pageno)
            if err is KomErr.SUCCESS:
                kernel.release_page(pageno)
            elif err is not KomErr.INVALID_PAGENO:  # already free is fine
                problems.append(
                    f"teardown of {enclave.name} page {pageno} failed: {err!r}"
                )
        return problems

    def _ensure_ran(
        self,
        kernel: OSKernel,
        enclave: EnclavePages,
        needs_finalise: bool,
        backoff_seed: int,
        outcome: _Outcome,
    ) -> None:
        """Run one enclave to a correct exit, rebuilding it if need be.

        The first attempt goes through ``retry_with_backoff`` — a
        ``PAGE_QUARANTINED`` precheck verdict is transient from the OS's
        point of view (the monitor already contained it; the retry runs
        against the repaired state).  If the enclave itself was the
        casualty (its addrspace is now force-stopped), the driver tears
        it down and rebuilds it from the original staged contents.
        """

        def attempt() -> Tuple[KomErr, int]:
            if needs_finalise:
                err, value = kernel.smc(SMC.FINALISE, enclave.as_page)
                if err is KomErr.PAGE_QUARANTINED:
                    outcome.quarantine_errors += 1
                if err not in (KomErr.SUCCESS, KomErr.ALREADY_FINAL):
                    return (err, value)
            err, value = kernel.run_to_completion(enclave.thread)
            if err is KomErr.PAGE_QUARANTINED:
                outcome.quarantine_errors += 1
            return (err, value)

        err, value = kernel.retry_with_backoff(
            attempt, attempts=3, seed=backoff_seed
        )
        if err is KomErr.SUCCESS and value == EXIT_VALUE:
            outcome.results[enclave.name] = (err, value)
            return
        outcome.rebuilt.append(enclave.name)
        outcome.problems.extend(self._teardown(kernel, enclave))
        rebuilt = self._build_enclave(kernel, enclave.name)
        if rebuilt.all_pages != enclave.all_pages:
            outcome.problems.append(
                f"rebuild of {enclave.name} drew pages {rebuilt.all_pages}, "
                f"expected {enclave.all_pages}"
            )
        kernel.finalise(rebuilt.as_page)
        outcome.results[enclave.name] = kernel.run_to_completion(rebuilt.thread)

    def _continue_lifecycle(
        self,
        monitor: KomodoMonitor,
        kernel: OSKernel,
        enclaves: Sequence[EnclavePages],
        needs_finalise: bool,
        backoff_seed: int,
    ) -> _Outcome:
        """Drive the remaining lifecycle from a (possibly flipped) state."""
        outcome = _Outcome()
        for enclave in enclaves:
            self._ensure_ran(kernel, enclave, needs_finalise, backoff_seed, outcome)
        # Periodic sweep: heal residual corruption in words nothing has
        # trusted yet (free-page contents, flipped engine flags).
        fixed, quarantined = kernel.scrub()
        outcome.scrub_repaired += fixed
        outcome.scrub_quarantined += quarantined
        outcome.problems.extend(
            f"mid-life audit: {p}" for p in audit_monitor(monitor)
        )
        outcome.problems.extend(
            f"mid-life integrity: {p}" for p in integrity_consistency(monitor.state)
        )
        for enclave in enclaves:
            outcome.problems.extend(self._teardown(kernel, enclave))
        fixed, quarantined = kernel.scrub()
        outcome.scrub_repaired += fixed
        outcome.scrub_quarantined += quarantined
        outcome.problems.extend(f"final audit: {p}" for p in audit_monitor(monitor))
        outcome.problems.extend(
            f"final integrity: {p}" for p in integrity_consistency(monitor.state)
        )
        outcome.final_digest = secure_state_digest(monitor.state)
        outcome.final_cycles = monitor.state.cycles
        return outcome

    # -- flip-site enumeration -------------------------------------------

    def _flip_sites(
        self, monitor: KomodoMonitor, enclaves: Sequence[EnclavePages]
    ) -> List[FlipSite]:
        """Every injectable word of the current state, deterministically.

        The tag region's magic word is deliberately absent — it models a
        boot-ROM fuse, not DRAM (see the module docstring).
        """
        state = monitor.state
        base = state.memmap.monitor_image.base
        npages = state.memmap.secure_pages
        sites: List[FlipSite] = []

        def add(label: str, address: int, owner: Optional[str]) -> None:
            sites.append(FlipSite(label=label, address=address, owner=owner))

        for enc in enclaves:
            if "pagedb" in self.targets:
                for pageno in enc.all_pages:
                    entry = pagedb_entry_addr(base, pageno)
                    add(f"pagedb[{pageno}].type", entry, enc.name)
                    add(f"pagedb[{pageno}].owner", entry + WORDSIZE, enc.name)
            if "itag" in self.targets:
                for pageno in enc.all_pages:
                    replica = itag_replica_addr(base, pageno)
                    add(f"itag.replica[{pageno}].type", replica, enc.name)
                    add(f"itag.replica[{pageno}].owner", replica + WORDSIZE, enc.name)
                    add(
                        f"itag.sum[{pageno}]",
                        itag_entry_sum_addr(base, npages, pageno),
                        enc.name,
                    )
                    add(
                        f"itag.tag[{pageno}]",
                        itag_page_tag_addr(base, npages, pageno),
                        enc.name,
                    )
                    add(
                        f"itag.quarantine[{pageno}]",
                        itag_quarantine_addr(base, npages, pageno),
                        enc.name,
                    )
                add(
                    f"itag.dirty[{enc.as_page}]",
                    itag_dirty_addr(base, npages, enc.as_page),
                    enc.name,
                )
            if "metadata" in self.targets:
                as_base = state.memmap.page_base(enc.as_page)
                for word in range(AS_WORDS_USED):
                    add(f"as[{enc.as_page}]+{word}", as_base + word * WORDSIZE, enc.name)
                th_base = state.memmap.page_base(enc.thread)
                for word in range(TH_WORDS_USED):
                    add(f"thread[{enc.thread}]+{word}", th_base + word * WORDSIZE, enc.name)
                l1_base = state.memmap.page_base(enc.l1)
                for index in (0, l1_index(CODE_VA)):
                    add(f"l1[{enc.l1}][{index}]", l1_base + index * WORDSIZE, enc.name)
                l2_base = state.memmap.page_base(enc.l2)
                for index in (0, l2_index(CODE_VA), l2_index(DATA_VA)):
                    add(f"l2[{enc.l2}][{index}]", l2_base + index * WORDSIZE, enc.name)
            if "data" in self.targets:
                code_base = state.memmap.page_base(enc.code)
                for word in range(len(_program_words()) + 2):
                    add(f"code[{enc.code}]+{word}", code_base + word * WORDSIZE, enc.name)
                data_base = state.memmap.page_base(enc.data)
                for word in (0, 1, 2, 3, 31, 63, WORDS_PER_PAGE - 1):
                    add(f"data[{enc.data}]+{word}", data_base + word * WORDSIZE, enc.name)
        return sites

    # -- the campaign ----------------------------------------------------

    def _snapshots(self):
        """Build both enclaves and capture the quiescent step states.

        Yields ``(name, monitor, kernel, enclaves, needs_finalise)``;
        the monitor/kernel pair in each snapshot is private to that step
        (trials deep-copy from it).
        """
        monitor, kernel = self._fresh()
        victim = self._build_enclave(kernel, "victim")
        bystander = self._build_enclave(kernel, "bystander")
        enclaves = (victim, bystander)
        snapshots = []

        def snap(name: str, needs_finalise: bool) -> None:
            monitor.state.uarch.reset()
            mon_copy, kern_copy = copy.deepcopy((monitor, kernel))
            snapshots.append((name, mon_copy, kern_copy, enclaves, needs_finalise))

        snap("built", True)
        for enclave in enclaves:
            kernel.finalise(enclave.as_page)
        snap("finalised", False)
        for enclave in enclaves:
            err, value = kernel.run_to_completion(enclave.thread)
            if err is not KomErr.SUCCESS or value != EXIT_VALUE:
                raise RuntimeError(f"campaign warm-up run failed: ({err!r}, {value:#x})")
        snap("ran", False)
        return snapshots

    def run(self) -> BitflipReport:
        report = BitflipReport(
            engine=self.engine or "default", seed=self.seed, stride=self.stride
        )
        if not self.use_snapshots:
            for name, monitor, kernel, enclaves, needs_finalise in self._snapshots():
                report.steps.append(
                    self._campaign_step(name, monitor, kernel, enclaves, needs_finalise)
                )
            return report
        # Snapshot mode: one machine is advanced through the quiescent
        # phases; each campaign step checkpoints it, rewinds it per
        # flip, and leaves it back at the pre-step state so the warm-up
        # advancement below is identical to the deep-copy path's.
        monitor, kernel = self._fresh()
        victim = self._build_enclave(kernel, "victim")
        bystander = self._build_enclave(kernel, "bystander")
        enclaves = (victim, bystander)
        report.steps.append(
            self._campaign_step("built", monitor, kernel, enclaves, True)
        )
        for enclave in enclaves:
            kernel.finalise(enclave.as_page)
        report.steps.append(
            self._campaign_step("finalised", monitor, kernel, enclaves, False)
        )
        for enclave in enclaves:
            err, value = kernel.run_to_completion(enclave.thread)
            if err is not KomErr.SUCCESS or value != EXIT_VALUE:
                raise RuntimeError(f"campaign warm-up run failed: ({err!r}, {value:#x})")
        report.steps.append(
            self._campaign_step("ran", monitor, kernel, enclaves, False)
        )
        return report

    def _campaign_step(
        self,
        name: str,
        monitor: KomodoMonitor,
        kernel: OSKernel,
        enclaves: Sequence[EnclavePages],
        needs_finalise: bool,
    ) -> StepSummary:
        summary = StepSummary(name=name)
        sites = self._flip_sites(monitor, enclaves)
        summary.sites = len(sites)
        if self.use_snapshots:
            checkpoint = CampaignSnapshot(monitor, kernel)
            fork = checkpoint.restore
        else:

            def fork() -> Tuple[KomodoMonitor, OSKernel]:
                return copy.deepcopy((monitor, kernel))

        # Golden: the unflipped continuation every trial must reconverge to.
        gold_mon, gold_kern = fork()
        golden = self._continue_lifecycle(
            gold_mon, gold_kern, enclaves, needs_finalise, backoff_seed=0
        )
        summary.pre_violations.extend(
            f"{name}: golden run: {p}" for p in golden.problems
        )
        if golden.rebuilt or golden.quarantine_errors:
            summary.pre_violations.append(f"{name}: golden run tripped the engine")
        pairs = [(site, bit) for site in sites for bit in range(32)]
        # Trials are isolated (each forks/rewinds the step state), so a
        # shard may skip any subset without perturbing the rest.
        for ordinal, (site, bit) in enumerate(pairs[:: self.stride]):
            if self.shard is not None and ordinal % self.shard[1] != self.shard[0]:
                continue
            record = FlipRecord(ordinal=ordinal, site=site.label, bit=bit)
            summary.flip_records.append(record)
            try:
                with time_limit(
                    self.trial_timeout, f"{name} flip {site.label} bit {bit}"
                ):
                    self._trial(
                        fork, enclaves, needs_finalise, site, bit, golden,
                        summary.name, record,
                    )
            except TrialTimeout as exc:
                # Keep the per-trial differential records aligned; the
                # next fork() rewind discards the stranded machine.
                record.outcome = "timeout"
                record.digest = ""
                record.cycles = -1
                record.violations.append(f"{name}: {exc}")
        if self.use_snapshots:
            # Leave the base machine at the pre-step state.
            checkpoint.restore()
        return summary

    def _trial(
        self,
        fork,
        enclaves: Sequence[EnclavePages],
        needs_finalise: bool,
        site: FlipSite,
        bit: int,
        golden: _Outcome,
        step_name: str,
        record: FlipRecord,
    ) -> None:
        monitor, kernel = fork()
        monitor.state.flip_bit(site.address, bit)
        # Did the engine's own walk notice?  (Read-only; decides only
        # whether "benign" is an honest classification.)
        detected = bool(integrity.consistency_problems(monitor.state))
        backoff_seed = (site.address << 5) ^ bit
        outcome = self._continue_lifecycle(
            monitor, kernel, enclaves, needs_finalise, backoff_seed
        )
        where = f"{step_name}: flip {site.label} bit {bit}"
        violations: List[str] = [f"{where}: {p}" for p in outcome.problems]
        for enclave in enclaves:
            result = outcome.results.get(enclave.name)
            if result != (KomErr.SUCCESS, EXIT_VALUE):
                violations.append(
                    f"{where}: {enclave.name} finished with {result!r} "
                    f"— a silent wrong result"
                )
        bad_rebuilds = [n for n in outcome.rebuilt if n != site.owner]
        if bad_rebuilds:
            violations.append(
                f"{where}: corruption of {site.owner}'s word forced a rebuild "
                f"of {bad_rebuilds} — containment failed"
            )
        if outcome.final_digest != golden.final_digest:
            violations.append(
                f"{where}: final secure state differs from the golden run"
            )
        quarantined = bool(
            outcome.quarantine_errors
            or outcome.rebuilt
            or outcome.scrub_quarantined
        )
        if quarantined:
            outcome_label = "quarantined"
        elif detected or outcome.scrub_repaired:
            outcome_label = "repaired"
        else:
            outcome_label = "benign"
        record.outcome = outcome_label
        record.digest = outcome.final_digest
        record.cycles = outcome.final_cycles
        record.violations.extend(violations)


def run_differential(
    seed: int = 0xB17F11B,
    targets: Optional[Iterable[str]] = None,
    stride: int = 1,
    secure_pages: int = 16,
    engines: Tuple[str, ...] = ("fast", "reference"),
    use_snapshots: bool = True,
    trial_timeout: Optional[float] = None,
    shard: Optional[Tuple[int, int]] = None,
) -> Tuple:
    """Run the campaign under each engine and compare them bit-for-bit.

    Returns ``(*reports, mismatches)`` in ``engines`` order — the
    default two-engine call keeps the historical
    ``(fast, reference, mismatches)`` shape.  Every trial's outcome
    class, final digest, and cycle counter must agree — a flip must not
    surface in one engine's decode cache, micro-TLB, or block cache and
    not the others'.
    """
    if len(engines) < 2:
        raise ValueError("differential needs at least two engines")
    tokens = None if targets is None else tuple(targets)
    reports = []
    for engine in engines:
        campaign = BitflipCampaign(
            seed=seed,
            engine=engine,
            secure_pages=secure_pages,
            targets=tokens,
            stride=stride,
            use_snapshots=use_snapshots,
            trial_timeout=trial_timeout,
            shard=shard,
        )
        reports.append(campaign.run())
    return (*reports, compare_reports(engines, reports))


def compare_reports(
    engines: Sequence[str], reports: Sequence[BitflipReport]
) -> List[str]:
    """Pairwise engine comparison over already-run bitflip reports.

    Factored out of :func:`run_differential` so the sharded runner
    (``repro.faults.parallel``) can recompute mismatches on *merged*
    reports — byte-identical to what a serial differential prints.
    """
    base_name, baseline = engines[0], reports[0]
    mismatches: List[str] = []
    for engine, report in zip(engines[1:], reports[1:]):
        for base_step, step in zip(baseline.steps, report.steps):
            if base_step.sites != step.sites:
                mismatches.append(
                    f"{step.name}: site counts differ "
                    f"({base_name} {base_step.sites}, {engine} {step.sites})"
                )
            if base_step.trial_outcomes != step.trial_outcomes:
                mismatches.append(
                    f"{step.name}: trial outcome classes differ "
                    f"({base_name} vs {engine})"
                )
            if base_step.trial_digests != step.trial_digests:
                mismatches.append(
                    f"{step.name}: trial final digests differ "
                    f"({base_name} vs {engine})"
                )
            if base_step.trial_cycles != step.trial_cycles:
                mismatches.append(
                    f"{step.name}: trial cycle counters differ "
                    f"({base_name} vs {engine})"
                )
    return mismatches
