"""Deterministic fault-injection plans.

A :class:`FaultPlan` attaches to ``MachineState.fault_plan`` and sees
every machine-visible monitor operation via ``fault_point`` — buffered
stores, journal stage/commit/apply/clear, and the quiescent
``txn-boundary`` marker at the end of each transaction.  Plans are pure
counters: a *discovery* pass (``abort_at=None``) counts the operations a
call performs and records quiescent snapshots, and a *trial* pass
(``abort_at=n``) raises :class:`FaultInjected` at the n-th operation,
modelling a watchdog reset at exactly that point.  Campaigns enumerate
``n`` from 1 to the discovered count — every step of every call.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, List, Optional, Set, Tuple

from repro.arm.machine import FaultInjected, MachineState

__all__ = ["FaultInjected", "FaultPlan", "inject"]


class FaultPlan:
    """Count monitor operations; optionally crash at the n-th.

    Parameters
    ----------
    abort_at:
        1-based operation index at which to raise ``FaultInjected``,
        or None to only count (discovery mode).
    kinds:
        restrict counting/aborting to these fault-point kinds
        (e.g. ``{"write", "zero-page"}``); None counts everything.
    on_boundary:
        discovery hook called with the machine state at every
        ``txn-boundary`` point — campaigns use it to snapshot the
        quiescent states an interrupted call may legally land in.
    """

    def __init__(
        self,
        abort_at: Optional[int] = None,
        kinds: Optional[Set[str]] = None,
        on_boundary: Optional[Callable[[MachineState], None]] = None,
    ) -> None:
        if abort_at is not None and abort_at < 1:
            raise ValueError("abort_at is a 1-based operation index")
        self.abort_at = abort_at
        self.kinds = kinds
        self.on_boundary = on_boundary
        self.count = 0
        self.fired = False
        #: Every operation seen, as (kind, detail) — the campaign uses
        #: the trace to label which operation a trial crashed at.
        self.trace: List[Tuple[str, int]] = []

    def visit(self, state: MachineState, kind: str, detail: int) -> None:
        """Called from ``MachineState.fault_point`` before the operation."""
        if self.kinds is not None and kind not in self.kinds:
            return
        self.count += 1
        self.trace.append((kind, detail))
        if kind == "txn-boundary" and self.on_boundary is not None:
            self.on_boundary(state)
        if self.abort_at is not None and not self.fired and self.count == self.abort_at:
            self.fired = True
            raise FaultInjected(self.count, kind, detail)


@contextmanager
def inject(state: MachineState, plan: FaultPlan):
    """Attach ``plan`` to ``state`` for the duration of the block.

    The plan is detached on exit even when the injected fault (or any
    other exception) propagates, so post-crash recovery and auditing
    run without further injections.
    """
    if state.fault_plan is not None:
        raise RuntimeError("a fault plan is already attached")
    state.fault_plan = plan
    try:
        yield plan
    finally:
        state.fault_plan = None
