"""Sharded campaign execution: fork workers, merge byte-identical reports.

Campaign trials are *embarrassingly parallel by construction*: every
trial forks (or rewinds) the same captured pre-step state, so a shard
that runs only every ``count``-th trial produces exactly the records a
serial run would have produced for those ordinals.  This module supplies
the three pieces that turn that property into a ``--jobs N`` flag:

* :func:`run_shards` — fork ``jobs`` worker processes (POSIX ``fork``
  start method, so the workload closure is inherited, not pickled) and
  collect one picklable result per shard over a pipe;
* ``merge_*_reports`` — deterministic merges that check every
  shard-invariant field (discovery counts, golden digests, clean-run
  audits) for agreement and interleave the per-trial records back into
  serial order.  The merged report is **byte-identical** to the serial
  report — :func:`report_digest` is the oracle CI pins that claim with;
* sharded front-ends for the lifecycle, bitflip, and pipeline campaigns
  (plus their tri-engine differentials) and for symbex witness replay.

Each forked shard is a fresh process with its own main thread, so the
campaigns' ``trial_timeout`` watchdog (``repro.util.watchdog``, SIGALRM
based) keeps working inside shards unchanged.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.faults import bitflip as _bitflip
from repro.faults import campaign as _campaign
from repro.faults.bitflip import BitflipCampaign, BitflipReport, StepSummary
from repro.faults.campaign import CampaignReport, LifecycleCampaign, StepReport


class ShardError(RuntimeError):
    """A worker process failed to produce its shard's result."""


class MergeError(AssertionError):
    """Shard reports disagree on a field every shard must reproduce."""


# -- process scaffolding ----------------------------------------------------


def _shard_main(fn, index: int, count: int, conn) -> None:
    """Worker entry: run one shard, ship the result, exit hard.

    ``os._exit`` skips the parent's inherited atexit/teardown machinery
    — the child must not flush handles or reap resources it shares with
    the parent by fork.
    """
    try:
        conn.send(("ok", fn(index, count)))
    except BaseException as exc:  # noqa: BLE001 - must reach the parent
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        finally:
            os._exit(0)


def run_shards(fn: Callable[[int, int], object], jobs: int) -> List[object]:
    """Run ``fn(index, jobs)`` for each shard index; return results in order.

    ``jobs <= 1`` (or a platform without the ``fork`` start method) runs
    the single shard inline — the degenerate case is the serial campaign
    itself.  Worker failures surface as :class:`ShardError`; a shard
    that dies without reporting (e.g. OOM-killed) is included with a
    clear message rather than hanging the parent.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    if jobs == 1:
        return [fn(0, 1)]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        return [fn(index, jobs) for index in range(jobs)]
    workers = []
    for index in range(jobs):
        recv, send = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_shard_main, args=(fn, index, jobs, send), daemon=True
        )
        process.start()
        send.close()  # parent keeps only the read end
        workers.append((process, recv))
    results: List[object] = []
    failures: List[str] = []
    for index, (process, recv) in enumerate(workers):
        try:
            status, payload = recv.recv()
        except EOFError:
            status, payload = "err", "worker died without reporting a result"
        recv.close()
        process.join()
        if status == "ok":
            results.append(payload)
        else:
            failures.append(f"shard {index}/{jobs}: {payload}")
    if failures:
        raise ShardError("; ".join(failures))
    return results


# -- digests ----------------------------------------------------------------


def _jsonable(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def report_digest(report) -> str:
    """Canonical content digest of a report (or any dataclass tree).

    This is the byte-identity oracle: a sharded run merged back together
    must produce the same digest as the serial run.  Only stored fields
    enter the digest (properties are derived and would double-count).
    """
    payload = json.dumps(_jsonable(report), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


# -- merges -----------------------------------------------------------------


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise MergeError(message)


def _merge_records(columns, field: str, key) -> List:
    records = sorted(
        (record for column in columns for record in getattr(column, field)),
        key=key,
    )
    ordinals = [key(record) for record in records]
    _require(
        len(set(ordinals)) == len(ordinals),
        f"duplicate trial ordinals across shards: {field}",
    )
    return records


def merge_campaign_reports(shards: Sequence[CampaignReport]) -> CampaignReport:
    """Merge sharded lifecycle reports into the serial report."""
    _require(bool(shards), "no shard reports to merge")
    first = shards[0]
    for other in shards[1:]:
        _require(
            (other.engine, other.seed) == (first.engine, first.seed),
            "shards disagree on campaign identity (engine/seed)",
        )
        _require(
            [s.name for s in other.steps] == [s.name for s in first.steps],
            "shards disagree on the lifecycle step sequence",
        )
    merged = CampaignReport(engine=first.engine, seed=first.seed)
    for index, base in enumerate(first.steps):
        columns = [shard.steps[index] for shard in shards]
        for column in columns[1:]:
            _require(
                (
                    column.fault_points,
                    column.pre_violations,
                    column.post_violations,
                    column.post_digest,
                    column.post_cycles,
                )
                == (
                    base.fault_points,
                    base.pre_violations,
                    base.post_violations,
                    base.post_digest,
                    base.post_cycles,
                ),
                f"step {base.name}: shards disagree on discovery/clean-run state",
            )
        merged.steps.append(
            StepReport(
                name=base.name,
                fault_points=base.fault_points,
                pre_violations=list(base.pre_violations),
                trial_records=_merge_records(
                    columns, "trial_records", lambda r: r.ordinal
                ),
                post_violations=list(base.post_violations),
                post_digest=base.post_digest,
                post_cycles=base.post_cycles,
            )
        )
    return merged


def merge_bitflip_reports(shards: Sequence[BitflipReport]) -> BitflipReport:
    """Merge sharded bitflip reports into the serial report."""
    _require(bool(shards), "no shard reports to merge")
    first = shards[0]
    for other in shards[1:]:
        _require(
            (other.engine, other.seed, other.stride)
            == (first.engine, first.seed, first.stride),
            "shards disagree on campaign identity (engine/seed/stride)",
        )
        _require(
            [s.name for s in other.steps] == [s.name for s in first.steps],
            "shards disagree on the quiescent step sequence",
        )
    merged = BitflipReport(engine=first.engine, seed=first.seed, stride=first.stride)
    for index, base in enumerate(first.steps):
        columns = [shard.steps[index] for shard in shards]
        for column in columns[1:]:
            _require(
                (column.sites, column.pre_violations)
                == (base.sites, base.pre_violations),
                f"step {base.name}: shards disagree on sites or the golden run",
            )
        merged.steps.append(
            StepSummary(
                name=base.name,
                sites=base.sites,
                pre_violations=list(base.pre_violations),
                flip_records=_merge_records(
                    columns, "flip_records", lambda r: r.ordinal
                ),
            )
        )
    return merged


def merge_pipeline_reports(shards: Sequence):
    """Merge sharded pipeline chaos reports into the serial report.

    Every shard runs the golden (kill-point 0) trial itself — the merge
    asserts they agree and keeps one; kill trials interleave by their
    strictly-ascending kill points.
    """
    from repro.pipeline.campaign import PipelineReport

    _require(bool(shards), "no shard reports to merge")
    first = shards[0]
    for other in shards[1:]:
        _require(
            (other.pipeline, other.engine, other.ops, other.golden_digest)
            == (first.pipeline, first.engine, first.ops, first.golden_digest),
            "shards disagree on the golden run (pipeline/engine/ops/digest)",
        )
        _require(
            bool(other.trials) and other.trials[0] == first.trials[0],
            "shards disagree on the golden trial verdict",
        )
    merged = PipelineReport(
        pipeline=first.pipeline,
        engine=first.engine,
        ops=first.ops,
        golden_digest=first.golden_digest,
    )
    merged.trials.append(first.trials[0])
    merged.trials.extend(
        _merge_records(
            [_Trials(shard.trials[1:]) for shard in shards],
            "trials",
            lambda t: t.kill_point,
        )
    )
    return merged


@dataclasses.dataclass
class _Trials:
    """Adapter so :func:`_merge_records` can walk plain trial lists."""

    trials: List


# -- sharded campaign front-ends --------------------------------------------


def run_lifecycle_sharded(
    jobs: int,
    *,
    seed: int = 0xC0FFEE,
    engine: Optional[str] = None,
    secure_pages: int = 16,
    inject_steps: Optional[Iterable[str]] = None,
    stride: int = 1,
    use_snapshots: bool = True,
    trial_timeout: Optional[float] = None,
) -> CampaignReport:
    tokens = None if inject_steps is None else tuple(inject_steps)

    def shard(index: int, count: int) -> CampaignReport:
        return LifecycleCampaign(
            seed=seed,
            engine=engine,
            secure_pages=secure_pages,
            inject_steps=tokens,
            stride=stride,
            use_snapshots=use_snapshots,
            trial_timeout=trial_timeout,
            shard=(index, count) if count > 1 else None,
        ).run()

    return merge_campaign_reports(run_shards(shard, jobs))


def run_lifecycle_differential_sharded(
    jobs: int,
    *,
    seed: int = 0xC0FFEE,
    inject_steps: Optional[Iterable[str]] = None,
    stride: int = 1,
    secure_pages: int = 16,
    engines: Tuple[str, ...] = ("fast", "reference"),
    use_snapshots: bool = True,
    trial_timeout: Optional[float] = None,
) -> Tuple:
    """Sharded tri-engine differential: ``(*reports, mismatches)``.

    Each shard runs *all* engines on its trial subset (the engine loop
    is the inner, cheap dimension; the trial sweep is the outer one),
    reports merge per engine, and mismatches are recomputed on the
    merged reports — identical to the serial differential's output.
    """
    tokens = None if inject_steps is None else tuple(inject_steps)

    def shard(index: int, count: int) -> Tuple[CampaignReport, ...]:
        results = _campaign.run_differential(
            seed=seed,
            inject_steps=tokens,
            stride=stride,
            secure_pages=secure_pages,
            engines=engines,
            use_snapshots=use_snapshots,
            trial_timeout=trial_timeout,
            shard=(index, count) if count > 1 else None,
        )
        return tuple(results[:-1])  # per-shard mismatches are recomputed

    per_shard = run_shards(shard, jobs)
    merged = [
        merge_campaign_reports([shard_reports[i] for shard_reports in per_shard])
        for i in range(len(engines))
    ]
    return (*merged, _campaign.compare_reports(engines, merged))


def run_bitflip_sharded(
    jobs: int,
    *,
    seed: int = 0xB17F11B,
    engine: Optional[str] = None,
    secure_pages: int = 16,
    targets: Optional[Iterable[str]] = None,
    stride: int = 1,
    use_snapshots: bool = True,
    trial_timeout: Optional[float] = None,
) -> BitflipReport:
    tokens = None if targets is None else tuple(targets)

    def shard(index: int, count: int) -> BitflipReport:
        return BitflipCampaign(
            seed=seed,
            engine=engine,
            secure_pages=secure_pages,
            targets=tokens,
            stride=stride,
            use_snapshots=use_snapshots,
            trial_timeout=trial_timeout,
            shard=(index, count) if count > 1 else None,
        ).run()

    return merge_bitflip_reports(run_shards(shard, jobs))


def run_bitflip_differential_sharded(
    jobs: int,
    *,
    seed: int = 0xB17F11B,
    targets: Optional[Iterable[str]] = None,
    stride: int = 1,
    secure_pages: int = 16,
    engines: Tuple[str, ...] = ("fast", "reference"),
    use_snapshots: bool = True,
    trial_timeout: Optional[float] = None,
) -> Tuple:
    """Sharded bitflip differential: ``(*reports, mismatches)``."""
    tokens = None if targets is None else tuple(targets)

    def shard(index: int, count: int) -> Tuple[BitflipReport, ...]:
        results = _bitflip.run_differential(
            seed=seed,
            targets=tokens,
            stride=stride,
            secure_pages=secure_pages,
            engines=engines,
            use_snapshots=use_snapshots,
            trial_timeout=trial_timeout,
            shard=(index, count) if count > 1 else None,
        )
        return tuple(results[:-1])

    per_shard = run_shards(shard, jobs)
    merged = [
        merge_bitflip_reports([shard_reports[i] for shard_reports in per_shard])
        for i in range(len(engines))
    ]
    return (*merged, _bitflip.compare_reports(engines, merged))


def run_pipeline_sharded(
    kind: str,
    jobs: int,
    *,
    engine: str = "turbo",
    seed: Optional[int] = None,
    stride: int = 1,
    requests=None,
    secure_pages: Optional[int] = None,
):
    """Sharded pipeline chaos sweep, merged back to the serial report."""
    from repro.pipeline.campaign import (
        DEFAULT_SECURE_PAGES,
        DEFAULT_SEED,
        PipelineCampaign,
    )

    the_seed = DEFAULT_SEED if seed is None else seed
    pages = DEFAULT_SECURE_PAGES if secure_pages is None else secure_pages

    def shard(index: int, count: int):
        return PipelineCampaign(
            kind,
            engine=engine,
            seed=the_seed,
            stride=stride,
            requests=requests,
            secure_pages=pages,
            shard=(index, count) if count > 1 else None,
        ).run()

    return merge_pipeline_reports(run_shards(shard, jobs))


def check_witnesses_sharded(
    witnesses: Sequence,
    jobs: int,
    *,
    engines: Sequence[str],
    trial_timeout: Optional[float] = None,
) -> List:
    """Sharded symbex witness replay; failures in serial witness order.

    Witnesses stripe across shards by ordinal; each shard boots its own
    per-engine monitors and keeps the harness's post-setup checkpoint
    cache for the witnesses it owns.  Per-witness failure groups merge
    back in ordinal order, so the failure list (and its digest) matches
    the serial ``ReplayHarness.check`` exactly.
    """
    from repro.analysis.symbex.replay import ReplayHarness

    witnesses = list(witnesses)

    def shard(index: int, count: int):
        harness = ReplayHarness(engines=engines)
        groups = []
        for ordinal, witness in enumerate(witnesses):
            if ordinal % count != index:
                continue
            groups.append(
                (ordinal, harness.check([witness], trial_timeout=trial_timeout))
            )
        return groups

    merged = sorted(
        (group for shard_groups in run_shards(shard, jobs) for group in shard_groups),
        key=lambda group: group[0],
    )
    return [failure for _, failures in merged for failure in failures]
