"""Post-crash consistency auditing.

Two independent checkers run after every injected fault:

* the *spec* audit — extract the abstract PageDB from machine memory
  (the refinement witness) and run ``spec.invariants.collect_violations``
  over it; a torn state that extraction cannot even abstract is itself
  a violation;
* the *machine* audit (:func:`machine_consistency`) — a raw walk over
  the concrete words using only ``repro.monitor.layout`` definitions:
  PageDB entry sanity, refcount agreement, page-table ↔ PageDB
  agreement, measurement-state sanity, free-page scrubbing, and
  journal/transaction quiescence.  It shares no code with extraction or
  ``PageDB``, so a bug in those cannot mask a torn state.

:func:`secure_state_digest` hashes everything the OS cannot touch
(monitor image + stack + secure pages); campaigns use it to classify a
post-recovery state as exactly one of the quiescent states a clean run
passes through.
"""

from __future__ import annotations

import hashlib
from array import array
from typing import TYPE_CHECKING, List

from repro.arm.bits import WORDSIZE
from repro.arm.machine import MachineState
from repro.arm.memory import WORDS_PER_PAGE, _TYPECODE
from repro.arm.modes import World
from repro.arm.pagetable import (
    DESC_INVALID,
    DESC_L1_COARSE,
    DESC_L2_SMALL,
    L1_ENTRIES,
    L2_ENTRIES,
    PERM_SECURE,
    entry_target,
    entry_type,
)
from repro.monitor import journal
from repro.monitor.layout import (
    AS_L1PT_WORD,
    AS_MEASURED_WORD,
    AS_REFCOUNT_WORD,
    AS_STATE_WORD,
    AddrspaceState,
    PageType,
    TH_ENTERED_WORD,
    TH_FAULT_HANDLER_WORD,
    TH_IN_HANDLER_WORD,
    pagedb_entry_addr,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor.komodo import KomodoMonitor


def secure_state_digest(state: MachineState) -> str:
    """SHA-256 over all OS-inaccessible memory (image, stack, secure).

    Registers and caches are volatile (a reset loses them anyway), so
    two states with equal digests are indistinguishable to the OS and
    to any future monitor call.
    """
    digest = hashlib.sha256()
    memmap = state.memmap
    for region in (memmap.monitor_image, memmap.monitor_stack, memmap.secure):
        words = state.memory.read_words(region.base, region.size // WORDSIZE)
        digest.update(array(_TYPECODE, words).tobytes())
    return digest.hexdigest()


def machine_consistency(state: MachineState) -> List[str]:
    """Raw-word consistency check of the monitor's persistent state."""
    problems: List[str] = []
    memmap = state.memmap
    memory = state.memory
    image_base = memmap.monitor_image.base
    npages = memmap.secure_pages

    # -- transaction/journal quiescence ---------------------------------
    if state.txn is not None:
        problems.append("a monitor transaction is still attached")
    if journal.is_present(state):
        problems.append("commit journal is not quiescent")
    journal_words = memory.read_words(
        journal.journal_base(state), journal.JOURNAL_SIZE // WORDSIZE
    )
    if any(journal_words):
        problems.append("journal region holds residue")

    # -- PageDB entry sanity --------------------------------------------
    types = {}
    owners = {}
    for pageno in range(npages):
        entry = pagedb_entry_addr(image_base, pageno)
        type_word = memory.read_word(entry)
        owner = memory.read_word(entry + WORDSIZE)
        try:
            types[pageno] = PageType(type_word)
        except ValueError:
            problems.append(f"page {pageno}: unknown type word {type_word}")
            continue
        owners[pageno] = owner
    for pageno, page_type in types.items():
        if page_type is PageType.FREE:
            continue
        owner = owners[pageno]
        if owner >= npages or types.get(owner) is not PageType.ADDRSPACE:
            problems.append(
                f"page {pageno} ({page_type.name}) owner {owner} is not an addrspace"
            )

    # -- per-addrspace checks -------------------------------------------
    for pageno, page_type in types.items():
        if page_type is not PageType.ADDRSPACE:
            continue
        base = memmap.page_base(pageno)
        state_word = memory.read_word(base + AS_STATE_WORD * WORDSIZE)
        refcount = memory.read_word(base + AS_REFCOUNT_WORD * WORDSIZE)
        l1pt = memory.read_word(base + AS_L1PT_WORD * WORDSIZE)
        measured = memory.read_word(base + AS_MEASURED_WORD * WORDSIZE)
        try:
            as_state = AddrspaceState(state_word)
        except ValueError:
            problems.append(f"addrspace {pageno}: bad state word {state_word}")
            continue
        actual = sum(
            1
            for other, other_type in types.items()
            if other != pageno
            and other_type is not PageType.FREE
            and owners.get(other) == pageno
        )
        if refcount != actual:
            problems.append(
                f"addrspace {pageno}: refcount {refcount} != {actual} owned pages"
            )
        if as_state is not AddrspaceState.STOPPED and (
            types.get(l1pt) is not PageType.L1PTABLE or owners.get(l1pt) != pageno
        ):
            problems.append(f"addrspace {pageno}: L1 pointer {l1pt} is wrong")
        if measured not in (0, 1):
            problems.append(f"addrspace {pageno}: measured flag is {measured}")
        if as_state is AddrspaceState.INIT and measured:
            problems.append(f"addrspace {pageno}: INIT but already measured")
        if as_state is AddrspaceState.FINAL and not measured:
            problems.append(f"addrspace {pageno}: FINAL without measurement")

    # -- thread flag sanity ---------------------------------------------
    for pageno, page_type in types.items():
        if page_type is not PageType.THREAD:
            continue
        base = memmap.page_base(pageno)
        entered = memory.read_word(base + TH_ENTERED_WORD * WORDSIZE)
        in_handler = memory.read_word(base + TH_IN_HANDLER_WORD * WORDSIZE)
        handler = memory.read_word(base + TH_FAULT_HANDLER_WORD * WORDSIZE)
        if entered not in (0, 1):
            problems.append(f"thread {pageno}: entered flag is {entered}")
        if in_handler not in (0, 1):
            problems.append(f"thread {pageno}: in-handler flag is {in_handler}")
        if in_handler == 1 and handler == 0:
            problems.append(f"thread {pageno}: in handler with no handler registered")

    # -- page tables ↔ PageDB agreement ---------------------------------
    # A stopped addrspace can never run again, so its tables may dangle
    # (Remove does not rewrite sibling page tables) — same exemption the
    # spec invariants make via ``_owner_stopped``.
    def _owner_stopped(table_page: int) -> bool:
        owner = owners.get(table_page)
        if owner is None or types.get(owner) is not PageType.ADDRSPACE:
            return False
        word = memory.read_word(
            memmap.page_base(owner) + AS_STATE_WORD * WORDSIZE
        )
        return word == int(AddrspaceState.STOPPED)

    for pageno, page_type in types.items():
        if page_type in (PageType.L1PTABLE, PageType.L2PTABLE) and _owner_stopped(
            pageno
        ):
            continue
        base = memmap.page_base(pageno)
        if page_type is PageType.L1PTABLE:
            for index in range(L1_ENTRIES):
                word = memory.read_word(base + index * WORDSIZE)
                kind = entry_type(word)
                if kind == DESC_INVALID:
                    continue
                if kind != DESC_L1_COARSE:
                    problems.append(f"L1 {pageno}[{index}]: malformed descriptor")
                    continue
                target = entry_target(word)
                if not memmap.is_secure(target):
                    problems.append(f"L1 {pageno}[{index}]: target not secure")
                    continue
                l2page = memmap.pageno_of(target)
                if types.get(l2page) is not PageType.L2PTABLE:
                    problems.append(
                        f"L1 {pageno}[{index}]: target {l2page} is not an L2 table"
                    )
                elif owners.get(l2page) != owners.get(pageno):
                    problems.append(f"L1 {pageno}[{index}]: crosses addrspaces")
        elif page_type is PageType.L2PTABLE:
            for index in range(L2_ENTRIES):
                word = memory.read_word(base + index * WORDSIZE)
                kind = entry_type(word)
                if kind == DESC_INVALID:
                    continue
                if kind != DESC_L2_SMALL:
                    problems.append(f"L2 {pageno}[{index}]: malformed descriptor")
                    continue
                if not word & PERM_SECURE:
                    continue  # insecure mapping: OS memory, nothing to agree on
                target = entry_target(word)
                if not memmap.is_secure(target):
                    problems.append(f"L2 {pageno}[{index}]: secure bit on OS memory")
                    continue
                data_page = memmap.pageno_of(target)
                if types.get(data_page) is not PageType.DATA:
                    problems.append(
                        f"L2 {pageno}[{index}]: maps non-DATA page {data_page}"
                    )
                elif owners.get(data_page) != owners.get(pageno):
                    problems.append(f"L2 {pageno}[{index}]: crosses addrspaces")

    # -- free pages must be scrubbed ------------------------------------
    for pageno, page_type in types.items():
        if page_type is PageType.FREE:
            if any(memory.read_words(memmap.page_base(pageno), WORDS_PER_PAGE)):
                problems.append(f"free page {pageno} is not scrubbed")
            if owners.get(pageno, 0) != 0:
                problems.append(f"free page {pageno} has a stale owner word")

    return problems


def audit_monitor(mon: "KomodoMonitor") -> List[str]:
    """Full post-crash audit: spec invariants + machine-level walk.

    Returns a list of violation strings (empty = consistent).  Call
    only when the monitor should be quiescent — after ``recover()`` or
    between calls — since a handler mid-flight legitimately holds a
    transaction.
    """
    from repro.spec.invariants import collect_violations
    from repro.verification.extract import ExtractionError, extract_pagedb

    state = mon.state
    problems: List[str] = []
    if state.world is not World.NORMAL:
        problems.append(f"machine quiesced in {state.world!r}, not normal world")
    try:
        db = extract_pagedb(state)
    except (ExtractionError, ValueError) as exc:
        problems.append(f"pagedb extraction failed: {exc}")
    else:
        problems.extend(collect_violations(db, memmap=state.memmap))
    problems.extend(machine_consistency(state))
    return problems


def integrity_consistency(state: MachineState) -> List[str]:
    """Audit the memory-integrity engine's own metadata.

    Engine-level (tags/replica/flags agree with memory) plus the
    spec-level containment property: every quarantined page belongs to a
    stopped addrspace — corruption never spreads past one enclave.

    Deliberately *not* folded into :func:`audit_monitor`: harness code
    (e.g. the journal-protocol tests) legitimately drives monitor memory
    directly without maintaining tags, and plain crash audits must stay
    meaningful there.  The bit-flip campaign calls both.
    """
    from repro.monitor import integrity
    from repro.spec.invariants import collect_quarantine_violations
    from repro.verification.extract import ExtractionError, extract_pagedb

    problems = list(integrity.consistency_problems(state))
    quarantined = integrity.quarantined_pages(state)
    if quarantined:
        try:
            db = extract_pagedb(state)
        except (ExtractionError, ValueError) as exc:
            problems.append(f"pagedb extraction failed under quarantine: {exc}")
        else:
            problems.extend(collect_quarantine_violations(db, quarantined))
    return problems
