"""Campaign checkpoints: capture a lifecycle prefix once, restore per fault.

The PR 3/4 fault campaigns re-ran every trial from a ``copy.deepcopy``
of the monitor — correct, but the deep copy walks every Python object
in the monitor graph for every injected fault, and campaign wall-clock
(not correctness) had become the bound on how exhaustively CI can
sweep.  ``CampaignSnapshot`` replaces the per-trial deep copy with an
in-place rewind: the machine is captured through
``MachineState.snapshot()`` (one flat ``array`` slice plus small
register/TLB copies) and the handful of Python-side monitor/OS fields
that execution mutates are recorded and written back.

Restoring is equivalent to running the trial on a deep copy:

* the machine snapshot covers everything architecturally visible
  (memory + encryption tags, registers, TLB state, world/TTBR0/cycles)
  and resets the microarchitectural caches — the same cold-cache state
  a fresh deep copy starts from;
* the monitor's Python-side mutable state is exactly ``smc_count``,
  the one-shot interrupt deadline, the native-program registry, and
  the hardware RNG's draw position; all are restored in place, so
  objects holding references to the monitor, its state, or its RNG
  (``Attestation``, ``PageDB``, ``OSKernel``) stay valid;
* the OS kernel's mutable state is its free-page list, the next
  insecure staging page, and any in-flight ``retry_with_backoff``
  session — a crash injected mid-retry leaves the session attached to
  the kernel, and restore discards it so a rewound trial can never
  inherit a stale backoff deadline from the previous trial;
* when a ``MultiCoreMachine`` scheduler is captured too, its PRNG
  state, core list, event logs (linearisation, crashes, quarantines)
  and monitor-lock state are rewound as well, so a multicore trial
  forks bit-identically: the next trial's interleaving draws the same
  random choices the first one did.

The regression suite (tests/faults/test_snapshot.py) pins the
equivalence by running both campaign drivers with ``use_snapshots``
on and off and comparing the reports byte for byte.

Native-thread generators cannot be checkpointed (a suspended Python
generator is not copyable); campaigns capture only at quiescent points
where no native thread is live, and the constructor enforces that.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.monitor.komodo import KomodoMonitor
from repro.osmodel.kernel import OSKernel


class CampaignSnapshot:
    """One restorable checkpoint of a (monitor, optional kernel) pair."""

    __slots__ = (
        "monitor",
        "kernel",
        "machine",
        "rng_counter",
        "rng_pool",
        "rng_drawn",
        "smc_count",
        "interrupt_deadline",
        "native_factories",
        "free_pages",
        "insecure_next",
        "scheduler",
        "sched_rng",
        "sched_cores",
        "sched_events",
        "lock_stats",
    )

    def __init__(
        self,
        monitor: KomodoMonitor,
        kernel: Optional[OSKernel] = None,
        scheduler=None,
    ):
        if monitor._native_threads:
            raise ValueError(
                "cannot snapshot with live native threads (suspended "
                "generators are not checkpointable); capture at a "
                "quiescent lifecycle point"
            )
        if kernel is not None and kernel.monitor is not monitor:
            raise ValueError("kernel is not bound to this monitor")
        self.monitor = monitor
        self.kernel = kernel
        self.machine = monitor.state.snapshot()
        rng = monitor.rng
        self.rng_counter = rng._counter
        self.rng_pool = list(rng._pool)
        self.rng_drawn = rng.words_drawn
        self.smc_count = monitor.smc_count
        self.interrupt_deadline = monitor._interrupt_deadline
        self.native_factories = dict(monitor._native_factories)
        if kernel is not None:
            self.free_pages = list(kernel._free_pages)
            self.insecure_next = kernel._insecure_next
        else:
            self.free_pages = None
            self.insecure_next = None
        self.scheduler = scheduler
        if scheduler is not None:
            if scheduler.monitor is not monitor:
                raise ValueError("scheduler is not bound to this monitor")
            if any(not core.finished for core in scheduler.cores):
                raise ValueError(
                    "cannot snapshot with unfinished core scripts (a "
                    "suspended script generator is not checkpointable); "
                    "capture before cores are added or after they finish"
                )
            self.sched_rng = scheduler.random.getstate()
            self.sched_cores = len(scheduler.cores)
            self.sched_events = (
                len(scheduler.linearisation),
                len(scheduler.crashes),
                len(scheduler.quarantines),
            )
            lock = scheduler.lock
            self.lock_stats = (
                lock.acquisitions,
                lock.contended_waits,
                lock.recovery_releases,
            )

    def restore(self) -> Tuple[KomodoMonitor, Optional[OSKernel]]:
        """Rewind the captured monitor (and kernel) in place.

        Returns the same objects passed to the constructor, for use as
        a drop-in for the deep-copy trial factory.  May be called any
        number of times.
        """
        monitor = self.monitor
        monitor.state.restore(self.machine)
        rng = monitor.rng
        rng._counter = self.rng_counter
        rng._pool = list(self.rng_pool)
        rng.words_drawn = self.rng_drawn
        monitor.smc_count = self.smc_count
        monitor._interrupt_deadline = self.interrupt_deadline
        monitor._native_threads = {}
        monitor._native_factories = dict(self.native_factories)
        kernel = self.kernel
        if kernel is not None:
            kernel._free_pages = list(self.free_pages)
            kernel._insecure_next = self.insecure_next
            # Snapshots are only captured at quiescent points, so the
            # checkpoint never holds a live retry loop: any in-flight
            # backoff session belongs to the crashed trial, not to us.
            kernel._backoff = None
        scheduler = self.scheduler
        if scheduler is not None:
            # Rewind the per-core run-queue state so a trial forks
            # bit-identically: same PRNG sequence, same (captured) core
            # list, empty event logs past the capture point, and a
            # monitor lock nobody holds.  The crashed trial may have
            # left the lock held by a dead core or cores mid-script;
            # neither survives the rewind.
            scheduler.random.setstate(self.sched_rng)
            del scheduler.cores[self.sched_cores :]
            lin, crashes, quarantines = self.sched_events
            del scheduler.linearisation[lin:]
            del scheduler.crashes[crashes:]
            del scheduler.quarantines[quarantines:]
            lock = scheduler.lock
            lock._holder = None
            (
                lock.acquisitions,
                lock.contended_waits,
                lock.recovery_releases,
            ) = self.lock_stats
            monitor.on_recover = lock.break_for_recovery
        return monitor, kernel
