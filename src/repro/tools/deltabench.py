"""Delta-snapshot / sharded-campaign benchmark + CI gate (``BENCH_PR10.json``).

Measures the two mechanisms this perf PR added and pins them in CI:

* **restore** — ``MachineState.restore`` latency, full-buffer copy vs
  O(dirty-pages) delta, across dirty-page counts bracketing the real
  cloud-request footprints (attest/seal/unseal dirty ~3 pages, sign ~5,
  a full pipeline ~8).  The delta/full ratio is an in-process wall
  ratio, so it is stable across hosts — the gate requires the delta
  path to stay >= ``RESTORE_FLOOR`` x faster at the request footprint;
* **campaign** — fault-campaign trials/s, serial vs ``--jobs N``
  sharded (``repro.faults.parallel``), asserting the merged report
  digest equals the serial one.  Parallel *speedup* is only meaningful
  with real cores: the gate arms the >= ``PARALLEL_FLOOR`` x check
  only when the measuring host has >= ``PARALLEL_MIN_CORES`` cores
  (a single-core container can only show the byte-identity half);
* **cloud** — end-to-end enclave-cloud req/s with delta restore on vs
  off (``repro.arm.machine.DELTA_RESTORE``), recorded for context: the
  restore is one slice of a request's cost, so the end-to-end ratio is
  informative, not gated.

Usage::

    python -m repro.tools.deltabench                 # run + write JSON
    python -m repro.tools.deltabench --check         # CI gate
    python -m repro.tools.deltabench --summary-md    # markdown table

``--check`` validates the committed JSON structurally, then re-measures
on the current host: the restore ratio live, the sharded-vs-serial
report digest live, and (on >= ``PARALLEL_MIN_CORES``-core hosts) the
parallel campaign speedup live.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pathlib
import sys
import time
from typing import Dict, List, Optional

from repro.arm.machine import MachineState
from repro.faults.campaign import LifecycleCampaign
from repro.faults.parallel import report_digest, run_lifecycle_sharded
from repro.util.watchdog import TrialTimeout, time_limit

BENCH_VERSION = 1
DEFAULT_PATH = pathlib.Path(__file__).resolve().parents[3] / "BENCH_PR10.json"

#: Secure-page count matching the cloud worker template.
SECURE_PAGES = 48
#: Dirty-page counts to sweep; FOOTPRINT_PAGES brackets the heaviest
#: real cloud request (a full pipeline dirties ~8 pages).
DIRTY_COUNTS = (1, 2, 4, 8, 16)
FOOTPRINT_PAGES = 8
RESTORE_ITERATIONS = 400

#: Gates.
RESTORE_FLOOR = 5.0  # delta restore >= 5x faster at the request footprint
PARALLEL_FLOOR = 2.0  # --jobs 4 >= 2x serial trials/s ...
PARALLEL_MIN_CORES = 4  # ... but only on hosts with real cores
PARALLEL_JOBS = 4
CAMPAIGN_STRIDE = 6
CAMPAIGN_SEED = 0xC0FFEE


# -- restore microbenchmark -------------------------------------------------


def _time_restore(state, snap, pages: List[int], delta: bool, iterations: int) -> float:
    """Mean microseconds per (dirty ``pages`` + restore) round trip."""
    memory = state.memory
    addresses = [state.memmap.page_base(page) for page in pages]
    start = time.perf_counter()
    for _ in range(iterations):
        for address in addresses:
            memory.write_word(address, 0xD117)
        state.restore(snap, delta=delta)
    return (time.perf_counter() - start) / iterations * 1e6


def bench_restore(iterations: int = RESTORE_ITERATIONS) -> Dict:
    """Full vs delta restore latency by dirty-page count."""
    state = MachineState.boot(secure_pages=SECURE_PAGES)
    snap = state.snapshot()
    rows = []
    for count in DIRTY_COUNTS:
        pages = list(range(count))
        delta_us = _time_restore(state, snap, pages, True, iterations)
        full_us = _time_restore(state, snap, pages, False, iterations)
        # The full path un-anchors nothing (same token), so re-anchor
        # semantics stay intact; assert both paths land bit-identical.
        rows.append(
            {
                "dirty_pages": count,
                "delta_us": round(delta_us, 2),
                "full_us": round(full_us, 2),
                "speedup": round(full_us / delta_us, 2),
            }
        )
    footprint = next(row for row in rows if row["dirty_pages"] == FOOTPRINT_PAGES)
    return {
        "secure_pages": SECURE_PAGES,
        "memory_bytes": len(state.memory._buf),
        "iterations": iterations,
        "rows": rows,
        "footprint_pages": FOOTPRINT_PAGES,
        "footprint_speedup": footprint["speedup"],
    }


# -- campaign parallelism ---------------------------------------------------


def bench_campaign(
    jobs: int = PARALLEL_JOBS, stride: int = CAMPAIGN_STRIDE
) -> Dict:
    """Serial vs sharded campaign wall time + report byte-identity."""
    start = time.perf_counter()
    serial = LifecycleCampaign(
        seed=CAMPAIGN_SEED, engine="turbo", stride=stride
    ).run()
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    sharded = run_lifecycle_sharded(
        jobs, seed=CAMPAIGN_SEED, engine="turbo", stride=stride
    )
    jobs_s = time.perf_counter() - start
    serial_digest = report_digest(serial)
    return {
        "jobs": jobs,
        "stride": stride,
        "trials": serial.total_trials,
        "serial_s": round(serial_s, 3),
        "jobs_s": round(jobs_s, 3),
        "serial_trials_per_s": round(serial.total_trials / serial_s, 2),
        "jobs_trials_per_s": round(sharded.total_trials / jobs_s, 2),
        "speedup": round(serial_s / jobs_s, 2),
        "digests_equal": serial_digest == report_digest(sharded),
        "report_digest": serial_digest,
        "violations": len(serial.violations),
    }


# -- cloud end-to-end -------------------------------------------------------


def bench_cloud(repeats: int = 3) -> Dict:
    """Enclave-cloud req/s with delta restore on vs off (context only)."""
    import repro.arm.machine as machine_mod
    from repro.tools.cloudbench import _bench_config, workload

    requests = workload(seed=0xBE7C, per_kind=4)

    def best(delta: bool) -> Dict:
        machine_mod.DELTA_RESTORE = delta
        try:
            runs = [
                asyncio.run(_bench_config("turbo", 1, requests))
                for _ in range(repeats)
            ]
        finally:
            machine_mod.DELTA_RESTORE = True
        digests = {run["digest"] for run in runs}
        if len(digests) != 1:
            raise RuntimeError(
                f"delta={delta}: repeats disagree on results: {sorted(digests)}"
            )
        return max(runs, key=lambda run: run["req_per_s"])

    off = best(False)
    on = best(True)
    if on["digest"] != off["digest"]:
        raise RuntimeError("delta on/off runs disagree on results")
    return {
        "engine": "turbo",
        "workers": 1,
        "requests": len(requests),
        "repeats": repeats,
        "delta_on_req_per_s": on["req_per_s"],
        "delta_off_req_per_s": off["req_per_s"],
        "ratio": round(on["req_per_s"] / off["req_per_s"], 2),
    }


def run_bench(repeats: int = 3) -> Dict:
    return {
        "version": BENCH_VERSION,
        "cpu_cores": os.cpu_count() or 1,
        "restore": bench_restore(),
        "campaign": bench_campaign(),
        "cloud": bench_cloud(repeats=repeats),
    }


# -- the gate ---------------------------------------------------------------


def check_committed(data: Dict) -> List[str]:
    """Structural + ratio checks on the committed JSON."""
    problems = []
    if data.get("version") != BENCH_VERSION:
        return [f"unsupported bench version {data.get('version')!r}"]
    restore = data.get("restore", {})
    for row in restore.get("rows", []):
        if row.get("delta_us", 0) <= 0 or row.get("full_us", 0) <= 0:
            problems.append(f"restore row {row.get('dirty_pages')}: non-positive time")
    if restore.get("footprint_speedup", 0) < RESTORE_FLOOR:
        problems.append(
            f"committed delta-restore speedup "
            f"{restore.get('footprint_speedup')}x at "
            f"{restore.get('footprint_pages')} dirty pages is below the "
            f"{RESTORE_FLOOR}x gate"
        )
    campaign = data.get("campaign", {})
    if not campaign.get("digests_equal"):
        problems.append("committed campaign: sharded report digest != serial")
    if campaign.get("violations", 0):
        problems.append(
            f"committed campaign recorded {campaign['violations']} violation(s)"
        )
    if (
        data.get("cpu_cores", 1) >= PARALLEL_MIN_CORES
        and campaign.get("speedup", 0) < PARALLEL_FLOOR
    ):
        problems.append(
            f"committed --jobs {campaign.get('jobs')} speedup "
            f"{campaign.get('speedup')}x below the {PARALLEL_FLOOR}x gate "
            f"(recorded on a {data.get('cpu_cores')}-core host)"
        )
    cloud = data.get("cloud", {})
    for field in ("delta_on_req_per_s", "delta_off_req_per_s"):
        if cloud.get(field, 0) <= 0:
            problems.append(f"cloud: non-positive {field}")
    return problems


def check_live(quick_stride: int = 17) -> List[str]:
    """Re-measure the gated claims on the current host."""
    problems = []
    restore = bench_restore(iterations=200)
    if restore["footprint_speedup"] < RESTORE_FLOOR:
        problems.append(
            f"live delta-restore speedup {restore['footprint_speedup']}x at "
            f"{FOOTPRINT_PAGES} dirty pages is below the {RESTORE_FLOOR}x gate"
        )
    else:
        print(
            f"deltabench: live restore speedup at {FOOTPRINT_PAGES} dirty "
            f"pages: {restore['footprint_speedup']}x (gate {RESTORE_FLOOR}x)"
        )
    cores = os.cpu_count() or 1
    if cores >= PARALLEL_MIN_CORES:
        campaign = bench_campaign(jobs=PARALLEL_JOBS, stride=CAMPAIGN_STRIDE)
        if not campaign["digests_equal"]:
            problems.append("live sharded campaign digest != serial")
        if campaign["speedup"] < PARALLEL_FLOOR:
            problems.append(
                f"live --jobs {PARALLEL_JOBS} speedup {campaign['speedup']}x "
                f"below the {PARALLEL_FLOOR}x gate on a {cores}-core host"
            )
        else:
            print(
                f"deltabench: live --jobs {PARALLEL_JOBS} speedup "
                f"{campaign['speedup']}x on {cores} cores (gate {PARALLEL_FLOOR}x)"
            )
    else:
        # No cores to scale onto — still pin the byte-identity claim.
        serial = LifecycleCampaign(
            seed=CAMPAIGN_SEED, engine="turbo", stride=quick_stride
        ).run()
        sharded = run_lifecycle_sharded(
            2, seed=CAMPAIGN_SEED, engine="turbo", stride=quick_stride
        )
        if report_digest(serial) != report_digest(sharded):
            problems.append("live sharded campaign digest != serial")
        else:
            print(
                f"deltabench: live sharded digest equals serial "
                f"({serial.total_trials} trials; {cores}-core host, "
                f"speedup gate not armed)"
            )
    return problems


# -- CLI --------------------------------------------------------------------


def _table(data: Dict, markdown: bool) -> str:
    lines = []
    if markdown:
        lines += [
            "| dirty pages | delta us | full us | speedup |",
            "|---|---:|---:|---:|",
        ]
        for row in data["restore"]["rows"]:
            lines.append(
                f"| {row['dirty_pages']} | {row['delta_us']:.1f} "
                f"| {row['full_us']:.1f} | {row['speedup']:.1f}x |"
            )
    else:
        lines.append(f"{'dirty pages':>12} {'delta us':>9} {'full us':>9} {'speedup':>8}")
        for row in data["restore"]["rows"]:
            lines.append(
                f"{row['dirty_pages']:>12} {row['delta_us']:>9.1f} "
                f"{row['full_us']:>9.1f} {row['speedup']:>7.1f}x"
            )
    campaign = data["campaign"]
    cloud = data["cloud"]
    lines += [
        "",
        f"campaign: {campaign['trials']} trials, serial "
        f"{campaign['serial_trials_per_s']:.1f}/s vs --jobs {campaign['jobs']} "
        f"{campaign['jobs_trials_per_s']:.1f}/s ({campaign['speedup']:.2f}x), "
        f"digests equal: {campaign['digests_equal']}",
        f"cloud: delta on {cloud['delta_on_req_per_s']:.1f} req/s vs off "
        f"{cloud['delta_off_req_per_s']:.1f} req/s ({cloud['ratio']:.2f}x), "
        f"{data['cpu_cores']} core(s)",
    ]
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.deltabench",
        description="delta-restore and sharded-campaign benchmark",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the committed JSON and re-measure the gated "
        "ratios on this host",
    )
    parser.add_argument(
        "--summary-md",
        action="store_true",
        help="print a markdown table from the JSON (for CI job summaries)",
    )
    parser.add_argument("--out", default=str(DEFAULT_PATH), metavar="PATH")
    parser.add_argument("--repeats", type=int, default=3, metavar="N")
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock watchdog over the whole run (CI safety net)",
    )
    args = parser.parse_args(argv)
    path = pathlib.Path(args.out)
    try:
        with time_limit(args.timeout, label="deltabench"):
            return _run(args, path)
    except TrialTimeout as timeout:
        print(f"deltabench: {timeout}")
        return 1


def _run(args, path: pathlib.Path) -> int:
    if args.check or args.summary_md:
        if not path.is_file():
            print(f"deltabench: {path} missing; run the bench and commit it")
            return 1
        with open(path) as handle:
            data = json.load(handle)
        if args.summary_md:
            print("### Delta snapshots & sharded campaigns\n")
            print(_table(data, markdown=True))
        if args.check:
            problems = check_committed(data)
            problems += check_live()
            if problems:
                for problem in problems:
                    print(f"deltabench: FAIL: {problem}")
                return 1
            print(f"deltabench: {path.name} OK — all gates hold")
        return 0
    if args.repeats < 1:
        raise SystemExit("deltabench: --repeats must be at least 1")
    data = run_bench(repeats=args.repeats)
    with open(path, "w") as handle:
        json.dump(data, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(_table(data, markdown=False))
    print(f"deltabench: wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
