"""Benchmark CLI: Table 3 microbenchmarks + interpreter throughput.

Runs two suites and reports/records the results:

* **table3** — the paper's monitor-operation microbenchmarks in
  *simulated cycles* (GetPhysPages, Enter+Exit, Enter-only, Resume-only,
  AllocSpare, MapData, Attest, Verify).  These depend only on the cost
  model, so they are exactly reproducible and any drift is a bug.

* **throughput** — host instructions/second of the execution engines on
  three ARM workloads (checksum, notary, sha256), run on both the fast
  and the reference engine.  The fast/reference *speedup* is the
  machine-independent figure of merit: absolute wall time varies with
  the host, but the ratio between two interpreters running in the same
  process is stable, so the CI regression gate is phrased on it.

Usage::

    python -m repro.tools.bench                     # run, print a table
    python -m repro.tools.bench --out BENCH_PR2.json    # also write JSON
    python -m repro.tools.bench --check BENCH_PR2.json  # regression gate

``--check`` re-runs both suites and fails (exit 1) if any simulated
cycle count differs from the committed baseline (lost determinism), if
an engine disagrees with the reference result, or if a workload's
speedup drops below 70 % of the baseline speedup (a >30 % throughput
regression).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.arm.assembler import Assembler
from repro.arm.cpu import CPU, ExitReason
from repro.arm.machine import MachineState
from repro.arm.modes import Mode
from repro.arm.pagetable import l1_index, l2_index, make_l1_entry, make_l2_entry
from repro.arm.registers import PSR

SCHEMA = "repro-bench-1"

#: Throughput regression gate: current speedup must stay above this
#: fraction of the baseline speedup (0.7 == fail on >30% regression).
SPEEDUP_FLOOR = 0.7

CODE_VA = 0x0000_1000
DATA_VA = 0x0000_4000
DATA_WORDS = 256


# ---------------------------------------------------------------------------
# Throughput workloads: raw ARM programs run directly on the CPU engines
# ---------------------------------------------------------------------------


def _checksum_program() -> Assembler:
    """The checksum app's CRC-32 inner loop (repro.apps.checksum), with
    the buffer at DATA_VA; r0 = word count."""
    from repro.apps.checksum import CRC_POLY
    from repro.monitor.layout import SVC

    asm = Assembler()
    asm.mov("r5", "r0")
    asm.mov32("r4", DATA_VA)
    asm.mov32("r6", 0xFFFFFFFF)
    asm.mov32("r9", CRC_POLY)
    asm.movw("r10", 1)
    asm.label("word_loop")
    asm.ldr("r7", "r4", 0)
    asm.eor("r6", "r6", "r7")
    asm.movw("r8", 32)
    asm.label("bit_loop")
    asm.tst("r6", "r10")
    asm.beq("even")
    asm.lsri("r6", "r6", 1)
    asm.eor("r6", "r6", "r9")
    asm.b("bit_done")
    asm.label("even")
    asm.lsri("r6", "r6", 1)
    asm.label("bit_done")
    asm.subi("r8", "r8", 1)
    asm.cmpi("r8", 0)
    asm.bne("bit_loop")
    asm.addi("r4", "r4", 4)
    asm.subi("r5", "r5", 1)
    asm.cmpi("r5", 0)
    asm.bne("word_loop")
    asm.mvn("r0", "r6")
    asm.svc(SVC.EXIT)
    return asm


def _notary_program() -> Assembler:
    """A notary-shaped workload: MAC-like chained mixing of a message.

    The notary app proper is a native program (its logic runs in Python);
    this is the equivalent register-pressure profile in actual ARM code:
    per round, absorb one message word into a rotating state with
    add/eor/ror, as a keyed sponge would.  r0 = round count.
    """
    from repro.monitor.layout import SVC

    asm = Assembler()
    asm.mov("r5", "r0")  # rounds remaining
    asm.mov32("r4", DATA_VA)  # message base
    asm.movw("r3", 0)  # message cursor (wraps at DATA_WORDS)
    asm.mov32("r6", 0x6A09E667)  # state a
    asm.mov32("r7", 0xBB67AE85)  # state b
    asm.mov32("r8", 0x3C6EF372)  # state c
    asm.movw("r9", 7)  # rotation amounts
    asm.movw("r10", 13)
    asm.label("round")
    asm.ldrr("r11", "r4", "r3")  # m = message[cursor]
    asm.eor("r6", "r6", "r11")  # a ^= m
    asm.add("r6", "r6", "r7")  # a += b
    asm.ror("r7", "r7", "r9")  # b = ror(b, 7)
    asm.eor("r7", "r7", "r8")  # b ^= c
    asm.add("r8", "r8", "r11")  # c += m
    asm.ror("r8", "r8", "r10")  # c = ror(c, 13)
    asm.addi("r3", "r3", 4)  # advance cursor, wrap at page end
    asm.cmpi("r3", DATA_WORDS * 4)
    asm.bne("no_wrap")
    asm.movw("r3", 0)
    asm.label("no_wrap")
    asm.subi("r5", "r5", 1)
    asm.cmpi("r5", 0)
    asm.bne("round")
    asm.eor("r0", "r6", "r7")
    asm.eor("r0", "r0", "r8")
    asm.svc(SVC.EXIT)
    return asm


def _sha256_program() -> Assembler:
    """A sha256-shaped workload: the message-schedule sigma functions.

    Per word w: sigma0(w) = ror(w,7) ^ ror(w,18) ^ (w >> 3), accumulated
    across the buffer; r0 = number of passes over the buffer.
    """
    from repro.monitor.layout import SVC

    asm = Assembler()
    asm.mov("r5", "r0")  # passes remaining
    asm.mov32("r6", 0)  # accumulator
    asm.movw("r9", 7)
    asm.movw("r10", 18)
    asm.label("pass_loop")
    asm.mov32("r4", DATA_VA)
    asm.movw("r3", DATA_WORDS)
    asm.label("word_loop")
    asm.ldr("r7", "r4", 0)
    asm.ror("r8", "r7", "r9")  # ror(w, 7)
    asm.ror("r11", "r7", "r10")  # ror(w, 18)
    asm.eor("r8", "r8", "r11")
    asm.lsri("r11", "r7", 3)  # w >> 3
    asm.eor("r8", "r8", "r11")
    asm.add("r6", "r6", "r8")
    asm.addi("r4", "r4", 4)
    asm.subi("r3", "r3", 1)
    asm.cmpi("r3", 0)
    asm.bne("word_loop")
    asm.subi("r5", "r5", 1)
    asm.cmpi("r5", 0)
    asm.bne("pass_loop")
    asm.mov("r0", "r6")
    asm.svc(SVC.EXIT)
    return asm


#: workload name -> (program factory, r0 argument)
WORKLOADS: Dict[str, Tuple[Callable[[], Assembler], int]] = {
    "checksum": (_checksum_program, DATA_WORDS),
    "notary": (_notary_program, 6000),
    "sha256": (_sha256_program, 24),
}


def _stage(program: Assembler, r0: int) -> MachineState:
    """Boot a machine with the program mapped RX at CODE_VA and a data
    page RW at DATA_VA (the sidechannel profiler's layout)."""
    state = MachineState.boot(secure_pages=8)
    memmap = state.memmap
    l1, l2 = memmap.page_base(0), memmap.page_base(1)
    memory = state.memory
    memory.write_word(l1 + l1_index(CODE_VA) * 4, make_l1_entry(l2))
    memory.write_word(
        l2 + l2_index(CODE_VA) * 4,
        make_l2_entry(memmap.page_base(2), True, False, True, True),
    )
    memory.write_word(
        l2 + l2_index(DATA_VA) * 4,
        make_l2_entry(memmap.page_base(3), True, True, False, True),
    )
    memory.write_words(memmap.page_base(2), program.assemble())
    data = [(i * 2654435761 + 0x9E3779B9) & 0xFFFFFFFF for i in range(DATA_WORDS)]
    memory.write_words(memmap.page_base(3), data)
    state.load_ttbr0(l1)
    state.flush_tlb()
    state.regs.cpsr = PSR(mode=Mode.USR, irq_masked=False, fiq_masked=False)
    state.regs.write_gpr(0, r0)
    return state


def _run_engine(name: str, engine: str, repeats: int) -> Dict[str, object]:
    """Run one workload on one engine; wall time is the best of ``repeats``."""
    factory, r0 = WORKLOADS[name]
    program = factory()
    best = None
    for _ in range(repeats):
        state = _stage(program, r0)
        cpu = CPU(state, engine=engine)
        start = time.perf_counter()
        result = cpu.run(CODE_VA, max_steps=10_000_000)
        wall = time.perf_counter() - start
        if result.reason is not ExitReason.SVC:
            raise RuntimeError(f"{name} did not run to completion: {result.reason}")
        sample = {
            "wall_s": round(wall, 6),
            "instr_per_s": round(result.steps / wall, 1),
            "sim_cycles": state.cycles,
            "steps": result.steps,
            "result": state.regs.read_gpr(0),
        }
        if best is None or wall < best["wall_s"]:
            best = sample
    return best


def run_throughput(repeats: int = 3) -> Dict[str, Dict[str, object]]:
    """Run every workload on both engines; cross-check them against each
    other and report fast-engine numbers plus the speedup."""
    out: Dict[str, Dict[str, object]] = {}
    for name in WORKLOADS:
        fast = _run_engine(name, "fast", repeats)
        ref = _run_engine(name, "reference", 1)
        for key in ("sim_cycles", "steps", "result"):
            if fast[key] != ref[key]:
                raise RuntimeError(
                    f"engine divergence on {name}: {key} fast={fast[key]} "
                    f"reference={ref[key]}"
                )
        out[name] = {
            "wall_s": fast["wall_s"],
            "instr_per_s": fast["instr_per_s"],
            "sim_cycles": fast["sim_cycles"],
            "steps": fast["steps"],
            "result": fast["result"],
            "reference_wall_s": ref["wall_s"],
            "reference_instr_per_s": ref["instr_per_s"],
            "speedup": round(fast["instr_per_s"] / ref["instr_per_s"], 2),
        }
    return out


# ---------------------------------------------------------------------------
# Table 3 microbenchmarks (simulated cycles; mirrors benchmarks/)
# ---------------------------------------------------------------------------


def run_table3() -> Dict[str, Dict[str, int]]:
    from repro.monitor.errors import KomErr
    from repro.monitor.komodo import KomodoMonitor
    from repro.monitor.layout import Mapping, SMC, SVC
    from repro.osmodel.kernel import OSKernel
    from repro.sdk.builder import CODE_VA as SDK_CODE_VA
    from repro.sdk.builder import EnclaveBuilder
    from repro.sdk.native import NativeEnclaveProgram

    paper = {
        "GetPhysPages (null SMC)": 123,
        "Enter + Exit (full crossing)": 738,
        "Enter only (no return)": 496,
        "Resume only (no return)": 625,
        "Attest": 12411,
        "Verify": 13373,
        "AllocSpare": 217,
        "MapData": 5826,
    }
    rows: Dict[str, Dict[str, int]] = {}

    def record(name: str, cycles: int) -> None:
        rows[name] = {"sim_cycles": cycles, "paper_cycles": paper[name]}

    def cycles_of(monitor, fn) -> int:
        before = monitor.state.cycles
        fn()
        return monitor.state.cycles - before

    monitor = KomodoMonitor(secure_pages=64)
    kernel = OSKernel(monitor)

    record("GetPhysPages (null SMC)", cycles_of(monitor, lambda: monitor.smc(SMC.GET_PHYSPAGES)))

    exit_asm = Assembler()
    exit_asm.svc(SVC.EXIT)
    exit_enclave = (
        EnclaveBuilder(kernel).add_code(exit_asm).add_thread(SDK_CODE_VA).build()
    )
    record("Enter + Exit (full crossing)", cycles_of(monitor, exit_enclave.enter))

    marks = {}
    monitor.on_user_entry = lambda cycles: marks.__setitem__("entry", cycles)
    before = monitor.state.cycles
    exit_enclave.enter()
    record("Enter only (no return)", marks["entry"] - before)

    spin_asm = Assembler()
    spin_asm.label("spin")
    spin_asm.b("spin")
    spin_enclave = (
        EnclaveBuilder(kernel).add_code(spin_asm).add_thread(SDK_CODE_VA).build()
    )
    monitor.schedule_interrupt(3)
    spin_enclave.enter()
    monitor.schedule_interrupt(3)
    before = monitor.state.cycles
    spin_enclave.resume()
    record("Resume only (no return)", marks["entry"] - before)
    monitor.on_user_entry = None

    page = kernel.alloc_page()
    record(
        "AllocSpare",
        cycles_of(monitor, lambda: monitor.smc(SMC.ALLOC_SPARE, exit_enclave.as_page, page)),
    )

    measured = {}

    def attest_body(ctx, a, b, c):
        start = ctx.monitor.state.cycles
        mac = ctx.attest([0] * 8)
        measured["Attest"] = ctx.monitor.state.cycles - start
        meas = ctx.monitor.pagedb.measurement(ctx.asno)
        start = ctx.monitor.state.cycles
        ok = ctx.verify([0] * 8, meas, mac)
        measured["Verify"] = ctx.monitor.state.cycles - start
        return 1 if ok else 0
        yield

    attest_enclave = (
        EnclaveBuilder(kernel)
        .set_native_program(NativeEnclaveProgram("bench-attest", attest_body))
        .build()
    )
    err, ok = attest_enclave.call()
    if (err, ok) != (KomErr.SUCCESS, 1):
        raise RuntimeError(f"attest benchmark failed: {err!r}")
    record("Attest", measured["Attest"])
    record("Verify", measured["Verify"])

    def mapdata_body(ctx, spare, b, c):
        mapping = Mapping(
            va=0x0010_0000, readable=True, writable=True, executable=False
        ).encode()
        start = ctx.monitor.state.cycles
        ctx.map_data(spare, mapping)
        measured["MapData"] = ctx.monitor.state.cycles - start
        ctx.unmap_data(spare, mapping)
        return 0
        yield

    mapdata_enclave = (
        EnclaveBuilder(kernel)
        .add_spares(1)
        .set_native_program(NativeEnclaveProgram("bench-mapdata", mapdata_body))
        .build()
    )
    err, _ = mapdata_enclave.call(mapdata_enclave.spares[0])
    if err is not KomErr.SUCCESS:
        raise RuntimeError(f"mapdata benchmark failed: {err!r}")
    record("MapData", measured["MapData"])
    return rows


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def run_all(repeats: int = 3) -> Dict[str, object]:
    return {
        "schema": SCHEMA,
        "workloads": run_throughput(repeats=repeats),
        "table3": run_table3(),
    }


def _print_report(report: Dict[str, object]) -> None:
    print(f"{'workload':<12} {'instr/s':>12} {'ref instr/s':>12} "
          f"{'speedup':>8} {'sim cycles':>12} {'wall s':>8}")
    for name, row in report["workloads"].items():
        print(
            f"{name:<12} {row['instr_per_s']:>12,.0f} "
            f"{row['reference_instr_per_s']:>12,.0f} {row['speedup']:>7.2f}x "
            f"{row['sim_cycles']:>12,} {row['wall_s']:>8.3f}"
        )
    print()
    print(f"{'Table 3 row':<30} {'sim cycles':>12} {'paper':>8}")
    for name, row in report["table3"].items():
        print(f"{name:<30} {row['sim_cycles']:>12,} {row['paper_cycles']:>8,}")


def _check(baseline: Dict[str, object], current: Dict[str, object]) -> List[str]:
    """Compare a fresh run against the committed baseline.

    Simulated cycles must match exactly (they are deterministic);
    throughput must stay within SPEEDUP_FLOOR of the baseline *speedup*
    so the gate is independent of the host machine's absolute speed.
    """
    failures: List[str] = []
    for name, base in baseline.get("workloads", {}).items():
        row = current["workloads"].get(name)
        if row is None:
            failures.append(f"workload {name} missing from current run")
            continue
        for key in ("sim_cycles", "steps", "result"):
            if row[key] != base[key]:
                failures.append(
                    f"{name}: {key} changed {base[key]} -> {row[key]} "
                    "(simulation no longer deterministic vs baseline)"
                )
        floor = base["speedup"] * SPEEDUP_FLOOR
        if row["speedup"] < floor:
            failures.append(
                f"{name}: speedup {row['speedup']:.2f}x below gate "
                f"{floor:.2f}x (baseline {base['speedup']:.2f}x)"
            )
    for name, base in baseline.get("table3", {}).items():
        row = current["table3"].get(name)
        if row is None:
            failures.append(f"table3 row {name!r} missing from current run")
        elif row["sim_cycles"] != base["sim_cycles"]:
            failures.append(
                f"table3 {name!r}: sim_cycles changed "
                f"{base['sim_cycles']} -> {row['sim_cycles']}"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.bench", description=__doc__.split("\n")[0]
    )
    parser.add_argument("--out", metavar="PATH", help="write results as JSON")
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="re-run and fail on cycle drift or >30%% throughput regression",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="wall-time samples per workload (default 3)"
    )
    args = parser.parse_args(argv)

    report = run_all(repeats=args.repeats)
    _print_report(report)

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {args.out}")

    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = _check(baseline, report)
        if failures:
            print(f"\nFAIL: {len(failures)} regression(s) vs {args.check}")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"\nOK: no regressions vs {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
