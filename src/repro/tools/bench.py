"""Benchmark CLI: Table 3 + paper microbenchmarks + engine throughput.

Runs four suites and reports/records the results:

* **table3** — the paper's monitor-operation microbenchmarks in
  *simulated cycles* (GetPhysPages, Enter+Exit, Enter-only, Resume-only,
  AllocSpare, MapData, Attest, Verify).  These depend only on the cost
  model, so they are exactly reproducible and any drift is a bug.

* **micro** — the paper's Figure 5 analogues (null SMC round-trip,
  enclave enter + exit, one-way SVC exit) in simulated cycles — which
  are asserted identical across engines — and host wall microseconds
  per operation on each engine (reference, fast, turbo).

* **throughput** — host instructions/second of all three execution
  engines on three ARM workloads (checksum, notary, sha256).  The
  engine-to-engine *speedups* are the machine-independent figures of
  merit: absolute wall time varies with the host, but the ratio
  between interpreters running in the same process is stable, so the
  CI regression gate is phrased on them.

* **campaigns** — fault-campaign wall time with snapshot-accelerated
  trials versus per-trial deep copies, asserting the reports are
  bit-identical, plus a fork microbenchmark (ms per deep copy vs ms
  per snapshot restore).

* **restore** — ``MachineState.restore`` latency, full-buffer copy vs
  O(dirty-pages) delta, across the dirty-page counts that bracket real
  cloud-request footprints (shared with ``repro.tools.deltabench``,
  whose ``BENCH_PR10.json`` gate pins the ratio in CI).

Usage::

    python -m repro.tools.bench                     # run, print a table
    python -m repro.tools.bench --out BENCH_PR7.json    # also write JSON
    python -m repro.tools.bench --check BENCH_PR7.json  # regression gate
    python -m repro.tools.bench --profile           # cProfile the run
    python -m repro.tools.bench --profile --profile-json PROF.json
    python -m repro.tools.bench --summary-md SUMMARY.md  # CI job summary

``--profile-json`` writes the profile as a machine-readable top-N
hotspot report (schema ``repro-profile-1``): rows sorted by cumulative
time with stable keys (``file``/``line``/``func``/``ncalls``/
``tottime_s``/``cumtime_s``), paths relative to the source tree and
generated-block frames folded to ``<block>`` so successive reports are
diffable.  The profile-guided burn-down loop reads this to pick the
next hotspot.  ``--summary-md`` writes the engine speedup table as
GitHub-flavoured markdown for ``$GITHUB_STEP_SUMMARY``.

``--check`` re-runs the suites and fails (exit 1) if any simulated
cycle count differs from the committed baseline (lost determinism), if
an engine disagrees with the reference result, if a workload's speedup
drops below 70 % of the baseline speedup (a >30 % throughput
regression), or if the snapshot and deep-copy campaign paths stop
producing identical reports.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.arm.assembler import Assembler
from repro.arm.cpu import CPU, ExitReason
from repro.arm.machine import MachineState
from repro.arm.modes import Mode
from repro.arm.pagetable import l1_index, l2_index, make_l1_entry, make_l2_entry
from repro.arm.registers import PSR

SCHEMA = "repro-bench-2"

#: Throughput regression gate: current speedup must stay above this
#: fraction of the baseline speedup (0.7 == fail on >30% regression).
SPEEDUP_FLOOR = 0.7

#: Engine measurement order for throughput and microbenchmark rows.
ENGINE_ORDER = ("reference", "fast", "turbo")

CODE_VA = 0x0000_1000
DATA_VA = 0x0000_4000
DATA_WORDS = 256


# ---------------------------------------------------------------------------
# Throughput workloads: raw ARM programs run directly on the CPU engines
# ---------------------------------------------------------------------------


def _checksum_program() -> Assembler:
    """The checksum app's CRC-32 inner loop (repro.apps.checksum), with
    the buffer at DATA_VA; r0 = word count."""
    from repro.apps.checksum import CRC_POLY
    from repro.monitor.layout import SVC

    asm = Assembler()
    asm.mov("r5", "r0")
    asm.mov32("r4", DATA_VA)
    asm.mov32("r6", 0xFFFFFFFF)
    asm.mov32("r9", CRC_POLY)
    asm.movw("r10", 1)
    asm.label("word_loop")
    asm.ldr("r7", "r4", 0)
    asm.eor("r6", "r6", "r7")
    asm.movw("r8", 32)
    asm.label("bit_loop")
    asm.tst("r6", "r10")
    asm.beq("even")
    asm.lsri("r6", "r6", 1)
    asm.eor("r6", "r6", "r9")
    asm.b("bit_done")
    asm.label("even")
    asm.lsri("r6", "r6", 1)
    asm.label("bit_done")
    asm.subi("r8", "r8", 1)
    asm.cmpi("r8", 0)
    asm.bne("bit_loop")
    asm.addi("r4", "r4", 4)
    asm.subi("r5", "r5", 1)
    asm.cmpi("r5", 0)
    asm.bne("word_loop")
    asm.mvn("r0", "r6")
    asm.svc(SVC.EXIT)
    return asm


def _notary_program() -> Assembler:
    """A notary-shaped workload: MAC-like chained mixing of a message.

    The notary app proper is a native program (its logic runs in Python);
    this is the equivalent register-pressure profile in actual ARM code:
    per round, absorb one message word into a rotating state with
    add/eor/ror, as a keyed sponge would.  r0 = round count.
    """
    from repro.monitor.layout import SVC

    asm = Assembler()
    asm.mov("r5", "r0")  # rounds remaining
    asm.mov32("r4", DATA_VA)  # message base
    asm.movw("r3", 0)  # message cursor (wraps at DATA_WORDS)
    asm.mov32("r6", 0x6A09E667)  # state a
    asm.mov32("r7", 0xBB67AE85)  # state b
    asm.mov32("r8", 0x3C6EF372)  # state c
    asm.movw("r9", 7)  # rotation amounts
    asm.movw("r10", 13)
    asm.label("round")
    asm.ldrr("r11", "r4", "r3")  # m = message[cursor]
    asm.eor("r6", "r6", "r11")  # a ^= m
    asm.add("r6", "r6", "r7")  # a += b
    asm.ror("r7", "r7", "r9")  # b = ror(b, 7)
    asm.eor("r7", "r7", "r8")  # b ^= c
    asm.add("r8", "r8", "r11")  # c += m
    asm.ror("r8", "r8", "r10")  # c = ror(c, 13)
    asm.addi("r3", "r3", 4)  # advance cursor, wrap at page end
    asm.cmpi("r3", DATA_WORDS * 4)
    asm.bne("no_wrap")
    asm.movw("r3", 0)
    asm.label("no_wrap")
    asm.subi("r5", "r5", 1)
    asm.cmpi("r5", 0)
    asm.bne("round")
    asm.eor("r0", "r6", "r7")
    asm.eor("r0", "r0", "r8")
    asm.svc(SVC.EXIT)
    return asm


def _sha256_program() -> Assembler:
    """A sha256-shaped workload: the message-schedule sigma functions.

    Per word w: sigma0(w) = ror(w,7) ^ ror(w,18) ^ (w >> 3), accumulated
    across the buffer; r0 = number of passes over the buffer.
    """
    from repro.monitor.layout import SVC

    asm = Assembler()
    asm.mov("r5", "r0")  # passes remaining
    asm.mov32("r6", 0)  # accumulator
    asm.movw("r9", 7)
    asm.movw("r10", 18)
    asm.label("pass_loop")
    asm.mov32("r4", DATA_VA)
    asm.movw("r3", DATA_WORDS)
    asm.label("word_loop")
    asm.ldr("r7", "r4", 0)
    asm.ror("r8", "r7", "r9")  # ror(w, 7)
    asm.ror("r11", "r7", "r10")  # ror(w, 18)
    asm.eor("r8", "r8", "r11")
    asm.lsri("r11", "r7", 3)  # w >> 3
    asm.eor("r8", "r8", "r11")
    asm.add("r6", "r6", "r8")
    asm.addi("r4", "r4", 4)
    asm.subi("r3", "r3", 1)
    asm.cmpi("r3", 0)
    asm.bne("word_loop")
    asm.subi("r5", "r5", 1)
    asm.cmpi("r5", 0)
    asm.bne("pass_loop")
    asm.mov("r0", "r6")
    asm.svc(SVC.EXIT)
    return asm


#: workload name -> (program factory, r0 argument)
WORKLOADS: Dict[str, Tuple[Callable[[], Assembler], int]] = {
    "checksum": (_checksum_program, DATA_WORDS),
    "notary": (_notary_program, 6000),
    "sha256": (_sha256_program, 24),
}


def _stage(program: Assembler, r0: int) -> MachineState:
    """Boot a machine with the program mapped RX at CODE_VA and a data
    page RW at DATA_VA (the sidechannel profiler's layout)."""
    state = MachineState.boot(secure_pages=8)
    memmap = state.memmap
    l1, l2 = memmap.page_base(0), memmap.page_base(1)
    memory = state.memory
    memory.write_word(l1 + l1_index(CODE_VA) * 4, make_l1_entry(l2))
    memory.write_word(
        l2 + l2_index(CODE_VA) * 4,
        make_l2_entry(memmap.page_base(2), True, False, True, True),
    )
    memory.write_word(
        l2 + l2_index(DATA_VA) * 4,
        make_l2_entry(memmap.page_base(3), True, True, False, True),
    )
    memory.write_words(memmap.page_base(2), program.assemble())
    data = [(i * 2654435761 + 0x9E3779B9) & 0xFFFFFFFF for i in range(DATA_WORDS)]
    memory.write_words(memmap.page_base(3), data)
    state.load_ttbr0(l1)
    state.flush_tlb()
    state.regs.cpsr = PSR(mode=Mode.USR, irq_masked=False, fiq_masked=False)
    state.regs.write_gpr(0, r0)
    return state


def _run_engine(name: str, engine: str, repeats: int) -> Dict[str, object]:
    """Run one workload on one engine; wall time is the best of ``repeats``."""
    factory, r0 = WORKLOADS[name]
    program = factory()
    best = None
    for _ in range(repeats):
        state = _stage(program, r0)
        cpu = CPU(state, engine=engine)
        start = time.perf_counter()
        result = cpu.run(CODE_VA, max_steps=10_000_000)
        wall = time.perf_counter() - start
        if result.reason is not ExitReason.SVC:
            raise RuntimeError(f"{name} did not run to completion: {result.reason}")
        sample = {
            "wall_s": round(wall, 6),
            "instr_per_s": round(result.steps / wall, 1),
            "sim_cycles": state.cycles,
            "steps": result.steps,
            "result": state.regs.read_gpr(0),
        }
        if best is None or wall < best["wall_s"]:
            best = sample
    return best


def run_throughput(repeats: int = 3) -> Dict[str, Dict[str, object]]:
    """Run every workload on all three engines; cross-check them
    against each other and report per-engine rates plus the speedups.

    The ``wall_s``/``instr_per_s``/``speedup`` keys keep their PR-2
    meaning (the *fast* engine and its speedup over reference) so old
    baselines stay checkable; the turbo tier adds its own columns.
    """
    out: Dict[str, Dict[str, object]] = {}
    for name in WORKLOADS:
        samples = {
            engine: _run_engine(name, engine, 1 if engine == "reference" else repeats)
            for engine in ENGINE_ORDER
        }
        ref, fast, turbo = (samples[e] for e in ENGINE_ORDER)
        for engine in ("fast", "turbo"):
            for key in ("sim_cycles", "steps", "result"):
                if samples[engine][key] != ref[key]:
                    raise RuntimeError(
                        f"engine divergence on {name}: {key} "
                        f"{engine}={samples[engine][key]} reference={ref[key]}"
                    )
        out[name] = {
            "wall_s": fast["wall_s"],
            "instr_per_s": fast["instr_per_s"],
            "sim_cycles": fast["sim_cycles"],
            "steps": fast["steps"],
            "result": fast["result"],
            "reference_wall_s": ref["wall_s"],
            "reference_instr_per_s": ref["instr_per_s"],
            "turbo_wall_s": turbo["wall_s"],
            "turbo_instr_per_s": turbo["instr_per_s"],
            "speedup": round(fast["instr_per_s"] / ref["instr_per_s"], 2),
            "speedup_turbo": round(turbo["instr_per_s"] / ref["instr_per_s"], 2),
            "speedup_turbo_vs_fast": round(
                turbo["instr_per_s"] / fast["instr_per_s"], 2
            ),
        }
    return out


# ---------------------------------------------------------------------------
# Paper microbenchmarks (Figure 5 analogues): per-engine wall time for
# the monitor crossings, with engine-invariant simulated cycles
# ---------------------------------------------------------------------------


def _micro_engine(engine: str, repeats: int) -> Dict[str, Dict[str, float]]:
    """Measure the three crossing microbenchmarks on one engine.

    Returns name -> {sim_cycles, wall_us} for: null SMC round-trip,
    enclave enter + exit, and the one-way SVC exit path (enter+exit
    minus enter-only, both in cycles and in wall time — the enter-only
    timestamp is captured by the ``on_user_entry`` hook at the moment
    control reaches user mode).
    """
    from repro.monitor.komodo import KomodoMonitor
    from repro.monitor.layout import SMC, SVC
    from repro.osmodel.kernel import OSKernel
    from repro.sdk.builder import CODE_VA as SDK_CODE_VA
    from repro.sdk.builder import EnclaveBuilder

    monitor = KomodoMonitor(secure_pages=16, cpu_engine=engine)
    kernel = OSKernel(monitor)

    # Null SMC: the GetPhysPages round-trip, no enclave involved.
    loops = 512
    before = monitor.state.cycles
    start = time.perf_counter()
    for _ in range(loops):
        monitor.smc(SMC.GET_PHYSPAGES)
    null_wall = time.perf_counter() - start
    null_cycles = (monitor.state.cycles - before) // loops

    exit_asm = Assembler()
    exit_asm.svc(SVC.EXIT)
    enclave = (
        EnclaveBuilder(kernel).add_code(exit_asm).add_thread(SDK_CODE_VA).build()
    )
    enclave.enter()  # warm the caches once; not measured

    marks: Dict[str, float] = {}

    def on_entry(cycles: int) -> None:
        marks["cycles"] = cycles
        marks["wall"] = time.perf_counter()

    monitor.on_user_entry = on_entry
    loops = 128
    best: Optional[Dict[str, float]] = None
    for _ in range(repeats):
        cycles_before = monitor.state.cycles
        exit_cycles = 0
        enter_wall = exit_wall = 0.0
        for _ in range(loops):
            start = time.perf_counter()
            enclave.enter()
            end = time.perf_counter()
            enter_wall += marks["wall"] - start
            exit_wall += end - marks["wall"]
            exit_cycles += monitor.state.cycles - marks["cycles"]
        total_cycles = monitor.state.cycles - cycles_before
        sample = {
            "enter_exit_wall": enter_wall + exit_wall,
            "enter_wall": enter_wall,
            "exit_wall": exit_wall,
            "enter_exit_cycles": total_cycles // loops,
            "exit_cycles": exit_cycles // loops,
        }
        if best is None or sample["enter_exit_wall"] < best["enter_exit_wall"]:
            best = sample
    monitor.on_user_entry = None

    return {
        "null_smc_round_trip": {
            "sim_cycles": null_cycles,
            "wall_us": round(null_wall / 512 * 1e6, 3),
        },
        "enter_exit": {
            "sim_cycles": best["enter_exit_cycles"],
            "wall_us": round(best["enter_exit_wall"] / loops * 1e6, 3),
        },
        "svc_exit_one_way": {
            "sim_cycles": best["exit_cycles"],
            "wall_us": round(best["exit_wall"] / loops * 1e6, 3),
        },
    }


def run_paper_micro(repeats: int = 3) -> Dict[str, Dict[str, object]]:
    """Figure 5 analogues on every engine.

    Simulated cycles are asserted engine-invariant (they depend only on
    the cost model); wall microseconds per operation are reported per
    engine.
    """
    per_engine = {engine: _micro_engine(engine, repeats) for engine in ENGINE_ORDER}
    out: Dict[str, Dict[str, object]] = {}
    for name, ref_row in per_engine["reference"].items():
        for engine in ("fast", "turbo"):
            got = per_engine[engine][name]["sim_cycles"]
            if got != ref_row["sim_cycles"]:
                raise RuntimeError(
                    f"micro {name}: sim_cycles diverge "
                    f"({engine}={got}, reference={ref_row['sim_cycles']})"
                )
        out[name] = {
            "sim_cycles": ref_row["sim_cycles"],
            "wall_us": {
                engine: per_engine[engine][name]["wall_us"]
                for engine in ENGINE_ORDER
            },
        }
    return out


# ---------------------------------------------------------------------------
# Campaign acceleration: snapshot rewind vs per-trial deep copy
# ---------------------------------------------------------------------------


def run_campaigns() -> Dict[str, object]:
    """Time both fault campaigns with and without snapshot trials.

    The reports must be bit-identical — the snapshot path is a pure
    wall-clock optimisation.  Also reports the fork microbenchmark
    (cost of one per-trial deep copy vs one snapshot restore), which is
    the mechanism the end-to-end numbers amortise.
    """
    import copy as _copy

    from repro.faults.bitflip import BitflipCampaign
    from repro.faults.campaign import LifecycleCampaign
    from repro.faults.snapshot import CampaignSnapshot

    out: Dict[str, object] = {}

    def timed(factory) -> Tuple[object, float]:
        start = time.perf_counter()
        report = factory().run()
        return report, round(time.perf_counter() - start, 3)

    snap_report, snap_wall = timed(
        lambda: LifecycleCampaign(engine="turbo", stride=5, use_snapshots=True)
    )
    deep_report, deep_wall = timed(
        lambda: LifecycleCampaign(engine="turbo", stride=5, use_snapshots=False)
    )
    out["lifecycle"] = {
        "trials": snap_report.total_trials,
        "snapshot_wall_s": snap_wall,
        "deepcopy_wall_s": deep_wall,
        "speedup": round(deep_wall / snap_wall, 2),
        "reports_identical": snap_report == deep_report,
        "violations": len(snap_report.violations),
    }

    snap_report, snap_wall = timed(
        lambda: BitflipCampaign(
            engine="turbo", stride=173, targets=("pagedb", "itag"), use_snapshots=True
        )
    )
    deep_report, deep_wall = timed(
        lambda: BitflipCampaign(
            engine="turbo", stride=173, targets=("pagedb", "itag"), use_snapshots=False
        )
    )
    out["bitflip"] = {
        "trials": snap_report.total_trials,
        "snapshot_wall_s": snap_wall,
        "deepcopy_wall_s": deep_wall,
        "speedup": round(deep_wall / snap_wall, 2),
        "reports_identical": snap_report == deep_report,
        "violations": len(snap_report.violations),
    }

    # Fork microbenchmark on a built two-enclave state.
    campaign = BitflipCampaign(engine="turbo")
    monitor, kernel = campaign._fresh()
    campaign._build_enclave(kernel, "victim")
    campaign._build_enclave(kernel, "bystander")
    loops = 100
    start = time.perf_counter()
    for _ in range(loops):
        _copy.deepcopy((monitor, kernel))
    deep_ms = (time.perf_counter() - start) / loops * 1e3
    checkpoint = CampaignSnapshot(monitor, kernel)
    start = time.perf_counter()
    for _ in range(loops):
        checkpoint.restore()
    restore_ms = (time.perf_counter() - start) / loops * 1e3
    out["fork"] = {
        "deepcopy_ms": round(deep_ms, 3),
        "snapshot_restore_ms": round(restore_ms, 3),
        "speedup": round(deep_ms / restore_ms, 2),
    }
    return out


# ---------------------------------------------------------------------------
# Snapshot restore: full-buffer copy vs O(dirty-pages) delta
# ---------------------------------------------------------------------------


def run_restore() -> Dict[str, object]:
    """Delta vs full restore latency (shared with repro.tools.deltabench)."""
    from repro.tools.deltabench import bench_restore

    return bench_restore(iterations=200)


# ---------------------------------------------------------------------------
# Table 3 microbenchmarks (simulated cycles; mirrors benchmarks/)
# ---------------------------------------------------------------------------


def run_table3() -> Dict[str, Dict[str, int]]:
    from repro.monitor.errors import KomErr
    from repro.monitor.komodo import KomodoMonitor
    from repro.monitor.layout import Mapping, SMC, SVC
    from repro.osmodel.kernel import OSKernel
    from repro.sdk.builder import CODE_VA as SDK_CODE_VA
    from repro.sdk.builder import EnclaveBuilder
    from repro.sdk.native import NativeEnclaveProgram

    paper = {
        "GetPhysPages (null SMC)": 123,
        "Enter + Exit (full crossing)": 738,
        "Enter only (no return)": 496,
        "Resume only (no return)": 625,
        "Attest": 12411,
        "Verify": 13373,
        "AllocSpare": 217,
        "MapData": 5826,
    }
    rows: Dict[str, Dict[str, int]] = {}

    def record(name: str, cycles: int) -> None:
        rows[name] = {"sim_cycles": cycles, "paper_cycles": paper[name]}

    def cycles_of(monitor, fn) -> int:
        before = monitor.state.cycles
        fn()
        return monitor.state.cycles - before

    monitor = KomodoMonitor(secure_pages=64)
    kernel = OSKernel(monitor)

    record("GetPhysPages (null SMC)", cycles_of(monitor, lambda: monitor.smc(SMC.GET_PHYSPAGES)))

    exit_asm = Assembler()
    exit_asm.svc(SVC.EXIT)
    exit_enclave = (
        EnclaveBuilder(kernel).add_code(exit_asm).add_thread(SDK_CODE_VA).build()
    )
    record("Enter + Exit (full crossing)", cycles_of(monitor, exit_enclave.enter))

    marks = {}
    monitor.on_user_entry = lambda cycles: marks.__setitem__("entry", cycles)
    before = monitor.state.cycles
    exit_enclave.enter()
    record("Enter only (no return)", marks["entry"] - before)

    spin_asm = Assembler()
    spin_asm.label("spin")
    spin_asm.b("spin")
    spin_enclave = (
        EnclaveBuilder(kernel).add_code(spin_asm).add_thread(SDK_CODE_VA).build()
    )
    monitor.schedule_interrupt(3)
    spin_enclave.enter()
    monitor.schedule_interrupt(3)
    before = monitor.state.cycles
    spin_enclave.resume()
    record("Resume only (no return)", marks["entry"] - before)
    monitor.on_user_entry = None

    page = kernel.alloc_page()
    record(
        "AllocSpare",
        cycles_of(monitor, lambda: monitor.smc(SMC.ALLOC_SPARE, exit_enclave.as_page, page)),
    )

    measured = {}

    def attest_body(ctx, a, b, c):
        start = ctx.monitor.state.cycles
        mac = ctx.attest([0] * 8)
        measured["Attest"] = ctx.monitor.state.cycles - start
        meas = ctx.monitor.pagedb.measurement(ctx.asno)
        start = ctx.monitor.state.cycles
        ok = ctx.verify([0] * 8, meas, mac)
        measured["Verify"] = ctx.monitor.state.cycles - start
        return 1 if ok else 0
        yield

    attest_enclave = (
        EnclaveBuilder(kernel)
        .set_native_program(NativeEnclaveProgram("bench-attest", attest_body))
        .build()
    )
    err, ok = attest_enclave.call()
    if (err, ok) != (KomErr.SUCCESS, 1):
        raise RuntimeError(f"attest benchmark failed: {err!r}")
    record("Attest", measured["Attest"])
    record("Verify", measured["Verify"])

    def mapdata_body(ctx, spare, b, c):
        mapping = Mapping(
            va=0x0010_0000, readable=True, writable=True, executable=False
        ).encode()
        start = ctx.monitor.state.cycles
        ctx.map_data(spare, mapping)
        measured["MapData"] = ctx.monitor.state.cycles - start
        ctx.unmap_data(spare, mapping)
        return 0
        yield

    mapdata_enclave = (
        EnclaveBuilder(kernel)
        .add_spares(1)
        .set_native_program(NativeEnclaveProgram("bench-mapdata", mapdata_body))
        .build()
    )
    err, _ = mapdata_enclave.call(mapdata_enclave.spares[0])
    if err is not KomErr.SUCCESS:
        raise RuntimeError(f"mapdata benchmark failed: {err!r}")
    record("MapData", measured["MapData"])
    return rows


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def run_all(repeats: int = 3) -> Dict[str, object]:
    return {
        "schema": SCHEMA,
        "workloads": run_throughput(repeats=repeats),
        "micro": run_paper_micro(repeats=repeats),
        "campaigns": run_campaigns(),
        "restore": run_restore(),
        "table3": run_table3(),
    }


def _print_report(report: Dict[str, object]) -> None:
    print(
        f"{'workload':<12} {'ref instr/s':>12} {'fast instr/s':>13} "
        f"{'turbo instr/s':>14} {'fast/ref':>9} {'turbo/ref':>10} {'turbo/fast':>11}"
    )
    for name, row in report["workloads"].items():
        print(
            f"{name:<12} {row['reference_instr_per_s']:>12,.0f} "
            f"{row['instr_per_s']:>13,.0f} {row['turbo_instr_per_s']:>14,.0f} "
            f"{row['speedup']:>8.2f}x {row['speedup_turbo']:>9.2f}x "
            f"{row['speedup_turbo_vs_fast']:>10.2f}x"
        )
    print()
    print(
        f"{'microbench':<22} {'sim cycles':>11} {'ref us':>9} "
        f"{'fast us':>9} {'turbo us':>9}"
    )
    for name, row in report["micro"].items():
        walls = row["wall_us"]
        print(
            f"{name:<22} {row['sim_cycles']:>11,} {walls['reference']:>9.2f} "
            f"{walls['fast']:>9.2f} {walls['turbo']:>9.2f}"
        )
    print()
    print(
        f"{'campaign':<12} {'trials':>7} {'deepcopy s':>11} "
        f"{'snapshot s':>11} {'speedup':>8} {'identical':>10}"
    )
    for name in ("lifecycle", "bitflip"):
        row = report["campaigns"][name]
        print(
            f"{name:<12} {row['trials']:>7} {row['deepcopy_wall_s']:>11.3f} "
            f"{row['snapshot_wall_s']:>11.3f} {row['speedup']:>7.2f}x "
            f"{str(row['reports_identical']):>10}"
        )
    fork = report["campaigns"]["fork"]
    print(
        f"{'fork':<12} {'':>7} {fork['deepcopy_ms']:>10.3f}m "
        f"{fork['snapshot_restore_ms']:>10.3f}m {fork['speedup']:>7.2f}x"
    )
    print()
    print(f"{'restore':<12} {'dirty pages':>12} {'delta us':>9} {'full us':>9} {'speedup':>8}")
    for row in report["restore"]["rows"]:
        print(
            f"{'':<12} {row['dirty_pages']:>12} {row['delta_us']:>9.1f} "
            f"{row['full_us']:>9.1f} {row['speedup']:>7.1f}x"
        )
    print()
    print(f"{'Table 3 row':<30} {'sim cycles':>12} {'paper':>8}")
    for name, row in report["table3"].items():
        print(f"{name:<30} {row['sim_cycles']:>12,} {row['paper_cycles']:>8,}")


PROFILE_SCHEMA = "repro-profile-1"


def _profile_key(filename: str, lineno: int, func: str) -> Tuple[str, int, str]:
    """Normalise one pstats frame to stable, host-independent keys.

    Absolute paths are cut down to the path under ``src`` (or the
    basename), and the per-address names of generated region functions
    (``<block@0x80016028>``) are folded to ``<block>`` so reports from
    different runs aggregate and diff cleanly.
    """
    if filename.startswith("<block@"):
        return "<block>", 0, "_block"
    if filename.startswith("<"):
        return filename, 0, func
    for marker in ("/repro/", "\\repro\\"):
        cut = filename.rfind(marker)
        if cut != -1:
            return "repro/" + filename[cut + len(marker):].replace("\\", "/"), lineno, func
    return filename.rsplit("/", 1)[-1], lineno, func


def profile_report(profiler, top: int = 25) -> Dict[str, object]:
    """The top-``top`` cumulative-time hotspots as a JSON-ready dict."""
    import pstats

    stats = pstats.Stats(profiler)
    rows: Dict[Tuple[str, int, str], Dict[str, object]] = {}
    for (filename, lineno, func), (cc, ncalls, tottime, cumtime, _) in stats.stats.items():
        key = _profile_key(filename, lineno, func)
        row = rows.get(key)
        if row is None:
            rows[key] = {
                "file": key[0],
                "line": key[1],
                "func": key[2],
                "ncalls": ncalls,
                "tottime_s": tottime,
                "cumtime_s": cumtime,
            }
        else:
            # Folded frames (the generated <block> functions): calls and
            # self time add; cumulative time of disjoint subtrees adds.
            row["ncalls"] += ncalls
            row["tottime_s"] += tottime
            row["cumtime_s"] += cumtime
    ranked = sorted(rows.values(), key=lambda r: r["cumtime_s"], reverse=True)[:top]
    total = sum(row["tottime_s"] for row in rows.values())
    for rank, row in enumerate(ranked, start=1):
        row["rank"] = rank
        row["tottime_s"] = round(row["tottime_s"], 6)
        row["cumtime_s"] = round(row["cumtime_s"], 6)
    return {
        "schema": PROFILE_SCHEMA,
        "sort": "cumulative",
        "total_tottime_s": round(total, 6),
        "top": ranked,
    }


def summary_md(report: Dict[str, object]) -> str:
    """The workload speedup table as GitHub-flavoured markdown."""
    lines = [
        "### Engine throughput",
        "",
        "| workload | ref instr/s | fast instr/s | turbo instr/s | fast/ref | turbo/ref |",
        "| --- | ---: | ---: | ---: | ---: | ---: |",
    ]
    for name, row in report["workloads"].items():
        lines.append(
            f"| {name} | {row['reference_instr_per_s']:,.0f} "
            f"| {row['instr_per_s']:,.0f} | {row['turbo_instr_per_s']:,.0f} "
            f"| {row['speedup']:.2f}x | {row['speedup_turbo']:.2f}x |"
        )
    fork = report["campaigns"]["fork"]
    lines += [
        "",
        "### Campaign acceleration",
        "",
        "| campaign | trials | deepcopy s | snapshot s | speedup | identical |",
        "| --- | ---: | ---: | ---: | ---: | --- |",
    ]
    for name in ("lifecycle", "bitflip"):
        row = report["campaigns"][name]
        lines.append(
            f"| {name} | {row['trials']} | {row['deepcopy_wall_s']:.3f} "
            f"| {row['snapshot_wall_s']:.3f} | {row['speedup']:.2f}x "
            f"| {row['reports_identical']} |"
        )
    lines.append(
        f"| fork (ms/op) | | {fork['deepcopy_ms']:.3f} "
        f"| {fork['snapshot_restore_ms']:.3f} | {fork['speedup']:.2f}x | |"
    )
    lines += [
        "",
        "### Snapshot restore (full vs delta)",
        "",
        "| dirty pages | delta us | full us | speedup |",
        "| ---: | ---: | ---: | ---: |",
    ]
    for row in report["restore"]["rows"]:
        lines.append(
            f"| {row['dirty_pages']} | {row['delta_us']:.1f} "
            f"| {row['full_us']:.1f} | {row['speedup']:.1f}x |"
        )
    return "\n".join(lines) + "\n"


def _check(baseline: Dict[str, object], current: Dict[str, object]) -> List[str]:
    """Compare a fresh run against the committed baseline.

    Simulated cycles must match exactly (they are deterministic);
    throughput must stay within SPEEDUP_FLOOR of the baseline *speedup*
    so the gate is independent of the host machine's absolute speed.
    """
    failures: List[str] = []
    for name, base in baseline.get("workloads", {}).items():
        row = current["workloads"].get(name)
        if row is None:
            failures.append(f"workload {name} missing from current run")
            continue
        for key in ("sim_cycles", "steps", "result"):
            if row[key] != base[key]:
                failures.append(
                    f"{name}: {key} changed {base[key]} -> {row[key]} "
                    "(simulation no longer deterministic vs baseline)"
                )
        for key in ("speedup", "speedup_turbo"):
            if key not in base:
                continue  # pre-turbo (repro-bench-1) baseline
            floor = base[key] * SPEEDUP_FLOOR
            if row[key] < floor:
                failures.append(
                    f"{name}: {key} {row[key]:.2f}x below gate "
                    f"{floor:.2f}x (baseline {base[key]:.2f}x)"
                )
    for name, base in baseline.get("micro", {}).items():
        row = current["micro"].get(name)
        if row is None:
            failures.append(f"micro row {name!r} missing from current run")
        elif row["sim_cycles"] != base["sim_cycles"]:
            failures.append(
                f"micro {name!r}: sim_cycles changed "
                f"{base['sim_cycles']} -> {row['sim_cycles']}"
            )
    if "campaigns" in baseline:
        for name in ("lifecycle", "bitflip"):
            row = current["campaigns"][name]
            if not row["reports_identical"]:
                failures.append(
                    f"campaign {name}: snapshot and deep-copy reports diverge"
                )
            if row["violations"]:
                failures.append(f"campaign {name}: {row['violations']} violation(s)")
    if "restore" in baseline:
        from repro.tools.deltabench import RESTORE_FLOOR

        speedup = current["restore"]["footprint_speedup"]
        if speedup < RESTORE_FLOOR:
            failures.append(
                f"restore: delta speedup {speedup}x at "
                f"{current['restore']['footprint_pages']} dirty pages "
                f"below the {RESTORE_FLOOR}x gate"
            )
    for name, base in baseline.get("table3", {}).items():
        row = current["table3"].get(name)
        if row is None:
            failures.append(f"table3 row {name!r} missing from current run")
        elif row["sim_cycles"] != base["sim_cycles"]:
            failures.append(
                f"table3 {name!r}: sim_cycles changed "
                f"{base['sim_cycles']} -> {row['sim_cycles']}"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.bench", description=__doc__.split("\n")[0]
    )
    parser.add_argument("--out", metavar="PATH", help="write results as JSON")
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="re-run and fail on cycle drift or >30%% throughput regression",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="wall-time samples per workload (default 3)"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the hottest call sites",
    )
    parser.add_argument(
        "--profile-lines",
        type=int,
        default=25,
        help="rows of profile output with --profile (default 25)",
    )
    parser.add_argument(
        "--profile-json",
        metavar="PATH",
        help="with --profile, also write the top-N hotspot report as JSON "
        f"(schema {PROFILE_SCHEMA}; N = --profile-lines)",
    )
    parser.add_argument(
        "--summary-md",
        metavar="PATH",
        help="write the speedup tables as GitHub-flavoured markdown "
        "(for $GITHUB_STEP_SUMMARY)",
    )
    args = parser.parse_args(argv)
    if args.profile_json and not args.profile:
        parser.error("--profile-json requires --profile")

    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        report = run_all(repeats=args.repeats)
        profiler.disable()
        _print_report(report)
        print()
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(
            args.profile_lines
        )
        if args.profile_json:
            with open(args.profile_json, "w") as fh:
                json.dump(profile_report(profiler, top=args.profile_lines), fh, indent=2)
                fh.write("\n")
            print(f"wrote {args.profile_json}")

    else:
        report = run_all(repeats=args.repeats)
        _print_report(report)

    if args.summary_md:
        with open(args.summary_md, "w") as fh:
            fh.write(summary_md(report))
        print(f"wrote {args.summary_md}")

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {args.out}")

    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = _check(baseline, report)
        if failures:
            print(f"\nFAIL: {len(failures)} regression(s) vs {args.check}")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"\nOK: no regressions vs {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
