"""Fault-injection campaign CLI.

Runs the exhaustive per-step crash campaign over a full enclave
lifecycle (see ``repro.faults.campaign``): for every machine-visible
monitor operation of every lifecycle step, kill the monitor there,
recover, audit, and have the OS retry path finish the lifecycle.

Usage::

    python -m repro.tools.faultcamp                 # run, print a table
    python -m repro.tools.faultcamp --check         # CI gate (exit 1 on any violation)
    python -m repro.tools.faultcamp --engine both   # fast/reference differential
    python -m repro.tools.faultcamp --engine all    # fast/reference/turbo differential
    python -m repro.tools.faultcamp --steps init_addrspace,map_secure,remove

``--steps`` restricts *injection* to the named steps (prefix match, so
``remove`` covers every Remove); the lifecycle itself always runs in
full.  ``--stride N`` injects at every N-th operation for a bounded
smoke campaign.  Every run is deterministic in ``--seed``.  Trials are
snapshot-accelerated by default; ``--no-snapshot`` forces the original
per-trial deep-copy path (same reports, slower).

``--jobs N`` shards the trial sweep across N forked worker processes
(``repro.faults.parallel``); the merged report — and the digest the
tool prints — is byte-identical to the serial run's.  ``--verify-serial``
additionally re-runs the campaign serially in-process and fails unless
the digests agree (the CI leg that pins the claim).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro.faults.campaign import (
    CampaignReport,
    LifecycleCampaign,
    run_differential,
)
from repro.faults.parallel import (
    report_digest,
    run_lifecycle_differential_sharded,
    run_lifecycle_sharded,
)


def _print_report(report: CampaignReport) -> None:
    print(f"engine={report.engine} seed={report.seed:#x}")
    print(f"{'step':<16} {'ops':>5} {'trials':>7} {'violations':>11}")
    for step in report.steps:
        print(
            f"{step.name:<16} {step.fault_points:>5} {step.trials:>7} "
            f"{len(step.violations):>11}"
        )
    print(
        f"{'total':<16} {report.total_fault_points:>5} "
        f"{report.total_trials:>7} {len(report.violations):>11}"
    )


def _print_violations(violations: List[str], limit: int = 20) -> None:
    for violation in violations[:limit]:
        print(f"  FAIL: {violation}")
    if len(violations) > limit:
        print(f"  ... and {len(violations) - limit} more")


def _run(args, inject_steps, jobs: int) -> Tuple[List[CampaignReport], List[str]]:
    """Run the requested campaign(s); ``(reports, engine mismatches)``."""
    if args.engine in ("both", "all"):
        engines = ("fast", "reference") if args.engine == "both" else (
            "fast", "reference", "turbo"
        )
        if jobs > 1:
            *reports, mismatches = run_lifecycle_differential_sharded(
                jobs,
                seed=args.seed,
                inject_steps=inject_steps,
                stride=args.stride,
                secure_pages=args.secure_pages,
                engines=engines,
                use_snapshots=not args.no_snapshot,
                trial_timeout=args.timeout,
            )
        else:
            *reports, mismatches = run_differential(
                seed=args.seed,
                inject_steps=inject_steps,
                stride=args.stride,
                secure_pages=args.secure_pages,
                engines=engines,
                use_snapshots=not args.no_snapshot,
                trial_timeout=args.timeout,
            )
        return list(reports), mismatches
    if jobs > 1:
        report = run_lifecycle_sharded(
            jobs,
            seed=args.seed,
            engine=args.engine,
            secure_pages=args.secure_pages,
            inject_steps=inject_steps,
            stride=args.stride,
            use_snapshots=not args.no_snapshot,
            trial_timeout=args.timeout,
        )
    else:
        report = LifecycleCampaign(
            seed=args.seed,
            engine=args.engine,
            secure_pages=args.secure_pages,
            inject_steps=inject_steps,
            stride=args.stride,
            use_snapshots=not args.no_snapshot,
            trial_timeout=args.timeout,
        ).run()
    return [report], []


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.faultcamp",
        description="monitor crash-consistency campaign",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 on any violation (CI gate)",
    )
    parser.add_argument("--seed", type=lambda s: int(s, 0), default=0xC0FFEE)
    parser.add_argument(
        "--engine",
        choices=("fast", "reference", "turbo", "both", "all"),
        default="turbo",
        help="execution engine (default: turbo, the fastest bit-identical "
        "tier); 'both' = fast/reference differential, 'all' adds turbo",
    )
    parser.add_argument(
        "--no-snapshot",
        action="store_true",
        help="deep-copy the monitor per trial instead of snapshot rewind",
    )
    parser.add_argument(
        "--steps",
        default=None,
        help="comma-separated step names (prefix match) to inject on",
    )
    parser.add_argument(
        "--stride",
        type=int,
        default=1,
        help="inject at every N-th operation (1 = exhaustive)",
    )
    parser.add_argument("--secure-pages", type=int, default=16)
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock watchdog per trial: a wedged trial fails that "
        "trial with a recorded violation instead of hanging the run",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard trials across N forked workers; the merged report "
        "is byte-identical to the serial run (1 = serial)",
    )
    parser.add_argument(
        "--verify-serial",
        action="store_true",
        help="also run the campaign serially and fail unless the report "
        "digests match the --jobs run exactly",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")

    inject_steps = None
    if args.steps:
        inject_steps = [token.strip() for token in args.steps.split(",") if token.strip()]

    failures: List[str] = []
    reports, mismatches = _run(args, inject_steps, args.jobs)
    for report in reports:
        _print_report(report)
        failures.extend(report.violations)
        print(f"report digest [{report.engine}]: {report_digest(report)}")
    if mismatches:
        print("engine differential mismatches:")
        _print_violations(mismatches)
    failures.extend(mismatches)

    if args.verify_serial:
        serial_reports, serial_mismatches = _run(args, inject_steps, 1)
        for parallel_report, serial_report in zip(reports, serial_reports):
            jobs_digest = report_digest(parallel_report)
            serial_digest = report_digest(serial_report)
            verdict = "OK" if jobs_digest == serial_digest else "MISMATCH"
            print(
                f"verify-serial [{parallel_report.engine}]: jobs={args.jobs} "
                f"{jobs_digest[:16]} vs serial {serial_digest[:16]}: {verdict}"
            )
            if jobs_digest != serial_digest:
                failures.append(
                    f"--jobs {args.jobs} report diverged from serial "
                    f"({parallel_report.engine})"
                )
        if mismatches != serial_mismatches:
            failures.append("--jobs differential mismatches diverged from serial")

    if failures:
        _print_violations(failures)
        print(f"faultcamp: {len(failures)} violation(s)")
        return 1
    print("faultcamp: every injection point recovered to a quiescent state")
    return 0


if __name__ == "__main__":
    sys.exit(main())
