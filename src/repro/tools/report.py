"""One-command experiment report: regenerate every paper artifact.

``python -m repro.tools.report`` runs the Table 3 microbenchmarks, the
Figure 5 notary series, and the Table 2 line counts directly (without
pytest) and prints the paper-vs-measured tables.  Useful for a quick
smoke of the whole reproduction; the benchmark suite remains the
authoritative, asserted version.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.apps.notary import NativeNotary, NotaryEnclave
from repro.arm.assembler import Assembler
from repro.monitor.komodo import KomodoMonitor
from repro.monitor.layout import Mapping, SMC, SVC
from repro.osmodel.kernel import OSKernel
from repro.sdk.builder import CODE_VA, EnclaveBuilder
from repro.sdk.native import NativeEnclaveProgram

CPU_MHZ = 900


@dataclass
class Row:
    name: str
    paper: float
    measured: float

    def render(self) -> str:
        ratio = self.measured / self.paper if self.paper else 0.0
        return f"  {self.name:36} {self.paper:>10.0f} {self.measured:>10.0f} {ratio:6.2f}x"


def table3_rows() -> List[Row]:
    """Regenerate the Table 3 microbenchmarks."""
    monitor = KomodoMonitor(secure_pages=64)
    kernel = OSKernel(monitor)
    rows: List[Row] = []

    def cycles(fn) -> int:
        before = monitor.state.cycles
        fn()
        return monitor.state.cycles - before

    rows.append(Row("GetPhysPages (null SMC)", 123,
                    cycles(lambda: monitor.smc(SMC.GET_PHYSPAGES))))

    asm = Assembler()
    asm.svc(SVC.EXIT)
    exit_enclave = EnclaveBuilder(kernel).add_code(asm).add_thread(CODE_VA).build()
    marks: Dict[str, int] = {}
    monitor.on_user_entry = lambda c: marks.__setitem__("entry", c)
    before = monitor.state.cycles
    exit_enclave.enter()
    rows.append(Row("Enter only (no return)", 496, marks["entry"] - before))
    rows.append(Row("Enter + Exit (full crossing)", 738, monitor.state.cycles - before))

    spin = Assembler()
    spin.label("spin")
    spin.b("spin")
    spin_enclave = EnclaveBuilder(kernel).add_code(spin).add_thread(CODE_VA).build()
    monitor.schedule_interrupt(3)
    spin_enclave.enter()
    monitor.schedule_interrupt(3)
    before = monitor.state.cycles
    spin_enclave.resume()
    rows.append(Row("Resume only (no return)", 625, marks["entry"] - before))

    crypto_marks: Dict[str, int] = {}

    def crypto_body(ctx, a, b, c):
        start = ctx.monitor.state.cycles
        mac = ctx.attest([0] * 8)
        crypto_marks["attest"] = ctx.monitor.state.cycles - start
        meas = ctx.monitor.pagedb.measurement(ctx.asno)
        start = ctx.monitor.state.cycles
        ctx.verify([0] * 8, meas, mac)
        crypto_marks["verify"] = ctx.monitor.state.cycles - start
        return 0
        yield

    crypto_enclave = (
        EnclaveBuilder(kernel)
        .set_native_program(NativeEnclaveProgram("report-crypto", crypto_body))
        .build()
    )
    crypto_enclave.call()
    rows.append(Row("Attest", 12411, crypto_marks["attest"]))
    rows.append(Row("Verify", 13373, crypto_marks["verify"]))

    spare = kernel.alloc_page()
    rows.append(Row("AllocSpare", 217,
                    cycles(lambda: monitor.smc(SMC.ALLOC_SPARE, crypto_enclave.as_page, spare))))

    map_marks: Dict[str, int] = {}

    def map_body(ctx, spare_page, b, c):
        mapping = Mapping(
            va=0x0010_0000, readable=True, writable=True, executable=False
        ).encode()
        start = ctx.monitor.state.cycles
        ctx.map_data(spare_page, mapping)
        map_marks["mapdata"] = ctx.monitor.state.cycles - start
        return 0
        yield

    map_enclave = (
        EnclaveBuilder(kernel)
        .add_spares(1)
        .set_native_program(NativeEnclaveProgram("report-map", map_body))
        .build()
    )
    map_enclave.call(map_enclave.spares[0])
    rows.append(Row("MapData", 5826, map_marks["mapdata"]))
    return rows


def figure5_rows(max_kb: int = 64) -> List[Row]:
    """Regenerate a truncated Figure 5 series (enclave ms vs native ms)."""
    monitor = KomodoMonitor(secure_pages=192, insecure_size=0x200000, step_budget=10**9)
    kernel = OSKernel(monitor)
    enclave_notary = NotaryEnclave(kernel, max_doc_bytes=max_kb * 1024)
    enclave_notary.init()
    native_notary = NativeNotary()
    native_notary.init()
    rows = []
    size_kb = 4
    while size_kb <= max_kb:
        document = bytes((i * 31) & 0xFF for i in range(size_kb * 1024))
        start = monitor.state.cycles
        enclave_notary.notarize(document)
        enclave_ms = (monitor.state.cycles - start) / CPU_MHZ / 1000
        start = native_notary.cycles
        native_notary.notarize(document)
        native_ms = (native_notary.cycles - start) / CPU_MHZ / 1000
        rows.append(Row(f"notary {size_kb} kB (native vs enclave, ms*100)",
                        native_ms * 100, enclave_ms * 100))
        size_kb *= 2
    return rows


def main() -> None:
    print("Komodo reproduction — experiment report")
    print()
    print("Table 3: microbenchmarks (cycles)")
    print(f"  {'operation':36} {'paper':>10} {'measured':>10}  ratio")
    for row in table3_rows():
        print(row.render())
    print()
    print("Figure 5: notary (values are ms x 100; 'paper' = native baseline)")
    for row in figure5_rows():
        print(row.render())
    print()
    print("Table 2: line counts")
    from repro.tools.linecount import component_linecounts, format_table

    root = pathlib.Path(__file__).resolve().parents[3]
    print(format_table(component_linecounts(root)))


if __name__ == "__main__":
    main()
