"""Enclave-cloud chaos campaign CLI.

Kills workers mid-request at swept injection points and gates on the
absolute contract (see ``repro.cloud.chaos``): every request terminates
bit-exact against the pure in-process golden or with a typed retryable
error, no hangs, no partial state, clean post-campaign audits.

Usage::

    python -m repro.tools.cloudcamp                     # run, print a table
    python -m repro.tools.cloudcamp --check             # CI gate (exit 1)
    python -m repro.tools.cloudcamp --kill-stride 4     # denser kill sweep
    python -m repro.tools.cloudcamp --kinds seal,sign   # restrict kinds
    python -m repro.tools.cloudcamp --workers 4

``--kill-stride N`` samples every N-th machine-visible monitor
operation as a kill point (plus the on-dequeue and after-work-before-
reply extremes, always included).  Smaller is denser and slower.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cloud.chaos import ChaosCampaign, ChaosReport
from repro.util.watchdog import TrialTimeout, time_limit


def _print_report(report: ChaosReport) -> None:
    print(
        f"engine={report.engine} workers={report.workers} "
        f"kill-stride={report.kill_stride} seed={report.seed:#x}"
    )
    print(f"{'kind':<10} {'ops':>5} {'kill points':>12}")
    for kind, ops in report.ops_per_kind.items():
        print(f"{kind:<10} {ops:>5} {report.kill_points[kind]:>12}")
    print(
        f"requests: {report.submitted} submitted, {report.completed} "
        f"completed, {report.ok} bit-exact, "
        f"{report.retryable_failures} typed-retryable, {report.hangs} hangs"
    )
    print(
        f"pool:     {report.crashes} crashes, {report.respawns} respawns, "
        f"{report.retries} retries, {report.degraded} degraded, "
        f"{report.worker_audits} clean worker audits"
    )
    for violation in report.violations[:20]:
        print(f"  FAIL: {violation}")
    if len(report.violations) > 20:
        print(f"  ... and {len(report.violations) - 20} more")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.cloudcamp",
        description="kill enclave-cloud workers mid-request; gate on exactness",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 on any violation or hang (CI gate)",
    )
    parser.add_argument("--kill-stride", type=int, default=7)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--engine", choices=("fast", "reference", "turbo"), default="turbo"
    )
    parser.add_argument(
        "--kinds",
        default=None,
        help="comma-separated request kinds (default: all)",
    )
    parser.add_argument("--seed", type=lambda s: int(s, 0), default=0xCA05)
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock per-dispatch timeout; a wedged worker is killed "
        "and the request retried",
    )
    parser.add_argument(
        "--attempts",
        type=int,
        default=4,
        help="max dispatch attempts before a typed worker_crashed failure",
    )
    parser.add_argument(
        "--global-timeout",
        type=float,
        default=180.0,
        metavar="SECONDS",
        help="hang detector: any request still pending after this fails "
        "the campaign",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock watchdog over the whole campaign (outer CI "
        "safety net; --global-timeout bounds in-flight requests, this "
        "bounds everything including setup and teardown)",
    )
    args = parser.parse_args(argv)

    kinds = None
    if args.kinds:
        kinds = [token.strip() for token in args.kinds.split(",") if token.strip()]

    campaign = ChaosCampaign(
        kinds=kinds,
        workers=args.workers,
        engine=args.engine,
        kill_stride=args.kill_stride,
        seed=args.seed,
        request_timeout=args.request_timeout,
        max_attempts=args.attempts,
        global_timeout=args.global_timeout,
    )
    try:
        with time_limit(args.timeout, label="cloudcamp"):
            report = campaign.run()
    except TrialTimeout as timeout:
        print(f"cloudcamp: {timeout}")
        return 1
    _print_report(report)
    if report.passed:
        print(
            "cloudcamp: every request terminated bit-exact or typed-retryable; "
            "all audits clean"
        )
        return 0
    print(f"cloudcamp: {len(report.violations)} violation(s), {report.hangs} hang(s)")
    return 1 if args.check or not report.passed else 0


if __name__ == "__main__":
    sys.exit(main())
