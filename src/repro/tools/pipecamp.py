"""Pipeline chaos campaign CLI.

Sweeps stage-kill points across every machine-visible monitor operation
of composite multi-enclave pipelines (``repro.pipeline``) and gates on
the crash-anywhere contract: every trial terminates bit-exact against
the fault-free golden digest or with a typed retryable error — never a
hang, never partial cross-enclave state, never a counter value issued
twice.

Usage::

    python -m repro.tools.pipecamp                    # sweep, print a table
    python -m repro.tools.pipecamp --check            # CI gate (exit 1)
    python -m repro.tools.pipecamp --stride 1         # exhaustive sweep
    python -m repro.tools.pipecamp --pipelines counter-notary
    python -m repro.tools.pipecamp --engine all       # + tri-engine golden leg

``--engine all`` runs the sweep on the turbo engine and adds a bounded
differential leg: the golden run must produce the identical logical
digest on all three execution engines.

``--jobs N`` shards each pipeline's kill points across N forked workers
(``repro.faults.parallel``); the merged report and printed digest are
byte-identical to the serial run's.  ``--verify-serial`` re-runs the
sweep serially in-process and fails on any digest divergence.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.faults.parallel import report_digest, run_pipeline_sharded
from repro.pipeline.campaign import (
    DEFAULT_SEED,
    PipelineReport,
    run_campaign,
    tri_engine_digests,
)
from repro.pipeline.pipelines import PIPELINE_KINDS
from repro.util.watchdog import TrialTimeout, time_limit

_ENGINES = ("fast", "reference", "turbo")


def _print_report(report: PipelineReport) -> None:
    print(
        f"{report.pipeline:<18} engine={report.engine} ops={report.ops} "
        f"kill-points={report.kill_points} bit-exact={report.bit_exact} "
        f"typed-retryable={report.retryable}"
    )
    for violation in report.violations[:20]:
        print(f"  FAIL: {violation}")
    if len(report.violations) > 20:
        print(f"  ... and {len(report.violations) - 20} more")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.pipecamp",
        description="crash composite enclave pipelines at every monitor "
        "op; gate on bit-exact-or-typed-retryable termination",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 on any violation or hang (CI gate)",
    )
    parser.add_argument(
        "--stride",
        type=int,
        default=7,
        help="sample every N-th monitor op as a kill point (1 = exhaustive)",
    )
    parser.add_argument(
        "--pipelines",
        default=None,
        help=f"comma-separated pipeline kinds (default: all: "
        f"{','.join(sorted(PIPELINE_KINDS))})",
    )
    parser.add_argument(
        "--engine",
        choices=_ENGINES + ("all",),
        default="turbo",
        help="execution engine for the sweep; 'all' adds the tri-engine "
        "golden differential leg",
    )
    parser.add_argument("--seed", type=lambda s: int(s, 0), default=DEFAULT_SEED)
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock watchdog over the whole campaign (CI safety net)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard kill points across N forked workers; the merged "
        "report is byte-identical to the serial run (1 = serial)",
    )
    parser.add_argument(
        "--verify-serial",
        action="store_true",
        help="also run each sweep serially and fail unless the report "
        "digests match the --jobs run exactly",
    )
    args = parser.parse_args(argv)
    if args.stride < 1:
        parser.error("--stride must be at least 1")
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")

    kinds = sorted(PIPELINE_KINDS)
    if args.pipelines:
        kinds = [token.strip() for token in args.pipelines.split(",") if token.strip()]
        for kind in kinds:
            if kind not in PIPELINE_KINDS:
                parser.error(
                    f"unknown pipeline {kind!r} (expected one of "
                    f"{sorted(PIPELINE_KINDS)})"
                )

    sweep_engine = "turbo" if args.engine == "all" else args.engine
    failures = 0
    try:
        with time_limit(args.timeout, label="pipecamp"):
            for kind in kinds:
                if args.jobs > 1:
                    report = run_pipeline_sharded(
                        kind,
                        args.jobs,
                        engine=sweep_engine,
                        seed=args.seed,
                        stride=args.stride,
                    )
                else:
                    report = run_campaign(
                        kind, engine=sweep_engine, seed=args.seed, stride=args.stride
                    )
                _print_report(report)
                print(f"{kind:<18} report digest: {report_digest(report)}")
                failures += len(report.violations)
                if args.verify_serial:
                    serial = run_campaign(
                        kind, engine=sweep_engine, seed=args.seed, stride=args.stride
                    )
                    jobs_digest = report_digest(report)
                    serial_digest = report_digest(serial)
                    verdict = "OK" if jobs_digest == serial_digest else "MISMATCH"
                    print(
                        f"{kind:<18} verify-serial: jobs={args.jobs} "
                        f"{jobs_digest[:16]} vs serial {serial_digest[:16]}: "
                        f"{verdict}"
                    )
                    if jobs_digest != serial_digest:
                        failures += 1
            if args.engine == "all":
                for kind in kinds:
                    digests = tri_engine_digests(kind, _ENGINES, seed=args.seed)
                    agree = len(set(digests.values())) == 1
                    print(
                        f"{kind:<18} tri-engine golden: "
                        f"{'agree' if agree else 'SPLIT ' + repr(digests)}"
                    )
                    if not agree:
                        failures += 1
    except TrialTimeout as timeout:
        print(f"pipecamp: {timeout}")
        return 1
    if failures == 0:
        print(
            "pipecamp: every trial terminated bit-exact or typed-retryable; "
            "invariants and audits clean"
        )
        return 0
    print(f"pipecamp: {failures} violation(s)")
    return 1 if args.check else 0


if __name__ == "__main__":
    sys.exit(main())
