"""Enclave-cloud throughput/latency benchmark + CI gate.

Runs a deterministic mixed workload (every request kind, fixed seeded
payloads) through a live :class:`CloudService` for each (engine ×
worker-count) configuration, and records req/s plus p50/p99 request
latency into ``BENCH_cloud.json``::

    python -m repro.tools.cloudbench                 # run + write JSON
    python -m repro.tools.cloudbench --check         # CI gate on the JSON
    python -m repro.tools.cloudbench --summary-md    # markdown table

The gate (``--check``) splits what must be exact from what merely must
be sane:

* **exact** — the committed ``results_digest`` is recomputed from pure
  in-process goldens on every engine in the file; responses are
  engine-, worker- and scheduling-invariant data, so any drift is a
  semantic regression, not noise;
* **structural** — wall-clock numbers are machine-dependent, so they
  are only validated for shape: positive, p50 <= p99, the matrix
  covers at least two worker counts and two engines, and within each
  engine req/s is monotone-or-flat in the worker count (with a
  tolerance keyed to the recording host's ``cpu_cores`` — on a
  single-core box extra workers only add supervision overhead, so the
  flatness tolerance is much looser there).

Each configuration runs ``--repeats`` times and keeps the best run
(the digest must agree across repeats): the first run of a process is
cold (template build, turbo block compilation) and scheduler noise on
small boxes is large, so best-of-N is what makes the committed numbers
reproducible.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pathlib
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.cloud.api import REQUEST_KINDS, CloudRequest, results_digest
from repro.cloud.chaos import base_payload
from repro.cloud.service import CloudService
from repro.cloud.worker import get_template
from repro.util.watchdog import TrialTimeout, time_limit

BENCH_VERSION = 2
DEFAULT_PATH = pathlib.Path(__file__).resolve().parents[3] / "BENCH_cloud.json"
DEFAULT_ENGINES = ("turbo", "fast")
DEFAULT_WORKER_COUNTS = (1, 2)
DEFAULT_PER_KIND = 4
DEFAULT_REPEATS = 3
#: Scaling floors for the monotone-or-flat worker check: adding workers
#: must not *lose* throughput beyond noise.  On a multi-core host the
#: tolerance is tight; on a single core, extra workers genuinely cost
#: supervision overhead and the run-to-run noise dominates.
SCALING_FLOOR_MULTICORE = 0.92
SCALING_FLOOR_SINGLE_CORE = 0.65


def workload(seed: int, per_kind: int) -> List[CloudRequest]:
    """The fixed request mix every configuration serves."""
    requests = []
    for kind in REQUEST_KINDS:
        for nonce in range(per_kind):
            requests.append(
                CloudRequest(kind=kind, payload=base_payload(kind, seed), nonce=nonce)
            )
    return requests


def _percentile(values: Sequence[float], fraction: float) -> float:
    ranked = sorted(values)
    index = min(len(ranked) - 1, max(0, round(fraction * (len(ranked) - 1))))
    return ranked[index]


async def _bench_config(
    engine: str, workers: int, requests: List[CloudRequest]
) -> Dict:
    service = CloudService(workers=workers, engine=engine)
    await service.start()
    try:
        start = time.monotonic()
        responses = await asyncio.gather(
            *(service.submit(request) for request in requests)
        )
        wall = time.monotonic() - start
    finally:
        await service.close()
    failed = [r for r in responses if not r.ok]
    if failed:
        raise RuntimeError(
            f"bench run had {len(failed)} failed requests "
            f"(first: {failed[0].error_code})"
        )
    latencies = [r.elapsed for r in responses]
    return {
        "engine": engine,
        "workers": workers,
        "requests": len(requests),
        "wall_s": round(wall, 4),
        "req_per_s": round(len(requests) / wall, 2),
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "digest": results_digest(responses),
    }


def _bench_best(
    engine: str, workers: int, requests: List[CloudRequest], repeats: int
) -> Dict:
    """Best-of-``repeats`` for one configuration; digests must agree."""
    runs = [
        asyncio.run(_bench_config(engine, workers, requests))
        for _ in range(repeats)
    ]
    digests = {run["digest"] for run in runs}
    if len(digests) != 1:
        raise RuntimeError(
            f"{engine}/w{workers}: repeats disagree on results: {sorted(digests)}"
        )
    return max(runs, key=lambda run: run["req_per_s"])


def run_bench(
    seed: int,
    per_kind: int,
    engines: Sequence[str],
    worker_counts: Sequence[int],
    repeats: int = DEFAULT_REPEATS,
) -> Dict:
    requests = workload(seed, per_kind)
    configs = []
    for engine in engines:
        for workers in worker_counts:
            configs.append(_bench_best(engine, workers, requests, repeats))
    digests = {config.pop("digest") for config in configs}
    if len(digests) != 1:
        raise RuntimeError(
            f"bench configurations disagree on results: {sorted(digests)}"
        )
    return {
        "version": BENCH_VERSION,
        "seed": seed,
        "per_kind": per_kind,
        "repeats": repeats,
        "cpu_cores": os.cpu_count() or 1,
        "kinds": list(REQUEST_KINDS),
        "results_digest": digests.pop(),
        "configs": configs,
    }


def golden_digest(seed: int, per_kind: int, engine: str) -> str:
    """The workload's results digest from pure in-process execution."""
    template = get_template(
        {"engine": engine, "seed": 0xC10D, "secure_pages": 48, "step_budget": 2_000_000}
    )
    return results_digest(
        template.expected(request) for request in workload(seed, per_kind)
    )


def check_bench(data: Dict) -> List[str]:
    """The CI gate: exact digests, sane structure.  Returns problems."""
    problems = []
    if data.get("version") != BENCH_VERSION:
        return [f"unsupported bench version {data.get('version')!r}"]
    configs = data.get("configs", [])
    engines = {config["engine"] for config in configs}
    worker_counts = {config["workers"] for config in configs}
    if len(engines) < 2:
        problems.append(f"need >=2 engines in the matrix, found {sorted(engines)}")
    if len(worker_counts) < 2:
        problems.append(
            f"need >=2 worker counts in the matrix, found {sorted(worker_counts)}"
        )
    for config in configs:
        label = f"{config['engine']}/w{config['workers']}"
        for field in ("wall_s", "req_per_s", "p50_ms", "p99_ms"):
            if not config.get(field) or config[field] <= 0:
                problems.append(f"{label}: non-positive {field}")
        if config.get("p50_ms", 0) > config.get("p99_ms", 0):
            problems.append(f"{label}: p50 exceeds p99")
    # Worker scaling must be monotone-or-flat per engine: more workers
    # never lose throughput beyond noise.  The floor is keyed to the
    # *recording* host's core count — on one core, extra workers cost
    # supervision overhead and noise dominates.
    cores = data.get("cpu_cores", 1)
    floor = SCALING_FLOOR_MULTICORE if cores > 1 else SCALING_FLOOR_SINGLE_CORE
    by_engine: Dict[str, List[Dict]] = {}
    for config in configs:
        by_engine.setdefault(config["engine"], []).append(config)
    for engine, rows in sorted(by_engine.items()):
        rows.sort(key=lambda config: config["workers"])
        for prev, nxt in zip(rows, rows[1:]):
            if nxt["req_per_s"] < prev["req_per_s"] * floor:
                problems.append(
                    f"{engine}: req/s regresses with workers: "
                    f"w{prev['workers']} {prev['req_per_s']} -> "
                    f"w{nxt['workers']} {nxt['req_per_s']} "
                    f"(floor {floor:.2f}x on a {cores}-core host)"
                )
    for engine in sorted(engines):
        recomputed = golden_digest(data["seed"], data["per_kind"], engine)
        if recomputed != data["results_digest"]:
            problems.append(
                f"results_digest mismatch on engine {engine}: committed "
                f"{data['results_digest'][:16]}.., recomputed {recomputed[:16]}.."
            )
    return problems


def _table(data: Dict, markdown: bool) -> str:
    header = ("engine", "workers", "req/s", "p50 ms", "p99 ms", "wall s")
    rows = [
        (
            config["engine"],
            str(config["workers"]),
            f"{config['req_per_s']:.1f}",
            f"{config['p50_ms']:.2f}",
            f"{config['p99_ms']:.2f}",
            f"{config['wall_s']:.2f}",
        )
        for config in data["configs"]
    ]
    if markdown:
        lines = [
            "| " + " | ".join(header) + " |",
            "|" + "|".join("---" for _ in header) + "|",
        ]
        lines.extend("| " + " | ".join(row) + " |" for row in rows)
        return "\n".join(lines)
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    lines = [
        "  ".join(header[i].ljust(widths[i]) for i in range(len(header)))
    ]
    lines.extend(
        "  ".join(row[i].rjust(widths[i]) for i in range(len(header)))
        for row in rows
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.cloudbench",
        description="enclave-cloud req/s and latency benchmark",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the committed JSON instead of re-running the bench",
    )
    parser.add_argument(
        "--summary-md",
        action="store_true",
        help="print a markdown table from the JSON (for CI job summaries)",
    )
    parser.add_argument("--out", default=str(DEFAULT_PATH), metavar="PATH")
    parser.add_argument("--seed", type=lambda s: int(s, 0), default=0xBE7C)
    parser.add_argument("--per-kind", type=int, default=DEFAULT_PER_KIND)
    parser.add_argument(
        "--repeats",
        type=int,
        default=DEFAULT_REPEATS,
        metavar="N",
        help="run each configuration N times, keep the best run "
        "(digests must agree; de-noises cold starts on small hosts)",
    )
    parser.add_argument(
        "--engines", default=",".join(DEFAULT_ENGINES), metavar="E1,E2"
    )
    parser.add_argument(
        "--workers",
        default=",".join(str(w) for w in DEFAULT_WORKER_COUNTS),
        metavar="N1,N2",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock watchdog over the whole run (CI safety net)",
    )
    args = parser.parse_args(argv)
    path = pathlib.Path(args.out)

    try:
        with time_limit(args.timeout, label="cloudbench"):
            return _run(args, path)
    except TrialTimeout as timeout:
        print(f"cloudbench: {timeout}")
        return 1


def _run(args, path: pathlib.Path) -> int:
    if args.check or args.summary_md:
        if not path.is_file():
            print(f"cloudbench: {path} missing; run the bench and commit it")
            return 1
        with open(path) as handle:
            data = json.load(handle)
        if args.summary_md:
            print("### Enclave cloud: req/s and latency\n")
            print(_table(data, markdown=True))
            print(f"\nresults digest: `{data['results_digest'][:16]}..`")
        if args.check:
            problems = check_bench(data)
            if problems:
                for problem in problems:
                    print(f"cloudbench: FAIL: {problem}")
                return 1
            print(
                f"cloudbench: {path.name} OK — digest exact on all engines, "
                f"{len(data['configs'])} configurations structurally sane"
            )
        return 0

    engines = [token.strip() for token in args.engines.split(",") if token.strip()]
    worker_counts = [
        int(token) for token in args.workers.split(",") if token.strip()
    ]
    if args.repeats < 1:
        raise SystemExit("cloudbench: --repeats must be at least 1")
    data = run_bench(
        args.seed, args.per_kind, engines, worker_counts, repeats=args.repeats
    )
    with open(path, "w") as handle:
        json.dump(data, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(_table(data, markdown=False))
    print(f"cloudbench: wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
