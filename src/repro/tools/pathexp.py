"""Symbolic SMC-path exploration CLI: census, gating, witness corpus.

Default mode explores every SMC driver and prints the feasible-path
census (path classes per outcome, per monitor call)::

    python -m repro.tools.pathexp

``--check`` is the CI gate: the census must match the pinned baseline
(``repro/analysis/symbex/baseline.json``) — any drift in the number or
shape of feasible spec paths fails the run until the baseline is
regenerated deliberately with ``--update-baseline`` — and every path's
concrete witness is replayed on the selected engines (default: turbo,
the fastest bit-identical tier; ``--engine all`` runs reference, fast,
and turbo and additionally asserts the three agree bit-for-bit)::

    python -m repro.tools.pathexp --check --engine all

``--emit-corpus DIR`` writes the witness corpus as ``witnesses.json``
plus one lintable program image per distinct enclave program under
``images/`` (consumable by ``python -m repro.tools.lint DIR/images``),
feeding the static-analysis corpus and the generated regression suite.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional, Sequence

from repro.analysis.symbex.explore import driver_names, explore_smc, get_driver
from repro.analysis.symbex.replay import DEFAULT_ENGINES, ReplayHarness
from repro.analysis.symbex.scenario import PROG_VA, default_program, svc_probe_program
from repro.analysis.symbex.witness import build_witnesses, save_corpus

BASELINE_PATH = (
    pathlib.Path(__file__).resolve().parents[1] / "analysis" / "symbex" / "baseline.json"
)
BASELINE_VERSION = 1


def load_baseline(path: pathlib.Path = BASELINE_PATH) -> Optional[Dict]:
    if not path.is_file():
        return None
    with open(path) as handle:
        data = json.load(handle)
    if data.get("version") != BASELINE_VERSION:
        raise SystemExit(f"pathexp: unsupported baseline version in {path}")
    return data["census"]

def save_baseline(census: Dict, path: pathlib.Path = BASELINE_PATH) -> None:
    with open(path, "w") as handle:
        json.dump(
            {"version": BASELINE_VERSION, "census": census},
            handle,
            indent=1,
            sort_keys=True,
        )
        handle.write("\n")


def census_diff(baseline: Dict, census: Dict) -> List[str]:
    """Human-readable census drift, empty when identical."""
    lines = []
    for name in sorted(set(baseline) | set(census)):
        old, new = baseline.get(name), census.get(name)
        if old == new:
            continue
        if old is None:
            lines.append(f"{name}: new driver ({new['paths']} paths) not in baseline")
        elif new is None:
            lines.append(f"{name}: in baseline but not explored")
        else:
            lines.append(
                f"{name}: paths {old['paths']} -> {new['paths']}, "
                f"errors {old['errors']} -> {new['errors']}"
            )
    return lines


def _print_census(census: Dict) -> None:
    width = max(len(name) for name in census) + 2
    print(f"{'SMC':{width}} {'paths':>6} {'leaves':>7}  outcomes")
    for name, entry in census.items():
        outcomes = ", ".join(f"{k}:{v}" for k, v in entry["errors"].items())
        print(f"{name:{width}} {entry['paths']:>6} {entry['leaves']:>7}  {outcomes}")
    print(
        f"{'total':{width}} {sum(e['paths'] for e in census.values()):>6} "
        f"{sum(e['leaves'] for e in census.values()):>7}"
    )


def emit_corpus(directory: pathlib.Path, witnesses, census: Dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    save_corpus(str(directory / "witnesses.json"), witnesses, census)
    images = directory / "images"
    images.mkdir(exist_ok=True)
    programs = {"scenario_default": default_program()}
    for witness in witnesses:
        if witness.kind == "svc":
            label = f"{witness.smc}_{'_'.join(str(a) for a in witness.args)}"
            programs.setdefault(label, svc_probe_program(witness.callno, witness.args))
    for label, words in sorted(programs.items()):
        image = {
            "name": label,
            "base_va": PROG_VA,
            "entry_va": PROG_VA,
            "words": list(words),
        }
        with open(images / f"{label}.json", "w") as handle:
            json.dump(image, handle, indent=1, sort_keys=True)
            handle.write("\n")
    print(
        f"pathexp: wrote {len(witnesses)} witnesses and "
        f"{len(programs)} program images to {directory}"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.pathexp",
        description="symbolically enumerate and replay every SMC spec path",
    )
    parser.add_argument(
        "--smc",
        action="append",
        default=[],
        metavar="NAME",
        help="restrict to one monitor call (repeatable; see --list)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate mode: census must match the baseline and every witness "
        "must replay against the spec on the selected engines",
    )
    parser.add_argument(
        "--engine",
        default="turbo",
        choices=("all",) + DEFAULT_ENGINES + ("none",),
        help="engines for witness replay under --check (default: turbo, "
        "the fastest bit-identical tier; 'all' replays on every engine, "
        "'none' skips replay and only gates the census)",
    )
    parser.add_argument(
        "--emit-corpus",
        metavar="DIR",
        help="write witnesses.json + lintable program images to DIR",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=f"rewrite the census baseline ({BASELINE_PATH.name})",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock watchdog per witness replay: a wedged replay "
        "fails that witness with a clear error instead of hanging CI",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard witness replay across N forked workers "
        "(repro.faults.parallel); the failure list is identical to the "
        "serial harness's (1 = serial)",
    )
    parser.add_argument("--list", action="store_true", help="list SMC drivers")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")

    if args.list:
        for name in driver_names():
            driver = get_driver(name)
            free = ", ".join(driver.free) if driver.free else "-"
            print(f"{name:20} kind={driver.kind:6} free dims: {free}")
        return 0

    names = args.smc or list(driver_names())
    unknown = [name for name in names if name not in driver_names()]
    if unknown:
        raise SystemExit(f"pathexp: unknown SMC driver(s) {unknown}; see --list")

    results = {name: explore_smc(name) for name in names}
    census = {name: result.census() for name, result in results.items()}
    _print_census(census)

    if args.update_baseline:
        if args.smc:
            raise SystemExit("pathexp: --update-baseline requires the full census")
        save_baseline(census)
        print(f"pathexp: baseline updated ({BASELINE_PATH})")

    witnesses = []
    for name in names:
        witnesses.extend(build_witnesses(results[name]))
    print(f"pathexp: witness corpus: {len(witnesses)} witnesses / {len(names)} SMCs")

    if args.emit_corpus:
        emit_corpus(pathlib.Path(args.emit_corpus), witnesses, census)

    failed = False
    if args.check and not args.update_baseline:
        baseline = load_baseline()
        if baseline is None:
            print("pathexp: FAIL: no baseline; run --update-baseline and commit it")
            failed = True
        else:
            subset = {name: baseline[name] for name in names if name in baseline}
            drift = census_diff(subset if args.smc else baseline, census)
            if drift:
                print("pathexp: FAIL: census drifted from baseline:")
                for line in drift:
                    print("  " + line)
                print("  (if intended, rerun with --update-baseline and commit)")
                failed = True
            else:
                print("pathexp: census matches baseline")

    if args.check and args.engine != "none":
        engines = DEFAULT_ENGINES if args.engine == "all" else (args.engine,)
        if args.jobs > 1:
            from repro.faults.parallel import check_witnesses_sharded

            failures = check_witnesses_sharded(
                witnesses, args.jobs, engines=engines, trial_timeout=args.timeout
            )
        else:
            harness = ReplayHarness(engines=engines)
            failures = harness.check(witnesses, trial_timeout=args.timeout)
        if failures:
            print(f"pathexp: FAIL: {len(failures)} witness replay failure(s):")
            for failure in failures[:25]:
                print("  " + str(failure))
            if len(failures) > 25:
                print(f"  ... and {len(failures) - 25} more")
            failed = True
        else:
            print(
                f"pathexp: {len(witnesses)} witnesses replayed cleanly on "
                f"{', '.join(engines)}"
            )

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
