"""Bit-flip campaign CLI.

Runs the exhaustive single-bit-flip campaign against the monitor's
memory-integrity engine (see ``repro.faults.bitflip``): at each
quiescent lifecycle step, flip one bit of one monitor-critical word —
PageDB entries, integrity-tag arrays, enclave metadata, enclave
code/data — then let the OS drive the lifecycle to completion.  Every
trial must end benign, repaired, or quarantined-with-containment; a
wrong enclave result or a final state differing from the unflipped
golden run fails the campaign.

Usage::

    python -m repro.tools.bitflip                    # run, print a table
    python -m repro.tools.bitflip --check            # CI gate (exit 1 on violation)
    python -m repro.tools.bitflip --engine both      # fast/reference differential
    python -m repro.tools.bitflip --engine all       # fast/reference/turbo differential
    python -m repro.tools.bitflip --targets pagedb,itag
    python -m repro.tools.bitflip --stride 97        # every 97th (site, bit) pair

``--stride N`` samples every N-th (site, bit) pair for a bounded smoke
campaign; 1 is exhaustive (tens of thousands of trials — minutes, not
seconds).  Every run is deterministic in ``--seed``.  Trials are
snapshot-accelerated by default; ``--no-snapshot`` forces the original
per-trial deep-copy path (same reports, slower).

``--jobs N`` shards the (site, bit) sweep across N forked workers
(``repro.faults.parallel``); the merged report and printed digest are
byte-identical to the serial run's.  ``--verify-serial`` re-runs
serially in-process and fails unless the digests agree.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro.faults.bitflip import (
    TARGET_FAMILIES,
    BitflipCampaign,
    BitflipReport,
    run_differential,
)
from repro.faults.parallel import (
    report_digest,
    run_bitflip_differential_sharded,
    run_bitflip_sharded,
)


def _print_report(report: BitflipReport) -> None:
    print(f"engine={report.engine} seed={report.seed:#x} stride={report.stride}")
    header = (
        f"{'step':<12} {'sites':>6} {'trials':>7} {'benign':>7} "
        f"{'repaired':>9} {'quarantined':>12} {'violations':>11}"
    )
    print(header)
    for step in report.steps:
        print(
            f"{step.name:<12} {step.sites:>6} {step.trials:>7} {step.benign:>7} "
            f"{step.repaired:>9} {step.quarantined:>12} {len(step.violations):>11}"
        )
    counts = report.outcome_counts
    print(
        f"{'total':<12} {'':>6} {report.total_trials:>7} {counts['benign']:>7} "
        f"{counts['repaired']:>9} {counts['quarantined']:>12} "
        f"{len(report.violations):>11}"
    )


def _print_violations(violations: List[str], limit: int = 20) -> None:
    for violation in violations[:limit]:
        print(f"  FAIL: {violation}")
    if len(violations) > limit:
        print(f"  ... and {len(violations) - limit} more")


def _run(args, targets, jobs: int) -> Tuple[List[BitflipReport], List[str]]:
    """Run the requested campaign(s); ``(reports, engine mismatches)``."""
    if args.engine in ("both", "all"):
        engines = ("fast", "reference") if args.engine == "both" else (
            "fast", "reference", "turbo"
        )
        if jobs > 1:
            *reports, mismatches = run_bitflip_differential_sharded(
                jobs,
                seed=args.seed,
                targets=targets,
                stride=args.stride,
                secure_pages=args.secure_pages,
                engines=engines,
                use_snapshots=not args.no_snapshot,
                trial_timeout=args.timeout,
            )
        else:
            *reports, mismatches = run_differential(
                seed=args.seed,
                targets=targets,
                stride=args.stride,
                secure_pages=args.secure_pages,
                engines=engines,
                use_snapshots=not args.no_snapshot,
                trial_timeout=args.timeout,
            )
        return list(reports), mismatches
    if jobs > 1:
        report = run_bitflip_sharded(
            jobs,
            seed=args.seed,
            engine=args.engine,
            secure_pages=args.secure_pages,
            targets=targets,
            stride=args.stride,
            use_snapshots=not args.no_snapshot,
            trial_timeout=args.timeout,
        )
    else:
        report = BitflipCampaign(
            seed=args.seed,
            engine=args.engine,
            secure_pages=args.secure_pages,
            targets=targets,
            stride=args.stride,
            use_snapshots=not args.no_snapshot,
            trial_timeout=args.timeout,
        ).run()
    return [report], []


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.bitflip",
        description="memory-integrity bit-flip campaign",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 on any violation (CI gate)",
    )
    parser.add_argument("--seed", type=lambda s: int(s, 0), default=0xB17F11B)
    parser.add_argument(
        "--engine",
        choices=("fast", "reference", "turbo", "both", "all"),
        default="turbo",
        help="execution engine (default: turbo, the fastest bit-identical "
        "tier); 'both' = fast/reference differential, 'all' adds turbo",
    )
    parser.add_argument(
        "--no-snapshot",
        action="store_true",
        help="deep-copy monitor+kernel per trial instead of snapshot rewind",
    )
    parser.add_argument(
        "--targets",
        default=None,
        help=f"comma-separated flip-target families {TARGET_FAMILIES}",
    )
    parser.add_argument(
        "--stride",
        type=int,
        default=1,
        help="flip every N-th (site, bit) pair (1 = exhaustive)",
    )
    parser.add_argument("--secure-pages", type=int, default=16)
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock watchdog per trial: a wedged trial fails that "
        "trial with a recorded violation instead of hanging the run",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard (site, bit) trials across N forked workers; the "
        "merged report is byte-identical to the serial run (1 = serial)",
    )
    parser.add_argument(
        "--verify-serial",
        action="store_true",
        help="also run the campaign serially and fail unless the report "
        "digests match the --jobs run exactly",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")

    targets = None
    if args.targets:
        targets = [token.strip() for token in args.targets.split(",") if token.strip()]

    failures: List[str] = []
    reports, mismatches = _run(args, targets, args.jobs)
    for report in reports:
        _print_report(report)
        failures.extend(report.violations)
        print(f"report digest [{report.engine}]: {report_digest(report)}")
    if mismatches:
        print("engine differential mismatches:")
        _print_violations(mismatches)
    failures.extend(mismatches)

    if args.verify_serial:
        serial_reports, serial_mismatches = _run(args, targets, 1)
        for parallel_report, serial_report in zip(reports, serial_reports):
            jobs_digest = report_digest(parallel_report)
            serial_digest = report_digest(serial_report)
            verdict = "OK" if jobs_digest == serial_digest else "MISMATCH"
            print(
                f"verify-serial [{parallel_report.engine}]: jobs={args.jobs} "
                f"{jobs_digest[:16]} vs serial {serial_digest[:16]}: {verdict}"
            )
            if jobs_digest != serial_digest:
                failures.append(
                    f"--jobs {args.jobs} report diverged from serial "
                    f"({parallel_report.engine})"
                )
        if mismatches != serial_mismatches:
            failures.append("--jobs differential mismatches diverged from serial")

    if failures:
        _print_violations(failures)
        print(f"bitflip: {len(failures)} violation(s)")
        return 1
    print("bitflip: every injection was detected and contained (or provably benign)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
