"""SMC trace recording and replay.

Debugging and regression infrastructure: wrap a monitor so every SMC
(arguments, interrupt schedule, results, and the insecure-memory writes
that preceded it) is recorded into a serialisable trace.  A recorded
trace replays against a fresh monitor — deterministically, given the
same RNG seed — and the replay asserts identical results, which makes
traces *golden tests*: any behavioural change in the monitor shows up as
a replay divergence.

Traces serialise to plain JSON-compatible dicts so they can be stored
in a repository or attached to bug reports.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arm.modes import World
from repro.crypto.rng import HardwareRNG
from repro.monitor.errors import KomErr
from repro.monitor.komodo import KomodoMonitor


@dataclass
class TraceStep:
    """One recorded SMC with its preconditions and observed results."""

    callno: int
    args: List[int]
    insecure_writes: List[Tuple[int, int]] = field(default_factory=list)
    interrupt_after: Optional[int] = None
    err: int = 0
    value: int = 0


@dataclass
class Trace:
    """A full recorded session: platform configuration plus steps."""

    secure_pages: int
    rng_seed: int
    steps: List[TraceStep] = field(default_factory=list)

    def to_json(self) -> str:
        return json.dumps(
            {
                "secure_pages": self.secure_pages,
                "rng_seed": self.rng_seed,
                "steps": [asdict(step) for step in self.steps],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        data = json.loads(text)
        trace = cls(
            secure_pages=data["secure_pages"], rng_seed=data["rng_seed"]
        )
        for raw in data["steps"]:
            trace.steps.append(
                TraceStep(
                    callno=raw["callno"],
                    args=list(raw["args"]),
                    insecure_writes=[tuple(w) for w in raw["insecure_writes"]],
                    interrupt_after=raw["interrupt_after"],
                    err=raw["err"],
                    value=raw["value"],
                )
            )
        return trace


class TracingMonitor:
    """Records every SMC issued through it."""

    def __init__(self, secure_pages: int = 32, rng_seed: int = 0xC0FFEE):
        self.monitor = KomodoMonitor(
            secure_pages=secure_pages, rng=HardwareRNG(seed=rng_seed)
        )
        self.trace = Trace(secure_pages=secure_pages, rng_seed=rng_seed)
        self._pending_writes: List[Tuple[int, int]] = []
        self._pending_interrupt: Optional[int] = None

    @property
    def state(self):
        return self.monitor.state

    @property
    def pagedb(self):
        return self.monitor.pagedb

    def write_insecure(self, address: int, value: int) -> None:
        """A recorded normal-world store."""
        self.monitor.state.memory.checked_write(address, value, World.NORMAL)
        self._pending_writes.append((address, value))

    def schedule_interrupt(self, after_steps: int) -> None:
        self.monitor.schedule_interrupt(after_steps)
        self._pending_interrupt = after_steps

    def smc(self, callno: int, *args: int) -> Tuple[KomErr, int]:
        err, value = self.monitor.smc(callno, *args)
        self.trace.steps.append(
            TraceStep(
                callno=int(callno),
                args=[int(a) for a in args],
                insecure_writes=self._pending_writes,
                interrupt_after=self._pending_interrupt,
                err=int(err),
                value=value,
            )
        )
        self._pending_writes = []
        self._pending_interrupt = None
        return (err, value)


class ReplayDivergence(AssertionError):
    """A replayed trace produced different results than recorded."""


def replay(trace: Trace) -> KomodoMonitor:
    """Replay a trace on a fresh monitor, asserting recorded results.

    Returns the final monitor for further inspection.  Native-program
    enclaves cannot be replayed (their code is Python, not machine
    state); traces of ARM-enclave sessions replay exactly.
    """
    monitor = KomodoMonitor(
        secure_pages=trace.secure_pages, rng=HardwareRNG(seed=trace.rng_seed)
    )
    for index, step in enumerate(trace.steps):
        for address, value in step.insecure_writes:
            monitor.state.memory.checked_write(address, value, World.NORMAL)
        if step.interrupt_after is not None:
            monitor.schedule_interrupt(step.interrupt_after)
        err, value = monitor.smc(step.callno, *step.args)
        if int(err) != step.err or value != step.value:
            raise ReplayDivergence(
                f"step {index} (SMC {step.callno}): recorded "
                f"({step.err}, {step.value:#x}), replayed ({int(err)}, {value:#x})"
            )
    return monitor
