"""Table 2 reproduction: line counts per component.

The paper's Table 2 breaks Komodo's sources into components (ARM model,
Dafny libraries, SHA, Komodo common, SMC handler, SVC handler, other
exceptions, noninterference, assembly printer) and reports specification,
implementation, and proof lines for each.

This reproduction has the same layering under different technology:
Dafny specifications became the executable spec + security definitions
("spec" lines), Vale assembly became the Python monitor and machine
execution paths ("impl" lines), and the proofs became refinement and
invariant *checking* plus the test suite ("check" lines — reported in
place of proof lines, since this artifact checks rather than proves).

The mapping from files to paper components is explicit below, so the
bench output can be read next to the paper's table.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


@dataclass
class ComponentCount:
    """Line counts for one paper component."""

    name: str
    spec: int = 0
    impl: int = 0
    check: int = 0

    @property
    def total(self) -> int:
        return self.spec + self.impl + self.check


#: Paper component -> (spec sources, impl sources, check sources).
#: Paths are repo-relative prefixes; a file matches the longest prefix.
COMPONENT_MAP: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[str, ...]]] = {
    "ARM model": (
        ("src/repro/arm/modes.py", "src/repro/arm/registers.py"),
        (
            "src/repro/arm/cpu.py",
            "src/repro/arm/instructions.py",
            "src/repro/arm/machine.py",
            "src/repro/arm/memory.py",
            "src/repro/arm/pagetable.py",
            "src/repro/arm/tlb.py",
            "src/repro/arm/costs.py",
        ),
        ("tests/arm/",),
    ),
    "Libraries": (
        ("src/repro/arm/bits.py",),
        ("src/repro/arm/assembler.py", "src/repro/tools/"),
        ("tests/test_bits.py", "tests/test_assembler.py"),
    ),
    "SHA-256, SHA-HMAC": (
        (),
        ("src/repro/crypto/",),
        ("tests/crypto/",),
    ),
    "Komodo common": (
        ("src/repro/spec/pagedb.py", "src/repro/monitor/layout.py"),
        (
            "src/repro/monitor/pagedb.py",
            "src/repro/monitor/komodo.py",
            "src/repro/monitor/errors.py",
            "src/repro/monitor/measurement.py",
            "src/repro/monitor/attestation.py",
        ),
        ("src/repro/spec/invariants.py", "tests/monitor/test_pagedb.py"),
    ),
    "SMC handler": (
        ("src/repro/spec/smc_spec.py",),
        ("src/repro/monitor/smc.py",),
        ("src/repro/verification/", "tests/monitor/test_smc.py"),
    ),
    "SVC handler": (
        ("src/repro/spec/svc_spec.py",),
        ("src/repro/monitor/svc.py",),
        ("tests/monitor/test_svc.py",),
    ),
    "Other exceptions": (
        (),
        ("src/repro/monitor/enclave_exec.py",),
        ("tests/monitor/test_enclave_exec.py",),
    ),
    "Noninterference": (
        ("src/repro/security/",),
        (),
        ("tests/security/",),
    ),
    "Loader/OS (printer)": (
        (),
        ("src/repro/sdk/", "src/repro/osmodel/", "src/repro/apps/"),
        ("tests/sdk/", "tests/osmodel/", "tests/apps/"),
    ),
}

#: Paper Table 2 values (spec, impl, proof) per component, for comparison.
PAPER_TABLE2: Dict[str, Tuple[int, int, int]] = {
    "ARM model": (1174, 112, 985),
    "Libraries": (588, 806, 0),
    "SHA-256, SHA-HMAC": (250, 415, 3200),
    "Komodo common": (775, 358, 3078),
    "SMC handler": (591, 1082, 4493),
    "SVC handler": (204, 612, 2509),
    "Other exceptions": (39, 131, 940),
    "Noninterference": (175, 0, 2644),
    "Loader/OS (printer)": (650, 0, 0),
}


def count_source_lines(path: pathlib.Path) -> int:
    """Physical source lines: non-blank, non-comment (paper's metric)."""
    count = 0
    in_docstring = False
    delim = None
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_docstring:
            if delim in line:
                in_docstring = False
            continue
        if line.startswith("#"):
            continue
        for candidate in ('"""', "'''"):
            if line.startswith(candidate):
                # Docstrings are documentation, not source; skip them the
                # way the paper excludes comments.
                if line.count(candidate) >= 2 and len(line) > 3:
                    break  # one-line docstring, skipped entirely
                in_docstring = True
                delim = candidate
                break
        else:
            count += 1
            continue
        continue
    return count


def _iter_py_files(root: pathlib.Path, prefix: str) -> Iterable[pathlib.Path]:
    target = root / prefix
    if target.is_file():
        yield target
    elif target.is_dir():
        yield from sorted(target.rglob("*.py"))


def component_linecounts(repo_root: pathlib.Path = None) -> List[ComponentCount]:
    """Compute this repository's Table 2 analogue."""
    root = repo_root or pathlib.Path(__file__).resolve().parents[3]
    results = []
    for name, (spec_paths, impl_paths, check_paths) in COMPONENT_MAP.items():
        component = ComponentCount(name=name)
        for prefix in spec_paths:
            component.spec += sum(
                count_source_lines(f) for f in _iter_py_files(root, prefix)
            )
        for prefix in impl_paths:
            component.impl += sum(
                count_source_lines(f) for f in _iter_py_files(root, prefix)
            )
        for prefix in check_paths:
            component.check += sum(
                count_source_lines(f) for f in _iter_py_files(root, prefix)
            )
        results.append(component)
    return results


def format_table(counts: List[ComponentCount]) -> str:
    """Render the comparison table (ours vs the paper's Table 2)."""
    lines = [
        f"{'Component':24} {'Spec':>6} {'Impl':>6} {'Check':>6} | "
        f"{'P.Spec':>6} {'P.Impl':>6} {'P.Proof':>7}",
        "-" * 74,
    ]
    totals = ComponentCount(name="Total")
    paper_totals = [0, 0, 0]
    for component in counts:
        paper = PAPER_TABLE2.get(component.name, (0, 0, 0))
        lines.append(
            f"{component.name:24} {component.spec:>6} {component.impl:>6} "
            f"{component.check:>6} | {paper[0]:>6} {paper[1]:>6} {paper[2]:>7}"
        )
        totals.spec += component.spec
        totals.impl += component.impl
        totals.check += component.check
        for i in range(3):
            paper_totals[i] += paper[i]
    lines.append("-" * 74)
    lines.append(
        f"{'Total':24} {totals.spec:>6} {totals.impl:>6} {totals.check:>6} | "
        f"{paper_totals[0]:>6} {paper_totals[1]:>6} {paper_totals[2]:>7}"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_table(component_linecounts()))
