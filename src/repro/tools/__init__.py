"""Repository tooling: the Table 2 line-count analysis."""

from repro.tools.linecount import component_linecounts, format_table

__all__ = ["component_linecounts", "format_table"]
