"""Static-analysis CLI: lint enclave programs before they are measured.

Default mode runs the built-in corpus — the repository's assembled
enclave programs, the example programs, and the deliberately-leaky
fixtures — in *expectation* mode: clean programs must produce no
error-severity findings, and every leaky fixture must still be caught
with its expected rule ID.  Either kind of regression fails the run, so
CI guards both the programs and the analyser itself::

    python -m repro.tools.lint

Explicit targets are linted raw: name a factory returning an
``Assembler`` as ``module:function`` (or ``path/to/file.py:function``),
a program-image JSON file (``{"name", "base_va", "entry_va", "words"}``,
the format ``repro.tools.pathexp --emit-corpus`` writes), or a
*directory* of such images — every ``*.json`` inside is linted.  In all
explicit modes the exit status reflects the findings: nonzero when any
error-severity finding fires, in any target::

    python -m repro.tools.lint repro.analysis.corpus:secret_branch_program
    python -m repro.tools.lint tests/data/pathexp/images

Options select the environment for explicit targets; the default is the
side-channel harness layout (code at 0x1000, secret page at 0x2000).
Image targets carry their own ``base_va``/``entry_va``.
"""

from __future__ import annotations

import argparse
import importlib
import importlib.util
import json
import pathlib
import sys
from typing import Callable, List, Optional, Sequence, Tuple

from repro.analysis.corpus import CORPUS, CorpusEntry
from repro.analysis.dataflow import AnalysisConfig
from repro.analysis.findings import Report, Severity
from repro.analysis.lint import analyze_assembler, analyze_words, sidechannel_config
from repro.arm.assembler import Assembler

#: Example programs linted by default mode, with expected error rules.
#: (file under examples/, factory function, expected rule IDs)
EXAMPLE_PROGRAMS: Tuple[Tuple[str, str, Tuple[str, ...]], ...] = (
    ("constant_time_check.py", "naive_compare", ("KA101",)),
    ("constant_time_check.py", "constant_time_compare", ()),
)


def _examples_dir() -> Optional[pathlib.Path]:
    root = pathlib.Path(__file__).resolve().parents[3] / "examples"
    return root if root.is_dir() else None


def _load_from_file(path: pathlib.Path, function: str) -> Callable[[], Assembler]:
    if not path.is_file():
        raise SystemExit(f"lint: no such file {path}")
    spec = importlib.util.spec_from_file_location(path.stem, path)
    if spec is None or spec.loader is None:
        raise SystemExit(f"lint: cannot load {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    factory = getattr(module, function, None)
    if factory is None:
        raise SystemExit(f"lint: {path} has no attribute {function!r}")
    return factory


def _resolve_target(target: str) -> Tuple[str, Callable[[], Assembler]]:
    """Resolve ``module:function`` or ``file.py:function`` to a factory."""
    if ":" not in target:
        raise SystemExit(
            f"lint: target {target!r} must be module:function or file.py:function"
        )
    location, function = target.rsplit(":", 1)
    if location.endswith(".py"):
        factory = _load_from_file(pathlib.Path(location), function)
    else:
        module = importlib.import_module(location)
        factory = getattr(module, function, None)
        if factory is None:
            raise SystemExit(f"lint: {location} has no attribute {function!r}")
    return target, factory


def _load_image(path: pathlib.Path) -> Tuple[str, int, int, List[int]]:
    """Load a program-image JSON: (name, base_va, entry_va, words)."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"lint: cannot read image {path}: {exc}")
    try:
        words = [int(w) for w in data["words"]]
        base_va = int(data.get("base_va", 0))
        entry_va = int(data.get("entry_va", base_va))
        name = str(data.get("name", path.stem))
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(f"lint: malformed image {path}: {exc}")
    return name, base_va, entry_va, words


def _image_paths(target: pathlib.Path) -> List[pathlib.Path]:
    if target.is_file():
        return [target]
    paths = sorted(target.glob("*.json"))
    if not paths:
        raise SystemExit(f"lint: no *.json program images in {target}")
    return paths


def _lint_images(
    target: pathlib.Path, args: argparse.Namespace
) -> bool:
    """Lint a directory of image JSONs (or one image); True if any fail."""
    failed = False
    for path in _image_paths(target):
        name, base_va, entry_va, words = _load_image(path)
        config = AnalysisConfig(
            base_va=base_va,
            secret_ranges=tuple(_parse_range(r) for r in args.secret),
            mapped_ranges=None,  # images carry no mapping environment
        )
        report = analyze_words(words, config, program=name, entry_va=entry_va)
        print(report.render())
        failed = failed or not report.ok
    return failed


def _parse_range(text: str) -> Tuple[int, int]:
    if ":" not in text:
        raise SystemExit(f"lint: range {text!r} must be START:END (hex ok)")
    start, end = (int(part, 0) for part in text.split(":", 1))
    return start, end


def _config_from_args(args: argparse.Namespace) -> AnalysisConfig:
    if not (args.secret or args.base_va is not None):
        return sidechannel_config()
    base = sidechannel_config()
    return AnalysisConfig(
        base_va=base.base_va if args.base_va is None else args.base_va,
        secret_ranges=tuple(_parse_range(r) for r in args.secret)
        or base.secret_ranges,
        mapped_ranges=None,  # custom worlds: skip mapped-range checking
    )


def _print_report(report: Report, verbose: bool) -> None:
    if verbose or report.findings:
        print(report.render())


def _check_entry(
    name: str,
    factory: Callable[[], Assembler],
    config: AnalysisConfig,
    expect: Tuple[str, ...],
    verbose: bool,
) -> Tuple[bool, Report]:
    report = analyze_assembler(factory(), config, program=name)
    if expect:
        missed = [rule for rule in expect if rule not in report.rule_ids()]
        ok = not missed
        verdict = (
            f"expected {', '.join(expect)} caught"
            if ok
            else f"ANALYSER MISSED {', '.join(missed)}"
        )
    else:
        ok = report.ok
        verdict = "clean" if ok else f"errors: {', '.join(report.rule_ids())}"
    print(f"{'ok  ' if ok else 'FAIL'} {name:34} {verdict}")
    if verbose or not ok:
        for finding in report.sorted():
            print("      " + finding.render())
    return ok, report


def _default_entries() -> List[Tuple[str, Callable[[], Assembler], AnalysisConfig, Tuple[str, ...]]]:
    entries: List[
        Tuple[str, Callable[[], Assembler], AnalysisConfig, Tuple[str, ...]]
    ] = [
        (entry.name, entry.build, entry.config(), entry.expect)
        for entry in CORPUS
    ]
    examples = _examples_dir()
    if examples is not None:
        for filename, function, expect in EXAMPLE_PROGRAMS:
            path = examples / filename
            if not path.is_file():
                continue
            factory = _load_from_file(path, function)
            entries.append(
                (
                    f"examples/{path.stem}:{function}",
                    factory,
                    sidechannel_config(),
                    expect,
                )
            )
    return entries


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lint",
        description="statically analyse enclave programs (KA rule set)",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="module:function or file.py:function factories returning an "
        "Assembler, a program-image .json, or a directory of image "
        "JSONs; with no targets the built-in corpus runs in "
        "expectation mode",
    )
    parser.add_argument(
        "--base-va", type=lambda v: int(v, 0), default=None,
        help="code base VA for explicit targets (default: 0x1000)",
    )
    parser.add_argument(
        "--secret", action="append", default=[], metavar="START:END",
        help="declare a secret VA range (repeatable; hex accepted)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list corpus entries and exit"
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="print every finding"
    )
    args = parser.parse_args(argv)

    if args.list:
        for entry in CORPUS:
            expectation = ", ".join(entry.expect) if entry.expect else "clean"
            print(f"{entry.name:30} expects: {expectation}")
        return 0

    if args.targets:
        config = _config_from_args(args)
        failed = False
        for target in args.targets:
            path = pathlib.Path(target)
            if path.is_dir() or (path.suffix == ".json" and path.is_file()):
                failed = _lint_images(path, args) or failed
                continue
            name, factory = _resolve_target(target)
            report = analyze_assembler(factory(), config, program=name)
            print(report.render())
            failed = failed or not report.ok
        return 1 if failed else 0

    # Default expectation mode over the corpus + examples.
    failures = 0
    for name, factory, config, expect in _default_entries():
        ok, _ = _check_entry(name, factory, config, expect, args.verbose)
        failures += 0 if ok else 1
    if failures:
        print(f"lint: {failures} program(s) failed")
        return 1
    print("lint: all programs passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
