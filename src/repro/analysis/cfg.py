"""Control-flow graph construction over assembled programs.

A program is a contiguous region of 32-bit instruction words.  The CFG
decodes every word once (through the same ``decode`` the CPU uses, so
there is no second decoder to drift), splits the region into basic
blocks at branch targets and after control transfers, and records edges:

* unconditional ``b`` — one edge to the target;
* conditional branches — taken edge plus fall-through;
* ``bl`` — edge to the callee plus an edge to the return site (the
  static stand-in for the matching ``bxlr``);
* ``bxlr`` — a return: no static successors;
* ``svc EXIT`` — thread exit: no successors; other SVCs resume at the
  next instruction after the monitor handles them;
* ``udf``/``smc`` and undecodable words — an exception is taken and the
  thread never resumes at this point: no successors.

Well-formedness findings (reachable undecodable words, falling off the
end of the region, out-of-range branch targets, unreachable code) are
reported with KA0xx rule IDs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding, make_finding
from repro.arm.instructions import (
    Instruction,
    branch_target_index,
    decode,
    metadata,
)
from repro.monitor.layout import SVC


def _successors(
    instr: Optional[Instruction], index: int, count: int
) -> Tuple[List[int], bool]:
    """Static successor word indices of the instruction at ``index``.

    Returns ``(successors, falls_off_end)`` where out-of-range branch
    targets are *kept* in the successor list (the CFG builder turns them
    into findings) and ``falls_off_end`` is True when the fall-through
    successor would lie past the end of the region.
    """
    if instr is None:  # undecodable: undefined-instruction exception
        return [], False
    meta = metadata(instr)
    succs: List[int] = []
    falls_off = False
    if meta.is_branch:
        succs.append(branch_target_index(instr, index))
        if meta.is_conditional or meta.is_call:
            if index + 1 < count:
                succs.append(index + 1)
            else:
                falls_off = True
        return succs, falls_off
    if meta.is_return or meta.is_privileged or meta.is_trap:
        return [], False
    if meta.is_svc and instr.imm == SVC.EXIT:
        return [], False
    if index + 1 < count:
        return [index + 1], False
    return [], True


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions.

    ``start``/``end`` are word indices (end exclusive); ``successors``
    are the start indices of successor blocks.
    """

    start: int
    end: int
    successors: List[int] = field(default_factory=list)

    @property
    def last(self) -> int:
        return self.end - 1

    def __contains__(self, index: int) -> bool:
        return self.start <= index < self.end


@dataclass
class CFG:
    """The decoded program plus its block structure."""

    base_va: int
    words: List[int]
    instructions: List[Optional[Instruction]]
    blocks: Dict[int, BasicBlock]
    entry: int
    reachable: Set[int]  # block start indices reachable from the entry
    findings: List[Finding] = field(default_factory=list)

    @property
    def block_starts(self) -> List[int]:
        return sorted(self.blocks)

    def block_at(self, index: int) -> BasicBlock:
        """The block containing word ``index``."""
        for start in sorted(self.blocks, reverse=True):
            if start <= index:
                block = self.blocks[start]
                if index in block:
                    return block
                break
        raise KeyError(f"no block contains index {index}")

    def reachable_indices(self) -> Set[int]:
        """Word indices of every reachable instruction."""
        indices: Set[int] = set()
        for start in self.reachable:
            block = self.blocks[start]
            indices.update(range(block.start, block.end))
        return indices

    def va(self, index: int) -> int:
        return self.base_va + index * 4


def build_cfg(
    words: Sequence[int], base_va: int = 0, entry_index: int = 0
) -> CFG:
    """Decode a code region and construct its control-flow graph.

    ``entry_index`` is the word index execution starts at (the thread
    entry point relative to the region base).
    """
    words = list(words)
    count = len(words)
    if not 0 <= entry_index < count:
        raise ValueError(f"entry index {entry_index} outside the region")
    instructions = [decode(word) for word in words]

    # Pass 1: leaders.  The entry, every in-range branch target, and the
    # instruction after every control transfer start a block.
    leaders: Set[int] = {entry_index}
    for index, instr in enumerate(instructions):
        succs, _ = _successors(instr, index, count)
        terminator = (
            instr is None
            or succs != [index + 1]  # anything but plain fall-through
        )
        if terminator:
            for succ in succs:
                if 0 <= succ < count:
                    leaders.add(succ)
            if index + 1 < count:
                leaders.add(index + 1)

    # Pass 2: blocks and edges.
    ordered = sorted(leaders)
    blocks: Dict[int, BasicBlock] = {}
    findings: List[Finding] = []
    fall_off_indices: Set[int] = set()
    for position, start in enumerate(ordered):
        end = start
        while end < count:
            end += 1
            if end in leaders:
                break
            succs, _ = _successors(instructions[end - 1], end - 1, count)
            if succs != [end]:
                break
        block = BasicBlock(start=start, end=end)
        last = block.last
        succs, falls_off = _successors(instructions[last], last, count)
        if falls_off:
            fall_off_indices.add(last)
        for succ in succs:
            if 0 <= succ < count:
                block.successors.append(succ)
            else:
                instr = instructions[last]
                if instr is not None and metadata(instr).is_branch:
                    findings.append(
                        make_finding(
                            "KA003",
                            f"{instr.op} targets word {succ}, outside the "
                            f"{count}-word region",
                            last,
                            base_va,
                        )
                    )
                else:
                    fall_off_indices.add(last)
        blocks[start] = block

    # Pass 3: reachability from the entry block.
    reachable: Set[int] = set()
    worklist = [entry_index]
    while worklist:
        start = worklist.pop()
        if start in reachable:
            continue
        reachable.add(start)
        worklist.extend(
            succ for succ in blocks[start].successors if succ not in reachable
        )

    reachable_words = set()
    for start in reachable:
        reachable_words.update(range(blocks[start].start, blocks[start].end))

    # Findings that depend on reachability.
    for index in sorted(fall_off_indices):
        if index in reachable_words:
            findings.append(
                make_finding(
                    "KA002",
                    "execution continues past the last word of the region",
                    index,
                    base_va,
                )
            )
    for index, instr in enumerate(instructions):
        if instr is None and index in reachable_words:
            findings.append(
                make_finding(
                    "KA001",
                    f"word {words[index]:#010x} does not decode",
                    index,
                    base_va,
                )
            )
    # Unreachable code: report one finding per maximal unreachable run.
    index = 0
    while index < count:
        if index in reachable_words:
            index += 1
            continue
        run_start = index
        while index < count and index not in reachable_words:
            index += 1
        # Trailing zero padding (e.g. the rest of a code page) is not
        # interesting; only flag unreachable *instructions*.
        if all(words[i] == 0 for i in range(run_start, index)):
            continue
        findings.append(
            make_finding(
                "KA004",
                f"words {run_start}..{index - 1} can never execute",
                run_start,
                base_va,
            )
        )

    # Exit reachability: some reachable instruction must be svc EXIT (a
    # return is also accepted: library fragments end in bxlr).
    has_exit = any(
        instructions[i] is not None
        and (
            (instructions[i].op == "svc" and instructions[i].imm == SVC.EXIT)
            or instructions[i].op == "bxlr"
        )
        for i in reachable_words
    )
    if not has_exit:
        findings.append(
            make_finding(
                "KA005",
                "no svc EXIT (or return) is reachable from the entry",
                entry_index,
                base_va,
            )
        )

    return CFG(
        base_va=base_va,
        words=words,
        instructions=instructions,
        blocks=blocks,
        entry=entry_index,
        reachable=reachable,
        findings=findings,
    )
