"""Secret-taint and ABI abstract interpretation over the CFG.

A worklist fixpoint computes, for every basic block, an abstract state
describing all executions reaching it:

* **taint** — one bit per register (r0-r12, SP, LR) plus the NZCV
  flags: does the value depend on declared secret memory?
* **values** — a small constant/interval domain per register, enough to
  resolve the ``movw``/``movt`` address idiom and loop-index arithmetic
  so memory rules can reason about *which* addresses are touched;
* **memory** — the set of statically-known addresses holding secret
  data, plus a conservative flag once a secret is stored through a
  pointer the analysis cannot resolve;
* **LR discipline** — whether LR holds a live return address.

After the fixpoint converges a final emission pass walks each reachable
block once and reports violations: secret-dependent branches (KA101),
secret-indexed loads/stores (KA102/KA103), declassification notes
(KA104), privilege violations (KA201-KA203), LR misuse (KA204), and
memory-safety lint (KA205-KA207).

This is a lint, not a proof: the value domain widens aggressively on
loops, so a program that walks public memory with a moving pointer
*while also* holding secrets nearby may be flagged conservatively.  The
dynamic checker in ``repro.security.sidechannel`` is the precision
complement; the two are cross-validated on a shared corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.findings import Finding, make_finding
from repro.arm.bits import (
    WORD_MASK,
    add_wrap,
    asr,
    lsl,
    lsr,
    mul_wrap,
    not_word,
    ror,
    sub_wrap,
)
from repro.arm.instructions import REG_LR, REG_SP, Instruction, metadata
from repro.arm.memory import WORDSIZE
from repro.monitor.layout import SVC

NUM_REGS = 15  # r0-r12, sp, lr

#: An abstract value: None is "any word"; otherwise an inclusive
#: (lo, hi) interval, with lo == hi for an exactly-known constant.
Interval = Optional[Tuple[int, int]]

#: Cap on tracked secret addresses before collapsing to the
#: unknown-store flag (keeps the state finite on generated code).
_MAX_SECRET_ADDRS = 4096

#: Joins at a block head before unstable values are widened to ``any``.
_WIDEN_AFTER = 2


class AnalysisError(Exception):
    """The fixpoint failed to converge (should never happen)."""


@dataclass(frozen=True)
class MappedRange:
    """One mapped region of the enclave's virtual address space."""

    start: int
    end: int  # exclusive
    readable: bool = True
    writable: bool = True
    executable: bool = False

    def __contains__(self, va: int) -> bool:
        return self.start <= va < self.end


@dataclass(frozen=True)
class AnalysisConfig:
    """What the analyser knows about the program's environment."""

    base_va: int = 0
    #: VA ranges whose contents are secret (seed the taint lattice).
    secret_ranges: Tuple[Tuple[int, int], ...] = ()
    #: VA ranges shared with the untrusted OS (KA104 escape notes).
    shared_ranges: Tuple[Tuple[int, int], ...] = ()
    #: The full memory map, when known (enables KA205).  None disables
    #: mapped-range checking entirely.
    mapped_ranges: Optional[Tuple[MappedRange, ...]] = None
    #: SVC numbers the program may issue; None = every defined SVC.
    allowed_svcs: Optional[FrozenSet[int]] = None
    #: Known register values at entry (the monitor zeroes SP and LR).
    entry_values: Tuple[Tuple[int, int], ...] = ((REG_SP, 0), (REG_LR, 0))

    def svc_allowed(self, number: int) -> bool:
        if self.allowed_svcs is not None:
            return number in self.allowed_svcs
        return number in set(int(v) for v in SVC)


def _ranges_overlap(lo: int, hi: int, ranges: Sequence[Tuple[int, int]]) -> bool:
    return any(lo < end and hi >= start for start, end in ranges)


@dataclass
class AbsState:
    """The abstract machine state at one program point.

    ``mem`` maps statically-known word addresses to the taint of what
    the program stored there, *overriding* the configured range default
    (a secret page the program fully overwrote with public data reads
    back public; a secret parked in a public page reads back secret).
    """

    taint: List[bool]
    value: List[Interval]
    flags_taint: bool = False
    mem: Dict[int, bool] = field(default_factory=dict)
    unknown_secret_store: bool = False
    lr_live: bool = False

    @classmethod
    def entry(cls, config: AnalysisConfig) -> "AbsState":
        state = cls(taint=[False] * NUM_REGS, value=[None] * NUM_REGS)
        for reg, val in config.entry_values:
            state.value[reg] = (val, val)
        return state

    def copy(self) -> "AbsState":
        return AbsState(
            taint=list(self.taint),
            value=list(self.value),
            flags_taint=self.flags_taint,
            mem=dict(self.mem),
            unknown_secret_store=self.unknown_secret_store,
            lr_live=self.lr_live,
        )


def _join_value(a: Interval, b: Interval) -> Interval:
    if a is None or b is None:
        return None
    return (min(a[0], b[0]), max(a[1], b[1]))


def _const(value: Interval) -> Optional[int]:
    if value is not None and value[0] == value[1]:
        return value[0]
    return None


def _interval_add(a: Interval, b: Interval) -> Interval:
    if a is None or b is None:
        return None
    lo, hi = a[0] + b[0], a[1] + b[1]
    if hi > WORD_MASK:
        return None  # may wrap: give up rather than model modular intervals
    return (lo, hi)


def _interval_sub(a: Interval, b: Interval) -> Interval:
    if a is None or b is None:
        return None
    lo, hi = a[0] - b[1], a[1] - b[0]
    if lo < 0:
        return None
    return (lo, hi)


#: Exact evaluators for constant operands, mirroring the CPU.
_CONST_OPS = {
    "add": add_wrap,
    "sub": sub_wrap,
    "rsb": lambda a, b: sub_wrap(b, a),
    "and": lambda a, b: a & b,
    "orr": lambda a, b: a | b,
    "eor": lambda a, b: a ^ b,
    "bic": lambda a, b: a & not_word(b),
    "mul": mul_wrap,
    "lsl": lambda a, b: lsl(a, b & 0xFF),
    "lsr": lambda a, b: lsr(a, b & 0xFF),
    "asr": lambda a, b: asr(a, b & 0xFF),
    "ror": lambda a, b: ror(a, b & 0xFF),
}


class TaintAnalysis:
    """Fixpoint dataflow over one CFG under one configuration."""

    def __init__(self, cfg: CFG, config: AnalysisConfig):
        self.cfg = cfg
        self.config = config
        self.in_states: Dict[int, AbsState] = {}
        self._join_counts: Dict[int, int] = {}
        self._findings: List[Finding] = []
        self._emitted: Set[Tuple[str, int]] = set()
        self._emitting = False

    # -- lattice ----------------------------------------------------------

    def _range_secret(self, addr: int) -> bool:
        """The taint an address holds before the program touches it."""
        return _ranges_overlap(addr, addr, self.config.secret_ranges)

    def _join(self, a: AbsState, b: AbsState) -> AbsState:
        mem: Dict[int, bool] = {}
        for addr in set(a.mem) | set(b.mem):
            default = self._range_secret(addr)
            mem[addr] = a.mem.get(addr, default) or b.mem.get(addr, default)
        return AbsState(
            taint=[x or y for x, y in zip(a.taint, b.taint)],
            value=[_join_value(x, y) for x, y in zip(a.value, b.value)],
            flags_taint=a.flags_taint or b.flags_taint,
            mem=mem,
            unknown_secret_store=a.unknown_secret_store
            or b.unknown_secret_store,
            lr_live=a.lr_live and b.lr_live,
        )

    # -- driver -----------------------------------------------------------

    def run(self) -> List[Finding]:
        cfg = self.cfg
        entry_state = AbsState.entry(self.config)
        self.in_states[cfg.entry] = entry_state
        worklist: List[int] = [cfg.entry]
        visits = 0
        while worklist:
            visits += 1
            if visits > 50 * max(1, len(cfg.blocks)):
                raise AnalysisError("taint fixpoint did not converge")
            start = worklist.pop(0)
            block = cfg.blocks[start]
            state = self.in_states[start].copy()
            for index in range(block.start, block.end):
                state = self._transfer(state, index)
            for succ in block.successors:
                incoming = self.in_states.get(succ)
                if incoming is None:
                    self.in_states[succ] = state.copy()
                    worklist.append(succ)
                    continue
                joined = self._join(incoming, state)
                if joined == incoming:
                    continue
                count = self._join_counts.get(succ, 0) + 1
                self._join_counts[succ] = count
                if count > _WIDEN_AFTER:
                    joined = self._widen(incoming, joined)
                self.in_states[succ] = joined
                if succ not in worklist:
                    worklist.append(succ)
        # Emission pass: states are stable; walk each reachable block
        # once and report findings.
        self._emitting = True
        for start in sorted(self.cfg.reachable):
            block = cfg.blocks[start]
            state = self.in_states[start].copy()
            for index in range(block.start, block.end):
                state = self._transfer(state, index)
        return self._findings

    @staticmethod
    def _widen(old: AbsState, new: AbsState) -> AbsState:
        """Discard interval bounds that are still growing."""
        widened = new.copy()
        for i in range(NUM_REGS):
            if old.value[i] != new.value[i]:
                widened.value[i] = None
        return widened

    # -- findings ---------------------------------------------------------

    def _emit(self, rule: str, message: str, index: int) -> None:
        if not self._emitting or (rule, index) in self._emitted:
            return
        self._emitted.add((rule, index))
        self._findings.append(
            make_finding(rule, message, index, self.cfg.base_va)
        )

    # -- transfer function ------------------------------------------------

    def _transfer(self, state: AbsState, index: int) -> AbsState:
        instr = self.cfg.instructions[index]
        if instr is None:
            return state  # undecodable: CFG already reported KA001
        op = instr.op
        meta = metadata(instr)
        if meta.is_privileged:
            self._emit(
                "KA201",
                f"{op} is undefined in user mode: enclaves cannot make "
                "monitor calls reserved for the OS",
                index,
            )
            return state
        if meta.is_trap:
            self._emit("KA202", "reachable udf always faults the thread", index)
            return state
        if meta.sets_flags:
            state.flags_taint = any(state.taint[r] for r in meta.reads)
            return state
        if meta.is_conditional:
            if state.flags_taint:
                self._emit(
                    "KA101",
                    f"{op} tests flags derived from secret data: iteration "
                    "count and fetch trace depend on the secret",
                    index,
                )
            return state
        if meta.is_call:
            state.value[REG_LR] = ((index + 1) * WORDSIZE + self.cfg.base_va,) * 2
            state.taint[REG_LR] = False
            state.lr_live = True
            return state
        if meta.is_return:
            self._check_return(state, index)
            return state
        if meta.is_branch:
            return state
        if meta.is_svc:
            return self._transfer_svc(state, instr, index)
        if meta.memory is not None:
            return self._transfer_memory(state, instr, meta, index)
        # Plain ALU / move instruction.
        return self._transfer_alu(state, instr, meta, index)

    # -- instruction classes ----------------------------------------------

    def _transfer_alu(self, state, instr: Instruction, meta, index: int):
        dest = instr.rd
        state.taint[dest] = any(state.taint[r] for r in meta.reads)
        state.value[dest] = self._eval(state, instr)
        if dest == REG_LR:
            state.lr_live = True
        return state

    def _eval(self, state: AbsState, instr: Instruction) -> Interval:
        op = instr.op
        if op == "movw":
            return (instr.imm, instr.imm)
        if op == "movt":
            low = _const(state.value[instr.rd])
            if low is None:
                return None
            value = (low & 0xFFFF) | (instr.imm << 16)
            return (value, value)
        if op == "mov":
            return state.value[instr.rm]
        if op == "mvn":
            operand = _const(state.value[instr.rm])
            return None if operand is None else (not_word(operand),) * 2
        if op in ("addi", "subi"):
            rhs: Interval = (instr.imm, instr.imm)
            lhs = state.value[instr.rn]
            if op == "addi":
                return _interval_add(lhs, rhs)
            return _interval_sub(lhs, rhs)
        if op in ("add", "sub"):
            lhs, rhs = state.value[instr.rn], state.value[instr.rm]
            return (
                _interval_add(lhs, rhs)
                if op == "add"
                else _interval_sub(lhs, rhs)
            )
        if op == "lsli":
            operand = state.value[instr.rn]
            if operand is None or operand[1] << instr.imm > WORD_MASK:
                return None
            return (operand[0] << instr.imm, operand[1] << instr.imm)
        if op in ("lsri", "asri"):
            operand = _const(state.value[instr.rn])
            if operand is None:
                return None
            result = (lsr if op == "lsri" else asr)(operand, instr.imm)
            return (result, result)
        if op == "and":
            # Masking with a known constant bounds the result even when
            # the other operand is unknown (the table-lookup idiom).
            lhs, rhs = state.value[instr.rn], state.value[instr.rm]
            lhs_c, rhs_c = _const(lhs), _const(rhs)
            if lhs_c is not None and rhs_c is not None:
                return (lhs_c & rhs_c,) * 2
            mask = rhs_c if rhs_c is not None else lhs_c
            return None if mask is None else (0, mask)
        evaluator = _CONST_OPS.get(op)
        if evaluator is not None:
            lhs = _const(state.value[instr.rn])
            rhs = _const(state.value[instr.rm])
            if lhs is not None and rhs is not None:
                return (evaluator(lhs, rhs),) * 2
        return None

    def _transfer_svc(self, state: AbsState, instr: Instruction, index: int):
        number = instr.imm
        if not self.config.svc_allowed(number):
            self._emit(
                "KA203",
                f"svc #{number} is not a defined monitor call",
                index,
            )
        if number == SVC.EXIT:
            if state.taint[0]:
                self._emit(
                    "KA104",
                    "exit value in r0 is derived from secret data and is "
                    "returned to the OS",
                    index,
                )
            return state
        # The monitor reads r0-r12 as arguments and writes results back
        # into the same window; SP, LR and the flags are preserved.
        for reg in range(13):
            state.taint[reg] = False
            state.value[reg] = None
        return state

    def _transfer_memory(self, state, instr: Instruction, meta, index: int):
        base = state.value[instr.rn]
        base_taint = state.taint[instr.rn]
        if instr.op in ("ldr", "str"):
            offset: Interval = (instr.imm, instr.imm)
            offset_taint = False
        else:
            offset = state.value[instr.rm]
            offset_taint = state.taint[instr.rm]
        addr = _interval_add(base, offset)
        addr_taint = base_taint or offset_taint
        is_store = meta.memory == "store"
        if addr_taint:
            self._emit(
                "KA103" if is_store else "KA102",
                f"{instr.op} address depends on secret data: the "
                f"{'store' if is_store else 'load'} trace indexes the secret",
                index,
            )
        self._check_address(state, instr, addr, is_store, index)
        if is_store:
            self._store(state, addr, state.taint[instr.rd], index)
            return state
        state.taint[instr.rd] = addr_taint or self._load_taint(state, addr)
        state.value[instr.rd] = None
        if instr.rd == REG_LR:
            state.lr_live = True
        return state

    def _load_taint(self, state: AbsState, addr: Interval) -> bool:
        if state.unknown_secret_store:
            return True
        if addr is None:
            # The pointer could alias anything: secret if any secret
            # exists to alias.
            return bool(self.config.secret_ranges) or any(
                state.mem.values()
            )
        exact = _const(addr)
        if exact is not None:
            return state.mem.get(exact, self._range_secret(exact))
        lo, hi = addr
        if _ranges_overlap(lo, hi, self.config.secret_ranges):
            return True
        return any(lo <= a <= hi and t for a, t in state.mem.items())

    def _store(
        self, state: AbsState, addr: Interval, value_taint: bool, index: int
    ) -> None:
        if value_taint and addr is not None:
            if _ranges_overlap(addr[0], addr[1], self.config.shared_ranges):
                self._emit(
                    "KA104",
                    "secret-derived value stored to OS-shared memory",
                    index,
                )
        exact = _const(addr)
        if exact is not None:
            state.mem[exact] = value_taint
            if len(state.mem) > _MAX_SECRET_ADDRS:
                state.unknown_secret_store = (
                    state.unknown_secret_store or any(state.mem.values())
                )
                state.mem.clear()
            return
        if value_taint:
            # A secret went somewhere we cannot name — unless the
            # pointer provably stays inside already-secret memory.
            if addr is not None and self.config.secret_ranges:
                lo, hi = addr
                if any(
                    start <= lo and hi < end
                    for start, end in self.config.secret_ranges
                ):
                    return
            state.unknown_secret_store = True
        # An imprecise *public* store needs no action: it can only lower
        # the taint of whatever it overwrites, so existing entries and
        # range defaults remain an over-approximation.

    # -- ABI checks -------------------------------------------------------

    def _check_return(self, state: AbsState, index: int) -> None:
        lr = _const(state.value[REG_LR])
        code_end = self.cfg.base_va + len(self.cfg.words) * WORDSIZE
        if not state.lr_live:
            self._emit(
                "KA204",
                "bxlr executes before any bl or explicit LR setup: LR still "
                "holds the monitor's entry value",
                index,
            )
        elif lr is not None and not (
            self.cfg.base_va <= lr < code_end and lr % WORDSIZE == 0
        ):
            self._emit(
                "KA204",
                f"bxlr returns to {lr:#010x}, outside the code region",
                index,
            )

    def _check_address(
        self,
        state: AbsState,
        instr: Instruction,
        addr: Interval,
        is_store: bool,
        index: int,
    ) -> None:
        exact = _const(addr)
        if exact is None:
            return
        kind = "store" if is_store else "load"
        if exact % WORDSIZE:
            self._emit(
                "KA206",
                f"{kind} from {exact:#010x} is not word aligned and will "
                "abort",
                index,
            )
            return
        ranges = self.config.mapped_ranges
        if ranges is not None:
            hit = next((r for r in ranges if exact in r), None)
            if hit is None:
                self._emit(
                    "KA205",
                    f"{kind} at {exact:#010x} hits no mapped page and will "
                    "abort",
                    index,
                )
            elif is_store and not hit.writable:
                self._emit(
                    "KA205",
                    f"store to read-only memory at {exact:#010x} will abort",
                    index,
                )
            elif not is_store and not hit.readable:
                self._emit(
                    "KA205",
                    f"load from unreadable memory at {exact:#010x} will "
                    "abort",
                    index,
                )
        elif instr.rn == REG_SP and _const(state.value[REG_SP]) == 0:
            self._emit(
                "KA207",
                "stack access through SP before the program established a "
                "stack (SP is zero at enclave entry)",
                index,
            )
