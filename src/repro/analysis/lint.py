"""Entry points of the static analyser.

``analyze_words`` runs every pass — CFG well-formedness, secret-taint,
privilege/ABI — over one assembled code region and returns a ``Report``.
``analyze_assembler`` is the convenience wrapper for programs still in
``Assembler`` form (the usual case: lint before loading).

The environment description lives in ``AnalysisConfig``; helpers here
build the common ones: ``sidechannel_config`` mirrors the page layout of
the dynamic checker's harness so the two tools see the same world, and
``EnclaveBuilder`` constructs one from its page map at build time.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import (
    AnalysisConfig,
    MappedRange,
    TaintAnalysis,
)
from repro.analysis.findings import Report
from repro.arm.assembler import Assembler
from repro.arm.memory import PAGE_SIZE, WORDSIZE


def analyze_words(
    words: Sequence[int],
    config: Optional[AnalysisConfig] = None,
    program: str = "<program>",
    entry_va: Optional[int] = None,
) -> Report:
    """Statically analyse one assembled code region.

    ``entry_va`` defaults to the region base; it must lie inside the
    region (enclave thread entry points name their first instruction).
    """
    config = config or AnalysisConfig()
    base_va = config.base_va
    if entry_va is None:
        entry_va = base_va
    delta = entry_va - base_va
    if delta % WORDSIZE:
        raise ValueError(f"entry {entry_va:#x} is not word aligned")
    report = Report(program=program, base_va=base_va)
    cfg = build_cfg(words, base_va=base_va, entry_index=delta // WORDSIZE)
    report.extend(cfg.findings)
    report.extend(TaintAnalysis(cfg, config).run())
    return report


def analyze_assembler(
    asm: Assembler,
    config: Optional[AnalysisConfig] = None,
    program: str = "<program>",
    entry_va: Optional[int] = None,
) -> Report:
    """Analyse an ``Assembler`` program (labels resolved, then encoded)."""
    return analyze_words(
        asm.assemble(), config=config, program=program, entry_va=entry_va
    )


def sidechannel_config(
    scratch_writable: bool = True,
) -> AnalysisConfig:
    """The environment of ``repro.security.sidechannel.profile``:

    code at CODE_VA (r-x), one read-write secret page at SECRET_VA, and a
    read-write scratch page right after it.  Using this config makes the
    static analyser and the dynamic checker judge the *same* program in
    the *same* world, which is what the cross-validation tests assert.
    """
    from repro.security.sidechannel import CODE_VA, SECRET_VA

    mapped: List[MappedRange] = [
        MappedRange(CODE_VA, CODE_VA + PAGE_SIZE, True, False, True),
        MappedRange(SECRET_VA, SECRET_VA + PAGE_SIZE, True, True, False),
        MappedRange(
            SECRET_VA + PAGE_SIZE, SECRET_VA + 2 * PAGE_SIZE,
            True, scratch_writable, False,
        ),
    ]
    return AnalysisConfig(
        base_va=CODE_VA,
        secret_ranges=((SECRET_VA, SECRET_VA + PAGE_SIZE),),
        mapped_ranges=tuple(mapped),
    )
