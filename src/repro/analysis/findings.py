"""Finding and report model for the static analyser.

Every rule has a stable ID (``KA001``…), a default severity, and a
pointer to the paper property it checks, so a report line can be read
next to the paper: constant time is section 7.2, privilege separation
section 3, the monitor ABI and calling convention section 5.

Rule families:

* ``KA0xx`` — control-flow well-formedness (CFG construction),
* ``KA1xx`` — secret-taint / constant-time rules,
* ``KA2xx`` — privilege and ABI rules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


class Severity(enum.IntEnum):
    """How bad a finding is.  Only ERROR fails a build or the CLI."""

    NOTE = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()


@dataclass(frozen=True)
class Rule:
    """A lint rule: stable ID, one-line title, paper anchor, severity."""

    id: str
    title: str
    paper: str
    severity: Severity


_RULE_TABLE: Tuple[Rule, ...] = (
    # -- control flow (KA0xx) ---------------------------------------------
    Rule("KA001", "undecodable instruction word is reachable", "§5.1", Severity.ERROR),
    Rule("KA002", "control flow can fall off the end of the code region", "§5.1", Severity.ERROR),
    Rule("KA003", "branch target outside the code region", "§5.1", Severity.ERROR),
    Rule("KA004", "unreachable code", "§5.1", Severity.WARNING),
    Rule("KA005", "no reachable exit (svc EXIT)", "§5", Severity.WARNING),
    # -- constant time (KA1xx) --------------------------------------------
    Rule("KA101", "secret-dependent conditional branch", "§7.2", Severity.ERROR),
    Rule("KA102", "secret-indexed load", "§7.2", Severity.ERROR),
    Rule("KA103", "secret-indexed store", "§7.2", Severity.ERROR),
    Rule("KA104", "secret-derived value escapes to OS-visible state", "§3.1", Severity.NOTE),
    # -- privilege & ABI (KA2xx) ------------------------------------------
    Rule("KA201", "privileged instruction in enclave code", "§3", Severity.ERROR),
    Rule("KA202", "trap instruction (udf) is reachable", "§5.1", Severity.WARNING),
    Rule("KA203", "unknown SVC call number", "§5", Severity.ERROR),
    Rule("KA204", "return through uninitialised or clobbered LR", "§5", Severity.ERROR),
    Rule("KA205", "memory access outside the mapped address space", "§5", Severity.ERROR),
    Rule("KA206", "misaligned memory access", "§5.1", Severity.ERROR),
    Rule("KA207", "stack access before SP is established", "§5", Severity.WARNING),
)

RULES: Dict[str, Rule] = {rule.id: rule for rule in _RULE_TABLE}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one instruction.

    ``index`` is the word index into the analysed region; ``va`` the
    instruction's virtual address (base VA + 4·index).
    """

    rule: str
    message: str
    index: int
    va: int
    severity: Severity

    @property
    def title(self) -> str:
        return RULES[self.rule].title

    @property
    def paper(self) -> str:
        return RULES[self.rule].paper

    def render(self) -> str:
        return f"{self.va:#010x}  {self.rule} {self.severity}: {self.message}"


def make_finding(
    rule_id: str,
    message: str,
    index: int,
    base_va: int,
    severity: Optional[Severity] = None,
) -> Finding:
    """Build a finding, defaulting severity from the rule table."""
    rule = RULES[rule_id]
    return Finding(
        rule=rule_id,
        message=message,
        index=index,
        va=base_va + index * 4,
        severity=rule.severity if severity is None else severity,
    )


@dataclass
class Report:
    """All findings for one analysed program."""

    program: str
    base_va: int
    findings: List[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Sequence[Finding]) -> None:
        self.findings.extend(findings)

    def by_severity(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity is severity]

    @property
    def errors(self) -> List[Finding]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Finding]:
        return self.by_severity(Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when the program is free of error-severity findings."""
        return not self.errors

    def rule_ids(self) -> List[str]:
        return sorted({f.rule for f in self.findings})

    def sorted(self) -> List[Finding]:
        return sorted(self.findings, key=lambda f: (f.index, f.rule))

    def render(self) -> str:
        """Human-readable report, one line per finding."""
        header = f"{self.program}: " + (
            "clean"
            if not self.findings
            else f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.by_severity(Severity.NOTE))} note(s)"
        )
        lines = [header]
        lines.extend("  " + finding.render() for finding in self.sorted())
        return "\n".join(lines)
