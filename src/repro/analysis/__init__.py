"""Static analysis of enclave and monitor-visible machine code.

The dynamic side-channel checker (``repro.security.sidechannel``) runs a
program under chosen secrets and diffs traces; this package is its
static complement, in the spirit of the paper's verified SHA-256 (§7.2):
prove well-formedness and constant-time discipline over *all* paths
before the program ever runs.

Passes (see each module):

* ``cfg`` — basic blocks, edges, reachability, structural findings;
* ``dataflow`` — secret-taint and value abstract interpretation plus
  privilege/ABI rules;
* ``lint`` — the orchestrating entry points and config builders;
* ``findings`` — the ``Finding``/``Report`` model and the KA rule table;
* ``corpus`` — programs both checkers are cross-validated on.

Typical use::

    from repro.analysis import analyze_assembler, sidechannel_config
    report = analyze_assembler(program, sidechannel_config())
    assert report.ok, report.render()

or, at enclave build time, ``EnclaveBuilder.build(lint="error")``.
"""

from repro.analysis.cfg import CFG, BasicBlock, build_cfg
from repro.analysis.dataflow import (
    AnalysisConfig,
    AnalysisError,
    MappedRange,
    TaintAnalysis,
)
from repro.analysis.findings import (
    Finding,
    Report,
    RULES,
    Rule,
    Severity,
    make_finding,
)
from repro.analysis.lint import (
    analyze_assembler,
    analyze_words,
    sidechannel_config,
)

__all__ = [
    "AnalysisConfig",
    "AnalysisError",
    "BasicBlock",
    "CFG",
    "Finding",
    "MappedRange",
    "Report",
    "RULES",
    "Rule",
    "Severity",
    "TaintAnalysis",
    "analyze_assembler",
    "analyze_words",
    "build_cfg",
    "make_finding",
    "sidechannel_config",
]
