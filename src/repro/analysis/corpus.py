"""Shared corpus: programs both the static analyser and the dynamic
side-channel checker are judged against.

Each entry names a program factory, the analysis configuration for the
world it runs in, and the rule IDs the analyser is *expected* to report
(empty for constant-time programs).  The corpus serves three customers:

* the cross-validation tests, which assert the static analyser and
  ``repro.security.sidechannel`` agree on every entry;
* ``python -m repro.tools.lint``, which runs the corpus by default and
  fails if a clean program regresses *or* a leaky fixture stops being
  caught (guarding the analyser itself in CI);
* documentation: these are the canonical examples of what KA1xx rules
  mean.

The constant-time set includes an eight-step SHA-256 message-schedule
expansion — the paper's flagship constant-time artifact is its SHA-256
(§7.2), and the schedule's σ0/σ1 mixing is the part with interesting
data flow: every word of the secret block feeds the output through
rotates, shifts and XORs, yet no address or branch ever depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.analysis.dataflow import AnalysisConfig, MappedRange
from repro.analysis.lint import sidechannel_config
from repro.arm.assembler import Assembler
from repro.arm.memory import PAGE_SIZE
from repro.monitor.layout import SVC
from repro.security.sidechannel import SECRET_VA

#: The dynamic harness maps a read-write scratch page after the secret.
SCRATCH_VA = SECRET_VA + PAGE_SIZE


# ---------------------------------------------------------------------------
# Constant-time programs
# ---------------------------------------------------------------------------


def xor_fold_program() -> Assembler:
    """Branch-free mixing of one secret word into a result."""
    asm = Assembler()
    asm.mov32("r4", SECRET_VA)
    asm.ldr("r5", "r4", 0)
    asm.lsri("r6", "r5", 16)
    asm.eor("r6", "r6", "r5")
    asm.movw("r7", 0x5A5A)
    asm.and_("r0", "r6", "r7")
    asm.svc(SVC.EXIT)
    return asm


def ct_compare_program() -> Assembler:
    """Constant-time comparison of two 4-word values in the secret page:
    accumulate XOR differences, test once at the end, branch-free."""
    asm = Assembler()
    asm.mov32("r4", SECRET_VA)
    asm.movw("r7", 0)  # index
    asm.movw("r9", 0)  # difference accumulator
    asm.label("loop")
    asm.lsli("r8", "r7", 2)
    asm.ldrr("r5", "r4", "r8")  # a[i]
    asm.addi("r8", "r8", 16)
    asm.ldrr("r6", "r4", "r8")  # b[i]
    asm.eor("r5", "r5", "r6")
    asm.orr("r9", "r9", "r5")
    asm.addi("r7", "r7", 1)
    asm.cmpi("r7", 4)
    asm.bne("loop")
    asm.subi("r9", "r9", 1)  # 0 -> borrow; nonzero -> top bit clear
    asm.lsri("r0", "r9", 31)
    asm.svc(SVC.EXIT)
    return asm


def sha256_schedule_program() -> Assembler:
    """Eight steps of the SHA-256 message-schedule expansion.

    The secret page holds w[0..15]; the program computes
    ``w[j] = σ1(w[j-2]) + w[j-7] + σ0(w[j-15]) + w[j-16]`` for
    j = 16..23, writing the new words just past the block.  All
    addresses follow the public loop index; all data flow from the
    secret goes through rotates/shifts/XORs/adds — the access pattern
    the paper's SHA-256 proof establishes (§7.2), in miniature.
    """
    asm = Assembler()
    asm.mov32("r4", SECRET_VA)
    asm.movw("r6", 0)  # k = j - 16
    asm.label("loop")
    asm.lsli("r8", "r6", 2)
    asm.add("r8", "r4", "r8")  # &w[k]
    asm.ldr("r0", "r8", 0)  # w[j-16]
    asm.ldr("r1", "r8", 4)  # w[j-15]
    asm.ldr("r2", "r8", 36)  # w[j-7]
    asm.ldr("r3", "r8", 56)  # w[j-2]
    # sigma0(w[j-15]) = ror7 ^ ror18 ^ shr3
    asm.movw("r11", 7)
    asm.ror("r10", "r1", "r11")
    asm.movw("r11", 18)
    asm.ror("r12", "r1", "r11")
    asm.eor("r10", "r10", "r12")
    asm.lsri("r12", "r1", 3)
    asm.eor("r10", "r10", "r12")
    asm.add("r0", "r0", "r10")
    # sigma1(w[j-2]) = ror17 ^ ror19 ^ shr10
    asm.movw("r11", 17)
    asm.ror("r10", "r3", "r11")
    asm.movw("r11", 19)
    asm.ror("r12", "r3", "r11")
    asm.eor("r10", "r10", "r12")
    asm.lsri("r12", "r3", 10)
    asm.eor("r10", "r10", "r12")
    asm.add("r0", "r0", "r10")
    asm.add("r0", "r0", "r2")  # + w[j-7]
    asm.str_("r0", "r8", 64)  # w[j] = result (stays in the secret page)
    asm.addi("r6", "r6", 1)
    asm.cmpi("r6", 8)
    asm.bne("loop")
    asm.movw("r0", 0)
    asm.svc(SVC.EXIT)
    return asm


# ---------------------------------------------------------------------------
# Deliberately leaky fixtures
# ---------------------------------------------------------------------------


def secret_branch_program() -> Assembler:
    """The timing offender: a branch with unequal arms on a secret bit."""
    asm = Assembler()
    asm.mov32("r4", SECRET_VA)
    asm.ldr("r5", "r4", 0)
    asm.movw("r6", 1)
    asm.tst("r5", "r6")
    asm.beq("even")
    asm.nop()
    asm.nop()
    asm.nop()
    asm.label("even")
    asm.movw("r0", 0)
    asm.svc(SVC.EXIT)
    return asm


def secret_indexed_load_program() -> Assembler:
    """The cache offender: a table lookup indexed by secret bits."""
    asm = Assembler()
    asm.mov32("r4", SECRET_VA)
    asm.ldr("r5", "r4", 0)
    asm.movw("r6", 0xFC)
    asm.and_("r5", "r5", "r6")
    asm.ldrr("r0", "r4", "r5")  # load at secret-derived offset
    asm.svc(SVC.EXIT)
    return asm


def secret_indexed_store_program() -> Assembler:
    """The write-side cache offender: a store at a secret-derived
    address in the scratch page."""
    asm = Assembler()
    asm.mov32("r4", SECRET_VA)
    asm.ldr("r5", "r4", 0)
    asm.movw("r6", 0xFC)
    asm.and_("r5", "r5", "r6")
    asm.mov32("r7", SCRATCH_VA)
    asm.movw("r0", 1)
    asm.strr("r0", "r7", "r5")  # store at secret-derived offset
    asm.movw("r0", 0)
    asm.svc(SVC.EXIT)
    return asm


def early_exit_compare_program() -> Assembler:
    """The tutorial PIN-compare bug: exit at the first mismatching word,
    leaking the matching-prefix length through the iteration count."""
    asm = Assembler()
    asm.mov32("r4", SECRET_VA)
    asm.movw("r7", 0)
    asm.label("loop")
    asm.lsli("r8", "r7", 2)
    asm.ldrr("r5", "r4", "r8")  # a[i]
    asm.addi("r8", "r8", 16)
    asm.ldrr("r6", "r4", "r8")  # b[i]
    asm.cmp("r5", "r6")
    asm.bne("fail")  # early exit: iteration count leaks
    asm.addi("r7", "r7", 1)
    asm.cmpi("r7", 4)
    asm.bne("loop")
    asm.movw("r0", 1)
    asm.svc(SVC.EXIT)
    asm.label("fail")
    asm.movw("r0", 0)
    asm.svc(SVC.EXIT)
    return asm


# ---------------------------------------------------------------------------
# The corpus
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CorpusEntry:
    """One program plus the verdict the analyser must reach."""

    name: str
    build: Callable[[], Assembler]
    config: Callable[[], AnalysisConfig]
    expect: Tuple[str, ...] = ()  # error rule IDs that MUST be reported
    #: False for programs whose world the dynamic harness cannot map
    #: (they are still linted statically).
    dynamic: bool = True
    #: Secrets the dynamic checker varies; None = DYNAMIC_SECRETS.
    secrets: Optional[Tuple[Tuple[int, ...], ...]] = None

    @property
    def leaky(self) -> bool:
        return bool(self.expect)

    def dynamic_secrets(self) -> List[List[int]]:
        if self.secrets is not None:
            return [list(words) for words in self.secrets]
        return [list(words) for words in DYNAMIC_SECRETS]


def _checksum_config() -> AnalysisConfig:
    """The checksum enclave's world: code page plus a shared buffer.

    Nothing is secret — the CRC input comes from the OS — so data-
    dependent branching on it is fine; only well-formedness and ABI
    rules apply.
    """
    from repro.sdk.builder import CODE_VA, SHARED_VA

    return AnalysisConfig(
        base_va=CODE_VA,
        mapped_ranges=(
            MappedRange(CODE_VA, CODE_VA + PAGE_SIZE, True, False, True),
            MappedRange(SHARED_VA, SHARED_VA + PAGE_SIZE, True, True, False),
        ),
    )


def _checksum_program() -> Assembler:
    from repro.apps.checksum import crc_program

    return crc_program()


CORPUS: List[CorpusEntry] = [
    CorpusEntry("ct/xor-fold", xor_fold_program, sidechannel_config),
    CorpusEntry("ct/compare", ct_compare_program, sidechannel_config),
    CorpusEntry("ct/sha256-schedule", sha256_schedule_program, sidechannel_config),
    CorpusEntry(
        "apps/checksum", _checksum_program, _checksum_config, dynamic=False
    ),
    CorpusEntry(
        "leaky/secret-branch", secret_branch_program, sidechannel_config,
        expect=("KA101",),
    ),
    CorpusEntry(
        "leaky/secret-indexed-load", secret_indexed_load_program,
        sidechannel_config, expect=("KA102",),
    ),
    CorpusEntry(
        "leaky/secret-indexed-store", secret_indexed_store_program,
        sidechannel_config, expect=("KA103",),
    ),
    CorpusEntry(
        "leaky/early-exit-compare", early_exit_compare_program,
        sidechannel_config, expect=("KA101",),
        # Words 0-3 are the PIN, 4-7 the guess: vary where the first
        # mismatch lands so the early exit shows up dynamically.
        secrets=(
            (9, 2, 3, 4, 9, 9, 9, 9),  # mismatch at word 1
            (1, 2, 3, 4, 9, 9, 9, 9),  # mismatch at word 0
            (9, 9, 9, 4, 9, 9, 9, 9),  # mismatch at word 3
        ),
    ),
]

#: Secrets the dynamic checker varies when cross-validating the corpus.
#: 16 words fill a SHA-256 block; the compare programs read words 0-7.
DYNAMIC_SECRETS: List[List[int]] = [
    [0x00000000] * 16,
    [0xFFFFFFFF] * 16,
    [0x80000001, 0x7FFFFFFE] * 8,
    list(range(0x1000, 0x1010)),
]
