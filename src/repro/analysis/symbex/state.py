"""``SymPageDb``: an abstract PageDB that tolerates symbolic page numbers.

The scenario lattice concretizes the *structure* of the initial PageDB
(entry types and addrspace states become concrete when the scenario
choice-variables fork), so entries themselves are ordinary frozen
dataclasses and the unmodified ``spec_*`` functions can pattern-match
on them.  What stays symbolic are the *call arguments*: page numbers,
mapping words, flags.  This wrapper intercepts the two places the spec
observes a page number —

* ``valid_pageno`` returns a symbolic comparison instead of failing the
  ``isinstance(pageno, int)`` test, and
* ``__getitem__`` concretizes a symbolic page number at its first
  observation, forking the path once per *distinct entry value* rather
  than once per page (two interchangeable free pages are one branch).

Everything else (``is_free``, ``updated``, ``updated_many``) inherits
from :class:`~repro.spec.pagedb.AbsPageDb` and works because it bottoms
out in ``__getitem__``/``__index__``.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass, replace
from typing import Dict, List, Tuple

from repro.analysis.symbex.engine import Branch, current_context
from repro.analysis.symbex.values import SymBool, SymInt
from repro.monitor.layout import AddrspaceState
from repro.spec.pagedb import (
    AbsAddrspace,
    AbsData,
    AbsFree,
    AbsL1,
    AbsL2,
    AbsPageDb,
    AbsSpare,
    AbsThread,
)


def entry_tag(entry) -> str:
    """A stable, human-readable class for one PageDB entry."""
    if isinstance(entry, AbsFree):
        return "FREE"
    if isinstance(entry, AbsAddrspace):
        return f"ADDRSPACE.{AddrspaceState(entry.state).name}"
    if isinstance(entry, AbsThread):
        return "THREAD.entered" if entry.entered else "THREAD"
    if isinstance(entry, AbsL1):
        return "L1"
    if isinstance(entry, AbsL2):
        return "L2"
    if isinstance(entry, AbsData):
        return "DATA"
    if isinstance(entry, AbsSpare):
        return "SPARE"
    return type(entry).__name__


def _reify_value(value):
    if isinstance(value, SymInt):
        # int() concretizes through the active context: free (already
        # pinned) when the spec observed the variable, a genuine fork
        # when a symbolic value is first observed here.
        return int(value)
    if isinstance(value, tuple):
        return tuple(_reify_value(v) for v in value)
    if is_dataclass(value) and not isinstance(value, type):
        changes = {
            f.name: _reify_value(getattr(value, f.name)) for f in fields(value)
        }
        return replace(value, **changes)
    return value


def reify_db(db: AbsPageDb) -> AbsPageDb:
    """Replace symbolic ints stored inside entries with concrete values.

    Spec functions may store still-symbolic arguments into new entries
    (``AbsAddrspace(l1pt=l1pt_page)``); invariant checks and witness
    comparison need plain integers.
    """
    return AbsPageDb(
        npages=db.npages, entries=tuple(_reify_value(e) for e in db.entries)
    )


class SymPageDb(AbsPageDb):
    """An AbsPageDb whose queries accept symbolic page numbers."""

    @classmethod
    def wrap(cls, db: AbsPageDb) -> "SymPageDb":
        return cls(npages=db.npages, entries=db.entries)

    def valid_pageno(self, pageno):
        if isinstance(pageno, SymInt):
            # Domains are non-negative by construction, so the in-range
            # test reduces to the upper bound.
            return pageno < self.npages
        return super().valid_pageno(pageno)

    def __getitem__(self, pageno):
        if isinstance(pageno, SymInt):
            pageno = self._concretize_pageno(pageno)
        return super().__getitem__(pageno)

    def _concretize_pageno(self, pageno: SymInt) -> int:
        """Pin a symbolic pageno, forking per distinct entry value.

        Grouping by entry value (not raw page number) is what keeps the
        path census semantic: landing on either of two identical free
        pages is one path class, landing on a THREAD page versus a DATA
        page is two.
        """
        ctx = current_context()
        pinned = ctx.store.value_of(pageno.var)
        if pinned is not None:
            return pinned
        values = ctx.store.feasible_values(pageno.var)
        groups: List[Tuple[object, List[int]]] = []
        for value in values:
            if not 0 <= value < self.npages:
                raise AssertionError(
                    f"unchecked symbolic pageno {pageno.var.name} reached "
                    f"__getitem__ with out-of-range candidate {value}"
                )
            entry = self.entries[value]
            for key, members in groups:
                if key == entry:
                    members.append(value)
                    break
            else:
                groups.append((entry, [value]))
        branches = tuple(
            Branch(
                tag=entry_tag(key),
                constraints=(("in", pageno.var, frozenset(members)),),
                value=None,
            )
            for key, members in groups
        )
        ctx.decide(f"db[{pageno.var.name}]", branches)
        # The group constraint may still leave several interchangeable
        # pages; pick the smallest as the canonical representative.
        representative = ctx.store.feasible_values(pageno.var)[0]
        ctx.store.assert_true(("c", "eq", pageno.var, representative))
        return representative
