"""The forking path explorer (execution-generated paths).

The explorer runs a thunk — typically "build a scenario PageDB, then
call one ``spec_*`` function on symbolic arguments" — under a
:class:`PathContext`.  Whenever execution hits a branch whose outcome
the constraint store does not already entail, the context records a
*decision*: the current run takes the first feasible option, and every
other feasible option is queued as a decision prefix to re-execute
later.  Spec functions are pure and cheap, so re-execution from the
start per path (the classic execution-generated-testing scheme) is far
simpler than checkpointing the interpreter and costs microseconds.

Every decision carries a human-readable *tag*; the tuple of tags along
a path is its **signature**.  Signatures are the unit of the path
census and of witness deduplication: two leaves that differ only in
which of two interchangeable free pages an argument landed on share a
signature and count as one path class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.symbex.values import (
    Constraint,
    ConstraintStore,
    SymBool,
    SymInt,
    SymVar,
    Unsatisfiable,
)

_CURRENT: List["PathContext"] = []


def current_context() -> "PathContext":
    if not _CURRENT:
        raise RuntimeError(
            "symbolic value used outside a PathExplorer run; symbolic "
            "ints only make sense under explorer control"
        )
    return _CURRENT[-1]


@dataclass(frozen=True)
class Branch:
    """One option at a decision site: a tag plus the constraints taking it."""

    tag: str
    constraints: Tuple[Constraint, ...] = ()
    value: object = None


@dataclass
class PathResult:
    """One fully-explored feasible path."""

    signature: Tuple[str, ...]
    decisions: Tuple[int, ...]
    store: ConstraintStore
    value: object

    def model(self) -> Dict[SymVar, int]:
        return self.store.model()


class PathContext:
    """Per-path decision state: prefix replay, then frontier forking."""

    def __init__(self, prefix: Tuple[int, ...] = ()):
        self.prefix = prefix
        self.store = ConstraintStore()
        self.trail: List[str] = []
        self.decisions: List[int] = []
        self.pending: List[Tuple[int, ...]] = []
        self._vars: Dict[str, SymVar] = {}
        self._decision_index = 0

    # -- variable creation ---------------------------------------------------

    def new_int(self, name: str, domain: Sequence[int]) -> SymInt:
        if name in self._vars:
            raise ValueError(f"duplicate symbolic variable {name!r}")
        var = SymVar(name, domain)
        self._vars[name] = var
        self.store.register(var)
        return SymInt(var)

    # -- decisions -----------------------------------------------------------

    def decide(self, site: str, branches: Sequence[Branch]) -> Branch:
        """Resolve a decision site; forks siblings onto ``pending``.

        Branch feasibility is checked against the current store.  A site
        with exactly one feasible branch is *implied* — its constraints
        are asserted and its tag recorded, but it does not consume a
        decision slot (it re-derives identically on every re-execution).
        """
        feasible = [
            i
            for i, branch in enumerate(branches)
            if self.store.feasible(*branch.constraints)
        ]
        if not feasible:
            raise Unsatisfiable(f"decision site {site}: no feasible branch")
        if len(feasible) == 1:
            pick = feasible[0]
        else:
            slot = self._decision_index
            self._decision_index += 1
            if slot < len(self.prefix):
                pick = self.prefix[slot]
                if pick not in feasible:
                    raise Unsatisfiable(
                        f"decision site {site}: queued branch became infeasible"
                    )
            else:
                pick = feasible[0]
                taken = tuple(self.decisions)
                for other in feasible[1:]:
                    self.pending.append(taken + (other,))
            self.decisions.append(pick)
        chosen = branches[pick]
        if chosen.constraints:
            self.store.assert_true(*chosen.constraints)
        self.trail.append(f"{site}:{chosen.tag}")
        return chosen

    def decide_bool(self, condition: SymBool) -> bool:
        branch = self.decide(
            condition.label,
            (
                Branch(tag="T", constraints=(condition.pos,), value=True),
                Branch(tag="F", constraints=(condition.neg,), value=False),
            ),
        )
        return bool(branch.value)

    def choose(self, site: str, branches: Sequence[Branch]) -> object:
        return self.decide(site, branches).value

    def concretize(self, var: SymVar) -> int:
        """Pin ``var`` to one feasible value, forking over the others."""
        pinned = self.store.value_of(var)
        if pinned is not None:
            return pinned
        values = self.store.feasible_values(var)
        branch = self.decide(
            f"{var.name}:=",
            tuple(
                Branch(tag=str(v), constraints=(("c", "eq", var, v),), value=v)
                for v in values
            ),
        )
        return int(branch.value)  # type: ignore[arg-type]


class PathExplorer:
    """Depth-first enumeration of every feasible decision path."""

    def __init__(self, max_paths: int = 200_000):
        self.max_paths = max_paths

    def explore(self, thunk: Callable[[PathContext], object]) -> List[PathResult]:
        stack: List[Tuple[int, ...]] = [()]
        results: List[PathResult] = []
        while stack:
            prefix = stack.pop()
            ctx = PathContext(prefix)
            _CURRENT.append(ctx)
            try:
                value = thunk(ctx)
            finally:
                _CURRENT.pop()
            results.append(
                PathResult(
                    signature=tuple(ctx.trail),
                    decisions=tuple(ctx.decisions),
                    store=ctx.store,
                    value=value,
                )
            )
            if len(results) > self.max_paths:
                raise RuntimeError(
                    f"path explosion: more than {self.max_paths} paths"
                )
            # LIFO: depth-first, deterministic.
            stack.extend(reversed(ctx.pending))
        return results
