"""Per-SMC symbolic drivers and the feasible-path census.

A driver binds one spec function to (a) the scenario-lattice dimensions
it explores, (b) symbolic argument specs (page numbers over the full
page range plus an out-of-range representative, curated mapping-word
domains, boolean flags), and (c) an ``apply`` function that runs the
*real* spec code.  ``apply`` is written once and used twice: under the
explorer with symbolic values (path discovery) and at witness time with
the solver's concrete model (the oracle for expected outcomes).

After every probe the driver re-checks the spec-level postconditions:
the full PageDB validity invariants plus the from-scratch refcount
recount audit (``spec.invariants.collect_refcount_violations``) — a
path that produces an invalid or miscounted PageDB fails exploration
immediately, before it can become a "passing" witness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.monitor.errors import KomErr
from repro.monitor.layout import SMC, SVC, AddrspaceState, Mapping
from repro.spec.enter_spec import spec_validate_execution
from repro.spec.invariants import collect_refcount_violations, collect_violations
from repro.spec.pagedb import AbsPageDb
from repro.spec.smc_spec import (
    spec_alloc_spare,
    spec_finalise,
    spec_get_physpages,
    spec_init_addrspace,
    spec_init_l2ptable,
    spec_init_thread,
    spec_map_insecure,
    spec_map_secure,
    spec_remove,
    spec_stop,
)
from repro.spec.svc_spec import (
    spec_svc_init_l2ptable,
    spec_svc_map_data,
    spec_svc_unmap_data,
)

from repro.analysis.symbex.engine import PathContext, PathExplorer, PathResult
from repro.analysis.symbex.scenario import (
    AS_PAGE,
    DATA2_VA,
    FREE_SLOT_VA,
    NO_L2_VA,
    NPAGES,
    OOB_PAGE,
    PROG_VA,
    Scenario,
    THREAD_ENTRY,
    choose_scenario,
)
from repro.analysis.symbex.state import SymPageDb, reify_db

# ---------------------------------------------------------------------------
# Argument specs
# ---------------------------------------------------------------------------

PAGE_DOMAIN = tuple(range(NPAGES)) + (OOB_PAGE,)


def _word(va: int, r: bool = True, w: bool = False, x: bool = False) -> int:
    return Mapping(va=va, readable=r, writable=w, executable=x).encode()


#: A mapping word with bits outside the encoding: always invalid.
BAD_BITS_WORD = 0x8000_0000 | _word(PROG_VA, r=True)
#: Page-aligned VA but no permission bits: rejected (unreadable).
NO_PERM_WORD = PROG_VA

MAP_WORDS = (
    BAD_BITS_WORD,
    NO_PERM_WORD,
    _word(PROG_VA, r=True, w=True),  # scenario slot: ADDRINUSE when mapped
    _word(FREE_SLOT_VA, r=True, w=True),  # always-empty slot: SUCCESS
    _word(NO_L2_VA, r=True),  # l1index with no L2 table
)
MAP_INSECURE_WORDS = MAP_WORDS + (
    _word(FREE_SLOT_VA, r=True, x=True),  # executable insecure: rejected
)
UNMAP_WORDS = (
    BAD_BITS_WORD,
    NO_PERM_WORD,
    _word(DATA2_VA, r=True, w=True),  # the second data page's slot
    _word(FREE_SLOT_VA, r=True, w=True),  # empty slot
    _word(NO_L2_VA, r=True),
)

#: Arg spec kinds: ("page", name) | ("word", name, domain) |
#: ("flag", name) | ("const", value).
ArgSpec = Tuple


def _make_args(ctx: PathContext, specs: Sequence[ArgSpec]) -> List[object]:
    out: List[object] = []
    for spec in specs:
        kind = spec[0]
        if kind == "page":
            out.append(ctx.new_int(spec[1], PAGE_DOMAIN))
        elif kind == "word":
            out.append(ctx.new_int(spec[1], spec[2]))
        elif kind == "flag":
            out.append(ctx.new_int(spec[1], (0, 1)))
        elif kind == "const":
            out.append(spec[1])
        else:
            raise ValueError(f"unknown arg spec {spec!r}")
    return out


def _concrete_args(specs: Sequence[ArgSpec], model_values: Dict[str, int]) -> List[int]:
    out: List[int] = []
    for spec in specs:
        kind = spec[0]
        if kind == "const":
            out.append(int(spec[1]))
        else:
            out.append(int(model_values[spec[1]]))
    return out


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Driver:
    """One probed monitor call: scenario dimensions + symbolic args."""

    name: str
    kind: str  # "smc" | "enter" | "svc"
    callno: int
    args: Tuple[ArgSpec, ...]
    free: Tuple[str, ...] = ()
    pins: Tuple[Tuple[str, int], ...] = ()
    #: apply(db, args, scenario) -> (KomErr | None, AbsPageDb)
    apply: Callable = None
    #: want_entered for kind == "enter"
    want_entered: bool = False

    def explore(self, max_paths: int = 200_000) -> List[PathResult]:
        explorer = PathExplorer(max_paths=max_paths)
        return explorer.explore(self._probe)

    def _probe(self, ctx: PathContext):
        scenario = choose_scenario(ctx, self.free, dict(self.pins))
        args = _make_args(ctx, self.args)
        err, db = self.apply(SymPageDb.wrap(scenario.db), args, scenario)
        db = reify_db(db)
        _check_postconditions(self.name, db)
        return ProbeOutcome(scenario=scenario, err=err, db=db)

    def concrete_outcome(
        self, scenario: Scenario, args: Sequence[int], env=None
    ) -> Tuple[Optional[KomErr], AbsPageDb]:
        """The pure-spec oracle for one concrete argument vector.

        ``env`` carries replay-time machine facts the spec result
        depends on but exploration abstracts (the insecure base).
        """
        err, db = self.apply(scenario.db, list(args), scenario, env)
        _check_postconditions(self.name, db)
        return err, db


@dataclass
class ProbeOutcome:
    scenario: Scenario
    err: Optional[KomErr]  # None = Enter/Resume validation passed (executes)
    db: AbsPageDb


class PostconditionError(AssertionError):
    """A spec path produced an invalid or miscounted PageDB."""


def _check_postconditions(name: str, db: AbsPageDb) -> None:
    failures = collect_violations(db) + collect_refcount_violations(db)
    if failures:
        raise PostconditionError(f"{name}: {failures}")


# -- apply functions ---------------------------------------------------------


def _apply_get_physpages(db, args, scenario, env=None):
    err, _value, out = spec_get_physpages(db)
    return err, out


def _apply_init_addrspace(db, args, scenario, env=None):
    return spec_init_addrspace(db, args[0], args[1])


def _apply_init_thread(db, args, scenario, env=None):
    return spec_init_thread(db, args[0], args[1], args[2])


def _apply_init_l2ptable(db, args, scenario, env=None):
    return spec_init_l2ptable(db, args[0], args[1], args[2])


def _apply_map_secure(db, args, scenario, env=None):
    as_page, data_page, word, valid = args
    contents = scenario.insecure_page(0)
    return spec_map_secure(db, as_page, data_page, word, contents, valid)


def _apply_map_insecure(db, args, scenario, env=None):
    as_page, word, valid = args
    # The concrete insecure target only exists at replay time (it
    # depends on the machine's memory map); during exploration the spec
    # never branches on it, so 0 is a sound placeholder.
    target = 0
    if env is not None:
        base = env["insecure_base"]
        target = base if valid else base + 4
    return spec_map_insecure(db, as_page, word, target, valid)


def _apply_alloc_spare(db, args, scenario, env=None):
    return spec_alloc_spare(db, args[0], args[1])


def _apply_remove(db, args, scenario, env=None):
    return spec_remove(db, args[0])


def _apply_finalise(db, args, scenario, env=None):
    return spec_finalise(db, args[0])


def _apply_stop(db, args, scenario, env=None):
    return spec_stop(db, args[0])


def _apply_enter(want_entered):
    def apply(db, args, scenario, env=None):
        # Validation never mutates the PageDB; the execution itself (the
        # ``None`` outcome) is machine-dependent and checked by replay.
        err = spec_validate_execution(db, args[0], want_entered=want_entered)
        return err, db

    return apply


def _apply_svc(spec_fn):
    def apply(db, args, scenario, env=None):
        return spec_fn(db, AS_PAGE, *args)

    return apply


_SVC_PINS = (
    ("aspace_state", int(AddrspaceState.FINAL)),
    ("has_l2", 1),
    ("slot_used", 1),
    ("has_thread", 1),
    ("thread_entered", 0),
)

DRIVERS: Tuple[Driver, ...] = (
    Driver(
        name="get_physpages",
        kind="smc",
        callno=int(SMC.GET_PHYSPAGES),
        args=(),
        apply=_apply_get_physpages,
    ),
    Driver(
        name="init_addrspace",
        kind="smc",
        callno=int(SMC.INIT_ADDRSPACE),
        args=(("page", "as_page"), ("page", "l1pt_page")),
        apply=_apply_init_addrspace,
    ),
    Driver(
        name="init_thread",
        kind="smc",
        callno=int(SMC.INIT_THREAD),
        args=(("page", "as_page"), ("page", "thread_page"), ("const", THREAD_ENTRY)),
        free=("aspace_state",),
        apply=_apply_init_thread,
    ),
    Driver(
        name="init_l2ptable",
        kind="smc",
        callno=int(SMC.INIT_L2PTABLE),
        args=(("page", "as_page"), ("page", "l2pt_page"), ("word", "l1index", (0, 1, 256))),
        free=("aspace_state",),
        apply=_apply_init_l2ptable,
    ),
    Driver(
        name="map_secure",
        kind="smc",
        callno=int(SMC.MAP_SECURE),
        args=(
            ("page", "as_page"),
            ("page", "data_page"),
            ("word", "mapping_word", MAP_WORDS),
            ("flag", "insecure_valid"),
        ),
        free=("aspace_state", "slot_used"),
        apply=_apply_map_secure,
    ),
    Driver(
        name="map_insecure",
        kind="smc",
        callno=int(SMC.MAP_INSECURE),
        args=(
            ("page", "as_page"),
            ("word", "mapping_word", MAP_INSECURE_WORDS),
            ("flag", "insecure_valid"),
        ),
        free=("aspace_state", "slot_used"),
        apply=_apply_map_insecure,
    ),
    Driver(
        name="alloc_spare",
        kind="smc",
        callno=int(SMC.ALLOC_SPARE),
        args=(("page", "as_page"), ("page", "spare_page")),
        free=("aspace_state",),
        apply=_apply_alloc_spare,
    ),
    Driver(
        name="remove",
        kind="smc",
        callno=int(SMC.REMOVE),
        args=(("page", "pageno"),),
        free=("aspace_state", "has_l2", "slot_used", "has_thread", "has_spare"),
        apply=_apply_remove,
    ),
    Driver(
        name="finalise",
        kind="smc",
        callno=int(SMC.FINALISE),
        args=(("page", "as_page"),),
        free=("aspace_state",),
        apply=_apply_finalise,
    ),
    Driver(
        name="stop",
        kind="smc",
        callno=int(SMC.STOP),
        args=(("page", "as_page"),),
        free=("aspace_state",),
        apply=_apply_stop,
    ),
    Driver(
        name="enter",
        kind="enter",
        callno=int(SMC.ENTER),
        args=(("page", "thread_page"), ("const", 0), ("const", 0), ("const", 0)),
        free=("aspace_state", "has_thread", "slot_used", "thread_entered"),
        pins=(("has_spare", 0),),
        apply=_apply_enter(want_entered=False),
        want_entered=False,
    ),
    Driver(
        name="resume",
        kind="enter",
        callno=int(SMC.RESUME),
        args=(("page", "thread_page"),),
        free=("aspace_state", "has_thread", "slot_used", "thread_entered"),
        pins=(("has_spare", 0),),
        apply=_apply_enter(want_entered=True),
        want_entered=True,
    ),
    Driver(
        name="svc_init_l2ptable",
        kind="svc",
        callno=int(SVC.INIT_L2PTABLE),
        args=(("page", "spare_page"), ("word", "l1index", (0, 1, 256))),
        free=("has_spare", "has_other", "other_spare"),
        pins=_SVC_PINS,
        apply=_apply_svc(spec_svc_init_l2ptable),
    ),
    Driver(
        name="svc_map_data",
        kind="svc",
        callno=int(SVC.MAP_DATA),
        args=(("page", "spare_page"), ("word", "mapping_word", MAP_WORDS)),
        free=("has_spare", "has_other", "other_spare"),
        pins=_SVC_PINS,
        apply=_apply_svc(spec_svc_map_data),
    ),
    Driver(
        name="svc_unmap_data",
        kind="svc",
        callno=int(SVC.UNMAP_DATA),
        args=(("page", "data_page"), ("word", "mapping_word", UNMAP_WORDS)),
        free=("has_data2", "has_spare"),
        pins=_SVC_PINS,
        apply=_apply_svc(spec_svc_unmap_data),
    ),
)

_BY_NAME = {driver.name: driver for driver in DRIVERS}


def driver_names() -> Tuple[str, ...]:
    return tuple(driver.name for driver in DRIVERS)


def get_driver(name: str) -> Driver:
    if name not in _BY_NAME:
        raise KeyError(f"no such SMC driver {name!r}; see driver_names()")
    return _BY_NAME[name]


# ---------------------------------------------------------------------------
# Census
# ---------------------------------------------------------------------------


@dataclass
class ExploreResult:
    name: str
    paths: List[PathResult]

    @property
    def leaves(self) -> int:
        return len(self.paths)

    def signatures(self) -> Dict[Tuple[str, ...], PathResult]:
        """First path per distinct signature (the path classes)."""
        out: Dict[Tuple[str, ...], PathResult] = {}
        for path in self.paths:
            out.setdefault(path.signature, path)
        return out

    def census(self) -> Dict[str, object]:
        """The pinned regression shape: path classes per outcome."""
        by_error: Dict[str, int] = {}
        for signature, path in sorted(self.signatures().items()):
            outcome = path.value
            label = "EXECUTE" if outcome.err is None else KomErr(outcome.err).name
            by_error[label] = by_error.get(label, 0) + 1
        return {
            "paths": len(self.signatures()),
            "leaves": self.leaves,
            "errors": dict(sorted(by_error.items())),
        }


def explore_smc(name: str, max_paths: int = 200_000) -> ExploreResult:
    driver = get_driver(name)
    return ExploreResult(name=name, paths=driver.explore(max_paths=max_paths))


def full_census(names: Optional[Sequence[str]] = None) -> Dict[str, Dict]:
    return {
        name: explore_smc(name).census() for name in (names or driver_names())
    }
