"""Symbolic SMC-path exploration over the spec layer.

The spec layer (``repro.spec``) is pure: every monitor call is a
function ``AbsPageDb -> (KomErr, AbsPageDb)``.  This package runs those
functions on *symbolic* inputs — call arguments drawn from finite
domains plus a symbolic scenario lattice of initial PageDB states — and
forks at every branch the spec takes, enumerating every feasible
error/success path per SMC.  Each path is concretized into a replayable
witness (setup SMC trace + probe call + expected outcome) and replayed
on all three execution engines through the refinement machinery.

Modules:

* ``values``   — symbolic ints/bools over finite domains, the
  constraint store (interval + equality/disequality propagation with
  concrete-enumeration fallback; no external SMT dependency)
* ``engine``   — the forking path explorer (execution-generated paths:
  re-execution under a decision prefix)
* ``state``    — ``SymPageDb``: an AbsPageDb that tolerates symbolic
  page numbers, concretizing them kind-by-kind at first observation
* ``scenario`` — the initial-state lattice and its SMC setup traces
* ``explore``  — per-SMC symbolic drivers and the path census
* ``witness``  — path -> concrete witness concretization + (de)serialization
* ``replay``   — witness replay on reference/fast/turbo via CheckedMonitor
"""

from repro.analysis.symbex.engine import PathExplorer, PathResult
from repro.analysis.symbex.explore import (
    DRIVERS,
    ExploreResult,
    driver_names,
    explore_smc,
)
from repro.analysis.symbex.replay import ReplayHarness
from repro.analysis.symbex.values import ConstraintStore, SymInt, Unsatisfiable
from repro.analysis.symbex.witness import Witness

__all__ = [
    "ConstraintStore",
    "DRIVERS",
    "ExploreResult",
    "PathExplorer",
    "PathResult",
    "ReplayHarness",
    "SymInt",
    "Unsatisfiable",
    "Witness",
    "driver_names",
    "explore_smc",
]
