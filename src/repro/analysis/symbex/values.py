"""Symbolic values and the lightweight constraint solver.

Every symbolic value ranges over an explicit finite domain (page
numbers, curated mapping words, booleans, enum codes), which keeps the
solver complete without an external SMT dependency: constraints are
propagated as candidate-set (interval) filtering plus pairwise
equality/disequality/ordering arc consistency, and full satisfiability
falls back to backtracking enumeration over the (tiny) domains — the
"concrete-enumeration fallback" of the design.

Symbolic ints overload comparisons to return :class:`SymBool`; using a
``SymBool`` in a branch (``__bool__``) asks the active
:class:`~repro.analysis.symbex.engine.PathContext` for a decision,
which is where path forking happens.  Operations that need a concrete
value (indexing, bit operations) concretize: the context forks over the
remaining feasible domain values.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

Constraint = Tuple  # ('c', op, var, const) | ('v', op, a, b) | ('in'/'notin', var, frozenset)

_NEGATION = {
    "eq": "ne",
    "ne": "eq",
    "lt": "ge",
    "ge": "lt",
    "le": "gt",
    "gt": "le",
}

_CMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


class Unsatisfiable(Exception):
    """A constraint set admits no model."""


class SymVar:
    """One symbolic variable over an explicit finite integer domain."""

    __slots__ = ("name", "domain")

    def __init__(self, name: str, domain: Iterable[int]):
        self.name = name
        self.domain = tuple(sorted(set(int(v) for v in domain)))
        if not self.domain:
            raise ValueError(f"variable {name} has an empty domain")

    def __repr__(self) -> str:
        return f"SymVar({self.name})"


def negate(constraint: Constraint) -> Constraint:
    kind = constraint[0]
    if kind == "c":
        _, op, var, const = constraint
        return ("c", _NEGATION[op], var, const)
    if kind == "v":
        _, op, a, b = constraint
        return ("v", _NEGATION[op], a, b)
    if kind == "in":
        return ("notin", constraint[1], constraint[2])
    if kind == "notin":
        return ("in", constraint[1], constraint[2])
    raise ValueError(f"unknown constraint {constraint!r}")


def render_constraint(constraint: Constraint) -> str:
    kind = constraint[0]
    symbol = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}
    if kind == "c":
        _, op, var, const = constraint
        return f"{var.name}{symbol[op]}{const}"
    if kind == "v":
        _, op, a, b = constraint
        return f"{a.name}{symbol[op]}{b.name}"
    if kind == "in":
        return f"{constraint[1].name}in{sorted(constraint[2])}"
    if kind == "notin":
        return f"{constraint[1].name}notin{sorted(constraint[2])}"
    raise ValueError(f"unknown constraint {constraint!r}")


class ConstraintStore:
    """Candidate sets per variable plus pairwise links, kept arc-consistent."""

    def __init__(self) -> None:
        #: var -> sorted tuple of still-feasible values
        self.candidates: Dict[SymVar, Tuple[int, ...]] = {}
        #: var-var constraints ('v', op, a, b), filtered to fixpoint
        self.links: List[Constraint] = []

    def copy(self) -> "ConstraintStore":
        clone = ConstraintStore()
        clone.candidates = dict(self.candidates)
        clone.links = list(self.links)
        return clone

    def register(self, var: SymVar) -> None:
        if var not in self.candidates:
            self.candidates[var] = var.domain

    # -- constraint application -------------------------------------------

    def assert_true(self, *constraints: Constraint) -> None:
        """Add constraints; raises :class:`Unsatisfiable` on conflict."""
        for constraint in constraints:
            self._apply(constraint)
        self._propagate()

    def _apply(self, constraint: Constraint) -> None:
        kind = constraint[0]
        if kind == "c":
            _, op, var, const = constraint
            self.register(var)
            cmp = _CMP[op]
            self.candidates[var] = tuple(
                v for v in self.candidates[var] if cmp(v, const)
            )
            if not self.candidates[var]:
                raise Unsatisfiable(render_constraint(constraint))
        elif kind in ("in", "notin"):
            _, var, values = constraint
            self.register(var)
            keep = (
                (lambda v: v in values) if kind == "in" else (lambda v: v not in values)
            )
            self.candidates[var] = tuple(v for v in self.candidates[var] if keep(v))
            if not self.candidates[var]:
                raise Unsatisfiable(render_constraint(constraint))
        elif kind == "v":
            _, op, a, b = constraint
            self.register(a)
            self.register(b)
            self.links.append(constraint)
        else:
            raise ValueError(f"unknown constraint {constraint!r}")

    def _propagate(self) -> None:
        """Arc consistency over the pairwise links, to fixpoint."""
        changed = True
        while changed:
            changed = False
            for link in self.links:
                _, op, a, b = link
                cmp = _CMP[op]
                cand_a = self.candidates[a]
                cand_b = self.candidates[b]
                new_a = tuple(va for va in cand_a if any(cmp(va, vb) for vb in cand_b))
                new_b = tuple(vb for vb in cand_b if any(cmp(va, vb) for va in cand_a))
                if new_a != cand_a:
                    self.candidates[a] = new_a
                    changed = True
                if new_b != cand_b:
                    self.candidates[b] = new_b
                    changed = True
                if not new_a or not new_b:
                    raise Unsatisfiable(render_constraint(link))

    # -- queries ------------------------------------------------------------

    def feasible(self, *constraints: Constraint) -> bool:
        """Would adding ``constraints`` keep the store satisfiable?"""
        trial = self.copy()
        try:
            trial.assert_true(*constraints)
        except Unsatisfiable:
            return False
        return trial.satisfiable()

    def entailed(self, constraint: Constraint) -> bool:
        return not self.feasible(negate(constraint))

    def satisfiable(self) -> bool:
        return self._solve(first_only=True) is not None

    def value_of(self, var: SymVar) -> Optional[int]:
        """The variable's value if it is pinned to a single candidate."""
        cand = self.candidates.get(var, var.domain)
        return cand[0] if len(cand) == 1 else None

    def feasible_values(self, var: SymVar) -> Tuple[int, ...]:
        """Values of ``var`` that extend to a full model (enumeration)."""
        self.register(var)
        out = []
        for value in self.candidates[var]:
            if self.feasible(("c", "eq", var, value)):
                out.append(value)
        return tuple(out)

    def model(self) -> Dict[SymVar, int]:
        """One concrete assignment satisfying every constraint."""
        solution = self._solve(first_only=True)
        if solution is None:
            raise Unsatisfiable("no model")
        return solution

    # -- backtracking enumeration (domains are tiny) -------------------------

    def _solve(self, first_only: bool) -> Optional[Dict[SymVar, int]]:
        variables = sorted(self.candidates, key=lambda v: v.name)
        links = self.links

        def consistent(assignment: Dict[SymVar, int]) -> bool:
            for _, op, a, b in links:
                if a in assignment and b in assignment:
                    if not _CMP[op](assignment[a], assignment[b]):
                        return False
            return True

        def backtrack(index: int, assignment: Dict[SymVar, int]):
            if index == len(variables):
                return dict(assignment)
            var = variables[index]
            for value in self.candidates[var]:
                assignment[var] = value
                if consistent(assignment):
                    found = backtrack(index + 1, assignment)
                    if found is not None:
                        return found
            assignment.pop(var, None)
            return None

        return backtrack(0, {})


# ---------------------------------------------------------------------------
# Symbolic values
# ---------------------------------------------------------------------------


def _context():
    from repro.analysis.symbex.engine import current_context

    return current_context()


class SymBool:
    """A single comparison with its negation; branching forks the path."""

    __slots__ = ("pos", "neg", "label")

    def __init__(self, pos: Constraint, neg: Constraint, label: str):
        self.pos = pos
        self.neg = neg
        self.label = label

    def __bool__(self) -> bool:
        return _context().decide_bool(self)

    def __invert__(self) -> "SymBool":
        return SymBool(self.neg, self.pos, f"!({self.label})")


class SymInt:
    """A symbolic integer: a bare variable over a finite domain.

    Comparisons stay symbolic; anything needing a concrete value
    (indexing, bit operations, arithmetic) concretizes through the
    active path context, forking over the feasible domain values.
    """

    __slots__ = ("var",)

    def __init__(self, var: SymVar):
        self.var = var

    # -- comparisons (symbolic) ---------------------------------------------

    def _cmp(self, op: str, other) -> SymBool:
        if isinstance(other, SymInt):
            pos: Constraint = ("v", op, self.var, other.var)
            label = f"{self.var.name}{op}{other.var.name}"
        elif isinstance(other, int):
            pos = ("c", op, self.var, other)
            label = f"{self.var.name}{op}{other}"
        else:
            return NotImplemented
        return SymBool(pos, negate(pos), label)

    def __eq__(self, other):  # type: ignore[override]
        return self._cmp("eq", other)

    def __ne__(self, other):  # type: ignore[override]
        return self._cmp("ne", other)

    def __lt__(self, other):
        return self._cmp("lt", other)

    def __le__(self, other):
        return self._cmp("le", other)

    def __gt__(self, other):
        return self._cmp("gt", other)

    def __ge__(self, other):
        return self._cmp("ge", other)

    def __hash__(self):
        # Identity hash: symbolic equality must not leak into dict/set
        # membership (spec code uses pagenos as dict keys).
        return object.__hash__(self)

    # -- truthiness ---------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self._cmp("ne", 0))

    # -- concretization fallback --------------------------------------------

    def concretize(self) -> int:
        """Pin to one feasible value, forking over the alternatives."""
        return _context().concretize(self.var)

    def __index__(self) -> int:
        return self.concretize()

    def __int__(self) -> int:
        return self.concretize()

    def _concrete_binop(self, other, op):
        if isinstance(other, SymInt):
            other = other.concretize()
        return op(self.concretize(), other)

    def __and__(self, other):
        return self._concrete_binop(other, lambda a, b: a & b)

    def __rand__(self, other):
        return self._concrete_binop(other, lambda a, b: b & a)

    def __or__(self, other):
        return self._concrete_binop(other, lambda a, b: a | b)

    def __rshift__(self, other):
        return self._concrete_binop(other, lambda a, b: a >> b)

    def __lshift__(self, other):
        return self._concrete_binop(other, lambda a, b: a << b)

    def __add__(self, other):
        return self._concrete_binop(other, lambda a, b: a + b)

    def __radd__(self, other):
        return self._concrete_binop(other, lambda a, b: b + a)

    def __sub__(self, other):
        return self._concrete_binop(other, lambda a, b: a - b)

    def __rsub__(self, other):
        return self._concrete_binop(other, lambda a, b: b - a)

    def __mod__(self, other):
        return self._concrete_binop(other, lambda a, b: a % b)

    def __repr__(self) -> str:
        return f"SymInt({self.var.name})"


SymValue = Union[int, SymInt]
