"""The initial-state lattice and its constructive SMC setup traces.

A scenario is a point in a small lattice of abstract PageDB states:
which page roles exist (L2 table, mapped program page, thread, spare,
second data page, a second addrspace with its own spare) and which
state the addrspace is in (INIT / FINAL / STOPPED, with an optionally
*entered* thread).  Scenario choice-variables are forked by the path
explorer exactly like spec branches, so a driver that never observes a
dimension never pays for it.

Every scenario is **constructive**: it is defined by the SMC trace that
builds it from a freshly booted monitor.  The abstract initial PageDB
is the fold of the pure spec functions over that trace, which by the
refinement theorem (checked at replay by ``CheckedMonitor``) equals the
PageDB extracted from a machine that executed the same trace.  That is
what makes every explored path concretizable into a *replayable*
witness: unreachable states can never enter the census.

Page-role layout (fixed page numbers, ``NPAGES`` = 12)::

    0  addrspace          5  spare page      9  other's spare
    1  L1 table           6  second data    10  free
    2  L2 table           7  other aspace   11  free
    3  program page       8  other L1
    4  thread
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arm.assembler import Assembler
from repro.arm.memory import WORDS_PER_PAGE
from repro.monitor.errors import KomErr
from repro.monitor.layout import SMC, SVC, AddrspaceState, Mapping
from repro.spec.pagedb import AbsPageDb, AbsThread
from repro.spec.smc_spec import (
    spec_alloc_spare,
    spec_finalise,
    spec_init_addrspace,
    spec_init_l2ptable,
    spec_init_thread,
    spec_map_insecure,
    spec_map_secure,
    spec_remove,
    spec_stop,
)

from repro.analysis.symbex.engine import Branch, PathContext

# Page roles.
AS_PAGE = 0
L1_PAGE = 1
L2_PAGE = 2
PROG_PAGE = 3
THREAD_PAGE = 4
SPARE_PAGE = 5
DATA2_PAGE = 6
OTHER_AS_PAGE = 7
OTHER_L1_PAGE = 8
OTHER_SPARE_PAGE = 9
FREE_A_PAGE = 10
FREE_B_PAGE = 11

NPAGES = 12
#: Out-of-range representative included in symbolic pageno domains.
OOB_PAGE = NPAGES

#: VAs of the scenario's fixed mappings and the free probe slots.
PROG_VA = 0x1000  # l1index 0, l2index 1
DATA2_VA = 0x3000  # l1index 0, l2index 3
FREE_SLOT_VA = 0x2000  # l1index 0, l2index 2: valid, never pre-mapped
NO_L2_VA = 0x0040_0000  # l1index 1: no L2 table there in any scenario

THREAD_ENTRY = PROG_VA
EXIT_SENTINEL = 0x600D

#: Scenario choice variables, their option lists, and lattice defaults.
CHOICES: Tuple[Tuple[str, Tuple[int, ...], int], ...] = (
    ("aspace_state", tuple(int(s) for s in AddrspaceState), int(AddrspaceState.INIT)),
    ("has_l2", (0, 1), 1),
    ("slot_used", (0, 1), 1),
    ("has_thread", (0, 1), 1),
    ("thread_entered", (0, 1), 0),
    ("has_spare", (0, 1), 1),
    ("has_data2", (0, 1), 0),
    ("has_other", (0, 1), 0),
    ("other_spare", (0, 1), 1),
)

_DEFAULTS = {name: default for name, _, default in CHOICES}


def prog_mapping_word() -> int:
    return Mapping(va=PROG_VA, readable=True, writable=False, executable=True).encode()


def data2_mapping_word() -> int:
    return Mapping(va=DATA2_VA, readable=True, writable=True, executable=False).encode()


def default_program() -> List[int]:
    """The scenario enclave: return a sentinel and exit (3 instructions)."""
    asm = Assembler()
    asm.movw("r0", EXIT_SENTINEL)
    asm.svc(SVC.EXIT)
    return list(asm.assemble())


def svc_probe_program(number: int, args: Sequence[int]) -> List[int]:
    """An enclave that issues one SVC and exits with its error code.

    The dynamic-memory SVCs return no values, so after the SVC R0 holds
    the error code; EXIT then hands exactly that code back to the OS as
    the Enter result value.
    """
    asm = Assembler()
    padded = list(args) + [0] * (2 - len(args))
    asm.mov32("r0", padded[0] & 0xFFFFFFFF)
    asm.mov32("r1", padded[1] & 0xFFFFFFFF)
    asm.svc(number)
    asm.svc(SVC.EXIT)
    return list(asm.assemble())


def _page_words(words: Sequence[int]) -> Tuple[int, ...]:
    if len(words) > WORDS_PER_PAGE:
        raise ValueError("scenario page contents exceed one page")
    return tuple(words) + (0,) * (WORDS_PER_PAGE - len(words))


def data2_words() -> Tuple[int, ...]:
    return _page_words([0xD2000000 + i for i in range(8)])


@dataclass(frozen=True)
class Scenario:
    """One concrete point of the lattice plus its constructive trace."""

    choices: Tuple[Tuple[str, int], ...]
    setup: Tuple[Tuple, ...]  # ops, see build_setup
    db: AbsPageDb
    #: insecure page-offset -> full-page word tuple written during setup
    insecure: Tuple[Tuple[int, Tuple[int, ...]], ...]

    def choice(self, name: str) -> int:
        return dict(self.choices)[name]

    def insecure_page(self, offset: int) -> Tuple[int, ...]:
        for page_offset, words in self.insecure:
            if page_offset == offset:
                return words
        return (0,) * WORDS_PER_PAGE


class ScenarioError(AssertionError):
    """A constructive setup trace diverged from the spec fold."""


def choose_scenario(
    ctx: PathContext,
    free: Sequence[str],
    pins: Optional[Dict[str, int]] = None,
    program: Optional[Sequence[int]] = None,
) -> Scenario:
    """Fork scenario choice variables, then build the chosen scenario.

    ``free`` names the lattice dimensions this driver explores; all
    other dimensions are pinned to their defaults (or to ``pins``).
    Dependent dimensions are only forked when meaningful: ``slot_used``
    requires ``has_l2``, ``thread_entered`` requires an executable
    program page, a thread, and a FINAL-or-STOPPED addrspace, and
    ``other_spare`` requires ``has_other``.
    """
    pins = dict(pins or {})
    unknown = [name for name in list(free) + list(pins) if name not in _DEFAULTS]
    if unknown:
        raise ValueError(f"unknown scenario dimensions {unknown}")
    values: Dict[str, int] = {}

    def pick(name: str, options: Tuple[int, ...]) -> int:
        if name in pins:
            value = pins[name]
        elif name not in free or len(options) == 1:
            value = _DEFAULTS[name] if _DEFAULTS[name] in options else options[0]
        else:
            value = ctx.choose(
                name, tuple(Branch(tag=str(v), value=v) for v in options)
            )
        values[name] = int(value)
        return values[name]

    for name, options, _ in CHOICES:
        if name == "slot_used" and not values["has_l2"]:
            options = (0,)
        if name == "has_data2" and not values["has_l2"]:
            options = (0,)
        if name == "thread_entered":
            executable = values["has_thread"] and values["slot_used"]
            final_or_stopped = values["aspace_state"] in (
                int(AddrspaceState.FINAL),
                int(AddrspaceState.STOPPED),
            )
            if not (executable and final_or_stopped):
                options = (0,)
        if name == "other_spare" and not values["has_other"]:
            options = (0,)
        pick(name, options)

    return build_scenario(values, program=program)


# ---------------------------------------------------------------------------
# Constructive build: choices -> (setup ops, spec fold)
# ---------------------------------------------------------------------------

_SCENARIO_CACHE: Dict[Tuple, Scenario] = {}


def build_scenario(
    choices: Dict[str, int], program: Optional[Sequence[int]] = None
) -> Scenario:
    prog = tuple(program if program is not None else default_program())
    key = (tuple(sorted(choices.items())), prog)
    cached = _SCENARIO_CACHE.get(key)
    if cached is None:
        cached = _build_scenario(dict(choices), prog)
        _SCENARIO_CACHE[key] = cached
    return cached


def _build_scenario(c: Dict[str, int], prog: Tuple[int, ...]) -> Scenario:
    setup: List[Tuple] = []
    insecure: List[Tuple[int, Tuple[int, ...]]] = []
    state = AddrspaceState(c["aspace_state"])

    if c["slot_used"]:
        insecure.append((0, _page_words(prog)))
        setup.append(("write_insecure", 0, list(_page_words(prog))))
    if c["has_data2"]:
        insecure.append((1, data2_words()))
        setup.append(("write_insecure", 1, list(data2_words())))

    def smc(callno: int, *args: int, expect: str = "success") -> None:
        setup.append(("smc", int(callno), [int(a) for a in args], expect))

    smc(SMC.INIT_ADDRSPACE, AS_PAGE, L1_PAGE)
    if c["has_l2"]:
        smc(SMC.INIT_L2PTABLE, AS_PAGE, L2_PAGE, 0)
    if c["slot_used"]:
        smc(SMC.MAP_SECURE, AS_PAGE, PROG_PAGE, prog_mapping_word(), 0)
    if c["has_data2"]:
        smc(SMC.MAP_SECURE, AS_PAGE, DATA2_PAGE, data2_mapping_word(), 1)
    if c["has_thread"]:
        smc(SMC.INIT_THREAD, AS_PAGE, THREAD_PAGE, THREAD_ENTRY)
    if c["has_spare"]:
        smc(SMC.ALLOC_SPARE, AS_PAGE, SPARE_PAGE)
    if c["has_other"]:
        smc(SMC.INIT_ADDRSPACE, OTHER_AS_PAGE, OTHER_L1_PAGE)
        if c["other_spare"]:
            smc(SMC.ALLOC_SPARE, OTHER_AS_PAGE, OTHER_SPARE_PAGE)
    needs_final = state is AddrspaceState.FINAL or c["thread_entered"]
    if needs_final:
        smc(SMC.FINALISE, AS_PAGE)
    if c["thread_entered"]:
        setup.append(("interrupt", 1))
        smc(SMC.ENTER, THREAD_PAGE, 0, 0, 0, expect="interrupted")
    if state is AddrspaceState.STOPPED:
        smc(SMC.STOP, AS_PAGE)

    db = fold_setup(AbsPageDb.initial(NPAGES), setup)
    return Scenario(
        choices=tuple(sorted(choices_items(c))),
        setup=tuple(_freeze_op(op) for op in setup),
        db=db,
        insecure=tuple(insecure),
    )


def _freeze_op(op: Tuple) -> Tuple:
    if op[0] == "smc":
        return (op[0], op[1], tuple(op[2]), op[3])
    if op[0] == "write_insecure":
        return (op[0], op[1], tuple(op[2]))
    return tuple(op)


def choices_items(c: Dict[str, int]) -> List[Tuple[str, int]]:
    return [(name, int(c[name])) for name, _, _ in CHOICES]


# ---------------------------------------------------------------------------
# The spec fold: the pure oracle for a setup trace
# ---------------------------------------------------------------------------

#: Placeholder saved context for a spec-side suspended thread; the real
#: machine context is execution-dependent, so witness comparisons erase
#: contexts on both sides (see ``witness.normalise_db``).
PLACEHOLDER_CONTEXT = (0,) * 17


def fold_setup(db: AbsPageDb, setup: Sequence[Tuple]) -> AbsPageDb:
    """Fold the pure spec over a setup trace; raises on any error."""
    insecure: Dict[int, Tuple[int, ...]] = {}
    for op in setup:
        kind = op[0]
        if kind == "write_insecure":
            insecure[op[1]] = tuple(op[2])
        elif kind == "interrupt":
            continue
        elif kind == "smc":
            _, callno, args, expect = op
            err, db = apply_spec_smc(db, callno, list(args), insecure)
            wanted = KomErr.INTERRUPTED if expect == "interrupted" else KomErr.SUCCESS
            if err is not wanted:
                raise ScenarioError(
                    f"setup op {op!r} returned {err!r}, wanted {wanted!r}"
                )
        else:
            raise ValueError(f"unknown setup op {op!r}")
    return db


def apply_spec_smc(
    db: AbsPageDb,
    callno: int,
    args: Sequence[int],
    insecure: Dict[int, Tuple[int, ...]],
) -> Tuple[KomErr, AbsPageDb]:
    """Run one SMC through the pure spec (no machine involved).

    Insecure-source arguments are resolved against the trace's written
    pages: MAP_SECURE argument 3 is a page *offset* into insecure RAM,
    and unwritten pages read as zeros.  ENTER appears only in setup
    traces (interrupted immediately); its spec effect is suspending the
    thread with a placeholder context.
    """
    from dataclasses import replace

    padded = list(args) + [0] * (4 - len(args))
    if callno == SMC.INIT_ADDRSPACE:
        return spec_init_addrspace(db, padded[0], padded[1])
    if callno == SMC.INIT_THREAD:
        return spec_init_thread(db, padded[0], padded[1], padded[2])
    if callno == SMC.INIT_L2PTABLE:
        return spec_init_l2ptable(db, padded[0], padded[1], padded[2])
    if callno == SMC.MAP_SECURE:
        contents = insecure.get(padded[3], (0,) * WORDS_PER_PAGE)
        return spec_map_secure(
            db, padded[0], padded[1], padded[2], contents, insecure_valid=True
        )
    if callno == SMC.MAP_INSECURE:
        return spec_map_insecure(db, padded[0], padded[1], padded[2], True)
    if callno == SMC.ALLOC_SPARE:
        return spec_alloc_spare(db, padded[0], padded[1])
    if callno == SMC.REMOVE:
        return spec_remove(db, padded[0])
    if callno == SMC.FINALISE:
        return spec_finalise(db, padded[0])
    if callno == SMC.STOP:
        return spec_stop(db, padded[0])
    if callno == SMC.ENTER:
        thread = db[padded[0]]
        if not isinstance(thread, AbsThread):
            raise ScenarioError("setup ENTER on a non-thread page")
        suspended = replace(thread, entered=True, context=PLACEHOLDER_CONTEXT)
        return (KomErr.INTERRUPTED, db.updated(padded[0], suspended))
    raise ValueError(f"setup trace cannot contain SMC {callno}")
