"""Concrete witnesses: one replayable test vector per feasible path.

A witness pins a path class down to numbers: the scenario (a point of
the initial-state lattice, i.e. a constructive SMC setup trace), the
concrete probe arguments produced by the constraint solver's model, and
the expected outcome.  Expected outcomes live at two levels:

* ``spec_err`` — what the pure spec says this path returns
  (``"EXECUTE"`` for Enter/Resume paths whose validation passes and
  hand control to the enclave);
* ``machine_err`` / ``expected_value`` — what ``monitor.smc`` must
  return when the witness is replayed on a real engine.  For plain SMCs
  these coincide with the spec; for executing paths the witness
  predicts the enclave run (the scenario program exits with a known
  sentinel, or faults on an unmapped entry point), and for SVC probes
  the enclave program issues the SVC and exits with its error code, so
  the Enter value *is* the spec-level SVC error.

The expected final PageDB is not stored: it is recomputed at replay
time by re-running the spec oracle (``Driver.concrete_outcome``) on the
witness's own data, so a serialized corpus can never drift from the
spec silently — ``replay`` cross-checks the stored error names against
the recomputation and fails loudly on any mismatch.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.monitor.errors import KomErr
from repro.spec.pagedb import AbsAddrspace, AbsPageDb, AbsThread
from repro.spec.smc_spec import spec_get_physpages

from repro.analysis.symbex.explore import (
    Driver,
    ExploreResult,
    ProbeOutcome,
    _concrete_args,
    get_driver,
)
from repro.analysis.symbex.scenario import (
    EXIT_SENTINEL,
    PLACEHOLDER_CONTEXT,
    THREAD_PAGE,
    Scenario,
    build_scenario,
    svc_probe_program,
)

CORPUS_VERSION = 1


@dataclass(frozen=True)
class Witness:
    """One concrete, replayable instance of a feasible spec path."""

    smc: str
    kind: str  # "smc" | "enter" | "svc"
    callno: int
    signature: Tuple[str, ...]
    choices: Tuple[Tuple[str, int], ...]
    args: Tuple[int, ...]
    spec_err: str  # KomErr name, or "EXECUTE"
    machine_err: str  # KomErr name expected from monitor.smc
    expected_value: Optional[int]
    #: False only where the post-state is machine-defined beyond the
    #: spec (a faulting enclave run); tri-engine agreement still holds.
    check_db: bool = True

    @property
    def label(self) -> str:
        return f"{self.smc}[{'/'.join(self.signature)}]"

    def scenario(self) -> Scenario:
        program = None
        if self.kind == "svc":
            program = svc_probe_program(self.callno, self.args)
        return build_scenario(dict(self.choices), program=program)

    def expected(self, env=None) -> Tuple[Scenario, Optional[KomErr], AbsPageDb]:
        """Re-run the spec oracle: (scenario, spec err, spec final db)."""
        driver = get_driver(self.smc)
        scenario = self.scenario()
        err, db = driver.concrete_outcome(scenario, self.args, env=env)
        return scenario, err, db

    def expected_final_db(self, scenario: Scenario, spec_db: AbsPageDb) -> AbsPageDb:
        """The machine-level expected PageDB after the probe.

        For executing witnesses that run to a clean exit, the entered
        thread has returned to the OS by the time the probe completes.
        """
        ran_to_exit = self.kind == "svc" or (
            self.spec_err == "EXECUTE" and self.machine_err == "SUCCESS"
        )
        if ran_to_exit:
            thread = spec_db[THREAD_PAGE]
            if isinstance(thread, AbsThread) and thread.entered:
                spec_db = spec_db.updated(
                    THREAD_PAGE, replace(thread, entered=False, context=None)
                )
        return spec_db

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "smc": self.smc,
            "kind": self.kind,
            "callno": self.callno,
            "signature": list(self.signature),
            "choices": [list(pair) for pair in self.choices],
            "args": list(self.args),
            "spec_err": self.spec_err,
            "machine_err": self.machine_err,
            "expected_value": self.expected_value,
            "check_db": self.check_db,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Witness":
        return cls(
            smc=data["smc"],
            kind=data["kind"],
            callno=int(data["callno"]),
            signature=tuple(data["signature"]),
            choices=tuple((name, int(v)) for name, v in data["choices"]),
            args=tuple(int(a) for a in data["args"]),
            spec_err=data["spec_err"],
            machine_err=data["machine_err"],
            expected_value=(
                None if data["expected_value"] is None else int(data["expected_value"])
            ),
            check_db=bool(data["check_db"]),
        )


def normalise_db(db: AbsPageDb) -> AbsPageDb:
    """Erase the fields a spec/machine PageDB comparison cannot pin.

    Measurements (the spec's unbounded ``measured`` word sequence and
    the finalised hash) are checked by ``CheckedMonitor`` separately;
    suspended-thread contexts are execution state the pure spec only
    models with a placeholder.
    """
    entries = []
    for entry in db.entries:
        if isinstance(entry, AbsAddrspace):
            entry = replace(entry, measured=(), measurement=None)
        elif isinstance(entry, AbsThread) and entry.context is not None:
            entry = replace(entry, context=PLACEHOLDER_CONTEXT)
        entries.append(entry)
    return AbsPageDb(npages=db.npages, entries=tuple(entries))


# ---------------------------------------------------------------------------
# Path -> witness concretization
# ---------------------------------------------------------------------------


class WitnessError(AssertionError):
    """Concretizing a path did not reproduce the path's own outcome."""


def build_witnesses(result: ExploreResult) -> List[Witness]:
    """One witness per distinct path signature, in signature order."""
    driver = get_driver(result.name)
    witnesses = []
    for signature, path in sorted(result.signatures().items()):
        witnesses.append(_build_one(driver, signature, path))
    return witnesses


def _build_one(driver: Driver, signature: Tuple[str, ...], path) -> Witness:
    model = {var.name: value for var, value in path.model().items()}
    args = tuple(_concrete_args(driver.args, model))
    outcome: ProbeOutcome = path.value
    choices = outcome.scenario.choices

    # SVC probes bake their concrete arguments into the enclave program,
    # which changes the program page's contents (and thus the scenario's
    # PageDB): rebuild the scenario around the actual probe program.
    scenario = outcome.scenario
    if driver.kind == "svc":
        scenario = build_scenario(
            dict(choices), program=svc_probe_program(driver.callno, args)
        )

    spec_outcome, _db = driver.concrete_outcome(scenario, args)
    if spec_outcome is not outcome.err:
        raise WitnessError(
            f"{driver.name}{args}: model replay returned {spec_outcome!r}, "
            f"path said {outcome.err!r}"
        )
    spec_err = "EXECUTE" if spec_outcome is None else KomErr(spec_outcome).name

    expected_value: Optional[int] = None
    check_db = True
    if driver.kind == "svc":
        # Probe program: issue the SVC, then EXIT with its error in R0.
        machine_err = KomErr.SUCCESS.name
        expected_value = int(spec_outcome)
    elif spec_err == "EXECUTE":
        if dict(choices)["slot_used"]:
            # Program page mapped: runs `mov r0, sentinel; svc EXIT`
            # (Resume re-enters one instruction in, same exit).
            machine_err = KomErr.SUCCESS.name
            expected_value = EXIT_SENTINEL
        else:
            # Entry point unmapped: the first fetch faults.  The faulted
            # thread's exact post-state is machine-defined, so only
            # tri-engine agreement and containment gate the final db.
            machine_err = KomErr.FAULT.name
            check_db = False
    else:
        machine_err = spec_err
        if driver.name == "get_physpages":
            _err, value, _out = spec_get_physpages(scenario.db)
            expected_value = int(value)

    return Witness(
        smc=driver.name,
        kind=driver.kind,
        callno=driver.callno,
        signature=signature,
        choices=choices,
        args=args,
        spec_err=spec_err,
        machine_err=machine_err,
        expected_value=expected_value,
        check_db=check_db,
    )


# ---------------------------------------------------------------------------
# Corpus (de)serialization
# ---------------------------------------------------------------------------


def corpus_to_dict(witnesses: Sequence[Witness], census: Dict) -> Dict:
    return {
        "version": CORPUS_VERSION,
        "census": census,
        "witnesses": [w.to_dict() for w in witnesses],
    }


def corpus_from_dict(data: Dict) -> List[Witness]:
    if data.get("version") != CORPUS_VERSION:
        raise ValueError(f"unsupported witness corpus version {data.get('version')!r}")
    return [Witness.from_dict(entry) for entry in data["witnesses"]]


def save_corpus(path: str, witnesses: Sequence[Witness], census: Dict) -> None:
    with open(path, "w") as handle:
        json.dump(corpus_to_dict(witnesses, census), handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_corpus(path: str) -> List[Witness]:
    with open(path) as handle:
        return corpus_from_dict(json.load(handle))
