"""Witness replay on the real monitor, across all execution engines.

Every witness is executed end-to-end on a booted ``KomodoMonitor`` —
once per engine (reference / fast / turbo) — wrapped in the existing
``CheckedMonitor`` refinement machinery, so each setup SMC and the
probe itself are already held to spec lockstep, frame conditions,
invariants, measurement refinement, and Enter/Resume containment.  On
top of that the harness asserts the witness's own expectations:

1. the setup trace reproduces the scenario's spec-fold PageDB;
2. the probe returns exactly the predicted ``(err, value)``;
3. the extracted post-probe PageDB equals the spec oracle's output
   (modulo measurement/context normalization), and
4. all engines produce identical outcomes (the tri-engine
   differential), including identical normalized post-states.

Per engine the monitor is booted once and rewound per witness with
``CampaignSnapshot`` (the PR 5 fast-rewind machinery); post-setup
checkpoints are additionally cached per scenario so the ~15 setup SMCs
of a lattice point are paid once per engine, not once per witness.
SVC witnesses bake their arguments into the enclave program, making
every setup unique — those pay full price and are the replay budget's
dominant term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.arm.memory import PAGE_SIZE
from repro.faults.snapshot import CampaignSnapshot
from repro.monitor.errors import KomErr
from repro.monitor.komodo import KomodoMonitor
from repro.monitor.layout import SMC
from repro.spec.pagedb import AbsPageDb
from repro.util.watchdog import TrialTimeout, time_limit
from repro.verification.extract import extract_pagedb
from repro.verification.refinement import CheckedMonitor, RefinementError

from repro.analysis.symbex.scenario import NPAGES, THREAD_PAGE, Scenario
from repro.analysis.symbex.witness import Witness, normalise_db

DEFAULT_ENGINES: Tuple[str, ...] = ("reference", "fast", "turbo")

#: Scenarios touch two insecure pages; a small window keeps per-engine
#: snapshots cheap (the default 1 MiB insecure RAM would dominate them).
INSECURE_SIZE = 4 * PAGE_SIZE


class ReplayError(AssertionError):
    """A witness did not replay as its spec path predicts."""


@dataclass(frozen=True)
class ReplayOutcome:
    """What one engine produced for one witness."""

    engine: str
    err: str
    value: int
    db: AbsPageDb  # normalized post-probe extraction


@dataclass(frozen=True)
class ReplayFailure:
    witness: str
    engine: str
    message: str

    def __str__(self) -> str:
        return f"{self.witness} [{self.engine}]: {self.message}"


class ReplayHarness:
    """Boot-once, rewind-per-witness replay across engines."""

    def __init__(
        self,
        engines: Sequence[str] = DEFAULT_ENGINES,
        secure_pages: int = NPAGES,
    ):
        self.engines = tuple(engines)
        self.secure_pages = secure_pages
        self._sessions: Dict[str, Tuple[KomodoMonitor, CampaignSnapshot]] = {}
        #: (engine, setup ops) -> post-setup checkpoint + lockstep spec db
        self._prepared_cache: Dict[Tuple, Tuple[CampaignSnapshot, AbsPageDb]] = {}

    # -- per-engine machinery -------------------------------------------------

    def _session(self, engine: str) -> Tuple[KomodoMonitor, CampaignSnapshot]:
        if engine not in self._sessions:
            monitor = KomodoMonitor(
                secure_pages=self.secure_pages,
                insecure_size=INSECURE_SIZE,
                cpu_engine=engine,
            )
            self._sessions[engine] = (monitor, CampaignSnapshot(monitor))
        return self._sessions[engine]

    def _run_setup(self, checked: CheckedMonitor, scenario: Scenario) -> None:
        memmap = checked.monitor.state.memmap
        for op in scenario.setup:
            kind = op[0]
            if kind == "write_insecure":
                checked.monitor.state.memory.write_words(
                    memmap.insecure.base + op[1] * PAGE_SIZE, list(op[2])
                )
            elif kind == "interrupt":
                checked.schedule_interrupt(op[1])
            elif kind == "smc":
                _, callno, args, expect = op
                args = list(args)
                if callno == SMC.MAP_SECURE:
                    # Setup traces address insecure RAM by page offset.
                    args[3] = memmap.insecure.base + args[3] * PAGE_SIZE
                err, _value = checked.smc(callno, *args)
                wanted = (
                    KomErr.INTERRUPTED if expect == "interrupted" else KomErr.SUCCESS
                )
                if err is not wanted:
                    raise ReplayError(
                        f"setup {op!r} returned {err!r}, scenario needs {wanted!r}"
                    )
            else:
                raise ReplayError(f"unknown setup op {op!r}")

    def _prepare(
        self, engine: str, scenario: Scenario, cacheable: bool
    ) -> CheckedMonitor:
        """A CheckedMonitor sitting exactly at the scenario's state."""
        monitor, boot = self._session(engine)
        key = (engine, scenario.setup)
        cached = self._prepared_cache.get(key)
        if cached is not None:
            snapshot, spec_db = cached
            snapshot.restore()
            checked = CheckedMonitor(monitor=monitor)
            checked.spec_db = spec_db
            return checked
        boot.restore()
        checked = CheckedMonitor(monitor=monitor)
        self._run_setup(checked, scenario)
        # The constructive-lattice guarantee: the machine that ran the
        # setup trace extracts to the spec fold of the same trace.
        if normalise_db(checked.spec_db) != normalise_db(scenario.db):
            raise ReplayError(
                f"setup lockstep db diverged from the scenario fold "
                f"for choices {scenario.choices!r}"
            )
        if cacheable:
            self._prepared_cache[key] = (CampaignSnapshot(monitor), checked.spec_db)
        return checked

    # -- witness execution ----------------------------------------------------

    @staticmethod
    def _machine_call(witness: Witness, memmap) -> Tuple[int, Tuple[int, ...]]:
        """The concrete ``monitor.smc`` invocation for a witness probe."""
        base = memmap.insecure.base
        args = list(witness.args)
        if witness.kind == "svc":
            # The SVC arguments are baked into the enclave program; the
            # probe is the Enter that runs it.
            return int(SMC.ENTER), (THREAD_PAGE, 0, 0, 0)
        if witness.smc == "map_secure":
            as_page, data_page, word, valid = args
            source = base if valid else base + 4  # page-aligned vs not
            return witness.callno, (as_page, data_page, word, source)
        if witness.smc == "map_insecure":
            as_page, word, valid = args
            target = base if valid else base + 4
            return witness.callno, (as_page, word, target)
        return witness.callno, tuple(args)

    def replay_one(self, witness: Witness, engine: str) -> ReplayOutcome:
        """Run one witness on one engine; raises ReplayError on mismatch."""
        scenario = witness.scenario()
        checked = self._prepare(engine, scenario, cacheable=witness.kind != "svc")
        monitor = checked.monitor
        memmap = monitor.state.memmap

        env = {"insecure_base": memmap.insecure.base}
        _scenario, spec_err, spec_db = witness.expected(env=env)
        spec_err_name = "EXECUTE" if spec_err is None else KomErr(spec_err).name
        if spec_err_name != witness.spec_err:
            raise ReplayError(
                f"corpus drift: stored spec error {witness.spec_err}, "
                f"spec now returns {spec_err_name}"
            )

        callno, call_args = self._machine_call(witness, memmap)
        try:
            err, value = checked.smc(callno, *call_args)
        except RefinementError as exc:
            raise ReplayError(f"refinement check failed: {exc}") from exc

        if KomErr(err).name != witness.machine_err:
            raise ReplayError(
                f"probe returned {KomErr(err).name}, witness expects "
                f"{witness.machine_err}"
            )
        if witness.expected_value is not None and value != witness.expected_value:
            raise ReplayError(
                f"probe value {value:#x}, witness expects "
                f"{witness.expected_value:#x}"
            )
        extracted = normalise_db(extract_pagedb(monitor.state))
        if witness.check_db:
            expected = normalise_db(witness.expected_final_db(scenario, spec_db))
            if extracted != expected:
                diff = _first_diff(expected, extracted)
                raise ReplayError(f"post-state diverged from spec: {diff}")
        return ReplayOutcome(
            engine=engine, err=KomErr(err).name, value=value, db=extracted
        )

    def check(
        self,
        witnesses: Iterable[Witness],
        progress=None,
        trial_timeout: Optional[float] = None,
    ) -> List[ReplayFailure]:
        """Replay every witness on every engine; collect all failures.

        ``trial_timeout`` bounds one witness replay in wall-clock
        seconds (``repro.util.watchdog``): a wedged replay fails that
        witness with a clear error instead of hanging the run.  The
        stranded session monitor is discarded and rebooted so later
        witnesses replay from a clean machine.
        """
        failures: List[ReplayFailure] = []
        for index, witness in enumerate(witnesses):
            outcomes: Dict[str, ReplayOutcome] = {}
            for engine in self.engines:
                try:
                    with time_limit(trial_timeout, f"witness {witness.label}"):
                        outcomes[engine] = self.replay_one(witness, engine)
                except TrialTimeout as exc:
                    failures.append(ReplayFailure(witness.label, engine, str(exc)))
                    # A timeout can interrupt replay anywhere — mid-SMC,
                    # mid-snapshot-capture — so nothing about this
                    # engine's session or its cached checkpoints can be
                    # trusted any more.  Drop them; the next witness
                    # reboots and re-prepares from scratch.
                    self._sessions.pop(engine, None)
                    self._prepared_cache = {
                        key: entry
                        for key, entry in self._prepared_cache.items()
                        if key[0] != engine
                    }
                except AssertionError as exc:
                    failures.append(ReplayFailure(witness.label, engine, str(exc)))
            if len(outcomes) == len(self.engines) > 1:
                reference = outcomes[self.engines[0]]
                for engine in self.engines[1:]:
                    other = outcomes[engine]
                    if (other.err, other.value, other.db) != (
                        reference.err,
                        reference.value,
                        reference.db,
                    ):
                        failures.append(
                            ReplayFailure(
                                witness.label,
                                engine,
                                f"diverges from {reference.engine}: "
                                f"({other.err}, {other.value:#x}) vs "
                                f"({reference.err}, {reference.value:#x})",
                            )
                        )
            if progress is not None:
                progress(index + 1, witness, failures)
        return failures


def _first_diff(expected: AbsPageDb, actual: AbsPageDb) -> str:
    for pageno in range(expected.npages):
        if expected[pageno] != actual[pageno]:
            return (
                f"page {pageno}: spec {expected[pageno]!r} "
                f"!= machine {actual[pageno]!r}"
            )
    return "page counts differ"
