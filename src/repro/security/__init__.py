"""Noninterference machinery (paper section 6).

Executable ports of the paper's security definitions: weak page
equivalence ``=enc`` (Definition 1), observational equivalence ``≈enc``
(Definition 2) and the OS-adversary relation ``≈adv``, the
declassification axioms of section 6.2, and a bisimulation harness for
Theorem 6.1 used by the property-based tests: run two executions from
≈-related states under identical adversary inputs, and check the final
states remain related (confidentiality with ≈adv; integrity with ≈enc).
"""

from repro.security.equivalence import (
    adv_equivalent,
    enc_equivalent,
    pages_weak_equivalent,
)
from repro.security.noninterference import (
    BisimulationHarness,
    NoninterferenceViolation,
    ObservableOutcome,
)
from repro.security.sidechannel import LeakReport, check_constant_time

__all__ = [
    "BisimulationHarness",
    "LeakReport",
    "NoninterferenceViolation",
    "ObservableOutcome",
    "adv_equivalent",
    "check_constant_time",
    "enc_equivalent",
    "pages_weak_equivalent",
]
