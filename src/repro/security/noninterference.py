"""Bisimulation harness for Theorem 6.1.

The paper proves noninterference by bisimulation: two executions of the
SMC handler beginning in ≈L-related states, given the same adversary
inputs, end in ≈L-related states.  This harness *checks* the same
statement executably:

* **Confidentiality** (observer = the OS adversary, relation ≈adv):
  two worlds are set up identically, then the victim enclave's private
  state is perturbed in one world (so the initial states are ≈adv-related
  but not equal).  The same adversary trace is run in both; every
  OS-observable output (each SMC's return registers, modulo the
  declassification axioms) must be identical, and the final states must
  again be ≈adv-related.

* **Integrity** (observer = the trusted enclave, relation ≈enc):
  adversary-controlled state (insecure memory, other enclaves' contents)
  is perturbed instead; after the same trace, the trusted enclave's pages
  must be unaffected — the final states ≈enc-related.

Randomness is handled as in section 6.3: both worlds draw from RNGs with
identical seeds, so nondeterministic updates happen deterministically and
equally in both runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.arm.machine import MachineState
from repro.crypto.rng import HardwareRNG
from repro.monitor import integrity
from repro.monitor.errors import KomErr
from repro.monitor.komodo import KomodoMonitor
from repro.monitor.layout import SMC
from repro.security.declassify import DeclassifiedOutcome
from repro.security.equivalence import adv_set_equivalent, enc_set_equivalent
from repro.verification.extract import extract_pagedb


def _observer_set(enc) -> Tuple[int, ...]:
    """Normalise an observer spec: a single addrspace page number or a
    sequence of them (a colluding coalition)."""
    if isinstance(enc, int):
        return (enc,)
    return tuple(enc)


class NoninterferenceViolation(AssertionError):
    """A bisimulation check failed: information flowed where it must not."""


@dataclass(frozen=True)
class OSAction:
    """One adversary step: an SMC, optionally preceded by insecure-memory
    writes and an interrupt scheduling decision (the attacker's levers)."""

    callno: int
    args: Tuple[int, ...] = ()
    insecure_writes: Tuple[Tuple[int, int], ...] = ()  # (address, value)
    interrupt_after: Optional[int] = None


@dataclass
class ObservableOutcome:
    """Everything the OS observes from one action."""

    err: KomErr
    value: int
    declassified: DeclassifiedOutcome

    @classmethod
    def capture(cls, callno: int, err: KomErr, value: int) -> "ObservableOutcome":
        if callno in (SMC.ENTER, SMC.RESUME):
            declassified = DeclassifiedOutcome.from_smc_result(err, value)
        else:
            declassified = DeclassifiedOutcome(err=err, exit_value=value, fault_code=None)
        return cls(err=err, value=value, declassified=declassified)


@dataclass
class World:
    """One of the two bisimulated executions."""

    monitor: KomodoMonitor
    outcomes: List[ObservableOutcome] = field(default_factory=list)

    @property
    def state(self) -> MachineState:
        return self.monitor.state

    def apply(self, action: OSAction) -> ObservableOutcome:
        from repro.arm.modes import World as TZWorld

        for address, value in action.insecure_writes:
            self.state.memory.checked_write(address, value, TZWorld.NORMAL)
        if action.interrupt_after is not None:
            self.monitor.schedule_interrupt(action.interrupt_after)
        err, value = self.monitor.smc(action.callno, *action.args)
        outcome = ObservableOutcome.capture(action.callno, err, value)
        self.outcomes.append(outcome)
        return outcome


class BisimulationHarness:
    """Drives two worlds in lockstep and checks the ≈L relations."""

    def __init__(
        self,
        secure_pages: int = 32,
        seed: int = 0xC0FFEE,
        step_budget: int = 100_000,
    ):
        self.worlds = (
            World(
                KomodoMonitor(
                    secure_pages=secure_pages,
                    rng=HardwareRNG(seed),
                    step_budget=step_budget,
                )
            ),
            World(
                KomodoMonitor(
                    secure_pages=secure_pages,
                    rng=HardwareRNG(seed),
                    step_budget=step_budget,
                )
            ),
        )

    # -- setup ---------------------------------------------------------------

    def setup_both(self, build: Callable[[KomodoMonitor], None]) -> None:
        """Run identical setup (e.g. enclave construction) in both worlds."""
        for world in self.worlds:
            build(world.monitor)

    def perturb(
        self,
        world_index: int,
        mutate: Callable[[KomodoMonitor], None],
    ) -> None:
        """Apply a secret/adversary perturbation to one world only.

        For confidentiality tests, this rewrites the victim's private
        state (data-page contents); for integrity tests it rewrites
        adversary-controlled state.  The caller is responsible for
        keeping the perturbed pair inside the intended ≈L relation, which
        ``require_related`` can confirm before running the trace.

        The perturbation is part of the world's *history*, not a memory
        fault, so the integrity engine's tags are resynchronised over
        the mutated contents — otherwise the monitor would (correctly,
        but unhelpfully for these experiments) quarantine the perturbed
        page as corrupted.
        """
        mutate(self.worlds[world_index].monitor)
        integrity.resync(self.worlds[world_index].state)

    # -- relation checks -----------------------------------------------------------

    def require_related(self, enc, adversary_view: bool) -> None:
        """Assert the two worlds are currently ≈L-related.

        ``enc`` is a single observer addrspace page number or a sequence
        of them — a coalition of colluding enclaves whose pooled view
        (union of their page sets) defines the relation.
        """
        observers = _observer_set(enc)
        failures: List[str] = []
        d1 = extract_pagedb(self.worlds[0].state)
        d2 = extract_pagedb(self.worlds[1].state)
        if adversary_view:
            adv_set_equivalent(
                self.worlds[0].state, d1, self.worlds[1].state, d2, observers, failures
            )
        else:
            enc_set_equivalent(d1, d2, observers, failures)
        if failures:
            raise NoninterferenceViolation(
                "worlds not ≈-related: " + "; ".join(failures)
            )

    # -- the bisimulation ---------------------------------------------------------

    def run_trace(
        self,
        trace: Sequence[OSAction],
        enc,
        adversary_view: bool,
        check_each_step: bool = True,
    ) -> None:
        """Run the adversary trace in both worlds, checking as we go.

        With ``adversary_view`` (confidentiality), every OS-observable
        outcome must match between worlds, and ≈adv must hold after every
        step.  Without it (integrity), only the final ≈enc check matters:
        the adversary perturbation may legitimately change OS-visible
        outcomes, but never the trusted enclave's state.

        ``enc`` may be a coalition (sequence of addrspace page numbers)
        — e.g. two pipeline stages pooling their views against a third
        victim enclave.
        """
        for step, action in enumerate(trace):
            out1 = self.worlds[0].apply(action)
            out2 = self.worlds[1].apply(action)
            if adversary_view:
                if out1.declassified != out2.declassified or out1.err != out2.err:
                    raise NoninterferenceViolation(
                        f"step {step} ({action.callno}): OS-visible outcomes "
                        f"diverged: {out1} vs {out2} — enclave secret leaked"
                    )
                if out1.value != out2.value:
                    raise NoninterferenceViolation(
                        f"step {step}: return values diverged: "
                        f"{out1.value:#x} vs {out2.value:#x}"
                    )
            if check_each_step:
                self.require_related(enc, adversary_view)
        self.require_related(enc, adversary_view)
