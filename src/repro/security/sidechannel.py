"""Side-channel analysis for enclave programs.

Classic side channels are out of scope for the *monitor's* guarantees
(paper section 3.1), which is precisely why enclave code must avoid
secret-dependent behaviour itself: the paper's SHA-256 carries a proof
of "freedom from digital (cache and timing) side channels", i.e. its
instruction count and address trace are independent of the data hashed
(sections 7.2, 10).

This module checks that property *dynamically* for enclave programs on
the machine model: run the program under multiple secrets and compare

* the retired-instruction count (the timing channel an OS measuring
  enclave runtime observes), and
* the full address trace of fetches, loads and stores (the channel a
  cache attacker observes),

reporting the first divergence.  Dynamic checking over chosen secrets is
weaker than Vale's proof, but it catches the standard offenders —
secret-dependent branches and secret-indexed table lookups — and passes
genuinely constant-time code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.arm.assembler import Assembler
from repro.arm.cpu import CPU, ExitReason
from repro.arm.machine import MachineState
from repro.arm.modes import Mode
from repro.arm.pagetable import l1_index, l2_index, make_l1_entry, make_l2_entry
from repro.arm.registers import PSR

CODE_VA = 0x0000_1000
SECRET_VA = 0x0000_2000


@dataclass
class Profile:
    """One run's observable behaviour."""

    steps: int
    trace: List[Tuple[str, int]]
    exit_reason: ExitReason


@dataclass
class LeakReport:
    """The analyser's verdict over a set of secrets."""

    constant_time: bool
    instruction_count_leak: bool = False
    address_trace_leak: bool = False
    first_divergence: Optional[str] = None
    profiles: List[Profile] = field(default_factory=list)


def profile(program: Assembler, secret_words: Sequence[int], max_steps=200_000) -> Profile:
    """Run ``program`` with ``secret_words`` mapped read-only at
    SECRET_VA and record its observable behaviour."""
    state = MachineState.boot(secure_pages=8)
    memmap = state.memmap
    l1 = memmap.page_base(0)
    l2 = memmap.page_base(1)
    state.memory.write_word(l1 + l1_index(CODE_VA) * 4, make_l1_entry(l2))
    state.memory.write_word(
        l2 + l2_index(CODE_VA) * 4,
        make_l2_entry(memmap.page_base(2), True, False, True, True),
    )
    state.memory.write_word(
        l2 + l2_index(SECRET_VA) * 4,
        make_l2_entry(memmap.page_base(3), True, True, False, True),
    )
    # Scratch page for programs that want writable memory.
    state.memory.write_word(
        l2 + l2_index(SECRET_VA + 0x1000) * 4,
        make_l2_entry(memmap.page_base(4), True, True, False, True),
    )
    code_base = memmap.page_base(2)
    for i, word in enumerate(program.assemble()):
        state.memory.write_word(code_base + i * 4, word)
    secret_base = memmap.page_base(3)
    for i, word in enumerate(secret_words):
        state.memory.write_word(secret_base + i * 4, word)
    state.load_ttbr0(l1)
    state.flush_tlb()
    state.regs.cpsr = PSR(mode=Mode.USR, irq_masked=False, fiq_masked=False)
    cpu = CPU(state)
    cpu.access_trace = []
    result = cpu.run(CODE_VA, max_steps=max_steps)
    return Profile(steps=result.steps, trace=cpu.access_trace, exit_reason=result.reason)


def check_constant_time(
    program: Assembler, secrets: Sequence[Sequence[int]]
) -> LeakReport:
    """Profile the program under each secret and compare observables."""
    if len(secrets) < 2:
        raise ValueError("need at least two secrets to compare")
    profiles = [profile(program, secret) for secret in secrets]
    report = LeakReport(constant_time=True, profiles=profiles)
    reference = profiles[0]
    for index, candidate in enumerate(profiles[1:], start=1):
        if candidate.steps != reference.steps:
            report.constant_time = False
            report.instruction_count_leak = True
            report.first_divergence = (
                f"secret {index}: {candidate.steps} steps vs "
                f"{reference.steps} — timing leak"
            )
            return report
        if candidate.trace != reference.trace:
            report.constant_time = False
            report.address_trace_leak = True
            for position, (a, b) in enumerate(zip(reference.trace, candidate.trace)):
                if a != b:
                    report.first_divergence = (
                        f"secret {index}: trace diverges at event {position}: "
                        f"{a} vs {b} — address-trace leak"
                    )
                    break
            else:  # pragma: no cover - length mismatch with equal steps
                report.first_divergence = "trace length mismatch"
            return report
    return report
