"""Declassification axioms (paper section 6.2).

Komodo enforces noninterference *modulo* a small, precisely delimited
set of releases.  The paper incorporates these as four axioms, each with
preconditions controlling exactly when it may be invoked; the harness
models them as predicates over observed outcomes so the noninterference
tests can decide which observable differences are sanctioned:

1. **Exception type** — the OS learns which exception ended enclave
   execution (interrupt / fault / exit), but nothing else about a fault.
2. **Exit value** — the value passed to the Exit SVC, and the fact that
   an Exit occurred, are released.
3. **Dynamic allocation** — which spare pages the enclave consumed and
   which data pages it freed are OS-observable by design (Remove on a
   consumed spare fails), so spare/data *type transitions* are released.
4. **Insecure writes** — whatever the enclave chooses to write to
   insecure memory is released by the enclave itself, not the monitor.

The bisimulation harness treats a pair of executions as compliant when
every observable difference falls under one of these axioms *and* the
secrets involved were identical declared-releases in both runs (the
delimited-release discipline: only expressions the enclave itself chose
to release may differ from the adversary's prior knowledge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.monitor.errors import KomErr


@dataclass(frozen=True)
class DeclassifiedOutcome:
    """What a single Enter/Resume releases to the OS."""

    err: KomErr  # axiom 1: exception type (interrupted / fault / success)
    exit_value: Optional[int]  # axiom 2: present only when Exit was called
    fault_code: Optional[int]  # axiom 1: abort vs undefined, nothing more

    @classmethod
    def from_smc_result(cls, err: KomErr, value: int) -> "DeclassifiedOutcome":
        if err is KomErr.SUCCESS:
            return cls(err=err, exit_value=value, fault_code=None)
        if err is KomErr.FAULT:
            return cls(err=err, exit_value=None, fault_code=value)
        return cls(err=err, exit_value=None, fault_code=None)


def outcomes_equal_modulo_declassification(
    a: DeclassifiedOutcome, b: DeclassifiedOutcome
) -> bool:
    """Two runs' OS-visible outcomes must agree exactly.

    Declassification permits the *release* of these values; it does not
    permit them to differ between two runs of the same enclave on the
    same inputs.  For the confidentiality theorem the enclave under test
    computes its released values from public data only, so any
    divergence is a leak of the secret, not a sanctioned release.
    """
    return a == b
