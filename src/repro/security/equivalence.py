"""Observational-equivalence relations (paper Definitions 1 and 2).

Two notions of "looks the same":

* ``pages_weak_equivalent`` (=enc, Definition 1): how a PageDB entry
  outside an observer enclave's address space appears to that enclave —
  data pages and spare pages are indistinguishable beyond their type,
  threads beyond their entered flag; page tables and addrspaces are
  fully visible (their structure is OS-controlled anyway).

* ``enc_equivalent`` (≈enc, Definition 2): two PageDBs are equivalent to
  an enclave observer iff the free-page set matches, the observer's page
  set matches, pages outside the observer are weakly equivalent, and the
  observer's own pages are *identical*.

* ``adv_equivalent`` (≈adv): the OS-colluding-with-an-enclave observer —
  ≈enc for the malicious enclave, plus equality of the general-purpose
  registers, banked registers (except monitor mode), and all of insecure
  memory.

* ``enc_set_equivalent`` / ``adv_set_equivalent``: the colluding-set
  generalisation used by the composite-pipeline experiments — several
  enclaves pool their observations (each sees its own pages exactly),
  so the observer's page set is the union over the coalition.  With a
  singleton set these degenerate to Definitions 1/2; the single-observer
  names above remain as wrappers.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.arm.machine import MachineState
from repro.arm.modes import Mode
from repro.spec.pagedb import (
    AbsAddrspace,
    AbsData,
    AbsFree,
    AbsL1,
    AbsL2,
    AbsPageDb,
    AbsSpare,
    AbsThread,
)


def pages_weak_equivalent(e1, e2) -> bool:
    """=enc: entries outside the observer's address space look the same.

    Per Definition 1: both data pages, or both spare pages, or both
    threads with equal entered flags, or both page-table/addrspace pages
    that are structurally equal.
    """
    if isinstance(e1, AbsData) and isinstance(e2, AbsData):
        return True
    if isinstance(e1, AbsSpare) and isinstance(e2, AbsSpare):
        return True
    if isinstance(e1, AbsThread) and isinstance(e2, AbsThread):
        return e1.entered == e2.entered
    structural = (AbsL1, AbsL2, AbsAddrspace)
    if isinstance(e1, structural) and isinstance(e2, structural):
        return e1 == e2
    return False


def enc_set_equivalent(
    d1: AbsPageDb,
    d2: AbsPageDb,
    encs: Iterable[int],
    failures: Optional[List[str]] = None,
) -> bool:
    """≈enc for a coalition: PageDBs equivalent to a set of colluding
    enclave observers.

    The coalition pools everything its members see, so its own-page set
    is the union of the members' page sets; every page in the union must
    be identical and everything outside it weakly equivalent.

    ``failures`` (optional) collects human-readable reasons, which makes
    counterexamples from the property-based tests diagnosable.
    """
    observers = tuple(encs)
    log = failures if failures is not None else []
    if d1.npages != d2.npages:
        log.append("different page counts")
        return not log
    free1 = set(d1.free_pages())
    free2 = set(d2.free_pages())
    if free1 != free2:
        log.append(f"free sets differ: {sorted(free1 ^ free2)}")
    mine1 = set()
    mine2 = set()
    for enc in observers:
        mine1.update(d1.pages_of(enc))
        mine2.update(d2.pages_of(enc))
    if mine1 != mine2:
        log.append(f"observer page sets differ: {sorted(mine1 ^ mine2)}")
        return not log
    for pageno in range(d1.npages):
        if pageno in free1 or pageno in free2:
            # Free pages are covered by the free-set comparison; a page
            # free in one and allocated in the other already failed it.
            if (pageno in free1) != (pageno in free2):
                continue
            continue
        if pageno in mine1:
            if d1[pageno] != d2[pageno]:
                log.append(f"observer page {pageno} differs")
        else:
            if not pages_weak_equivalent(d1[pageno], d2[pageno]):
                log.append(f"page {pageno} not weakly equivalent")
    return not log


def enc_equivalent(
    d1: AbsPageDb, d2: AbsPageDb, enc: int, failures: Optional[List[str]] = None
) -> bool:
    """≈enc: PageDBs observationally equivalent to enclave ``enc``
    (Definition 2 — the singleton case of :func:`enc_set_equivalent`)."""
    return enc_set_equivalent(d1, d2, (enc,), failures)


def _banked_regs_equal(
    s1: MachineState, s2: MachineState, failures: List[str]
) -> None:
    """Banked registers equal, excluding monitor mode (the monitor's
    private state is not adversary-observable)."""
    for mode in (Mode.USR, Mode.FIQ, Mode.IRQ, Mode.SVC, Mode.ABT, Mode.UND):
        if s1.regs.read_sp(mode) != s2.regs.read_sp(mode):
            failures.append(f"SP_{mode.name} differs")
        if s1.regs.read_lr(mode) != s2.regs.read_lr(mode):
            failures.append(f"LR_{mode.name} differs")
    for mode in (Mode.FIQ, Mode.IRQ, Mode.SVC, Mode.ABT, Mode.UND):
        if s1.regs.read_spsr(mode).to_word() != s2.regs.read_spsr(mode).to_word():
            failures.append(f"SPSR_{mode.name} differs")


def adv_set_equivalent(
    s1: MachineState,
    d1: AbsPageDb,
    s2: MachineState,
    d2: AbsPageDb,
    encs: Iterable[int],
    failures: Optional[List[str]] = None,
) -> bool:
    """≈adv for a coalition: the OS colluding with *several* enclaves.

    Requires ≈enc for the colluding set, plus equality of the
    general-purpose registers, the banked registers excluding monitor
    mode, and the entire insecure memory — so the coalition additionally
    shares every cross-enclave channel page with the OS.
    """
    log = failures if failures is not None else []
    enc_set_equivalent(d1, d2, encs, log)
    for i in range(13):
        if s1.regs.read_gpr(i) != s2.regs.read_gpr(i):
            log.append(f"r{i} differs: {s1.regs.read_gpr(i):#x} vs {s2.regs.read_gpr(i):#x}")
    _banked_regs_equal(s1, s2, log)
    ins1 = s1.memory.snapshot_region(s1.memmap.insecure)
    ins2 = s2.memory.snapshot_region(s2.memmap.insecure)
    if ins1 != ins2:
        differing = sorted(
            addr
            for addr in set(ins1) | set(ins2)
            if ins1.get(addr, 0) != ins2.get(addr, 0)
        )
        log.append(f"insecure memory differs at {[hex(a) for a in differing[:4]]}")
    return not log


def adv_equivalent(
    s1: MachineState,
    d1: AbsPageDb,
    s2: MachineState,
    d2: AbsPageDb,
    enc: int,
    failures: Optional[List[str]] = None,
) -> bool:
    """≈adv: the OS colluding with one enclave (the singleton case of
    :func:`adv_set_equivalent`)."""
    return adv_set_equivalent(s1, d1, s2, d2, (enc,), failures)
