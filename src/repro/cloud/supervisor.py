"""Supervision primitives: worker handles and the circuit breaker.

The service (``repro.cloud.service``) composes these: a
:class:`WorkerHandle` per forked worker, watched through its process
sentinel and heartbeats, and one :class:`CircuitBreaker` guarding the
pool — when workers are dying faster than the respawn path can prove
them healthy, the breaker opens and the service sheds load onto its
degraded-but-correct in-process path instead of queueing requests
behind a crash loop.

The breaker is the classic three-state machine:

* CLOSED — healthy; failures are counted, ``failure_threshold``
  consecutive ones open it;
* OPEN — all pool traffic is refused for ``cooldown`` seconds;
* HALF_OPEN — after the cooldown, exactly one probe request is let
  through; success closes the breaker, failure re-opens it.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with a cooldown and a half-open probe."""

    def __init__(
        self,
        failure_threshold: int = 4,
        cooldown: float = 0.25,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False
        self.opens = 0  # lifetime count, for stats

    @property
    def state(self) -> str:
        self._tick()
        return self._state

    def _tick(self) -> None:
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = HALF_OPEN
            self._probe_in_flight = False

    def allow(self) -> bool:
        """May a request use the pool right now?

        In HALF_OPEN, only the first caller gets a True (the probe);
        the rest stay shed until the probe reports back.
        """
        self._tick()
        if self._state == CLOSED:
            return True
        if self._state == HALF_OPEN and not self._probe_in_flight:
            self._probe_in_flight = True
            return True
        return False

    def record_success(self) -> None:
        self._tick()
        self._consecutive_failures = 0
        self._state = CLOSED
        self._probe_in_flight = False

    def record_failure(self) -> None:
        self._tick()
        self._consecutive_failures += 1
        if self._state == HALF_OPEN or (
            self._state == CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._state = OPEN
            self._opened_at = self._clock()
            self._probe_in_flight = False
            self.opens += 1


@dataclass
class WorkerHandle:
    """The supervisor's view of one worker process."""

    worker_id: int
    process: Any  # multiprocessing.Process
    conn: Any  # multiprocessing.connection.Connection
    #: Idempotency keys of dispatched-but-unanswered requests, oldest
    #: first.  The service pipelines up to ``pipeline_depth`` requests
    #: per worker: while the worker serves one, the next already sits
    #: in its pipe, so the worker never idles through the supervisor's
    #: response round trip.  The worker answers in FIFO order, but a
    #: death loses *all* of these at once — the retry path must walk
    #: the whole deque.
    inflight: Deque[str] = field(default_factory=deque)
    served: int = 0
    last_heartbeat: float = field(default_factory=time.monotonic)
    generation: int = 0  # how many respawns this slot has seen

    @property
    def idle(self) -> bool:
        return not self.inflight

    def has_capacity(self, depth: int) -> bool:
        """May the service pipeline another request to this worker?"""
        return len(self.inflight) < depth

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """Hard-kill the worker (wedged or being reaped)."""
        if self.process.is_alive():
            self.process.kill()

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
