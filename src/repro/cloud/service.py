"""The enclave cloud's front end: asyncio supervision of forked workers.

One :class:`CloudService` owns a pool of worker processes (each a
forked copy of a prewarmed :class:`EnclaveTemplate`), a pump thread
multiplexing their pipes *and their process sentinels* through
``multiprocessing.connection.wait`` — so a worker dying mid-request is
detected even if it never writes another byte — and an asyncio event
loop where all bookkeeping runs single-threaded.

Resilience mechanics:

* **idempotency** — requests are identified by ``CloudRequest.key``;
  a second submit of the same key awaits the first execution's future,
  and a crash-retried request is re-*dispatched*, never re-*resolved*,
  so a seal/sign executes at most once from the client's view;
* **crash retry** — a dead worker's in-flight requests (up to
  ``pipeline_depth`` of them) are each re-dispatched after a seeded
  exponential backoff (``repro.util.backoff`` delays ×
  ``backoff_unit`` seconds), with the chaos kill point stripped so an
  injected kill fires exactly once; after ``max_attempts`` dispatches
  a request resolves with a typed retryable ``worker_crashed`` error;
* **pipelined dispatch** — up to ``pipeline_depth`` requests ride each
  worker's pipe at once, so the worker picks up its next request the
  instant it finishes one instead of idling through the supervisor's
  full receive/resolve/dispatch round trip (the serialization that made
  multi-worker req/s flat-to-negative);
* **respawn** — every death forks a replacement from the prewarmed
  template (copy-on-write: no re-boot, no re-keygen);
* **timeouts** — ``request_timeout`` (wall-clock) hard-kills a wedged
  worker, funnelling into the same retry path; the *deterministic*
  per-request deadline is the step budget inside the worker;
* **degradation** — a :class:`CircuitBreaker` over pool dispatches;
  when open, requests run on the parent's own template in a one-thread
  executor: slow, serialised, but bit-identical — correctness is never
  traded for availability.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import os
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Deque, Dict, List, Optional, Tuple

from repro.cloud.api import (
    BadRequest,
    CloudError,
    CloudRequest,
    CloudResponse,
    PoolClosed,
    RequestTimeout,
    WorkerCrashed,
)
from repro.cloud.supervisor import CircuitBreaker, WorkerHandle
from repro.cloud.worker import get_template, serve_request, worker_main
from repro.util.backoff import Backoff, BackoffPolicy

#: Fork is the only start method that inherits the prewarmed template;
#: it exists on every POSIX platform this repo targets.
_MP_CONTEXT = "fork"


@dataclass
class _Entry:
    """One in-flight (or completed) request and its serving state."""

    request: CloudRequest
    future: "asyncio.Future[CloudResponse]"
    options: Dict
    backoff: Backoff
    attempts: int = 0
    worker_id: Optional[int] = None
    timer: Optional[object] = None  # asyncio.TimerHandle
    timed_out: bool = False
    started: float = field(default_factory=time.monotonic)


class CloudService:
    """Supervised multi-tenant enclave serving over a worker pool."""

    def __init__(
        self,
        workers: int = 2,
        engine: str = "turbo",
        seed: int = 0xC10D,
        secure_pages: int = 48,
        step_budget: int = 2_000_000,
        request_timeout: Optional[float] = None,
        max_attempts: int = 3,
        backoff_unit: float = 0.002,
        breaker_threshold: int = 4,
        breaker_cooldown: float = 0.25,
        hb_interval: float = 0.05,
        pipeline_depth: int = 2,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be at least 1")
        self.pool_size = workers
        self.pipeline_depth = pipeline_depth
        self.spec = {
            "engine": engine,
            "seed": seed,
            "secure_pages": secure_pages,
            "step_budget": step_budget,
        }
        self.request_timeout = request_timeout
        self.max_attempts = max_attempts
        self.backoff_unit = backoff_unit
        self.hb_interval = hb_interval
        self.breaker = CircuitBreaker(
            failure_threshold=breaker_threshold, cooldown=breaker_cooldown
        )
        self._ctx = multiprocessing.get_context(_MP_CONTEXT)
        self._workers: Dict[int, WorkerHandle] = {}
        self._workers_lock = threading.Lock()
        # Handles of dead workers, kept open until the pump thread has
        # stopped: closing a conn the pump is concurrently recv-ing on
        # tears the descriptor out from under it (an un-catchable-as-
        # OSError TypeError deep in Connection._recv).  A dead worker's
        # open conn is harmless — the pump just sees EOF.
        self._dead_handles: List[WorkerHandle] = []
        self._next_worker_id = 0
        self._entries: Dict[str, _Entry] = {}
        self._queue: Deque[str] = deque()
        #: Worker ids with spare pipeline capacity (each at most once).
        self._idle: Deque[int] = deque()
        self._audit_futures: Dict[int, "asyncio.Future"] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pump: Optional[threading.Thread] = None
        self._wake_r, self._wake_w = os.pipe()
        self._degraded_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="cloud-degraded"
        )
        self._closing = False
        self._started = False
        self.counters = {
            "submitted": 0,
            "completed": 0,
            "crashes": 0,
            "respawns": 0,
            "retries": 0,
            "degraded": 0,
            "timeouts": 0,
        }

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> "CloudService":
        """Prewarm the template, fork the pool, start the pump."""
        if self._started:
            raise RuntimeError("service already started")
        self._loop = asyncio.get_running_loop()
        # Template build (RSA keygen included) is CPU-heavy; do it off
        # the loop.  Workers forked afterwards inherit it via the
        # worker-module cache, so each fork is cheap.
        await self._loop.run_in_executor(None, get_template, self.spec)
        for _ in range(self.pool_size):
            self._spawn_worker()
        self._pump = threading.Thread(
            target=self._pump_loop, name="cloud-pump", daemon=True
        )
        self._pump.start()
        self._started = True
        return self

    async def close(self) -> None:
        """Stop the pool; pending requests resolve with ``pool_closed``."""
        if self._closing:
            return
        self._closing = True
        for entry in self._entries.values():
            if entry.timer is not None:
                entry.timer.cancel()
            if not entry.future.done():
                entry.future.set_result(
                    CloudResponse.failure(
                        entry.request, PoolClosed("service closed"),
                        attempts=entry.attempts,
                    )
                )
        with self._workers_lock:
            handles = list(self._workers.values())
        for handle in handles:
            try:
                handle.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        self._wake_pump()
        if self._pump is not None:
            self._pump.join(timeout=2.0)
        # The pump is gone: now conns can be closed without racing it.
        for handle in self._dead_handles:
            handle.close()
        self._dead_handles.clear()
        for handle in handles:
            handle.process.join(timeout=1.0)
            if handle.process.is_alive():
                handle.kill()
                handle.process.join(timeout=1.0)
            handle.close()
        with self._workers_lock:
            self._workers.clear()
        self._degraded_pool.shutdown(wait=True)
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass

    # -- the public request path -----------------------------------------

    async def submit(
        self,
        request: CloudRequest,
        step_budget: Optional[int] = None,
        chaos_kill_at: Optional[int] = None,
    ) -> CloudResponse:
        """Serve a request; always returns a terminal CloudResponse.

        Duplicate submits of the same idempotency key share one
        execution.  ``chaos_kill_at`` is the chaos campaign's hook (see
        ``repro.cloud.worker.KillPlan``); it applies to the *first*
        dispatch only — the retry path strips it.
        """
        if not self._started:
            raise RuntimeError("service not started")
        if self._closing:
            return CloudResponse.failure(request, PoolClosed("service closed"))
        try:
            request.validate()
        except BadRequest as exc:
            return CloudResponse.failure(request, exc)
        key = request.key
        entry = self._entries.get(key)
        if entry is None:
            policy = BackoffPolicy(
                base_delay=4, attempts=max(self.max_attempts, 2), cap=64
            )
            entry = _Entry(
                request=request,
                future=self._loop.create_future(),
                options={
                    "step_budget": step_budget,
                    "chaos_kill_at": chaos_kill_at,
                },
                backoff=policy.session(seed=int(key[:8], 16)),
            )
            self._entries[key] = entry
            self.counters["submitted"] += 1
            self._dispatch(entry)
        return await asyncio.shield(entry.future)

    async def audit_workers(
        self, timeout: float = 30.0
    ) -> Dict[int, Tuple[List[str], str]]:
        """Ask every *idle* worker to restore + audit its secure state.

        Returns ``{worker_id: (violations, rewind_digest)}``.
        """
        futures: Dict[int, "asyncio.Future"] = {}
        with self._workers_lock:
            handles = [h for h in self._workers.values() if h.idle]
        for handle in handles:
            try:
                handle.conn.send(("audit",))
            except (OSError, BrokenPipeError):
                continue  # died since the snapshot; skip it
            future = self._loop.create_future()
            self._audit_futures[handle.worker_id] = future
            futures[handle.worker_id] = future
        results: Dict[int, Tuple[List[str], str]] = {}
        for worker_id, future in futures.items():
            results[worker_id] = await asyncio.wait_for(future, timeout)
        return results

    def stats(self) -> Dict:
        with self._workers_lock:
            alive = sum(1 for h in self._workers.values() if h.alive)
        return {
            **self.counters,
            "workers_alive": alive,
            "queue_depth": len(self._queue),
            "breaker": self.breaker.state,
            "breaker_opens": self.breaker.opens,
        }

    # -- worker management (loop thread only, except where noted) --------

    def _spawn_worker(self) -> WorkerHandle:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, self.spec, child_conn, self.hb_interval),
            daemon=True,
            name=f"cloud-worker-{worker_id}",
        )
        process.start()
        child_conn.close()
        handle = WorkerHandle(
            worker_id=worker_id, process=process, conn=parent_conn
        )
        with self._workers_lock:
            self._workers[worker_id] = handle
        self._idle.append(worker_id)
        self._wake_pump()
        return handle

    def _wake_pump(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass

    def _pump_loop(self) -> None:
        """Pump thread: multiplex worker pipes + death sentinels, post
        every event to the loop.  Never touches service state directly."""
        while not self._closing:
            with self._workers_lock:
                handles = list(self._workers.values())
            by_conn = {h.conn: h for h in handles}
            by_sentinel = {h.process.sentinel: h for h in handles}
            waitables = [self._wake_r, *by_conn, *by_sentinel]
            try:
                ready = mp_connection.wait(waitables, timeout=0.25)
            except (OSError, ValueError):
                continue  # a conn/sentinel closed under us; re-snapshot
            for obj in ready:
                if obj == self._wake_r:
                    try:
                        os.read(self._wake_r, 4096)
                    except OSError:
                        pass
                    continue
                if obj in by_conn:
                    handle = by_conn[obj]
                    try:
                        while handle.conn.poll(0):
                            message = handle.conn.recv()
                            self._post(self._on_message, handle.worker_id, message)
                    except (EOFError, OSError, ValueError, TypeError):
                        # EOF, a closed conn, or a conn torn down
                        # mid-recv — all mean the same thing here.  The
                        # pump must survive every one of them: a dead
                        # pump means undetected deaths and hung clients.
                        self._post(self._on_worker_death, handle.worker_id)
                elif obj in by_sentinel:
                    self._post(self._on_worker_death, by_sentinel[obj].worker_id)

    def _post(self, callback, *args) -> None:
        try:
            self._loop.call_soon_threadsafe(callback, *args)
        except RuntimeError:
            pass  # loop already closed during teardown

    # -- event handlers (loop thread) -------------------------------------

    def _on_message(self, worker_id: int, message: Tuple) -> None:
        if self._closing:
            return
        with self._workers_lock:
            handle = self._workers.get(worker_id)
        if handle is None:
            return
        kind = message[0]
        if kind == "hb":
            handle.last_heartbeat = time.monotonic()
            handle.served = message[2]
        elif kind == "res":
            response = CloudResponse.from_wire(message[1])
            try:
                handle.inflight.remove(response.key)
            except ValueError:
                pass  # already failed over to another worker
            self._mark_available(worker_id, handle)
            self.breaker.record_success()
            self._resolve(response.key, response, worker_id)
            self._drain_queue()
        elif kind == "audit_ok":
            future = self._audit_futures.pop(worker_id, None)
            if future is not None and not future.done():
                future.set_result((message[2], message[3]))

    def _on_worker_death(self, worker_id: int) -> None:
        with self._workers_lock:
            handle = self._workers.pop(worker_id, None)
        if handle is None:
            return  # already reaped (sentinel + EOF both fired)
        self._dead_handles.append(handle)  # conn closed after pump exit
        try:
            self._idle.remove(worker_id)
        except ValueError:
            pass
        if self._closing:
            return
        self.counters["crashes"] += 1
        self.counters["respawns"] += 1
        self._spawn_worker()
        # Every pipelined request on the dead worker is lost at once.
        # The worker serves its pipe in FIFO order, so only the head of
        # ``inflight`` was actually executing — the rest sat unread in
        # the pipe.  The breaker records one failure per death, not per
        # request: it measures worker health, not request fan-out.
        lost = list(handle.inflight)
        handle.inflight.clear()
        recorded = False
        for position, key in enumerate(lost):
            entry = self._entries.get(key)
            if entry is None or entry.future.done():
                continue
            if not recorded:
                self.breaker.record_failure()
                recorded = True
            if entry.timer is not None:
                entry.timer.cancel()
                entry.timer = None
            entry.worker_id = None
            if position == 0:
                # The injected kill has fired; a retry must run the
                # request for real (at-most-once chaos, at-most-once
                # client view).
                entry.options["chaos_kill_at"] = None
            elif not entry.timed_out:
                # Never started: it neither consumed its chaos kill
                # point nor burned a real execution attempt.  Requeue
                # it as-is, without backoff.
                entry.attempts -= 1
                self._loop.call_soon(self._dispatch, entry)
                continue
            if entry.attempts >= self.max_attempts:
                error: CloudError = (
                    RequestTimeout(
                        f"request killed after {self.request_timeout}s on "
                        f"{entry.attempts} worker(s)"
                    )
                    if entry.timed_out
                    else WorkerCrashed(
                        f"all {entry.attempts} dispatch attempts died with "
                        "their worker"
                    )
                )
                self._resolve(
                    key,
                    CloudResponse.failure(
                        entry.request, error, attempts=entry.attempts
                    ),
                    worker_id=-1,
                )
                continue
            self.counters["retries"] += 1
            delay_units = entry.backoff.next_delay()
            delay = (delay_units or 0) * self.backoff_unit
            self._loop.call_later(delay, self._dispatch, entry)

    def _on_request_timeout(self, key: str, worker_id: int) -> None:
        entry = self._entries.get(key)
        with self._workers_lock:
            handle = self._workers.get(worker_id)
        if (
            entry is None
            or entry.future.done()
            or handle is None
            or key not in handle.inflight
        ):
            return
        self.counters["timeouts"] += 1
        entry.timed_out = True
        # Hard-kill the wedged worker; the sentinel fires and the death
        # path decides between redispatch and a typed timeout failure.
        handle.kill()

    # -- dispatch ---------------------------------------------------------

    def _dispatch(self, entry: _Entry) -> None:
        if self._closing or entry.future.done():
            return
        key = entry.request.key
        if not self.breaker.allow():
            self._dispatch_degraded(entry)
            return
        if not self._idle:
            if key not in self._queue:
                self._queue.append(key)
            return
        worker_id = self._idle.popleft()
        with self._workers_lock:
            handle = self._workers.get(worker_id)
        if handle is None or not handle.alive:
            # Raced with a death the loop hasn't processed yet.
            self._loop.call_soon(self._dispatch, entry)
            return
        entry.attempts += 1
        entry.worker_id = worker_id
        handle.inflight.append(key)
        try:
            handle.conn.send(("req", entry.request.to_wire(), dict(entry.options)))
        except (OSError, BrokenPipeError):
            try:
                handle.inflight.remove(key)
            except ValueError:
                pass
            self._loop.call_soon(self._dispatch, entry)
            return
        self._mark_available(worker_id, handle)
        if self.request_timeout is not None:
            entry.timer = self._loop.call_later(
                self.request_timeout, self._on_request_timeout, key, worker_id
            )

    def _mark_available(self, worker_id: int, handle: WorkerHandle) -> None:
        """Put the worker back in the capacity ring if it can take more."""
        if (
            handle.alive
            and handle.has_capacity(self.pipeline_depth)
            and worker_id not in self._idle
        ):
            self._idle.append(worker_id)

    def _dispatch_degraded(self, entry: _Entry) -> None:
        """Breaker-open path: correct, slow, in-process, serialised."""
        entry.attempts += 1
        self.counters["degraded"] += 1
        request = entry.request
        step_budget = entry.options.get("step_budget")

        def run() -> CloudResponse:
            template = get_template(self.spec)
            # Deliberately no chaos_kill_at: the degraded path runs in
            # the supervisor's own process, where an injected kill
            # would take down the whole service — the opposite of
            # graceful degradation.
            return serve_request(template, request, step_budget=step_budget)

        future = self._loop.run_in_executor(self._degraded_pool, run)

        def done(fut) -> None:
            if entry.future.done():
                return
            try:
                response = fut.result()
            except CloudError as exc:
                response = CloudResponse.failure(request, exc)
            self._resolve(
                request.key,
                dataclasses.replace(response, degraded=True),
                worker_id=-1,
            )

        future.add_done_callback(
            lambda fut: self._loop.call_soon_threadsafe(done, fut)
        )

    def _drain_queue(self) -> None:
        while self._queue and self._idle:
            key = self._queue.popleft()
            entry = self._entries.get(key)
            if entry is not None and not entry.future.done():
                self._dispatch(entry)

    def _resolve(self, key: str, response: CloudResponse, worker_id: int) -> None:
        entry = self._entries.get(key)
        if entry is None or entry.future.done():
            return
        if entry.timer is not None:
            entry.timer.cancel()
            entry.timer = None
        self.counters["completed"] += 1
        entry.future.set_result(
            dataclasses.replace(
                response,
                worker=worker_id,
                attempts=max(entry.attempts, response.attempts),
                elapsed=time.monotonic() - entry.started,
            )
        )
