"""Cloud wire types: requests, responses, idempotency, typed errors.

Everything crossing the supervisor/worker pipe is a plain dict built by
``to_wire`` and parsed by ``from_wire`` — explicit, version-checkable,
and independent of pickle's class identity (a worker respawned from a
newer parent still talks the same wire).

Determinism is the backbone of the chaos gate: a response's
``digest()`` covers only engine- and timing-invariant fields (kind,
idempotency key, ok, result words, error code), so a request executed
on any worker, any engine, or the degraded in-process path must produce
the same digest as the pure in-process golden.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: The request kinds the cloud serves, and which enclave backs each:
#:
#: * ``attest``   — vault enclave: MAC over 8 caller words (Attest SVC);
#: * ``seal``     — vault enclave: seal payload words to the enclave
#:                  identity, return the blob the OS may store;
#: * ``unseal``   — vault enclave: seal-then-unseal roundtrip of the
#:                  payload (self-contained; returns the plaintext);
#: * ``sign``     — notary enclave: RSA signature over the document,
#:                  returns [counter] ++ signature words;
#: * ``checksum`` — CRC-32 service in real ARM machine code (the
#:                  engine-sensitive kind);
#: * ``spin``     — vault enclave: payload[0] preemption points of pure
#:                  compute (the kind that can exceed a step budget);
#: * ``pipeline`` — composite counter-notary pipeline: a two-enclave
#:                  commit (sealed counter + notary) over transactional
#:                  channels, returns [status, value] ++ receipt words.
REQUEST_KINDS = ("attest", "seal", "unseal", "sign", "checksum", "spin", "pipeline")

#: Payload word-count ceiling (seal blobs must fit the shared page half).
MAX_PAYLOAD_WORDS = 256


class CloudError(Exception):
    """Base of the cloud's typed errors.

    ``code`` is the wire-stable identifier; ``retryable`` says whether
    a client re-submitting the same request could succeed (the chaos
    gate accepts only bit-exact success or a *retryable* typed error).
    """

    code = "cloud_error"
    retryable = False

    def __init__(self, message: str = ""):
        super().__init__(message or self.code)


class WorkerCrashed(CloudError):
    """Every dispatch attempt died with the worker; resubmission may hit
    a healthy pool."""

    code = "worker_crashed"
    retryable = True


class RequestTimeout(CloudError):
    """The request outlived its wall-clock budget on a (wedged) worker."""

    code = "request_timeout"
    retryable = True


class DeadlineExceeded(CloudError):
    """The enclave exhausted its deterministic step budget: the same
    request will exhaust it again, so this is not retryable."""

    code = "deadline_exceeded"
    retryable = False


class PoolClosed(CloudError):
    """The service shut down with the request still pending."""

    code = "pool_closed"
    retryable = True


class BadRequest(CloudError):
    """Malformed request (unknown kind, oversized or ill-shaped payload)."""

    code = "bad_request"
    retryable = False


#: wire code -> exception class, for typed reconstruction client-side.
ERROR_CODES = {
    cls.code: cls
    for cls in (
        CloudError,
        WorkerCrashed,
        RequestTimeout,
        DeadlineExceeded,
        PoolClosed,
        BadRequest,
    )
}


@dataclass(frozen=True)
class CloudRequest:
    """One tenant request: a kind plus its payload words.

    ``nonce`` distinguishes deliberate repeats of an otherwise identical
    request; two requests with equal ``key`` are *the same* request and
    the service executes them at most once.
    """

    kind: str
    payload: Tuple[int, ...] = ()
    tenant: str = "t0"
    nonce: int = 0

    def __post_init__(self):
        object.__setattr__(self, "payload", tuple(w & 0xFFFFFFFF for w in self.payload))

    @property
    def key(self) -> str:
        """Idempotency key: a stable hash of the request's identity."""
        hasher = hashlib.sha256()
        hasher.update(self.kind.encode())
        hasher.update(self.tenant.encode())
        hasher.update(self.nonce.to_bytes(8, "big"))
        for word in self.payload:
            hasher.update(word.to_bytes(4, "big"))
        return hasher.hexdigest()[:32]

    def validate(self) -> None:
        """Raise :class:`BadRequest` on a request no worker should run."""
        if self.kind not in REQUEST_KINDS:
            raise BadRequest(f"unknown request kind {self.kind!r}")
        if len(self.payload) > MAX_PAYLOAD_WORDS:
            raise BadRequest(
                f"payload of {len(self.payload)} words exceeds "
                f"{MAX_PAYLOAD_WORDS}"
            )
        if self.kind == "attest" and len(self.payload) != 8:
            raise BadRequest("attest needs exactly 8 payload words")
        if self.kind == "spin" and len(self.payload) != 1:
            raise BadRequest("spin needs exactly one payload word")
        if self.kind == "pipeline" and len(self.payload) != 4:
            raise BadRequest("pipeline needs exactly 4 document words")
        if self.kind in ("seal", "unseal", "sign", "checksum") and not self.payload:
            raise BadRequest(f"{self.kind} needs a non-empty payload")

    def to_wire(self) -> Dict:
        return {
            "kind": self.kind,
            "payload": list(self.payload),
            "tenant": self.tenant,
            "nonce": self.nonce,
        }

    @classmethod
    def from_wire(cls, wire: Dict) -> "CloudRequest":
        return cls(
            kind=wire["kind"],
            payload=tuple(wire["payload"]),
            tenant=wire["tenant"],
            nonce=wire["nonce"],
        )


@dataclass(frozen=True)
class CloudResponse:
    """The terminal outcome of one request: success words or a typed error.

    ``worker``, ``attempts``, ``degraded`` and ``elapsed`` are serving
    metadata — useful for stats, excluded from :meth:`digest` so the
    digest is a pure function of (request, enclave semantics).
    """

    kind: str
    key: str
    ok: bool
    words: Tuple[int, ...] = ()
    error_code: Optional[str] = None
    error: Optional[str] = None
    worker: int = -1
    attempts: int = 1
    degraded: bool = False
    elapsed: float = field(default=0.0, compare=False)

    @property
    def retryable(self) -> bool:
        if self.ok or self.error_code is None:
            return False
        cls = ERROR_CODES.get(self.error_code, CloudError)
        return cls.retryable

    def digest(self) -> str:
        """Engine- and timing-invariant summary of the outcome."""
        hasher = hashlib.sha256()
        hasher.update(self.kind.encode())
        hasher.update(self.key.encode())
        hasher.update(b"\x01" if self.ok else b"\x00")
        hasher.update((self.error_code or "").encode())
        for word in self.words:
            hasher.update(word.to_bytes(4, "big"))
        return hasher.hexdigest()

    def raise_for_status(self) -> "CloudResponse":
        if self.ok:
            return self
        cls = ERROR_CODES.get(self.error_code or "", CloudError)
        raise cls(self.error or self.error_code or "request failed")

    def to_wire(self) -> Dict:
        return {
            "kind": self.kind,
            "key": self.key,
            "ok": self.ok,
            "words": list(self.words),
            "error_code": self.error_code,
            "error": self.error,
            "worker": self.worker,
            "attempts": self.attempts,
            "degraded": self.degraded,
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_wire(cls, wire: Dict) -> "CloudResponse":
        return cls(
            kind=wire["kind"],
            key=wire["key"],
            ok=wire["ok"],
            words=tuple(wire["words"]),
            error_code=wire["error_code"],
            error=wire["error"],
            worker=wire["worker"],
            attempts=wire["attempts"],
            degraded=wire["degraded"],
            elapsed=wire["elapsed"],
        )

    @classmethod
    def failure(
        cls, request: CloudRequest, exc: CloudError, **metadata
    ) -> "CloudResponse":
        return cls(
            kind=request.kind,
            key=request.key,
            ok=False,
            error_code=exc.code,
            error=str(exc),
            **metadata,
        )


def results_digest(responses) -> str:
    """Order-independent digest of a whole result set.

    Responses are sorted by idempotency key, so two runs that completed
    the same requests — in any order, on any engine, on any mix of pool
    and degraded paths — digest identically.
    """
    hasher = hashlib.sha256()
    for response in sorted(responses, key=lambda r: r.key):
        hasher.update(response.digest().encode())
    return hasher.hexdigest()
