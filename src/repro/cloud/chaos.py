"""The chaos campaign: kill workers mid-request, demand exactness.

For every request kind the campaign first runs a *discovery* pass on an
in-process template (``count_ops``) to learn how many machine-visible
monitor operations one execution performs, then sweeps kill points over
that space: ``0`` (killed on dequeue, before any work), every
``kill_stride``-th operation inside the enclave run, and ``-1`` (killed
after the work, before the reply — a completed-but-unacknowledged
request, the classic at-most-once hazard).  Each kill point gets its
own request (distinct idempotency key) submitted against a live
:class:`CloudService`, interleaved with plain background requests.

The gate is absolute:

* every submitted request **terminates** within the global timeout —
  a pending future at the deadline is a hang, and a violation;
* every successful response is **bit-exact** against the pure
  in-process golden (``EnclaveTemplate.expected``) — engine, worker,
  retry path and degraded path must all agree;
* every failure carries a **typed retryable** error code — anything
  else (an untyped error, a non-retryable code out of nowhere) is a
  violation;
* every injected kill **fired**: observed worker crashes must cover
  the kill points, or the chaos plumbing itself has rotted;
* afterwards, every surviving worker and the parent template **audit
  clean** and rewind to the template digest — no partial state, no
  cross-request leakage, no quiet corruption.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cloud.api import REQUEST_KINDS, CloudRequest, CloudResponse
from repro.cloud.service import CloudService
from repro.cloud.worker import get_template

#: Nonce base for background (non-chaos) requests, so their keys never
#: collide with the chaos sweep's.
_BACKGROUND_NONCE = 1 << 20


def base_payload(kind: str, seed: int) -> Tuple[int, ...]:
    """A deterministic, kind-appropriate payload."""
    mix = lambda i: (seed * 0x9E3779B9 + i * 0x85EBCA6B + 1) & 0xFFFFFFFF
    if kind == "attest":
        return tuple(mix(i) for i in range(8))
    if kind == "seal":
        return tuple(mix(i) for i in range(6))
    if kind == "unseal":
        return tuple(mix(i) for i in range(5))
    if kind == "sign":
        return tuple(mix(i) for i in range(12))
    if kind == "checksum":
        return tuple(mix(i) for i in range(8))
    if kind == "spin":
        return (48,)
    if kind == "pipeline":
        return tuple(mix(i) for i in range(4))
    raise ValueError(f"unknown kind {kind!r}")


@dataclass
class ChaosReport:
    """Everything the gate (and the CLI table) needs."""

    engine: str
    workers: int
    kill_stride: int
    seed: int
    ops_per_kind: Dict[str, int] = field(default_factory=dict)
    kill_points: Dict[str, int] = field(default_factory=dict)
    submitted: int = 0
    completed: int = 0
    ok: int = 0
    retryable_failures: int = 0
    hangs: int = 0
    crashes: int = 0
    respawns: int = 0
    retries: int = 0
    degraded: int = 0
    worker_audits: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations and self.hangs == 0

    def to_dict(self) -> Dict:
        return {
            "engine": self.engine,
            "workers": self.workers,
            "kill_stride": self.kill_stride,
            "seed": self.seed,
            "ops_per_kind": dict(self.ops_per_kind),
            "kill_points": dict(self.kill_points),
            "submitted": self.submitted,
            "completed": self.completed,
            "ok": self.ok,
            "retryable_failures": self.retryable_failures,
            "hangs": self.hangs,
            "crashes": self.crashes,
            "respawns": self.respawns,
            "retries": self.retries,
            "degraded": self.degraded,
            "worker_audits": self.worker_audits,
            "violations": list(self.violations),
            "passed": self.passed,
        }


class ChaosCampaign:
    """Sweep worker kills across every request kind's operation space."""

    def __init__(
        self,
        kinds: Optional[Sequence[str]] = None,
        workers: int = 2,
        engine: str = "turbo",
        kill_stride: int = 7,
        seed: int = 0xCA05,
        request_timeout: Optional[float] = None,
        max_attempts: int = 4,
        global_timeout: float = 180.0,
        background: int = 4,
    ):
        if kill_stride < 1:
            raise ValueError("kill_stride must be >= 1")
        self.kinds = tuple(kinds) if kinds else REQUEST_KINDS
        unknown = [k for k in self.kinds if k not in REQUEST_KINDS]
        if unknown:
            raise ValueError(f"unknown request kind(s) {unknown}")
        self.workers = workers
        self.engine = engine
        self.kill_stride = kill_stride
        self.seed = seed
        self.request_timeout = request_timeout
        self.max_attempts = max_attempts
        self.global_timeout = global_timeout
        self.background = background

    def _request(self, kind: str, nonce: int) -> CloudRequest:
        return CloudRequest(
            kind=kind, payload=base_payload(kind, self.seed), nonce=nonce
        )

    def run(self) -> ChaosReport:
        return asyncio.run(self._run())

    async def _run(self) -> ChaosReport:
        report = ChaosReport(
            engine=self.engine,
            workers=self.workers,
            kill_stride=self.kill_stride,
            seed=self.seed,
        )
        # Discovery + goldens on the parent's template, BEFORE the
        # service starts — afterwards only the degraded executor may
        # touch this template.
        spec = {
            "engine": self.engine,
            "seed": 0xC10D,
            "secure_pages": 48,
            "step_budget": 2_000_000,
        }
        template = get_template(spec)
        plan: List[Tuple[CloudRequest, Optional[int]]] = []
        nonce = 0
        for kind in self.kinds:
            ops = template.count_ops(self._request(kind, 0))
            report.ops_per_kind[kind] = ops
            points = [0, *range(1, ops + 1, self.kill_stride), -1]
            report.kill_points[kind] = len(points)
            for point in points:
                plan.append((self._request(kind, nonce), point))
                nonce += 1
        for i in range(self.background):
            kind = self.kinds[i % len(self.kinds)]
            plan.append((self._request(kind, _BACKGROUND_NONCE + i), None))
        goldens = {req.key: template.expected(req) for req, _ in plan}

        service = CloudService(
            workers=self.workers,
            engine=self.engine,
            seed=spec["seed"],
            secure_pages=spec["secure_pages"],
            step_budget=spec["step_budget"],
            request_timeout=self.request_timeout,
            max_attempts=self.max_attempts,
            # The chaos gate exercises the *pool* path: an injected kill
            # storm would otherwise trip the breaker and hide the retry
            # machinery behind degraded serving.
            breaker_threshold=1_000_000,
        )
        await service.start()
        try:
            tasks = {
                asyncio.ensure_future(
                    service.submit(req, chaos_kill_at=point)
                ): req
                for req, point in plan
            }
            report.submitted = len(tasks)
            done, pending = await asyncio.wait(
                tasks, timeout=self.global_timeout
            )
            report.hangs = len(pending)
            for task in pending:
                req = tasks[task]
                report.violations.append(
                    f"HANG: {req.kind} nonce={req.nonce} never terminated "
                    f"within {self.global_timeout}s"
                )
                task.cancel()
            for task in done:
                req = tasks[task]
                report.completed += 1
                self._classify(report, req, task.result(), goldens[req.key])

            kills_injected = sum(
                1 for _, point in plan if point is not None
            )
            stats = service.stats()
            report.crashes = stats["crashes"]
            report.respawns = stats["respawns"]
            report.retries = stats["retries"]
            report.degraded = stats["degraded"]
            if report.crashes < kills_injected - report.hangs:
                report.violations.append(
                    f"chaos plumbing: injected {kills_injected} kills but "
                    f"observed only {report.crashes} worker crashes"
                )
            if not pending:
                audits = await service.audit_workers()
                report.worker_audits = len(audits)
                for worker_id, (violations, digest) in audits.items():
                    for violation in violations:
                        report.violations.append(
                            f"worker {worker_id} audit: {violation}"
                        )
                    if digest != template.template_digest:
                        report.violations.append(
                            f"worker {worker_id}: post-campaign secure state "
                            "does not rewind to the template digest"
                        )
        finally:
            await service.close()

        for violation in template.audit():
            report.violations.append(f"parent template audit: {violation}")
        if template.rewind_digest() != template.template_digest:
            report.violations.append(
                "parent template: secure state does not rewind to the "
                "template digest"
            )
        return report

    @staticmethod
    def _classify(
        report: ChaosReport,
        request: CloudRequest,
        response: CloudResponse,
        golden: CloudResponse,
    ) -> None:
        if response.ok:
            if response.digest() == golden.digest():
                report.ok += 1
            else:
                report.violations.append(
                    f"MISMATCH: {request.kind} nonce={request.nonce} "
                    f"(worker {response.worker}, attempts {response.attempts}, "
                    f"degraded={response.degraded}) diverged from the golden"
                )
        elif response.retryable:
            report.retryable_failures += 1
        else:
            report.violations.append(
                f"UNTYPED/UNRETRYABLE failure: {request.kind} "
                f"nonce={request.nonce} -> {response.error_code}: "
                f"{response.error}"
            )
