"""Resilient multi-tenant enclave serving (the "enclave cloud").

A cloud operator runs many tenants' enclave requests on a pool of
machines, some of which crash mid-request.  Komodo's crash-recovery
story (PR 3: the commit journal, ``monitor.recover()``, the driver's
retry discipline) makes that survivable *within* one machine; this
package scales it out: a supervised pool of worker processes, each
holding a pre-booted monitor+OS template, serves attest / seal /
unseal / sign / checksum requests while a supervisor detects crashed
workers, respawns them, and re-dispatches in-flight requests with
seeded backoff — degrading to a slow single-worker path rather than
failing when the pool is unhealthy.

Layering:

* :mod:`repro.cloud.api` — wire types, idempotency keys, typed errors;
* :mod:`repro.cloud.template` — one pre-booted enclave machine,
  snapshot-restored per request (the "template");
* :mod:`repro.cloud.worker` — the worker-process main loop;
* :mod:`repro.cloud.supervisor` — worker handles + circuit breaker;
* :mod:`repro.cloud.service` — the asyncio front end tying it together;
* :mod:`repro.cloud.chaos` — the kill-workers-mid-request campaign.

CLIs: ``python -m repro.tools.cloudcamp`` (chaos gate) and
``python -m repro.tools.cloudbench`` (throughput/latency benchmark).
"""

from repro.cloud.api import (
    REQUEST_KINDS,
    BadRequest,
    CloudError,
    CloudRequest,
    CloudResponse,
    DeadlineExceeded,
    PoolClosed,
    RequestTimeout,
    WorkerCrashed,
)
from repro.cloud.service import CloudService
from repro.cloud.template import EnclaveTemplate

__all__ = [
    "REQUEST_KINDS",
    "BadRequest",
    "CloudError",
    "CloudRequest",
    "CloudResponse",
    "CloudService",
    "DeadlineExceeded",
    "EnclaveTemplate",
    "PoolClosed",
    "RequestTimeout",
    "WorkerCrashed",
]
