"""A pre-booted enclave machine, snapshot-restored per request.

Booting a monitor, building three enclaves, and generating the notary's
RSA key is far too slow to do per request.  An :class:`EnclaveTemplate`
does it once: it boots a monitor + OS kernel, builds the *vault* native
enclave (attest / seal / unseal / spin), a :class:`NotaryEnclave`
(initialised, key generated), the :class:`ChecksumService` (real
ARM code — the engine-sensitive service), and the two-enclave
counter-notary pipeline (``repro.pipeline``), then captures one
:class:`CampaignSnapshot`.  Serving a request is then: restore the
snapshot, stage the payload, run the enclave under a step budget, read
the result — a pure function of the request, bit-identical on every
engine and on every worker forked from the same spec.

The step budget is the per-request *deterministic* deadline: execution
is sliced with ``monitor.schedule_interrupt`` and a request that
exhausts its budget fails with :class:`DeadlineExceeded` — the machine
analogue of a serving timeout, reproducible in tests because it counts
retired steps, not wall-clock.

Templates are not thread-safe (one monitor, mutated in place); an
internal lock serialises ``execute`` / ``expected`` / ``count_ops`` /
``audit`` so the service's degraded path and a test driver cannot
interleave restores.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.apps import notary as notary_app
from repro.apps.checksum import ChecksumService
from repro.apps.notary import NotaryEnclave
from repro.apps.sealed_storage import SealError, seal, unseal
from repro.cloud.api import (
    MAX_PAYLOAD_WORDS,
    BadRequest,
    CloudError,
    CloudRequest,
    CloudResponse,
    DeadlineExceeded,
)
from repro.crypto.rng import HardwareRNG
from repro.faults.audit import audit_monitor, secure_state_digest
from repro.faults.injector import FaultPlan
from repro.faults.snapshot import CampaignSnapshot
from repro.monitor.errors import KomErr
from repro.monitor.komodo import KomodoMonitor
from repro.osmodel.kernel import OSKernel
from repro.pipeline import stages as pipeline_stages
from repro.pipeline.pipelines import build_pipeline
from repro.sdk.builder import SHARED_VA, EnclaveBuilder
from repro.sdk.native import NativeEnclaveProgram

# Vault operations (arg1 of Enter).
OP_ATTEST = 1
OP_SEAL = 2
OP_UNSEAL = 3
OP_SPIN = 4

# Vault shared-page layout (word offsets): request words in the low
# half, response words in the high half of the one shared page.
_V_IN = 0
_V_OUT = 512

# Vault result sentinels (word values no success path returns).
_V_BAD_SHAPE = 0xFFFF_FFFE
_V_SEAL_FAIL = 0xFFFF_FFFD

#: Steps retired per scheduling slice while burning a budget.
_SLICE = 4096

#: Poll rounds before a pipeline request is declared stalled.  The
#: fault-free two-enclave commit completes in a handful of rounds; the
#: bound only exists so a (deterministically) wedged pipeline fails
#: typed instead of spinning.
_PIPELINE_ROUNDS = 64


def _vault_body(ctx, op: int, arg2: int, arg3: int):
    """The vault enclave: attest, seal, unseal-roundtrip, spin."""
    base = SHARED_VA
    if op == OP_ATTEST:
        data = ctx.read_words(base + _V_IN * 4, 8)
        yield
        mac = ctx.attest(data)
        ctx.write_words(base + _V_OUT * 4, mac)
        return len(mac)
    if op == OP_SEAL:
        if arg2 < 1 or arg2 > MAX_PAYLOAD_WORDS:
            return _V_BAD_SHAPE
        payload = ctx.read_words(base + _V_IN * 4, arg2)
        yield
        blob = seal(ctx, payload)
        ctx.write_words(base + _V_OUT * 4, blob)
        return len(blob)
    if op == OP_UNSEAL:
        # Self-contained roundtrip: seal the payload, then prove a later
        # incarnation of the same identity can recover it.
        if arg2 < 1 or arg2 > MAX_PAYLOAD_WORDS:
            return _V_BAD_SHAPE
        payload = ctx.read_words(base + _V_IN * 4, arg2)
        yield
        blob = seal(ctx, payload)
        yield
        try:
            recovered = unseal(ctx, blob)
        except SealError:
            return _V_SEAL_FAIL
        if recovered != payload:
            return _V_SEAL_FAIL
        ctx.write_words(base + _V_OUT * 4, recovered)
        return len(recovered)
    if op == OP_SPIN:
        for _ in range(arg2):
            ctx.charge(32)
            yield  # one preemption point per iteration: budget-visible
        return arg2 & 0xFFFF_FFFF
    return _V_BAD_SHAPE


class EnclaveTemplate:
    """One booted monitor+OS with the three service enclaves, plus the
    quiescent snapshot every request starts from."""

    def __init__(
        self,
        engine: str = "turbo",
        secure_pages: int = 48,
        seed: int = 0xC10D,
        step_budget: int = 2_000_000,
    ):
        self.engine = engine
        self.secure_pages = secure_pages
        self.seed = seed
        self.step_budget = step_budget
        self.monitor = KomodoMonitor(
            rng=HardwareRNG(seed), secure_pages=secure_pages, cpu_engine=engine
        )
        self.kernel = OSKernel(self.monitor)
        self._vault = (
            EnclaveBuilder(self.kernel)
            .add_shared_buffer(va=SHARED_VA, writable=True)
            .set_native_program(NativeEnclaveProgram("cloud-vault", _vault_body))
            .build()
        )
        self._notary = NotaryEnclave(self.kernel, max_doc_bytes=MAX_PAYLOAD_WORDS * 4)
        self._notary.init()  # RSA keygen happens once, here
        self._checksum = ChecksumService(self.kernel)
        self._pipeline = build_pipeline("counter-notary", self.kernel)
        self.snapshot = CampaignSnapshot(self.monitor, self.kernel)
        #: Digest of the quiescent secure state every request starts
        #: from; two workers forked from the same spec must agree.
        self.template_digest = secure_state_digest(self.monitor.state)
        self._expected: Dict[str, CloudResponse] = {}
        self._lock = threading.Lock()

    # -- spawning ---------------------------------------------------------

    def spec_for_spawn(self) -> Dict:
        """Everything a worker process needs to rebuild this template."""
        return {
            "engine": self.engine,
            "secure_pages": self.secure_pages,
            "seed": self.seed,
            "step_budget": self.step_budget,
        }

    @classmethod
    def from_spec(cls, spec: Dict) -> "EnclaveTemplate":
        return cls(**spec)

    # -- execution --------------------------------------------------------

    def execute(
        self,
        request: CloudRequest,
        fault_plan: Optional[FaultPlan] = None,
        step_budget: Optional[int] = None,
    ) -> CloudResponse:
        """Serve one request from a fresh restore of the snapshot.

        Raises the typed :class:`CloudError` subclasses on failure; the
        worker loop converts those into error responses.  ``fault_plan``
        attaches a fault/kill plan for the duration of the enclave run
        (the chaos campaign's hook).
        """
        with self._lock:
            return self._execute_locked(request, fault_plan, step_budget)

    def _execute_locked(
        self,
        request: CloudRequest,
        fault_plan: Optional[FaultPlan],
        step_budget: Optional[int],
    ) -> CloudResponse:
        request.validate()
        budget = self.step_budget if step_budget is None else step_budget
        self.snapshot.restore()
        state = self.monitor.state
        if fault_plan is not None:
            if state.fault_plan is not None:
                raise RuntimeError("a fault plan is already attached")
            state.fault_plan = fault_plan
        try:
            words = self._dispatch(request, budget)
        finally:
            state.fault_plan = None
        return CloudResponse(
            kind=request.kind, key=request.key, ok=True, words=tuple(words)
        )

    def expected(self, request: CloudRequest) -> CloudResponse:
        """The golden response — memoised, computed in-process."""
        with self._lock:
            response = self._expected.get(request.key)
            if response is None:
                response = self._execute_locked(request, None, None)
                self._expected[request.key] = response
            return response

    def count_ops(self, request: CloudRequest) -> int:
        """Discovery pass: machine-visible monitor operations one
        execution of ``request`` performs (the chaos kill-point space)."""
        with self._lock:
            plan = FaultPlan()
            self._execute_locked(request, plan, None)
            return plan.count

    def audit(self) -> List[str]:
        """Restore to quiescence and run the full post-crash audit."""
        with self._lock:
            self.snapshot.restore()
            return audit_monitor(self.monitor)

    def rewind_digest(self) -> str:
        """Secure-state digest after a restore; must equal
        :attr:`template_digest` forever (no cross-request leakage)."""
        with self._lock:
            self.snapshot.restore()
            return secure_state_digest(self.monitor.state)

    # -- internals --------------------------------------------------------

    def _dispatch(self, request: CloudRequest, budget: int) -> List[int]:
        kind = request.kind
        payload = list(request.payload)
        if kind == "attest":
            count = self._vault_call(OP_ATTEST, payload, 0, budget)
            return self._vault_out(count)
        if kind == "seal":
            count = self._vault_call(OP_SEAL, payload, len(payload), budget)
            return self._vault_out(count)
        if kind == "unseal":
            count = self._vault_call(OP_UNSEAL, payload, len(payload), budget)
            return self._vault_out(count)
        if kind == "spin":
            value = self._vault_call(OP_SPIN, [], payload[0], budget)
            return [value]
        if kind == "sign":
            return self._sign(payload, budget)
        if kind == "pipeline":
            return self._pipeline_call(payload, budget)
        if kind == "checksum":
            self._checksum.handle.buffer().write_words(self.kernel, payload)
            err, value = self._run_budgeted(
                self._checksum.handle.thread, len(payload), 0, 0, budget
            )
            self._check_err("checksum", err)
            return [value]
        raise BadRequest(f"unknown request kind {kind!r}")  # pragma: no cover

    def _vault_call(
        self, op: int, payload: List[int], arg2: int, budget: int
    ) -> int:
        if payload:
            self._vault.buffer().write_words(self.kernel, payload, offset=_V_IN)
        err, value = self._run_budgeted(self._vault.thread, op, arg2, 0, budget)
        self._check_err("vault", err)
        if value == _V_BAD_SHAPE:
            raise BadRequest("vault rejected the request shape")
        if value == _V_SEAL_FAIL:
            raise CloudError("vault seal/unseal roundtrip failed")
        return value

    def _vault_out(self, count: int) -> List[int]:
        return self._vault.buffer().read_words(self.kernel, count, offset=_V_OUT)

    def _pipeline_call(self, payload: List[int], budget: int) -> List[int]:
        """Drive one transaction through the counter-notary pipeline.

        The host plays the saga coordinator inline: retransmit the
        request on the ingress edge, poll both stages, drain the egress
        edge — exactly the at-least-once discipline of
        ``repro.osmodel.saga``, collapsed to one serial core.  Returns
        the reply payload: [status, counter value] ++ 8 receipt words.
        """
        pipe = self._pipeline
        txid = 1  # every request starts from the pristine snapshot
        threads = [pipe.stage(name).handle.thread for name in ("notary", "counter")]
        for _ in range(_PIPELINE_ROUNDS):
            pipe.ingress.send(txid, pipeline_stages.MSG_REQ, payload)
            for thread in threads:
                err, _ = self._run_budgeted(
                    thread, pipeline_stages.OP_POLL, 0, 0, budget
                )
                self._check_err("pipeline", err)
            for frame in pipe.egress.drain():
                if frame.opcode == pipeline_stages.MSG_REPLY and frame.txid == txid:
                    return list(frame.payload)
        raise DeadlineExceeded(
            f"pipeline transaction did not commit within {_PIPELINE_ROUNDS} rounds"
        )

    def _sign(self, payload: List[int], budget: int) -> List[int]:
        handle = self._notary.handle
        handle.buffers[1].write_words(self.kernel, payload)
        err, counter = self._run_budgeted(
            handle.thread, notary_app.OP_NOTARIZE, len(payload) * 4, 0, budget
        )
        self._check_err("notary", err)
        if counter >= 0xFFFF_FFF0:
            raise BadRequest(f"notary rejected the document ({counter:#x})")
        control = handle.buffer(0)
        signature = control.read_words(
            self.kernel, notary_app._RSA_WORDS, offset=notary_app._CTL_SIG
        )
        return [counter] + signature

    def _run_budgeted(
        self, thread: int, a1: int, a2: int, a3: int, budget: int
    ) -> Tuple[KomErr, int]:
        """Enter a thread and resume across interrupts, retiring at most
        ``budget`` steps (instructions, or native preemption points)."""
        remaining = budget
        chunk = min(remaining, _SLICE)
        self.monitor.schedule_interrupt(chunk)
        err, value = self.kernel.enter(thread, a1, a2, a3)
        while err is KomErr.INTERRUPTED:
            remaining -= chunk
            if remaining <= 0:
                raise DeadlineExceeded(
                    f"request exceeded its step budget of {budget}"
                )
            chunk = min(remaining, _SLICE)
            self.monitor.schedule_interrupt(chunk)
            err, value = self.kernel.resume(thread)
        return (err, value)

    @staticmethod
    def _check_err(who: str, err: KomErr) -> None:
        if err is not KomErr.SUCCESS:
            raise CloudError(f"{who} enclave failed: {err!r}")
