"""The worker-process main loop.

A worker is one OS process holding one :class:`EnclaveTemplate` and a
duplex pipe to the supervisor.  The protocol is deliberately tiny —
every message is a tuple whose first element is its type:

supervisor -> worker
    ``("req", wire, options)``  serve a request (options: step_budget,
    chaos_kill_at); ``("audit",)`` restore + audit; ``("stop",)`` exit.

worker -> supervisor
    ``("res", wire)`` a response; ``("hb", worker_id, served)`` an
    idle heartbeat; ``("audit_ok", worker_id, violations, digest)``.

Workers are forked, so :func:`get_template` keeps a per-process cache
keyed by spec: the supervising parent prewarms the template *before*
forking and every child inherits the booted machine copy-on-write —
respawning a crashed worker costs a fork, not an RSA keygen.

Chaos hook: ``chaos_kill_at`` arms a :class:`KillPlan`, which die-rolls
nothing — it deterministically ``os._exit(137)``s the worker at the
N-th machine-visible monitor operation of the request (0 = on dequeue,
before any work; -1 = after the work, before the reply is sent — the
worst case, a completed-but-unacknowledged request).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.cloud.api import CloudError, CloudRequest, CloudResponse
from repro.cloud.template import EnclaveTemplate
from repro.faults.injector import FaultPlan

#: Exit status a chaos-killed worker dies with (mirrors SIGKILL's 128+9).
KILL_STATUS = 137

_template_cache: Dict[Tuple, EnclaveTemplate] = {}


def _spec_key(spec: Dict) -> Tuple:
    return tuple(sorted(spec.items()))


def get_template(spec: Dict) -> EnclaveTemplate:
    """The per-process template for ``spec`` (built once, cached)."""
    key = _spec_key(spec)
    template = _template_cache.get(key)
    if template is None:
        template = EnclaveTemplate.from_spec(spec)
        _template_cache[key] = template
    return template


class KillPlan(FaultPlan):
    """Die (hard) at the ``kill_at``-th machine-visible operation."""

    def __init__(self, kill_at: int):
        super().__init__()
        self.kill_at = kill_at

    def visit(self, state, kind, detail):
        super().visit(state, kind, detail)
        if self.count == self.kill_at:
            os._exit(KILL_STATUS)


def serve_request(
    template: EnclaveTemplate,
    request: CloudRequest,
    step_budget: Optional[int] = None,
    chaos_kill_at: Optional[int] = None,
) -> CloudResponse:
    """Serve one request, honouring the chaos kill point if armed."""
    if chaos_kill_at == 0:
        os._exit(KILL_STATUS)  # killed on dequeue, before any work
    plan = None
    if chaos_kill_at is not None and chaos_kill_at > 0:
        plan = KillPlan(chaos_kill_at)
    try:
        response = template.execute(request, fault_plan=plan, step_budget=step_budget)
    except CloudError as exc:
        return CloudResponse.failure(request, exc)
    if chaos_kill_at == -1:
        os._exit(KILL_STATUS)  # killed after the work, before the reply
    return response


def worker_main(worker_id: int, spec: Dict, conn, hb_interval: float = 0.1) -> None:
    """Entry point of a worker process; never returns normally except
    on ``("stop",)`` or a closed pipe."""
    template = get_template(spec)
    served = 0
    while True:
        try:
            if not conn.poll(hb_interval):
                conn.send(("hb", worker_id, served))
                continue
            message = conn.recv()
        except (EOFError, OSError):
            break  # supervisor is gone; die quietly
        if message[0] == "stop":
            break
        if message[0] == "audit":
            violations = template.audit()
            digest = template.rewind_digest()
            conn.send(("audit_ok", worker_id, violations, digest))
            continue
        if message[0] == "req":
            _, wire, options = message
            request = CloudRequest.from_wire(wire)
            response = serve_request(
                template,
                request,
                step_budget=options.get("step_budget"),
                chaos_kill_at=options.get("chaos_kill_at"),
            )
            served += 1
            conn.send(("res", response.to_wire()))
            continue
        # Unknown message: fail loudly (a protocol bug, not a crash).
        raise RuntimeError(f"worker {worker_id}: unknown message {message[0]!r}")
    conn.close()
