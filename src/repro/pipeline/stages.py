"""Native stage programs for composite multi-enclave pipelines.

Each stage is a tiny replicated state machine living in one secure
state page, polled by an untrusted per-core pump script: every
``Enter`` performs **one poll round** — drain inbound frames, advance
the durable state, retransmit the current phase's outbound frame — and
returns.  Three properties make the stages crash-anywhere safe:

* **Arguments are ignored.**  A stage that crashes mid-transaction is
  respawned by the saga coordinator as a *fresh* generator whose
  arguments come from whatever (stale) GPRs the thread context holds;
  a poll round therefore reads everything it needs from durable state.
* **Shadow-slot commits.**  Native secure-page writes are *not*
  journaled by the monitor — a crash can persist any prefix of them.
  All transaction state lives in two slots plus a one-word active
  index: a commit writes the inactive slot completely, then flips the
  index with a single word store.  A crash before the flip leaves the
  old state; after it, the new state.  Never a torn transaction.
* **At-least-once messaging, exactly-once effects.**  Senders
  retransmit their phase's frame every poll round; receivers
  deduplicate by comparing the frame's transaction id against their
  durable slot.  Lost frames, crashed-and-respawned peers, and
  adversarial replays all collapse to the same handled case.

Two pipelines are assembled from these stages (``repro.pipeline
.pipelines``): a notary whose monotonic counter lives in a separate
sealed-counter enclave (a two-enclave commit with saga compensation),
and a three-stage attest -> sign -> seal relay chain.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.arm.bits import WORDSIZE
from repro.arm.memory import PAGE_SIZE
from repro.apps.sealed_storage import seal
from repro.pipeline.txchannel import PUBLIC_EDGE_KEY, TxChannel
from repro.sdk.channel import Channel, EnclaveEndpoint
from repro.sdk.native import NativeContext, NativeEnclaveProgram

# -- virtual layout shared by every stage ---------------------------------

STATE_VA = 0x0010_0000
CHANNEL_BASE_VA = 0x0020_0000


def channel_va(index: int) -> int:
    """The VA of channel page ``index`` (one insecure page per link)."""
    return CHANNEL_BASE_VA + index * PAGE_SIZE


#: Pumps pass this as arg1 for readability; stage bodies ignore it.
OP_POLL = 1

# -- wire protocol --------------------------------------------------------

# Requester edges (OS <-> pipeline).
MSG_REQ = 0x10
MSG_REPLY = 0x11
# Two-enclave commit (notary <-> counter).
MSG_RESERVE = 0x20
MSG_RESERVE_OK = 0x21
MSG_RESERVE_FAIL = 0x22
MSG_CONFIRM = 0x23
MSG_CONFIRM_OK = 0x24
MSG_CONFIRM_FAIL = 0x25
MSG_ABORT = 0x26
MSG_ABORT_OK = 0x27
MSG_ABORT_FAIL = 0x28
# Relay chain (stage -> stage).
MSG_FWD = 0x30
MSG_ACK = 0x31

#: Reply status words.
ST_OK = 0
ST_ABORTED = 1

# -- shadow-slot plumbing -------------------------------------------------


def _read_slot(ctx: NativeContext, slot_w: int, words: int) -> List[int]:
    return ctx.read_words(STATE_VA + slot_w * WORDSIZE, words)


def _active_slot(
    ctx: NativeContext, active_w: int, slot0_w: int, slot1_w: int, words: int
) -> List[int]:
    active = ctx.read_word(STATE_VA + active_w * WORDSIZE) & 1
    return _read_slot(ctx, slot1_w if active else slot0_w, words)


def _commit_slot(
    ctx: NativeContext,
    active_w: int,
    slot0_w: int,
    slot1_w: int,
    words: int,
    values: Sequence[int],
) -> None:
    """Write the inactive slot fully, then flip the active index.

    The flip is one word store — the commit point.  A crash anywhere
    before it leaves the previous transaction state intact; the slot
    being written is invisible until the flip lands.
    """
    active = ctx.read_word(STATE_VA + active_w * WORDSIZE) & 1
    target_w = slot0_w if active else slot1_w
    padded = list(values) + [0] * (words - len(values))
    ctx.write_words(STATE_VA + target_w * WORDSIZE, padded[:words])
    ctx.write_word(STATE_VA + active_w * WORDSIZE, 1 - active)


def _link(ctx: NativeContext, index: int, key: Sequence[int]) -> TxChannel:
    return TxChannel(Channel(EnclaveEndpoint(ctx, channel_va(index))), key)


# ==========================================================================
# Sealed-counter stage (pipeline 1's second enclave)
# ==========================================================================

COUNTER_MAGIC = 0x434E5452  # "CNTR"

C_MAGIC_W = 0
C_ACTIVE_W = 1
C_SLOT0_W = 2
C_SLOT1_W = 10
C_KEY_W = 18
C_SLOT_WORDS = 8

# Slot layout.
CS_TXID = 0
CS_VALUE = 1
CS_PHASE = 2
CS_NEXT = 3
CS_CONFIRMED = 4

# Counter-side transaction phases.
PH_IDLE = 0
PH_RESERVED = 1
PH_CONFIRMED = 2
PH_ABORTED = 3

# Counter channels: 0 = requests in (from the notary), 1 = replies out.
COUNTER_CH_IN = 0
COUNTER_CH_OUT = 1


def counter_state_contents(link_key: Sequence[int]) -> List[int]:
    """Measured initial state: idle slot 0 active, counter starts at 1."""
    state = [0] * (C_KEY_W + 8)
    state[C_MAGIC_W] = COUNTER_MAGIC
    state[C_ACTIVE_W] = 0
    state[C_SLOT0_W + CS_NEXT] = 1
    state[C_KEY_W : C_KEY_W + 8] = [w & 0xFFFFFFFF for w in link_key]
    return state


def _counter_active(ctx: NativeContext) -> List[int]:
    return _active_slot(ctx, C_ACTIVE_W, C_SLOT0_W, C_SLOT1_W, C_SLOT_WORDS)


def _counter_commit(ctx: NativeContext, values: Sequence[int]) -> None:
    _commit_slot(ctx, C_ACTIVE_W, C_SLOT0_W, C_SLOT1_W, C_SLOT_WORDS, values)


def _counter_handle(ctx: NativeContext, frame, out: TxChannel) -> None:
    cur = _counter_active(ctx)
    txid, op = frame.txid, frame.opcode
    if op == MSG_RESERVE:
        if txid > cur[CS_TXID]:
            # The counter value is consumed AT reserve time: an abort
            # burns it, so no value is ever issued twice.
            value = cur[CS_NEXT]
            _counter_commit(
                ctx,
                [txid, value, PH_RESERVED, (value + 1) & 0xFFFFFFFF,
                 cur[CS_CONFIRMED]],
            )
            out.send(txid, MSG_RESERVE_OK, [value])
        elif txid == cur[CS_TXID]:
            if cur[CS_PHASE] in (PH_RESERVED, PH_CONFIRMED):
                out.send(txid, MSG_RESERVE_OK, [cur[CS_VALUE]])
            elif cur[CS_PHASE] == PH_ABORTED:
                out.send(txid, MSG_RESERVE_FAIL)
        # txid < cur: a stale retransmission or replay; drop.
    elif op == MSG_CONFIRM:
        if txid == cur[CS_TXID]:
            if cur[CS_PHASE] == PH_RESERVED:
                _counter_commit(
                    ctx,
                    [txid, cur[CS_VALUE], PH_CONFIRMED, cur[CS_NEXT],
                     cur[CS_CONFIRMED] + 1],
                )
                out.send(txid, MSG_CONFIRM_OK, [cur[CS_VALUE]])
            elif cur[CS_PHASE] == PH_CONFIRMED:
                out.send(txid, MSG_CONFIRM_OK, [cur[CS_VALUE]])
            elif cur[CS_PHASE] == PH_ABORTED:
                out.send(txid, MSG_CONFIRM_FAIL)
    elif op == MSG_ABORT:
        if txid > cur[CS_TXID]:
            # Abort overtook its reserve (saga compensation racing a
            # crashed notary's retransmission): record the abort so the
            # late reserve cannot resurrect the transaction.
            _counter_commit(
                ctx, [txid, 0, PH_ABORTED, cur[CS_NEXT], cur[CS_CONFIRMED]]
            )
            out.send(txid, MSG_ABORT_OK)
        elif txid == cur[CS_TXID]:
            if cur[CS_PHASE] == PH_RESERVED:
                _counter_commit(
                    ctx,
                    [txid, cur[CS_VALUE], PH_ABORTED, cur[CS_NEXT],
                     cur[CS_CONFIRMED]],
                )
                out.send(txid, MSG_ABORT_OK)
            elif cur[CS_PHASE] == PH_ABORTED:
                out.send(txid, MSG_ABORT_OK)
            elif cur[CS_PHASE] == PH_CONFIRMED:
                out.send(txid, MSG_ABORT_FAIL)


def _counter_body(ctx: NativeContext, *_args):
    """One poll round of the sealed-counter stage (args ignored)."""
    key = ctx.read_words(STATE_VA + C_KEY_W * WORDSIZE, 8)
    link_in = _link(ctx, COUNTER_CH_IN, key)
    link_out = _link(ctx, COUNTER_CH_OUT, key)
    frames = link_in.drain()
    yield  # preemption point: crash/suspend with requests consumed
    for frame in frames:
        _counter_handle(ctx, frame, link_out)
    return 0


def counter_program() -> NativeEnclaveProgram:
    return NativeEnclaveProgram("pipe-counter", _counter_body)


# ==========================================================================
# Notary stage (pipeline 1's front enclave)
# ==========================================================================

NOTARY_MAGIC = 0x504E5452  # "PNTR"

N_MAGIC_W = 0
N_ACTIVE_W = 1
N_SLOT0_W = 2
N_SLOT1_W = 10
N_KEY_W = 18
N_SLOT_WORDS = 8

# Slot layout.
NS_TXID = 0
NS_PHASE = 1
NS_VALUE = 2
NS_STATUS = 3
NS_DOC = 4  # 4 words of document digest
NOTARY_DOC_WORDS = 4

# Notary-side saga phases.
N_IDLE = 0
N_RESERVING = 1
N_CONFIRMING = 2
N_DONE = 3
N_ABORTING = 4
N_ABORTED = 5

# Notary channels.
NOTARY_CH_INGRESS = 0  # requests in (from the OS coordinator)
NOTARY_CH_EGRESS = 1  # replies out (to the OS coordinator)
NOTARY_CH_LINK_OUT = 2  # commit protocol out (to the counter)
NOTARY_CH_LINK_IN = 3  # commit protocol in (from the counter)


def notary_state_contents(link_key: Sequence[int]) -> List[int]:
    state = [0] * (N_KEY_W + 8)
    state[N_MAGIC_W] = NOTARY_MAGIC
    state[N_KEY_W : N_KEY_W + 8] = [w & 0xFFFFFFFF for w in link_key]
    return state


def _notary_active(ctx: NativeContext) -> List[int]:
    return _active_slot(ctx, N_ACTIVE_W, N_SLOT0_W, N_SLOT1_W, N_SLOT_WORDS)


def _notary_commit(ctx: NativeContext, values: Sequence[int]) -> None:
    _commit_slot(ctx, N_ACTIVE_W, N_SLOT0_W, N_SLOT1_W, N_SLOT_WORDS, values)


def notary_receipt(
    attest: Callable[[List[int]], List[int]],
    doc: Sequence[int],
    value: int,
    txid: int,
) -> List[int]:
    """The receipt MAC: Attest over (doc, counter value, txid).

    Deterministic, so the notary recomputes it on every retransmission
    instead of storing it, and the host verifies it independently.
    """
    data = list(doc[:NOTARY_DOC_WORDS]) + [value & 0xFFFFFFFF, txid & 0xFFFFFFFF]
    return attest(data + [0] * (8 - len(data)))


def _notary_body(ctx: NativeContext, *_args):
    """One poll round of the notary stage (args ignored)."""
    key = ctx.read_words(STATE_VA + N_KEY_W * WORDSIZE, 8)
    ingress = _link(ctx, NOTARY_CH_INGRESS, PUBLIC_EDGE_KEY)
    egress = _link(ctx, NOTARY_CH_EGRESS, PUBLIC_EDGE_KEY)
    link_out = _link(ctx, NOTARY_CH_LINK_OUT, key)
    link_in = _link(ctx, NOTARY_CH_LINK_IN, key)

    for frame in ingress.drain():
        cur = _notary_active(ctx)
        if frame.opcode == MSG_REQ and len(frame.payload) == NOTARY_DOC_WORDS:
            # A new transaction is accepted only between transactions;
            # the coordinator serialises submissions, so a mid-phase
            # REQ is a replay and is dropped.
            if frame.txid > cur[NS_TXID] and cur[NS_PHASE] in (
                N_IDLE, N_DONE, N_ABORTED,
            ):
                _notary_commit(
                    ctx, [frame.txid, N_RESERVING, 0, 0, *frame.payload]
                )
        elif frame.opcode == MSG_ABORT:
            # Compensation request: honoured while the reserve is still
            # in flight.  Once confirming, the saga pushes forward —
            # the counter may already hold the confirm.
            if frame.txid == cur[NS_TXID] and cur[NS_PHASE] == N_RESERVING:
                _notary_commit(
                    ctx,
                    [cur[NS_TXID], N_ABORTING, cur[NS_VALUE], 0,
                     *cur[NS_DOC : NS_DOC + NOTARY_DOC_WORDS]],
                )
    yield  # preemption point between the two drains

    for frame in link_in.drain():
        cur = _notary_active(ctx)
        if frame.txid != cur[NS_TXID]:
            continue  # stale reply or cross-transaction replay
        doc = cur[NS_DOC : NS_DOC + NOTARY_DOC_WORDS]
        phase, op = cur[NS_PHASE], frame.opcode
        if op == MSG_RESERVE_OK and phase == N_RESERVING and frame.payload:
            _notary_commit(
                ctx, [cur[NS_TXID], N_CONFIRMING, frame.payload[0], 0, *doc]
            )
        elif op == MSG_RESERVE_FAIL and phase in (N_RESERVING, N_ABORTING):
            _notary_commit(
                ctx, [cur[NS_TXID], N_ABORTED, 0, ST_ABORTED, *doc]
            )
        elif op == MSG_CONFIRM_OK and phase == N_CONFIRMING:
            _notary_commit(
                ctx, [cur[NS_TXID], N_DONE, cur[NS_VALUE], ST_OK, *doc]
            )
        elif op == MSG_CONFIRM_FAIL and phase == N_CONFIRMING:
            _notary_commit(
                ctx, [cur[NS_TXID], N_ABORTED, 0, ST_ABORTED, *doc]
            )
        elif op in (MSG_ABORT_OK, MSG_ABORT_FAIL) and phase == N_ABORTING:
            _notary_commit(
                ctx, [cur[NS_TXID], N_ABORTED, 0, ST_ABORTED, *doc]
            )

    # Retransmit the current phase's outbound frame.  A full ring is
    # harmless — the next round tries again.
    cur = _notary_active(ctx)
    txid, phase = cur[NS_TXID], cur[NS_PHASE]
    if phase == N_RESERVING:
        link_out.send(txid, MSG_RESERVE)
    elif phase == N_CONFIRMING:
        link_out.send(txid, MSG_CONFIRM)
    elif phase == N_ABORTING:
        link_out.send(txid, MSG_ABORT)
    elif phase == N_DONE:
        receipt = notary_receipt(
            ctx.attest, cur[NS_DOC : NS_DOC + NOTARY_DOC_WORDS],
            cur[NS_VALUE], txid,
        )
        egress.send(txid, MSG_REPLY, [ST_OK, cur[NS_VALUE]] + receipt)
    elif phase == N_ABORTED:
        egress.send(txid, MSG_REPLY, [ST_ABORTED, 0])
    return 0


def notary_program() -> NativeEnclaveProgram:
    return NativeEnclaveProgram("pipe-notary", _notary_body)


# ==========================================================================
# Generic relay stage (pipeline 2: attest -> sign -> seal)
# ==========================================================================

RELAY_MAGIC = 0x50495045  # "PIPE"

RS_MAGIC_W = 0
RS_ACTIVE_W = 1
RS_CFG_W = 2
RS_XFORM_W = 3
RS_INKEY_W = 8
RS_OUTKEY_W = 16
RS_SLOT0_W = 24
RS_SLOT1_W = 48
RS_SLOT_WORDS = 24

# Slot layout: header then up to RELAY_DATA_WORDS of stage output.
SL_TXID = 0
SL_PHASE = 1
SL_LEN = 2
SL_DATA = 3
RELAY_DATA_WORDS = RS_SLOT_WORDS - SL_DATA

# Config bits.
CFG_ACK_UPSTREAM = 1  # input is a stage link: ack frames after commit
CFG_DOWNSTREAM_ACKS = 2  # output is a stage link: retransmit until acked

# Transforms.
XFORM_ATTEST = 1
XFORM_SIGN = 2
XFORM_SEAL = 3

# Relay phases.
RP_IDLE = 0
RP_FORWARD = 1  # committed; retransmitting downstream until acked
RP_DONE = 2

# Relay channels.
RELAY_CH_IN = 0
RELAY_CH_ACK_OUT = 1  # only mapped when CFG_ACK_UPSTREAM
RELAY_CH_OUT = 2
RELAY_CH_ACK_IN = 3  # only mapped when CFG_DOWNSTREAM_ACKS

#: Request payload for the relay chain (8 words of document digest).
RELAY_REQ_WORDS = 8


def relay_state_contents(
    cfg: int, xform: int, in_key: Sequence[int], out_key: Sequence[int]
) -> List[int]:
    state = [0] * (RS_SLOT1_W + RS_SLOT_WORDS)
    state[RS_MAGIC_W] = RELAY_MAGIC
    state[RS_CFG_W] = cfg
    state[RS_XFORM_W] = xform
    state[RS_INKEY_W : RS_INKEY_W + 8] = [w & 0xFFFFFFFF for w in in_key]
    state[RS_OUTKEY_W : RS_OUTKEY_W + 8] = [w & 0xFFFFFFFF for w in out_key]
    return state


def _relay_active(ctx: NativeContext) -> List[int]:
    return _active_slot(ctx, RS_ACTIVE_W, RS_SLOT0_W, RS_SLOT1_W, RS_SLOT_WORDS)


def _relay_commit(ctx: NativeContext, values: Sequence[int]) -> None:
    _commit_slot(ctx, RS_ACTIVE_W, RS_SLOT0_W, RS_SLOT1_W, RS_SLOT_WORDS, values)


def _relay_transform(
    ctx: NativeContext, xform: int, txid: int, data: List[int]
) -> Optional[List[int]]:
    """Apply the stage's transform.  Deterministic by construction, so a
    replayed input reproduces the identical output."""
    if xform == XFORM_ATTEST or xform == XFORM_SIGN:
        # Attest-as-MAC under this stage's own measurement; "sign" is
        # the same primitive under a different enclave identity.
        return ctx.attest((data + [0] * 8)[:8])
    if xform == XFORM_SEAL:
        return seal(ctx, [txid & 0xFFFFFFFF] + data)
    return None


def _relay_body(ctx: NativeContext, *_args):
    """One poll round of a relay stage (args ignored)."""
    cfg = ctx.read_word(STATE_VA + RS_CFG_W * WORDSIZE)
    xform = ctx.read_word(STATE_VA + RS_XFORM_W * WORDSIZE)
    in_key = ctx.read_words(STATE_VA + RS_INKEY_W * WORDSIZE, 8)
    out_key = ctx.read_words(STATE_VA + RS_OUTKEY_W * WORDSIZE, 8)
    cin = _link(ctx, RELAY_CH_IN, in_key)
    cout = _link(ctx, RELAY_CH_OUT, out_key)
    ack_out = _link(ctx, RELAY_CH_ACK_OUT, in_key) if cfg & CFG_ACK_UPSTREAM else None
    ack_in = _link(ctx, RELAY_CH_ACK_IN, out_key) if cfg & CFG_DOWNSTREAM_ACKS else None
    accept = MSG_FWD if cfg & CFG_ACK_UPSTREAM else MSG_REQ

    for frame in cin.drain():
        if frame.opcode != accept:
            continue
        cur = _relay_active(ctx)
        if frame.txid > cur[SL_TXID] and len(frame.payload) <= RELAY_DATA_WORDS:
            # The coordinator serialises transactions: a new txid means
            # the previous one has fully drained downstream, so it is
            # safe to overwrite the slot whatever its phase.
            out = _relay_transform(ctx, xform, frame.txid, list(frame.payload))
            if out is None or len(out) > RELAY_DATA_WORDS:
                continue
            phase = RP_FORWARD if cfg & CFG_DOWNSTREAM_ACKS else RP_DONE
            _relay_commit(ctx, [frame.txid, phase, len(out), *out])
        # Ack-after-commit: only frames our durable state already
        # covers get acknowledged, so a crash between receive and
        # commit just means the upstream retransmits.
        if ack_out is not None and frame.txid <= _relay_active(ctx)[SL_TXID]:
            ack_out.send(frame.txid, MSG_ACK)
    yield  # preemption point between input drain and ack drain

    if ack_in is not None:
        for frame in ack_in.drain():
            cur = _relay_active(ctx)
            if (
                frame.opcode == MSG_ACK
                and frame.txid == cur[SL_TXID]
                and cur[SL_PHASE] == RP_FORWARD
            ):
                _relay_commit(
                    ctx,
                    [cur[SL_TXID], RP_DONE, cur[SL_LEN],
                     *cur[SL_DATA : SL_DATA + cur[SL_LEN]]],
                )

    cur = _relay_active(ctx)
    txid, phase = cur[SL_TXID], cur[SL_PHASE]
    data = cur[SL_DATA : SL_DATA + min(cur[SL_LEN], RELAY_DATA_WORDS)]
    if phase == RP_FORWARD:
        cout.send(txid, MSG_FWD, data)
    elif phase == RP_DONE and not cfg & CFG_DOWNSTREAM_ACKS:
        # The egress stage keeps republishing the reply until the
        # coordinator has seen it.
        cout.send(txid, MSG_REPLY, [ST_OK] + data)
    return 0


def relay_program(name: str) -> NativeEnclaveProgram:
    """A relay stage; distinct names yield distinct measurements even
    though the body is shared (the identity page differs)."""
    return NativeEnclaveProgram(name, _relay_body)
