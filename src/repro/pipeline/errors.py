"""Typed pipeline outcomes.

The pipeline chaos gate (``repro.tools.pipecamp``) mirrors the cloud
gate's contract: every trial must terminate either bit-exact against
the no-fault golden or with one of these *typed, retryable* errors.
An untyped exception, a hang, or a non-retryable code out of nowhere is
a gate violation.  ``code`` is the wire-stable identifier; ``retryable``
says whether re-submitting the same composite request could succeed.
"""

from __future__ import annotations


class PipelineError(Exception):
    """Base of the pipeline's typed errors."""

    code = "pipeline_error"
    retryable = False

    def __init__(self, message: str = ""):
        super().__init__(message or self.code)


class StageRetryExhausted(PipelineError):
    """A stage crashed more times than its respawn budget allows; the
    saga gave up.  A fresh submission starts a fresh budget."""

    code = "stage_retry_exhausted"
    retryable = True


class SagaStalled(PipelineError):
    """The coordinator's round budget ran out before the composite
    transaction completed — a stage is wedged or starved, not wrong."""

    code = "saga_stalled"
    retryable = True


class TransactionAborted(PipelineError):
    """The saga compensated: the transaction was rolled back cleanly
    (reserved counter values burnt, never reused).  Retryable by
    definition — a new transaction id starts from scratch."""

    code = "transaction_aborted"
    retryable = True


#: wire code -> exception class, for typed reconstruction.
PIPELINE_ERROR_CODES = {
    cls.code: cls
    for cls in (PipelineError, StageRetryExhausted, SagaStalled, TransactionAborted)
}
