"""Transactional framing over the SPSC ring channel.

``repro.sdk.channel`` moves word messages over one shared insecure
page; this layer makes that medium usable for cross-enclave
*transactions*.  The threat model is the paper's (section 3.1): the OS
owns the page, so anything in flight can be dropped, corrupted,
duplicated, reordered, or replayed — and a crashed stage will itself
replay its last message when it respawns.  The frame format defends
accordingly:

    [MAGIC, seq, opcode, plen, payload..., mac[8]]

* ``mac`` is HMAC-SHA256 over ``[seq, opcode, plen] ++ payload`` with
  the link key, so a forged or corrupted frame is dropped, not acted
  on.  (Where the counterparty *is* the OS — the pipeline's ingress and
  egress edges — the key is a public constant: integrity against the
  requester is meaningless, but the framing and dedup still apply.)
* ``seq`` is derived from durable transaction state
  (``txid * SEQ_STRIDE + opcode``), never from a volatile counter: a
  stage that crashes and respawns retransmits the *same* frame with the
  *same* seq, and the receiver's idempotent handlers treat the replay
  as a duplicate.  Deriving seq from the transaction also survives the
  torn-write window between "bump counter" and "send" that a durable
  counter would reopen.
* a ring whose metadata has been scribbled (``ChannelError`` from the
  base layer) is *reset* and counted, not propagated: the transactional
  layer's retransmission recovers whatever the adversary destroyed.

Link keys are provisioned by the pipeline builder into both stages'
measured state pages — a deliberate model simplification standing in
for an attested key exchange (two different measurements cannot derive
a shared key from the Attest KDF).  The adversary strategies in
``repro.osmodel.adversary`` model a *channel* attacker who tampers with
frames in flight, not the provisioning step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.crypto.hmac import constant_time_equal, hmac_sha256_words
from repro.sdk.channel import Channel, ChannelError

#: Frame magic ("xTXN"-ish); a quick reject for noise on the ring.
FRAME_MAGIC = 0x78_54_58_4E

#: Header words: [MAGIC, seq, opcode, plen].
HEADER_WORDS = 4
MAC_WORDS = 8

#: Sequence numbers are transaction-scoped: ``seq = txid * SEQ_STRIDE +
#: opcode`` — monotone across transactions, stable across replays.
SEQ_STRIDE = 64

#: Largest payload a frame carries (bounds one frame well under the
#: ring capacity so several frames queue at once).
MAX_PAYLOAD_WORDS = 40

#: The well-known key of the OS-facing ingress/egress edges.
PUBLIC_EDGE_KEY = tuple((0x9E3779B9 * (i + 1)) & 0xFFFFFFFF for i in range(8))


def frame_seq(txid: int, opcode: int) -> int:
    """The durable-state-derived sequence number of a frame."""
    return (txid * SEQ_STRIDE + (opcode & (SEQ_STRIDE - 1))) & 0xFFFFFFFF


@dataclass(frozen=True)
class TxFrame:
    """One authenticated, validated frame off the wire."""

    seq: int
    opcode: int
    payload: tuple

    @property
    def txid(self) -> int:
        return self.seq // SEQ_STRIDE


class TxChannel:
    """One direction of an authenticated link over a ring channel."""

    def __init__(self, channel: Channel, key: Sequence[int]):
        if len(key) != 8:
            raise ValueError("link keys are 8 words")
        self.channel = channel
        self.key = [w & 0xFFFFFFFF for w in key]
        #: Frames dropped for failing validation (bad magic/shape/MAC).
        self.dropped = 0
        #: Ring resets forced by scribbled ring metadata.
        self.resets = 0

    # -- sending -----------------------------------------------------------

    def send(self, txid: int, opcode: int, payload: Sequence[int] = ()) -> bool:
        """Frame, authenticate and enqueue; False when the ring is full.

        A full ring is not an error: the sender's poll loop simply
        retransmits on a later round (at-least-once delivery).
        """
        payload = [w & 0xFFFFFFFF for w in payload]
        if len(payload) > MAX_PAYLOAD_WORDS:
            raise ValueError(f"payload of {len(payload)} words exceeds the frame cap")
        seq = frame_seq(txid, opcode)
        body = [seq, opcode & 0xFFFFFFFF, len(payload)] + payload
        mac = hmac_sha256_words(self.key, body)
        try:
            return self.channel.send([FRAME_MAGIC] + body + mac)
        except ChannelError:
            # The counterparty scribbled the ring metadata out from
            # under us; reset and let the caller retransmit later.
            self.channel.reset()
            self.resets += 1
            return False

    # -- receiving ---------------------------------------------------------

    def receive(self) -> Optional[TxFrame]:
        """The next *valid* frame, skipping hostile junk; None if drained."""
        while True:
            try:
                message = self.channel.receive()
            except ChannelError:
                self.channel.reset()
                self.resets += 1
                return None
            if message is None:
                return None
            frame = self._validate(message)
            if frame is not None:
                return frame
            self.dropped += 1

    def drain(self) -> List[TxFrame]:
        """Every currently-queued valid frame, in arrival order."""
        frames: List[TxFrame] = []
        while True:
            frame = self.receive()
            if frame is None:
                return frames
            frames.append(frame)

    def _validate(self, message: List[int]) -> Optional[TxFrame]:
        if len(message) < HEADER_WORDS + MAC_WORDS:
            return None
        if message[0] != FRAME_MAGIC:
            return None
        seq, opcode, plen = message[1], message[2], message[3]
        if plen > MAX_PAYLOAD_WORDS:
            return None
        if len(message) != HEADER_WORDS + plen + MAC_WORDS:
            return None
        body = message[1 : HEADER_WORDS + plen]
        mac = message[HEADER_WORDS + plen :]
        if not constant_time_equal(hmac_sha256_words(self.key, body), mac):
            return None
        return TxFrame(seq=seq, opcode=opcode, payload=tuple(message[4 : 4 + plen]))
