"""Composite multi-enclave pipelines with crash-anywhere robustness.

The package layers, bottom up:

* :mod:`repro.pipeline.txchannel` — sequence-numbered, HMAC-
  authenticated transactional framing over the SPSC ring channel.
* :mod:`repro.pipeline.stages` — native stage programs (notary,
  sealed counter, generic attest/sign/seal relay) built around
  shadow-slot commits and idempotent poll rounds.
* :mod:`repro.pipeline.pipelines` — builders wiring stages together
  through shared insecure channel pages.
* :mod:`repro.osmodel.saga` — the untrusted coordinator/pump scripts
  that schedule stages across cores and compensate failed transactions.
* :mod:`repro.pipeline.campaign` — the crash-anywhere chaos sweep and
  its gate (``python -m repro.tools.pipecamp``).
"""

from repro.pipeline.errors import (
    PIPELINE_ERROR_CODES,
    PipelineError,
    SagaStalled,
    StageRetryExhausted,
    TransactionAborted,
)
from repro.pipeline.pipelines import (
    PIPELINE_KINDS,
    AttestSignSealPipeline,
    CounterNotaryPipeline,
    Pipeline,
    build_pipeline,
)
from repro.pipeline.txchannel import PUBLIC_EDGE_KEY, TxChannel, TxFrame

__all__ = [
    "PIPELINE_ERROR_CODES",
    "PIPELINE_KINDS",
    "AttestSignSealPipeline",
    "CounterNotaryPipeline",
    "Pipeline",
    "PipelineError",
    "PUBLIC_EDGE_KEY",
    "SagaStalled",
    "StageRetryExhausted",
    "TransactionAborted",
    "TxChannel",
    "TxFrame",
    "build_pipeline",
]
