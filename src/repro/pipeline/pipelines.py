"""Builders for the two composite multi-enclave pipelines.

A pipeline is a set of stage enclaves plus the insecure channel pages
wiring them together.  Channel pages are ordinary OS-allocated insecure
pages mapped into *both* endpoint enclaves (``EnclaveBuilder
.add_shared_buffer(base=...)``) — the paper's enclave-to-enclave
communication pattern.  The OS keeps host endpoints on the requester
edges (ingress/egress) and, being the owner of every channel page, can
also tamper with the stage-to-stage links — which the transactional
layer and the adversary tests treat as the norm, not the exception.

``CounterNotaryPipeline``: a notary whose monotonic counter lives in a
separate sealed-counter enclave.  Each notarisation is a two-enclave
commit (reserve -> sign -> confirm) driven by the notary's durable saga
phase, with abort compensation that burns rather than reuses counter
values.

``AttestSignSealPipeline``: a three-stage attest -> sign -> seal relay
chain with per-hop acknowledgements.

Both expose *logical* state readers used by the chaos campaign: the
active shadow slot of each stage, read with harness privilege directly
from secure memory.  Trials are compared on logical state, not raw
page contents — the inactive shadow slot legitimately differs between a
trial that crashed mid-commit and one that did not.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.arm.bits import WORDSIZE, bytes_to_words
from repro.crypto.sha256 import sha256
from repro.monitor.layout import Mapping
from repro.osmodel.kernel import OSKernel
from repro.pipeline import stages as st
from repro.pipeline.txchannel import PUBLIC_EDGE_KEY, TxChannel
from repro.sdk.builder import EnclaveBuilder, EnclaveHandle
from repro.sdk.channel import Channel, HostEndpoint


def derive_link_key(label: str) -> List[int]:
    """A deterministic 8-word link key for a named stage-to-stage link.

    Build-time provisioning into both measured state pages stands in
    for an attested key exchange (see ``repro.pipeline.txchannel``).
    """
    return bytes_to_words(sha256(b"pipe-link:" + label.encode()))[:8]


def _host_tx(kernel: OSKernel, base: int, key: Sequence[int]) -> TxChannel:
    return TxChannel(Channel(HostEndpoint(kernel, base)), key)


class PipelineStage:
    """One built stage: its enclave handle plus slot-reading metadata."""

    def __init__(
        self,
        name: str,
        handle: EnclaveHandle,
        active_w: int,
        slot0_w: int,
        slot1_w: int,
        slot_words: int,
    ):
        self.name = name
        self.handle = handle
        self._active_w = active_w
        self._slot0_w = slot0_w
        self._slot1_w = slot1_w
        self._slot_words = slot_words

    def _read_state_word(self, word_index: int) -> int:
        monitor = self.handle.monitor
        page = self.handle.data_pages[st.STATE_VA]
        base = monitor.pagedb.page_base(page)
        return monitor.state.memory.read_word(base + word_index * WORDSIZE)

    def active_slot(self) -> List[int]:
        """The stage's committed transaction state (harness privilege)."""
        active = self._read_state_word(self._active_w) & 1
        slot_w = self._slot1_w if active else self._slot0_w
        return [
            self._read_state_word(slot_w + i) for i in range(self._slot_words)
        ]


class Pipeline:
    """Common shape: named stages, host-side ingress/egress, channels."""

    name = "pipeline"

    def __init__(self, kernel: OSKernel):
        self.kernel = kernel
        self.stages: List[PipelineStage] = []
        #: name -> insecure base address of every channel page, so the
        #: adversary (and tests) can tamper with any link.
        self.channels: Dict[str, int] = {}
        self.ingress: TxChannel
        self.egress: TxChannel

    def _alloc_channel(self, name: str) -> int:
        base = self.kernel.alloc_insecure_page()
        self.channels[name] = base
        return base

    def stage(self, name: str) -> PipelineStage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(name)

    def logical_state(self) -> Dict[str, List[int]]:
        return {stage.name: stage.active_slot() for stage in self.stages}

    def teardown(self) -> None:
        for stage in self.stages:
            stage.handle.teardown()


def _build_stage(
    kernel: OSKernel,
    name: str,
    program,
    state_contents: Sequence[int],
    channel_map: Sequence[Tuple[int, int]],
    slot_geometry: Tuple[int, int, int, int],
) -> PipelineStage:
    """Build one stage enclave: a measured state page, its channel
    pages mapped at the stage's fixed channel VAs, a native program."""
    builder = EnclaveBuilder(kernel)
    builder.add_data(contents=list(state_contents), va=st.STATE_VA, writable=True)
    for index, base in channel_map:
        builder.add_shared_buffer(va=st.channel_va(index), writable=True, base=base)
    builder.set_native_program(program)
    handle = builder.build()
    return PipelineStage(name, handle, *slot_geometry)


class CounterNotaryPipeline(Pipeline):
    """Pipeline 1: notary + sealed-counter, a two-enclave commit."""

    name = "counter-notary"
    #: MSG_REQ payload: 4 words of document digest.
    request_words = st.NOTARY_DOC_WORDS

    def __init__(self, kernel: OSKernel):
        super().__init__(kernel)
        link_key = derive_link_key("notary-counter")
        ingress = self._alloc_channel("ingress")
        egress = self._alloc_channel("egress")
        link_req = self._alloc_channel("link-req")  # notary -> counter
        link_rep = self._alloc_channel("link-rep")  # counter -> notary
        self.stages.append(
            _build_stage(
                kernel,
                "notary",
                st.notary_program(),
                st.notary_state_contents(link_key),
                [
                    (st.NOTARY_CH_INGRESS, ingress),
                    (st.NOTARY_CH_EGRESS, egress),
                    (st.NOTARY_CH_LINK_OUT, link_req),
                    (st.NOTARY_CH_LINK_IN, link_rep),
                ],
                (st.N_ACTIVE_W, st.N_SLOT0_W, st.N_SLOT1_W, st.N_SLOT_WORDS),
            )
        )
        self.stages.append(
            _build_stage(
                kernel,
                "counter",
                st.counter_program(),
                st.counter_state_contents(link_key),
                [
                    (st.COUNTER_CH_IN, link_req),
                    (st.COUNTER_CH_OUT, link_rep),
                ],
                (st.C_ACTIVE_W, st.C_SLOT0_W, st.C_SLOT1_W, st.C_SLOT_WORDS),
            )
        )
        self.ingress = _host_tx(kernel, ingress, PUBLIC_EDGE_KEY)
        self.egress = _host_tx(kernel, egress, PUBLIC_EDGE_KEY)

    def check_invariants(self) -> List[str]:
        """Cross-enclave consistency, checked after every chaos trial."""
        problems: List[str] = []
        notary = self.stage("notary").active_slot()
        counter = self.stage("counter").active_slot()
        if notary[st.NS_PHASE] == st.N_DONE:
            # A completed notarisation must be backed by a confirmed
            # reservation of the same value for the same transaction
            # (unless the counter has already moved to a newer one).
            if counter[st.CS_TXID] == notary[st.NS_TXID]:
                if counter[st.CS_PHASE] != st.PH_CONFIRMED:
                    problems.append(
                        "notary DONE but counter phase is "
                        f"{counter[st.CS_PHASE]} for txid {notary[st.NS_TXID]}"
                    )
                elif counter[st.CS_VALUE] != notary[st.NS_VALUE]:
                    problems.append(
                        f"value split-brain: notary {notary[st.NS_VALUE]} "
                        f"vs counter {counter[st.CS_VALUE]}"
                    )
            elif counter[st.CS_TXID] < notary[st.NS_TXID]:
                problems.append(
                    "notary DONE for a txid the counter never reached"
                )
        if counter[st.CS_NEXT] <= counter[st.CS_VALUE] and counter[st.CS_TXID]:
            problems.append("counter next value does not dominate issued value")
        return problems


class AttestSignSealPipeline(Pipeline):
    """Pipeline 2: attest -> sign -> seal relay chain."""

    name = "attest-sign-seal"
    #: MSG_REQ payload: 8 words of document digest.
    request_words = st.RELAY_REQ_WORDS

    def __init__(self, kernel: OSKernel):
        super().__init__(kernel)
        key_ab = derive_link_key("attest-sign")
        key_bc = derive_link_key("sign-seal")
        ingress = self._alloc_channel("ingress")
        link_ab = self._alloc_channel("link-ab")
        ack_ba = self._alloc_channel("ack-ba")
        link_bc = self._alloc_channel("link-bc")
        ack_cb = self._alloc_channel("ack-cb")
        egress = self._alloc_channel("egress")
        geometry = (st.RS_ACTIVE_W, st.RS_SLOT0_W, st.RS_SLOT1_W, st.RS_SLOT_WORDS)
        self.stages.append(
            _build_stage(
                kernel,
                "attest",
                st.relay_program("pipe-attest"),
                st.relay_state_contents(
                    st.CFG_DOWNSTREAM_ACKS, st.XFORM_ATTEST,
                    PUBLIC_EDGE_KEY, key_ab,
                ),
                [
                    (st.RELAY_CH_IN, ingress),
                    (st.RELAY_CH_OUT, link_ab),
                    (st.RELAY_CH_ACK_IN, ack_ba),
                ],
                geometry,
            )
        )
        self.stages.append(
            _build_stage(
                kernel,
                "sign",
                st.relay_program("pipe-sign"),
                st.relay_state_contents(
                    st.CFG_ACK_UPSTREAM | st.CFG_DOWNSTREAM_ACKS,
                    st.XFORM_SIGN, key_ab, key_bc,
                ),
                [
                    (st.RELAY_CH_IN, link_ab),
                    (st.RELAY_CH_ACK_OUT, ack_ba),
                    (st.RELAY_CH_OUT, link_bc),
                    (st.RELAY_CH_ACK_IN, ack_cb),
                ],
                geometry,
            )
        )
        self.stages.append(
            _build_stage(
                kernel,
                "seal",
                st.relay_program("pipe-seal"),
                st.relay_state_contents(
                    st.CFG_ACK_UPSTREAM, st.XFORM_SEAL,
                    key_bc, PUBLIC_EDGE_KEY,
                ),
                [
                    (st.RELAY_CH_IN, link_bc),
                    (st.RELAY_CH_ACK_OUT, ack_cb),
                    (st.RELAY_CH_OUT, egress),
                ],
                geometry,
            )
        )
        self.ingress = _host_tx(kernel, ingress, PUBLIC_EDGE_KEY)
        self.egress = _host_tx(kernel, egress, PUBLIC_EDGE_KEY)

    def check_invariants(self) -> List[str]:
        """Monotone progress: a stage never runs ahead of its upstream."""
        problems: List[str] = []
        slots = [stage.active_slot() for stage in self.stages]
        for up, down, name in zip(slots, slots[1:], ("sign", "seal")):
            if down[st.SL_TXID] > up[st.SL_TXID]:
                problems.append(
                    f"stage {name} is at txid {down[st.SL_TXID]} ahead of "
                    f"its upstream at {up[st.SL_TXID]}"
                )
        return problems


PIPELINE_KINDS = {
    CounterNotaryPipeline.name: CounterNotaryPipeline,
    AttestSignSealPipeline.name: AttestSignSealPipeline,
}


def build_pipeline(kind: str, kernel: OSKernel) -> Pipeline:
    try:
        factory = PIPELINE_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown pipeline {kind!r}; expected one of {sorted(PIPELINE_KINDS)}"
        ) from None
    return factory(kernel)
