"""The pipeline chaos campaign: crash-anywhere sweeps over composite
multi-enclave workloads.

A campaign builds one pipeline on a fresh monitor, captures a
``CampaignSnapshot`` (monitor + kernel + multicore scheduler, so every
trial forks bit-identically), runs the fault-free *golden* trial, then
sweeps stage-kill points: for each machine-visible monitor operation of
the golden run, one trial crashes the machine at exactly that operation
and lets the saga layer recover.

The gate is the robustness contract of ``repro.pipeline``:

* every trial **terminates** — a scheduler ``max_steps`` overrun is a
  hang and a hard violation;
* a trial either completes **bit-exact** against the golden logical
  digest (replies, per-stage committed slots, checksum legs) or raises
  a **typed retryable** ``PipelineError``;
* either way the cross-enclave invariants hold: no torn transaction
  state, no counter value issued twice, and a clean monitor audit.

``RepeatingFaultPlan`` extends the single-shot ``FaultPlan`` with
periodic re-arming — the tool for driving a stage's respawn budget to
exhaustion and checking that the saga surfaces ``StageRetryExhausted``
rather than looping forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arm.bits import words_to_bytes
from repro.arm.machine import MachineState
from repro.crypto.rng import HardwareRNG
from repro.crypto.sha256 import sha256
from repro.faults.audit import audit_monitor
from repro.faults.injector import FaultPlan, inject
from repro.faults.snapshot import CampaignSnapshot
from repro.monitor.komodo import KomodoMonitor
from repro.multicore.scheduler import MultiCoreMachine
from repro.osmodel.kernel import OSKernel
from repro.osmodel.saga import PipelineOutcome, run_pipeline
from repro.pipeline import stages as st
from repro.pipeline.errors import PipelineError
from repro.pipeline.pipelines import (
    PIPELINE_KINDS,
    AttestSignSealPipeline,
    Pipeline,
    build_pipeline,
)

DEFAULT_SECURE_PAGES = 48
DEFAULT_SEED = 0x51BE
DEFAULT_REQUESTS = 2
DEFAULT_MAX_STEPS = 300_000


class RepeatingFaultPlan(FaultPlan):
    """A fault plan that re-arms: crash at ``abort_at``, then every
    ``period`` further operations, up to ``max_fires`` times.

    A single-shot crash is always recoverable by one respawn; driving a
    retry budget to exhaustion needs the *recovery itself* to keep
    crashing, which is exactly what periodic re-arming models (a machine
    whose watchdog keeps firing).  ``max_fires`` defaults to a finite
    bound because an unbounded small-period plan also fires during every
    recovery attempt — a machine that never boots, which the scheduler
    reports as its recovery-retry limit rather than a pipeline verdict.
    """

    def __init__(
        self,
        abort_at: int,
        period: int,
        max_fires: Optional[int] = 16,
        kinds: Optional[Set[str]] = None,
    ) -> None:
        super().__init__(abort_at=abort_at, kinds=kinds)
        if period < 1:
            raise ValueError("period must be at least 1")
        self.period = period
        self.max_fires = max_fires
        self.fires = 0

    def visit(self, state: MachineState, kind: str, detail: int) -> None:
        if self.kinds is not None and kind not in self.kinds:
            return
        self.count += 1
        self.trace.append((kind, detail))
        if kind == "txn-boundary" and self.on_boundary is not None:
            self.on_boundary(state)
        if self.max_fires is not None and self.fires >= self.max_fires:
            return
        if self.count >= self.abort_at:
            self.fires += 1
            self.fired = True
            self.abort_at = self.count + self.period
            from repro.arm.machine import FaultInjected

            raise FaultInjected(self.count, kind, detail)


def default_requests(kind: str, count: int = DEFAULT_REQUESTS) -> List[List[int]]:
    """Deterministic request payloads (document digests) per pipeline."""
    words = PIPELINE_KINDS[kind].request_words
    mix = lambda i: (0x9E3779B9 * (i + 1) + 0x85EBCA6B) & 0xFFFFFFFF  # noqa: E731
    return [
        [mix(index * words + j) for j in range(words)] for index in range(count)
    ]


@dataclass
class TrialResult:
    """One kill point's verdict."""

    kill_point: int  # 0 = golden (fault-free) trial
    outcome: str  # "bit-exact" | a typed error code | "hang" | "violation"
    op: Optional[Tuple[str, int]] = None  # (kind, detail) crashed at
    detail: str = ""
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class PipelineReport:
    """Everything one pipeline's sweep produced."""

    pipeline: str
    engine: str
    ops: int = 0
    golden_digest: str = ""
    trials: List[TrialResult] = field(default_factory=list)

    @property
    def kill_points(self) -> int:
        return sum(1 for trial in self.trials if trial.kill_point > 0)

    @property
    def bit_exact(self) -> int:
        return sum(1 for t in self.trials if t.outcome == "bit-exact")

    @property
    def retryable(self) -> int:
        return sum(
            1
            for t in self.trials
            if t.outcome not in ("bit-exact", "hang", "violation")
        )

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for trial in self.trials:
            for violation in trial.violations:
                out.append(f"kill@{trial.kill_point}: {violation}")
        return out

    @property
    def ok(self) -> bool:
        return not self.violations


def outcome_digest(
    pipeline: Pipeline, outcome: PipelineOutcome
) -> str:
    """The logical digest a successful trial is compared on: replies,
    checksum legs, and each stage's *committed* (active-slot) state.

    Raw page digests would be wrong here — the inactive shadow slot and
    the insecure channel pages legitimately differ between a trial that
    crashed mid-commit and one that did not.
    """
    words: List[int] = []
    for frame in outcome.replies:
        words += [frame.txid, frame.opcode, len(frame.payload), *frame.payload]
    for value in outcome.checksums:
        words.append(value & 0xFFFFFFFF)
    for stage in pipeline.stages:
        slot = stage.active_slot()
        words += [len(slot), *slot]
    return sha256(words_to_bytes([w & 0xFFFFFFFF for w in words])).hex()


def _reply_values(pipeline: Pipeline, outcome: PipelineOutcome) -> List[int]:
    """Counter values carried by successful counter-notary replies.
    Other pipelines carry opaque blobs, not counter values."""
    from repro.pipeline.pipelines import CounterNotaryPipeline

    if not isinstance(pipeline, CounterNotaryPipeline):
        return []
    values = []
    for frame in outcome.replies:
        if frame.payload and frame.payload[0] == st.ST_OK and len(frame.payload) > 1:
            values.append(frame.payload[1])
    return values


class PipelineCampaign:
    """Sweep stage-kill points across one pipeline's golden run."""

    def __init__(
        self,
        kind: str,
        *,
        engine: str = "turbo",
        seed: int = DEFAULT_SEED,
        secure_pages: int = DEFAULT_SECURE_PAGES,
        stride: int = 1,
        requests: Optional[Sequence[Sequence[int]]] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        with_checksum: Optional[bool] = None,
        shard: Optional[Tuple[int, int]] = None,
    ):
        if stride < 1:
            raise ValueError("stride must be at least 1")
        if shard is not None:
            index, count = shard
            if count < 1 or not 0 <= index < count:
                raise ValueError(f"bad shard {shard!r}")
        self.kind = kind
        self.shard = shard
        self.engine = engine
        self.seed = seed
        self.stride = stride
        self.max_steps = max_steps
        self.requests = [list(r) for r in (requests or default_requests(kind))]
        self.monitor = KomodoMonitor(
            secure_pages=secure_pages,
            rng=HardwareRNG(seed),
            cpu_engine=engine,
        )
        self.kernel = OSKernel(self.monitor)
        self.pipeline = build_pipeline(kind, self.kernel)
        # The machine-code CRC leg makes the campaign engine-sensitive
        # (the tri-engine differential's anchor); it rides on the relay
        # pipeline by default.
        if with_checksum is None:
            with_checksum = isinstance(self.pipeline, AttestSignSealPipeline)
        self.checksum = None
        if with_checksum:
            from repro.apps.checksum import ChecksumService

            self.checksum = ChecksumService(self.kernel)
        self.machine = MultiCoreMachine(self.monitor, seed=seed)
        # Captured at the quiescent point right after the build: every
        # trial (golden included) rewinds to exactly here.
        self.snapshot = CampaignSnapshot(
            self.monitor, self.kernel, scheduler=self.machine
        )

    # -- one trial ---------------------------------------------------------

    def _run_once(self, plan: Optional[FaultPlan]) -> PipelineOutcome:
        self.snapshot.restore()
        if plan is None:
            return run_pipeline(
                self.pipeline,
                self.machine,
                self.requests,
                checksum=self.checksum,
                max_steps=self.max_steps,
            )
        with inject(self.monitor.state, plan):
            return run_pipeline(
                self.pipeline,
                self.machine,
                self.requests,
                checksum=self.checksum,
                max_steps=self.max_steps,
            )

    def _check_state(self, golden_values: List[int]) -> List[str]:
        problems = list(self.pipeline.check_invariants())
        problems += [f"audit: {p}" for p in audit_monitor(self.monitor)]
        if len(set(golden_values)) != len(golden_values):
            problems.append(f"counter value reused: {golden_values}")
        return problems

    def _trial(
        self, kill_point: int, plan: Optional[FaultPlan], golden_digest: str
    ) -> TrialResult:
        result = TrialResult(kill_point=kill_point, outcome="bit-exact")
        try:
            outcome = self._run_once(plan)
        except PipelineError as error:
            result.outcome = error.code
            result.detail = str(error)
            if not error.retryable:
                result.violations.append(
                    f"non-retryable pipeline error: {error.code}: {error}"
                )
        except RuntimeError as error:
            result.outcome = "hang"
            result.detail = str(error)
            result.violations.append(f"hang (scheduler backstop): {error}")
        except Exception as error:  # noqa: BLE001 - the gate wants a verdict
            result.outcome = "violation"
            result.detail = f"{type(error).__name__}: {error}"
            result.violations.append(
                f"untyped escape: {type(error).__name__}: {error}"
            )
        else:
            digest = outcome_digest(self.pipeline, outcome)
            if digest != golden_digest:
                result.violations.append(
                    f"digest mismatch: {digest[:16]} != golden {golden_digest[:16]}"
                )
            result.violations.extend(
                self._check_state(_reply_values(self.pipeline, outcome))
            )
        if plan is not None and plan.fired:
            index = min(plan.abort_at, len(plan.trace)) - 1
            if isinstance(plan, RepeatingFaultPlan):
                index = min(kill_point, len(plan.trace)) - 1
            if 0 <= index < len(plan.trace):
                result.op = plan.trace[index]
        # A crash was requested but never fired: the trial degenerates
        # to a golden re-run; record it so sweeps stay honest.
        if plan is not None and plan.abort_at is not None and not plan.fired:
            result.detail = result.detail or "fault never fired"
        return result

    # -- the sweep ---------------------------------------------------------

    def run(self) -> PipelineReport:
        report = PipelineReport(pipeline=self.kind, engine=self.engine)
        # Golden + discovery in one pass: count every machine-visible
        # monitor op of the fault-free run.
        discovery = FaultPlan()
        golden = self._run_once(discovery)
        report.ops = discovery.count
        report.golden_digest = outcome_digest(self.pipeline, golden)
        golden_trial = TrialResult(kill_point=0, outcome="bit-exact")
        golden_trial.violations.extend(
            self._check_state(_reply_values(self.pipeline, golden))
        )
        report.trials.append(golden_trial)
        kill_points = list(range(1, report.ops + 1, self.stride))
        if kill_points and kill_points[-1] != report.ops:
            kill_points.append(report.ops)
        for ordinal, kill_point in enumerate(kill_points):
            # Shards split the kill-point list by serial ordinal; the
            # golden trial above runs in every shard (the merge asserts
            # they agree) and trials rewind to the shared snapshot, so
            # skipping some cannot perturb the rest.
            if self.shard is not None and ordinal % self.shard[1] != self.shard[0]:
                continue
            plan = FaultPlan(abort_at=kill_point)
            report.trials.append(
                self._trial(kill_point, plan, report.golden_digest)
            )
        return report

    def teardown(self) -> None:
        # Trials leave the monitor mid-lifecycle; nothing to unwind —
        # the campaign owns its monitor.  Kept for symmetry with the
        # service wrappers.
        pass


def run_campaign(
    kind: str,
    *,
    engine: str = "turbo",
    seed: int = DEFAULT_SEED,
    stride: int = 1,
    requests: Optional[Sequence[Sequence[int]]] = None,
    secure_pages: int = DEFAULT_SECURE_PAGES,
    shard: Optional[Tuple[int, int]] = None,
) -> PipelineReport:
    return PipelineCampaign(
        kind,
        engine=engine,
        seed=seed,
        stride=stride,
        requests=requests,
        secure_pages=secure_pages,
        shard=shard,
    ).run()


def tri_engine_digests(
    kind: str,
    engines: Sequence[str] = ("reference", "fast", "turbo"),
    *,
    seed: int = DEFAULT_SEED,
    requests: Optional[Sequence[Sequence[int]]] = None,
) -> Dict[str, str]:
    """Golden logical digests per engine.  The pipeline result must be
    engine-invariant; a split is an engine bug, not a pipeline bug."""
    digests: Dict[str, str] = {}
    for engine in engines:
        campaign = PipelineCampaign(
            kind, engine=engine, seed=seed, requests=requests
        )
        outcome = campaign._run_once(FaultPlan())
        digests[engine] = outcome_digest(campaign.pipeline, outcome)
    return digests
