"""Message channels over shared insecure memory.

The paper's design maps insecure pages into enclaves "to facilitate
untrusted communication channels with the OS or between enclaves"
(section 4).  This module provides the channel abstraction both sides
use: a single-producer single-consumer ring buffer of word-granularity
messages living in one shared insecure page.

The medium is untrusted by definition — the OS can corrupt or replay
anything — so the channel offers *functionality*, not security: callers
wanting integrity/confidentiality layer sealing or attestation on top
(see ``repro.apps.sealed_storage`` and the attested-channel example).

Layout of the channel page (words):

    0: head   (next slot the consumer will read)
    1: tail   (next slot the producer will write)
    2..: slots; each message is [length, payload...]

Both the host side (direct memory access through the kernel) and the
enclave side (access through the enclave's page tables via a
NativeContext) are provided, sharing the protocol logic.
"""

from __future__ import annotations

from typing import List, Optional, Protocol

from repro.arm.bits import WORDSIZE
from repro.arm.memory import WORDS_PER_PAGE

_HEAD = 0
_TAIL = 1
_DATA = 2
_CAPACITY = WORDS_PER_PAGE - _DATA


class ChannelError(Exception):
    """Raised on malformed channel state (the medium is untrusted)."""


class WordAccess(Protocol):
    """Word read/write at an offset — implemented by both endpoints."""

    def read(self, index: int) -> int: ...

    def write(self, index: int, value: int) -> None: ...


class HostEndpoint:
    """The OS side: direct checked access to the insecure page."""

    def __init__(self, kernel, base: int):
        self.kernel = kernel
        self.base = base

    def read(self, index: int) -> int:
        return self.kernel.read_insecure(self.base + index * WORDSIZE)

    def write(self, index: int, value: int) -> None:
        self.kernel.write_insecure(self.base + index * WORDSIZE, value)


class EnclaveEndpoint:
    """The enclave side: access through its own page tables."""

    def __init__(self, ctx, va: int):
        self.ctx = ctx
        self.va = va

    def read(self, index: int) -> int:
        return self.ctx.read_word(self.va + index * WORDSIZE)

    def write(self, index: int, value: int) -> None:
        self.ctx.write_word(self.va + index * WORDSIZE, value)


class Channel:
    """SPSC ring channel over one shared page.

    Every word of the page — head, tail, lengths, payload — is writable
    by a malicious counterparty at any time, so *every* value read off
    the page is treated as hostile: indices are masked into range before
    use and impossible states surface as :class:`ChannelError`, never as
    an IndexError, OverflowError, or silent out-of-page access.
    """

    def __init__(self, access: WordAccess):
        self.access = access

    def reset(self) -> None:
        self.access.write(_HEAD, 0)
        self.access.write(_TAIL, 0)

    def _used(self, head: int, tail: int) -> int:
        return (tail - head) % _CAPACITY

    def _cursor(self, index: int) -> int:
        """Load a ring cursor (head/tail), clamping hostile values.

        A counterparty can store any 32-bit word; reducing modulo the
        capacity keeps all later arithmetic and indexing inside the
        data region of the page.
        """
        return (self.access.read(index) & 0xFFFFFFFF) % _CAPACITY

    def send(self, message: List[int]) -> bool:
        """Enqueue a message; returns False when the ring is full."""
        if len(message) >= _CAPACITY - 1:
            raise ChannelError("message larger than the channel")
        head = self._cursor(_HEAD)
        tail = self._cursor(_TAIL)
        needed = len(message) + 1
        free = _CAPACITY - 1 - self._used(head, tail)
        if needed > free:
            return False
        self.access.write(_DATA + tail, len(message))
        for i, word in enumerate(message):
            self.access.write(_DATA + (tail + 1 + i) % _CAPACITY, word & 0xFFFFFFFF)
        self.access.write(_TAIL, (tail + needed) % _CAPACITY)
        return True

    def receive(self) -> Optional[List[int]]:
        """Dequeue one message; returns None when empty.

        Defensive about corruption: an impossible length (the OS can
        write anything) raises ChannelError rather than reading away.
        """
        head = self._cursor(_HEAD)
        tail = self._cursor(_TAIL)
        if head == tail:
            return None
        length = self.access.read(_DATA + head) & 0xFFFFFFFF
        if length >= _CAPACITY - 1:
            raise ChannelError(f"corrupt message length {length}")
        if length + 1 > self._used(head, tail):
            raise ChannelError("message extends past the tail")
        message = [
            self.access.read(_DATA + (head + 1 + i) % _CAPACITY)
            for i in range(length)
        ]
        self.access.write(_HEAD, (head + 1 + length) % _CAPACITY)
        return message

    def pending(self) -> int:
        """Words currently queued (including length headers)."""
        return self._used(self._cursor(_HEAD), self._cursor(_TAIL))
