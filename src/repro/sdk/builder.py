"""Enclave builder and handle.

``EnclaveBuilder`` accumulates a description of an enclave — code pages
(from the assembler), data pages, shared insecure buffers, threads,
spares — then ``build()`` replays it as the SMC sequence an honest kernel
driver issues: InitAddrspace, InitL2PTable for every touched 4 MB slice,
MapSecure/MapInsecure, InitThread, AllocSpare, Finalise.

``EnclaveHandle`` is the host's runtime interface: entering threads,
resuming after interrupts, reading shared buffers, local-attestation
verification against an expected measurement, and teardown.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arm.assembler import Assembler
from repro.arm.memory import PAGE_SIZE, WORDS_PER_PAGE
from repro.arm.pagetable import l1_index
from repro.monitor.errors import KomErr
from repro.monitor.komodo import KomodoMonitor
from repro.monitor.layout import Mapping
from repro.osmodel.kernel import OSKernel, SharedBuffer
from repro.sdk.native import NativeEnclaveProgram

#: Default virtual layout for simple enclaves.
CODE_VA = 0x0001_0000
DATA_VA = 0x0010_0000
SHARED_VA = 0x0020_0000
IDENTITY_VA = 0x0030_0000


class BuildError(Exception):
    """The enclave description cannot be realised."""


class EnclaveLintWarning(UserWarning):
    """The enclave's code failed static analysis (``build(lint="warn")``)."""


@dataclass
class _PendingPage:
    va: int
    perms: Tuple[bool, bool, bool]  # (r, w, x)
    contents: Optional[List[int]]  # None = zero-filled


@dataclass
class _PendingShared:
    va: int
    writable: bool
    base: Optional[int] = None  # None = allocate fresh; else map this page


class EnclaveBuilder:
    """Describe an enclave, then build it through the monitor API."""

    def __init__(self, kernel: OSKernel):
        self.kernel = kernel
        self._pages: List[_PendingPage] = []
        self._shared: List[_PendingShared] = []
        self._threads: List[int] = []  # entry points
        self._spares = 0
        self._native: Optional[NativeEnclaveProgram] = None
        self._code_regions: List[Tuple[int, List[int]]] = []  # (va, words)

    # -- description -------------------------------------------------------

    def add_code(self, asm: Assembler, va: int = CODE_VA) -> "EnclaveBuilder":
        """Add assembled code, split across as many pages as needed."""
        words = asm.assemble()
        if not words:
            raise BuildError("empty program")
        self._code_regions.append((va, list(words)))
        for offset in range(0, len(words), WORDS_PER_PAGE):
            chunk = words[offset : offset + WORDS_PER_PAGE]
            self._pages.append(
                _PendingPage(
                    va=va + offset * 4, perms=(True, False, True), contents=list(chunk)
                )
            )
        return self

    def add_data(
        self,
        contents: Optional[Sequence[int]] = None,
        va: int = DATA_VA,
        writable: bool = True,
        executable: bool = False,
    ) -> "EnclaveBuilder":
        """Add one secure data page (measured, private to the enclave)."""
        if contents is not None and len(contents) > WORDS_PER_PAGE:
            raise BuildError("data exceeds one page")
        padded = None
        if contents is not None:
            padded = list(contents) + [0] * (WORDS_PER_PAGE - len(contents))
        self._pages.append(
            _PendingPage(va=va, perms=(True, writable, executable), contents=padded)
        )
        return self

    def add_shared_buffer(
        self, va: int = SHARED_VA, writable: bool = True, base: Optional[int] = None
    ) -> "EnclaveBuilder":
        """Add an insecure page shared with the OS (unmeasured).

        ``base`` maps an existing insecure page instead of allocating a
        fresh one — the same physical page mapped into two enclaves is
        an enclave-to-enclave channel (paper section 4).
        """
        self._shared.append(_PendingShared(va=va, writable=writable, base=base))
        return self

    def add_thread(self, entry: int) -> "EnclaveBuilder":
        self._threads.append(entry)
        return self

    def add_spares(self, count: int) -> "EnclaveBuilder":
        self._spares += count
        return self

    def set_native_program(
        self, program: NativeEnclaveProgram, identity_va: int = IDENTITY_VA
    ) -> "EnclaveBuilder":
        """Use a native program; its identity page becomes measured state."""
        self._native = program
        self.add_data(
            contents=program.identity_words(), va=identity_va, writable=False
        )
        if not self._threads:
            # Native threads still need an entry point for the ABI; the
            # identity page's VA is a stable, measured choice.
            self._threads.append(identity_va)
        return self

    # -- static analysis ---------------------------------------------------

    def lint_config(self):
        """The analysis configuration implied by this description.

        The builder knows the enclave's whole memory map, so the
        analyser gets real ground truth: every pending page becomes a
        mapped range with its permissions, secure *writable* data pages
        (the enclave's private state) seed the secret-taint lattice, and
        insecure shared buffers are the OS-visible ranges for
        declassification notes.
        """
        from repro.analysis.dataflow import AnalysisConfig, MappedRange

        mapped = [
            MappedRange(p.va, p.va + PAGE_SIZE, *p.perms) for p in self._pages
        ]
        mapped.extend(
            MappedRange(s.va, s.va + PAGE_SIZE, True, s.writable, False)
            for s in self._shared
        )
        secrets = tuple(
            (p.va, p.va + PAGE_SIZE)
            for p in self._pages
            if p.perms[1] and not p.perms[2]  # writable, non-executable
        )
        shared = tuple((s.va, s.va + PAGE_SIZE) for s in self._shared)
        return AnalysisConfig(
            secret_ranges=secrets,
            shared_ranges=shared,
            mapped_ranges=tuple(mapped),
        )

    def lint(self) -> List["object"]:
        """Statically analyse every code region against the enclave's
        own memory map; returns one report per (region, entry point)."""
        from dataclasses import replace

        from repro.analysis.lint import analyze_words

        config = self.lint_config()
        reports = []
        for va, words in self._code_regions:
            end = va + len(words) * 4
            entries = [e for e in self._threads if va <= e < end] or [va]
            for entry in entries:
                reports.append(
                    analyze_words(
                        words,
                        config=replace(config, base_va=va),
                        program=f"code@{va:#x}+entry@{entry:#x}",
                        entry_va=entry,
                    )
                )
        return reports

    def _run_lint(self, mode: str) -> None:
        if mode == "off" or not self._code_regions:
            return
        if mode not in ("warn", "error"):
            raise BuildError(f"unknown lint mode {mode!r}")
        for report in self.lint():
            if report.ok:
                continue
            rendered = report.render()
            if mode == "error":
                raise BuildError(f"enclave code fails static analysis:\n{rendered}")
            warnings.warn(rendered, EnclaveLintWarning, stacklevel=3)

    # -- realisation ------------------------------------------------------------

    def build(self, lint: str = "warn") -> "EnclaveHandle":
        """Realise the enclave through the monitor API.

        ``lint`` selects what happens when the static analyser finds
        error-severity problems in the enclave's code: ``"error"``
        refuses to build (the SDK-level analogue of the paper's
        verify-before-run discipline), ``"warn"`` (the default) emits an
        ``EnclaveLintWarning``, ``"off"`` skips analysis.
        """
        if not self._threads:
            raise BuildError("an enclave needs at least one thread")
        if not self._pages and self._native is None:
            raise BuildError("an enclave needs code or a native program")
        self._run_lint(lint)
        kernel = self.kernel
        as_page, l1pt_page = kernel.init_addrspace()
        owned = [l1pt_page]
        # One L2 table per touched 4 MB slice of the address space.
        l1indices = sorted(
            {l1_index(p.va) for p in self._pages}
            | {l1_index(s.va) for s in self._shared}
        )
        l2_pages: Dict[int, int] = {}
        for index in l1indices:
            l2_pages[index] = kernel.init_l2table(as_page, index)
            owned.append(l2_pages[index])
        data_pages: Dict[int, int] = {}
        for page in self._pages:
            readable, writable, executable = page.perms
            mapping = Mapping(
                va=page.va, readable=readable, writable=writable, executable=executable
            )
            data_pages[page.va] = kernel.map_secure(as_page, mapping, page.contents)
            owned.append(data_pages[page.va])
        buffers: List[SharedBuffer] = []
        for shared in self._shared:
            mapping = Mapping(
                va=shared.va, readable=True, writable=shared.writable, executable=False
            )
            buffers.append(kernel.map_insecure(as_page, mapping, base=shared.base))
        threads = [kernel.init_thread(as_page, entry) for entry in self._threads]
        owned.extend(threads)
        spares = [kernel.alloc_spare(as_page) for _ in range(self._spares)]
        owned.extend(spares)
        kernel.finalise(as_page)
        if self._native is not None:
            for thread_page in threads:
                kernel.monitor.register_native_program(
                    thread_page, self._native.factory
                )
        return EnclaveHandle(
            kernel=kernel,
            as_page=as_page,
            threads=threads,
            data_pages=data_pages,
            buffers=buffers,
            spares=spares,
            owned_pages=owned,
            native=self._native,
        )


@dataclass
class EnclaveHandle:
    """Host-side handle to a built enclave."""

    kernel: OSKernel
    as_page: int
    threads: List[int]
    data_pages: Dict[int, int]  # va -> secure pageno
    buffers: List[SharedBuffer]
    spares: List[int]
    owned_pages: List[int]
    native: Optional[NativeEnclaveProgram] = None
    _torn_down: bool = field(default=False, repr=False)

    @property
    def monitor(self) -> KomodoMonitor:
        return self.kernel.monitor

    @property
    def thread(self) -> int:
        return self.threads[0]

    # -- execution ----------------------------------------------------------

    def call(
        self, arg1: int = 0, arg2: int = 0, arg3: int = 0, thread: Optional[int] = None
    ) -> Tuple[KomErr, int]:
        """Enter the enclave and run to completion across interrupts."""
        return self.kernel.run_to_completion(
            thread if thread is not None else self.thread, arg1, arg2, arg3
        )

    def enter(
        self, arg1: int = 0, arg2: int = 0, arg3: int = 0, thread: Optional[int] = None
    ) -> Tuple[KomErr, int]:
        return self.kernel.enter(
            thread if thread is not None else self.thread, arg1, arg2, arg3
        )

    def resume(self, thread: Optional[int] = None) -> Tuple[KomErr, int]:
        return self.kernel.resume(thread if thread is not None else self.thread)

    # -- measurement / attestation -------------------------------------------------

    def measurement(self) -> List[int]:
        """The enclave's measurement (the OS can read it: it is public)."""
        from repro.monitor.measurement import measurement_of

        return measurement_of(self.monitor.pagedb, self.as_page)

    # -- shared memory ------------------------------------------------------------------

    def buffer(self, index: int = 0) -> SharedBuffer:
        return self.buffers[index]

    # -- teardown -------------------------------------------------------------------------

    def teardown(self) -> None:
        """Stop the enclave and return all its pages to the OS."""
        if self._torn_down:
            return
        remaining = list(self.owned_pages)
        self.kernel.stop_and_remove(self.as_page, remaining)
        self._torn_down = True
