"""Native enclave programs (see DESIGN.md, "Native enclave programs").

Compute-heavy enclaves (the notary hashing half a megabyte) would be
impractically slow fully interpreted; the SDK therefore also supports
*native* programs: Python generator functions that stand in for the
enclave's user-mode code.  Fidelity is preserved where it matters:

* every memory access goes through the enclave's own page tables with
  permission checks, exactly like an interpreted load/store;
* work is charged to the same cycle-cost model;
* ``yield`` marks a preemption point — an injected interrupt suspends the
  generator, the thread is marked entered, and Resume continues it;
* SVCs go through the monitor's real dispatch.

The program's identity is bound to the enclave measurement by placing an
identity page (containing the program's name hash) in measured enclave
memory, so two different native programs never share a measurement.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from repro.arm.bits import WORDSIZE
from repro.arm.pagetable import PageTableWalker
from repro.crypto.sha256 import sha256
from repro.monitor.enclave_exec import NativeFault, dispatch_svc
from repro.monitor.errors import KomErr
from repro.monitor.komodo import KomodoMonitor
from repro.monitor.layout import SVC


class NativeContext:
    """The view a native program has of its machine: its own address
    space (via page tables), its registers' worth of SVC arguments, and
    the cost model."""

    def __init__(self, monitor: KomodoMonitor, thread_page: int):
        self.monitor = monitor
        self.thread_page = thread_page
        self.asno = monitor.pagedb.owner(thread_page)
        self._walker = PageTableWalker(monitor.state.memory)

    # -- memory access through the enclave's page tables ------------------

    def _translate(self, va: int, write: bool) -> int:
        pagedb = self.monitor.pagedb
        l1_base = pagedb.page_base(pagedb.l1pt_page(self.asno))
        translation = self._walker.walk(l1_base, va)
        if translation is None:
            raise NativeFault()
        if write and not translation.writable:
            raise NativeFault()
        if not write and not translation.readable:
            raise NativeFault()
        return translation.phys_addr(va)

    def read_word(self, va: int) -> int:
        if va % WORDSIZE:
            raise NativeFault()
        paddr = self._translate(va, write=False)
        self.monitor.state.charge(self.monitor.state.costs.mem_access)
        return self.monitor.state.memory.read_word(paddr)

    def write_word(self, va: int, value: int) -> None:
        if va % WORDSIZE:
            raise NativeFault()
        paddr = self._translate(va, write=True)
        self.monitor.state.charge(self.monitor.state.costs.mem_access)
        self.monitor.state.memory.write_word(paddr, value)
        self.monitor.state.tlb.note_store(paddr)

    def read_words(self, va: int, count: int) -> List[int]:
        return [self.read_word(va + i * WORDSIZE) for i in range(count)]

    def write_words(self, va: int, words) -> None:
        for i, word in enumerate(words):
            self.write_word(va + i * WORDSIZE, word)

    def read_bytes(self, va: int, count: int) -> bytes:
        """Read a word-aligned byte range (big-endian word packing)."""
        if count % WORDSIZE:
            raise NativeFault()
        words = self.read_words(va, count // WORDSIZE)
        return b"".join(w.to_bytes(4, "big") for w in words)

    # -- work accounting -------------------------------------------------------

    def charge(self, cycles: int) -> None:
        """Charge explicit computation cost (e.g. per hashed block)."""
        self.monitor.state.charge(cycles)

    # -- SVCs ---------------------------------------------------------------------

    def svc(self, number: int, *args: int) -> List[int]:
        """Issue an SVC through the monitor's real dispatch.

        Returns the result words; raises on a monitor-rejected call so
        native programs fail loudly rather than misinterpret an error
        code as data.
        """
        padded = list(args) + [0] * (13 - len(args))
        self.monitor.state.charge(self.monitor.state.costs.exception_entry)
        err, values = dispatch_svc(
            self.monitor, self.asno, number, padded, self.thread_page
        )
        self.monitor.state.charge(self.monitor.state.costs.exception_return)
        if err is not KomErr.SUCCESS:
            raise NativeSvcError(number, err)
        return values

    # -- convenience wrappers over the SVC API -----------------------------------------

    def get_random(self) -> int:
        return self.svc(SVC.GET_RANDOM)[0]

    def attest(self, data: List[int]) -> List[int]:
        if len(data) != 8:
            raise ValueError("attestation data must be 8 words")
        return self.svc(SVC.ATTEST, *data)

    def verify(self, data: List[int], measure: List[int], mac: List[int]) -> bool:
        """The three verify steps, wrapped back into Table 1's one call."""
        self.svc(SVC.VERIFY_STEP0, *data)
        self.svc(SVC.VERIFY_STEP1, *measure)
        return bool(self.svc(SVC.VERIFY_STEP2, *mac)[0])

    def map_data(self, spare_page: int, mapping_word: int) -> None:
        self.svc(SVC.MAP_DATA, spare_page, mapping_word)

    def unmap_data(self, data_page: int, mapping_word: int) -> None:
        self.svc(SVC.UNMAP_DATA, data_page, mapping_word)

    def init_l2ptable(self, spare_page: int, l1index: int) -> None:
        self.svc(SVC.INIT_L2PTABLE, spare_page, l1index)


class NativeSvcError(Exception):
    """An SVC issued by a native program was rejected by the monitor."""

    def __init__(self, number: int, err: KomErr):
        super().__init__(f"SVC {number} failed: {err!r}")
        self.number = number
        self.err = err


class NativeEnclaveProgram:
    """A named native program: a generator function plus its identity.

    ``body`` is a generator function ``(ctx, arg1, arg2, arg3) -> int``
    that yields at preemption points and returns its exit value.  The
    identity words (derived from ``name``) are placed in a measured page
    by the builder, binding the program to the enclave measurement.
    """

    def __init__(
        self,
        name: str,
        body: Callable[..., Generator[None, None, Optional[int]]],
    ):
        self.name = name
        self.body = body

    def identity_words(self) -> List[int]:
        digest = sha256(b"native-program:" + self.name.encode())
        return [int.from_bytes(digest[i : i + 4], "big") for i in range(0, 32, 4)]

    def factory(self, monitor: KomodoMonitor, thread_page: int):
        """The generator factory the monitor's Enter path invokes."""
        ctx = NativeContext(monitor, thread_page)
        regs = monitor.state.regs
        args = (regs.read_gpr(0), regs.read_gpr(1), regs.read_gpr(2))
        return self.body(ctx, *args)
