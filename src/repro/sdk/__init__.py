"""Enclave software development kit.

Host-side tooling for building and talking to enclaves, layered strictly
on the public monitor API: an enclave builder that turns programs and
data into the SMC sequence the kernel driver issues, handles for entering
threads and exchanging data through shared insecure buffers, and support
for both ARM-level programs (assembled and measured into enclave pages)
and native generator-based programs (see DESIGN.md).
"""

from repro.sdk.builder import EnclaveBuilder, EnclaveHandle
from repro.sdk.native import NativeContext, NativeEnclaveProgram

__all__ = [
    "EnclaveBuilder",
    "EnclaveHandle",
    "NativeContext",
    "NativeEnclaveProgram",
]
