"""Refinement checker: every SMC is checked against the specification.

``CheckedMonitor`` wraps a concrete ``KomodoMonitor``.  Each SMC is run
both through the pure specification functions and the implementation;
afterwards the checker asserts, in the spirit of the paper's proof
obligations (section 5.2):

1. **Refinement** — the abstract PageDB extracted from concrete machine
   state equals the spec's output PageDB (and the returned error codes
   match).
2. **Invariants** — the spec-level PageDB validity invariants hold.
3. **Measurement refinement** — the implementation's incremental SHA-256
   chaining state equals a replay of the spec's abstract measured
   sequence, and finalised measurements match.
4. **Frame conditions** of the top-level ``smchandler`` predicate:
   non-volatile registers preserved, other non-return registers zeroed,
   insecure memory invariant for non-executing calls, return in the
   correct mode.
5. **Enter/Resume containment** — enclave execution changes nothing in
   the PageDB outside the entered enclave's own pages.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

from repro.arm.memory import WORDS_PER_PAGE
from repro.arm.modes import Mode, World
from repro.crypto.sha256 import SHA256
from repro.monitor.errors import KomErr
from repro.monitor.komodo import KomodoMonitor
from repro.monitor.layout import AddrspaceState, PageType, SMC
from repro.spec.invariants import collect_violations
from repro.spec.pagedb import AbsAddrspace, AbsPageDb, AbsThread
from repro.spec.smc_spec import (
    spec_alloc_spare,
    spec_finalise,
    spec_init_addrspace,
    spec_init_l2ptable,
    spec_init_thread,
    spec_map_insecure,
    spec_map_secure,
    spec_remove,
    spec_stop,
)
from repro.verification.extract import extract_pagedb


class RefinementError(AssertionError):
    """The implementation diverged from the specification."""


def _normalise(db: AbsPageDb) -> AbsPageDb:
    """Erase fields extraction cannot recover (the measured sequence,
    and measurements of never-finalised addrspaces)."""
    entries = []
    for entry in db.entries:
        if isinstance(entry, AbsAddrspace):
            measurement = entry.measurement
            if entry.state is AddrspaceState.INIT:
                measurement = None
            entries.append(replace(entry, measured=(), measurement=measurement))
        else:
            entries.append(entry)
    return AbsPageDb(npages=db.npages, entries=tuple(entries))


class CheckedMonitor:
    """A KomodoMonitor whose every SMC is refinement- and invariant-checked."""

    def __init__(self, monitor: Optional[KomodoMonitor] = None, **kwargs):
        self.monitor = monitor or KomodoMonitor(**kwargs)
        self.spec_db = AbsPageDb.initial(self.monitor.pagedb.npages)
        self.checks_performed = 0

    @property
    def state(self):
        return self.monitor.state

    @property
    def pagedb(self):
        return self.monitor.pagedb

    # ------------------------------------------------------------------

    def smc(self, callno: int, *args: int) -> Tuple[KomErr, int]:
        """Issue an SMC, checking the implementation against the spec."""
        padded = list(args) + [0] * (4 - len(args))
        spec_outcome = self._run_spec(callno, padded)
        # The OS marshals callno/args into R0-R4 before executing SMC;
        # do the same here so the non-volatile snapshot reflects the
        # register state at the SMC boundary (r4 carries the 4th arg).
        regs = self.monitor.state.regs
        regs.write_gpr(0, callno)
        for i, arg in enumerate(padded[:4]):
            regs.write_gpr(i + 1, arg)
        pre_regs = {i: regs.read_gpr(i) for i in range(4, 12)}
        pre_insecure = self.monitor.state.memory.snapshot_region(
            self.monitor.state.memmap.insecure
        )
        pre_mode = self.monitor.state.regs.cpsr.mode
        executes = callno in (SMC.ENTER, SMC.RESUME)

        err, value = self.monitor.smc(callno, *args)

        self._check_frame_conditions(err, value, pre_regs, pre_mode)
        if not executes:
            self._check_insecure_invariant(pre_insecure)
        extracted = extract_pagedb(self.monitor.state)
        if spec_outcome is not None:
            spec_err, spec_db = spec_outcome
            if spec_err != err:
                raise RefinementError(
                    f"SMC {callno}: impl returned {err!r}, spec {spec_err!r}"
                )
            if _normalise(extracted) != _normalise(spec_db):
                raise RefinementError(
                    f"SMC {callno}: abstract state diverged from spec"
                )
            self.spec_db = spec_db
        else:
            # Enter/Resume: the validation half is a pure spec function;
            # the execution half is checked by containment.
            from repro.spec.enter_spec import (
                EXECUTION_RESULT_ERRORS,
                spec_validate_execution,
            )

            expected_err = spec_validate_execution(
                self.spec_db, padded[0], want_entered=(callno == SMC.RESUME)
            )
            if expected_err is not None:
                if err is not expected_err:
                    raise RefinementError(
                        f"SMC {callno}: impl returned {err!r}, "
                        f"spec validation requires {expected_err!r}"
                    )
            elif err not in EXECUTION_RESULT_ERRORS:
                raise RefinementError(
                    f"SMC {callno}: execution returned out-of-spec error {err!r}"
                )
            self._check_execution_containment(callno, padded[0], err, extracted)
            self.spec_db = self._adopt_execution_result(extracted)
        violations = collect_violations(self.spec_db, self.monitor.state.memmap)
        if violations:
            raise RefinementError(f"SMC {callno}: invariants broken: {violations}")
        self._check_measurements()
        self.checks_performed += 1
        return (err, value)

    # -- spec dispatch ----------------------------------------------------

    def _run_spec(self, callno: int, args) -> Optional[Tuple[KomErr, AbsPageDb]]:
        db = self.spec_db
        if callno in (SMC.QUERY, SMC.GET_PHYSPAGES):
            return (KomErr.SUCCESS, db)
        if callno == SMC.INIT_ADDRSPACE:
            return spec_init_addrspace(db, args[0], args[1])
        if callno == SMC.INIT_THREAD:
            return spec_init_thread(db, args[0], args[1], args[2])
        if callno == SMC.INIT_L2PTABLE:
            return spec_init_l2ptable(db, args[0], args[1], args[2])
        if callno == SMC.MAP_SECURE:
            contents, valid = self._read_insecure_page(args[3])
            return spec_map_secure(db, args[0], args[1], args[2], contents, valid)
        if callno == SMC.MAP_INSECURE:
            valid = self.monitor.state.memmap.insecure_page_aligned(args[2])
            return spec_map_insecure(db, args[0], args[1], args[2], valid)
        if callno == SMC.ALLOC_SPARE:
            return spec_alloc_spare(db, args[0], args[1])
        if callno == SMC.REMOVE:
            return spec_remove(db, args[0])
        if callno == SMC.FINALISE:
            return spec_finalise(db, args[0])
        if callno == SMC.STOP:
            return spec_stop(db, args[0])
        if callno in (SMC.ENTER, SMC.RESUME):
            return None
        return (KomErr.INVALID_CALL, db)

    def _read_insecure_page(self, address: int):
        state = self.monitor.state
        if address == 0:
            return ((0,) * WORDS_PER_PAGE, True)
        if not state.memmap.insecure_page_aligned(address):
            return ((0,) * WORDS_PER_PAGE, False)
        return (tuple(state.memory.read_words(address, WORDS_PER_PAGE)), True)

    # -- frame conditions ----------------------------------------------------

    def _check_frame_conditions(self, err, value, pre_regs, pre_mode) -> None:
        regs = self.monitor.state.regs
        if regs.read_gpr(0) != int(err) or regs.read_gpr(1) != (value & 0xFFFFFFFF):
            raise RefinementError("R0/R1 do not carry the SMC results")
        for i in (2, 3, 12):
            if regs.read_gpr(i) != 0:
                raise RefinementError(f"non-return register r{i} not scrubbed")
        for i, saved in pre_regs.items():
            if regs.read_gpr(i) != saved:
                raise RefinementError(f"non-volatile register r{i} clobbered")
        if regs.cpsr.mode is not pre_mode:
            raise RefinementError("SMC returned in the wrong mode")
        if self.monitor.state.world is not World.NORMAL:
            raise RefinementError("SMC returned in the wrong world")

    def _check_insecure_invariant(self, pre_snapshot) -> None:
        post = self.monitor.state.memory.snapshot_region(
            self.monitor.state.memmap.insecure
        )
        if post != pre_snapshot:
            raise RefinementError("non-executing SMC modified insecure memory")

    # -- Enter/Resume containment ------------------------------------------------

    def _check_execution_containment(
        self, callno: int, thread_page: int, err: KomErr, extracted: AbsPageDb
    ) -> None:
        """Enclave execution must not touch other enclaves' pages."""
        pre = _normalise(self.spec_db)
        post = _normalise(extracted)
        target_as = None
        if self.spec_db.valid_pageno(thread_page):
            entry = self.spec_db[thread_page]
            if isinstance(entry, AbsThread):
                target_as = entry.addrspace
        for pageno in range(pre.npages):
            if target_as is not None and pre.owner_of(pageno) == target_as:
                continue
            if pre[pageno] != post[pageno]:
                raise RefinementError(
                    f"SMC {callno} modified page {pageno} outside the "
                    f"entered enclave (owner {pre.owner_of(pageno)})"
                )

    def _adopt_execution_result(self, extracted: AbsPageDb) -> AbsPageDb:
        """Merge execution effects into the tracked spec DB.

        Execution never changes the measured sequence or measurements, so
        the tracked ``measured`` fields are preserved and everything else
        is taken from the post-execution extraction.
        """
        entries = []
        for pageno in range(extracted.npages):
            new_entry = extracted[pageno]
            old_entry = self.spec_db[pageno]
            if isinstance(new_entry, AbsAddrspace) and isinstance(
                old_entry, AbsAddrspace
            ):
                new_entry = replace(
                    new_entry,
                    measured=old_entry.measured,
                    measurement=old_entry.measurement,
                )
            entries.append(new_entry)
        return AbsPageDb(npages=extracted.npages, entries=tuple(entries))

    # -- measurement refinement --------------------------------------------------

    def _check_measurements(self) -> None:
        """Replay each abstract measured sequence and compare hash states."""
        pagedb = self.monitor.pagedb
        for asno in self.spec_db.addrspaces():
            spec_entry = self.spec_db[asno]
            replay = SHA256()
            words = list(spec_entry.measured)
            for i in range(0, len(words), 16):
                replay.update_block_words(words[i : i + 16])
            if spec_entry.state is AddrspaceState.INIT:
                if pagedb.hash_state(asno) != replay.state_words:
                    raise RefinementError(
                        f"addrspace {asno}: hash chaining state diverged"
                    )
                if pagedb.hash_length(asno) != len(words) * 4:
                    raise RefinementError(
                        f"addrspace {asno}: measured length diverged"
                    )
            elif spec_entry.measurement is not None:
                if tuple(pagedb.measurement(asno)) != spec_entry.measurement:
                    raise RefinementError(
                        f"addrspace {asno}: final measurement diverged"
                    )

    # -- conveniences --------------------------------------------------------------

    def schedule_interrupt(self, after_steps: int) -> None:
        self.monitor.schedule_interrupt(after_steps)

    def register_native_program(self, thread_page: int, factory) -> None:
        self.monitor.register_native_program(thread_page, factory)
