"""Extraction: concrete machine state -> abstract PageDB.

This function is the refinement witness: it reconstructs the
specification's abstract PageDB using only the layout definitions in
``repro.monitor.layout`` and the words in machine memory.  If the
implementation's representation ever diverges from what the spec
requires (e.g. a measurement hash state that doesn't match the abstract
measured sequence, or a page-table word inconsistent with the abstract
table), extraction or the subsequent comparison fails.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.arm.bits import WORDSIZE
from repro.arm.machine import MachineState
from repro.arm.memory import WORDS_PER_PAGE
from repro.arm.pagetable import (
    DESC_INVALID,
    DESC_L1_COARSE,
    DESC_L2_SMALL,
    L1_ENTRIES,
    L2_ENTRIES,
    PERM_R,
    PERM_SECURE,
    PERM_W,
    PERM_X,
    entry_target,
    entry_type,
)
from repro.monitor.layout import AddrspaceState, PageType
from repro.monitor.pagedb import PageDB
from repro.spec.pagedb import (
    AbsAddrspace,
    AbsData,
    AbsFree,
    AbsL1,
    AbsL2,
    AbsMappingEntry,
    AbsPageDb,
    AbsSpare,
    AbsThread,
)


class ExtractionError(AssertionError):
    """The concrete state has no abstract counterpart (refinement broken)."""


def extract_pagedb(state: MachineState) -> AbsPageDb:
    """Reconstruct the abstract PageDB from concrete machine state.

    The abstract ``measured`` sequence cannot be recovered from a hash
    state (SHA-256 is one-way), so extraction leaves it empty and the
    refinement checker instead *tracks* the spec-side sequence and checks
    the implementation's chaining state against a replay of it; see
    ``refinement.CheckedMonitor._check_measurement``.
    """
    pagedb = PageDB(state)
    entries = []
    for pageno in range(pagedb.npages):
        entries.append(_extract_entry(state, pagedb, pageno))
    return AbsPageDb(npages=pagedb.npages, entries=tuple(entries))


def _extract_entry(state: MachineState, pagedb: PageDB, pageno: int):
    page_type = pagedb.page_type(pageno)
    owner = pagedb.owner(pageno)
    if page_type is PageType.FREE:
        return AbsFree()
    if page_type is PageType.ADDRSPACE:
        as_state = pagedb.addrspace_state(pageno)
        measurement: Optional[Tuple[int, ...]] = None
        if pagedb.was_measured(pageno):
            measurement = tuple(pagedb.measurement(pageno))
        return AbsAddrspace(
            state=as_state,
            refcount=pagedb.refcount(pageno),
            l1pt=pagedb.l1pt_page(pageno),
            measured=(),  # unrecoverable; checked via hash replay
            measurement=measurement,
        )
    if page_type is PageType.THREAD:
        entered = pagedb.thread_entered(pageno)
        context: Optional[Tuple[int, ...]] = None
        if entered:
            gprs, sp, lr, pc, cpsr = pagedb.load_thread_context(pageno)
            context = tuple(gprs) + (sp, lr, pc, cpsr)
        return AbsThread(
            addrspace=owner,
            entrypoint=pagedb.thread_entrypoint(pageno),
            entered=entered,
            context=context,
            fault_handler=pagedb.fault_handler(pageno),
            in_handler=pagedb.in_fault_handler(pageno),
        )
    if page_type is PageType.L1PTABLE:
        return _extract_l1(state, pagedb, pageno, owner)
    if page_type is PageType.L2PTABLE:
        return _extract_l2(state, pagedb, pageno, owner)
    if page_type is PageType.DATA:
        base = pagedb.page_base(pageno)
        contents = tuple(state.memory.read_words(base, WORDS_PER_PAGE))
        return AbsData(addrspace=owner, contents=contents)
    if page_type is PageType.SPARE:
        return AbsSpare(addrspace=owner)
    raise ExtractionError(f"page {pageno} has unknown type {page_type}")


def _extract_l1(state: MachineState, pagedb: PageDB, pageno: int, owner: int) -> AbsL1:
    base = pagedb.page_base(pageno)
    entries = []
    for index in range(L1_ENTRIES):
        word = state.memory.read_word(base + index * WORDSIZE)
        kind = entry_type(word)
        if kind == DESC_INVALID:
            entries.append(None)
        elif kind == DESC_L1_COARSE:
            target = entry_target(word)
            if not state.memmap.is_secure(target):
                raise ExtractionError(
                    f"L1 {pageno}[{index}] points outside secure memory"
                )
            entries.append(state.memmap.pageno_of(target))
        else:
            raise ExtractionError(f"L1 {pageno}[{index}] has malformed descriptor")
    return AbsL1(addrspace=owner, entries=tuple(entries))


def _extract_l2(state: MachineState, pagedb: PageDB, pageno: int, owner: int) -> AbsL2:
    base = pagedb.page_base(pageno)
    entries = []
    for index in range(L2_ENTRIES):
        word = state.memory.read_word(base + index * WORDSIZE)
        kind = entry_type(word)
        if kind == DESC_INVALID:
            entries.append(None)
            continue
        if kind != DESC_L2_SMALL:
            raise ExtractionError(f"L2 {pageno}[{index}] has malformed descriptor")
        target = entry_target(word)
        secure = bool(word & PERM_SECURE)
        if secure:
            if not state.memmap.is_secure(target):
                raise ExtractionError(
                    f"L2 {pageno}[{index}] secure bit set on insecure target"
                )
            mapping = AbsMappingEntry(
                secure_page=state.memmap.pageno_of(target),
                insecure_base=None,
                readable=bool(word & PERM_R),
                writable=bool(word & PERM_W),
                executable=bool(word & PERM_X),
            )
        else:
            mapping = AbsMappingEntry(
                secure_page=None,
                insecure_base=target,
                readable=bool(word & PERM_R),
                writable=bool(word & PERM_W),
                executable=bool(word & PERM_X),
            )
        entries.append(mapping)
    return AbsL2(addrspace=owner, entries=tuple(entries))
