"""Refinement checking: implementation vs specification.

The paper proves its assembly implementation satisfies the functional
specification; this package *checks* the analogous statement for the
Python monitor.  ``extract`` reconstructs the abstract PageDB from
nothing but concrete machine state (witnessing the refinement relation);
``refinement`` wraps a monitor so that every SMC is simultaneously run
through the pure spec and the concrete implementation, and the resulting
abstract states are compared, PageDB invariants are checked, and the
top-level ``smchandler`` frame conditions (non-volatile registers
preserved, non-return registers scrubbed, insecure memory untouched by
non-executing calls, correct return mode) are asserted.
"""

from repro.verification.extract import extract_pagedb
from repro.verification.refinement import CheckedMonitor, RefinementError

__all__ = ["CheckedMonitor", "RefinementError", "extract_pagedb"]
