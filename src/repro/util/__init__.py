"""Cross-layer utilities: retry/backoff policies and wall-clock watchdogs."""
