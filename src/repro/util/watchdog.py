"""Wall-clock watchdogs for campaign trials.

The fault/bit-flip/path-replay campaigns are deterministic, but a bug
under development can still wedge a single trial (an enclave that never
yields, a retry loop that never converges).  ``time_limit`` bounds one
trial in *wall-clock* seconds so a wedged trial fails that trial with a
clear :class:`TrialTimeout` instead of hanging CI.

Implementation: ``signal.setitimer(ITIMER_REAL)`` + ``SIGALRM``, which
interrupts pure-Python compute loops (a ``threading``-based watchdog
cannot).  SIGALRM is only deliverable on the main thread of the main
interpreter; off the main thread — or on platforms without SIGALRM —
the context manager degrades to a no-op rather than failing, since the
timeout is a CI safety net, not a semantic guarantee.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Iterator, Optional


class TrialTimeout(Exception):
    """One watchdog-bounded trial exceeded its wall-clock budget."""


def _watchdog_available() -> bool:
    return (
        hasattr(signal, "setitimer")
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextlib.contextmanager
def time_limit(seconds: Optional[float], label: str = "trial") -> Iterator[None]:
    """Bound the body to ``seconds`` of wall clock; raise TrialTimeout.

    ``seconds=None`` (or ``<= 0``) disables the watchdog.  Nesting is
    not supported: the inner limit would clobber the outer timer, so
    the inner context becomes a no-op when an alarm is already armed.
    """
    if not seconds or seconds <= 0 or not _watchdog_available():
        yield
        return
    if signal.getitimer(signal.ITIMER_REAL)[0]:
        # An outer time_limit (or other real-timer user) is already
        # counting down; run unbounded inside — its alarm still fires.
        yield
        return

    def _alarm(signum, frame):
        raise TrialTimeout(f"{label}: exceeded {seconds:g}s wall-clock limit")

    # Install the handler BEFORE arming the timer: a very short limit
    # could otherwise fire into the default disposition (process kill)
    # between the two calls.
    previous = signal.signal(signal.SIGALRM, _alarm)
    try:
        signal.setitimer(signal.ITIMER_REAL, seconds)
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
