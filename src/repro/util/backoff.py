"""Seeded exponential backoff with jitter, extracted from the OS kernel.

The policy originated as the inline retry loop in
``OSKernel.retry_with_backoff`` (PR 4): a deterministic, seeded,
exponentially growing delay with linear-congruential jitter.  The cloud
supervision layer (``repro.cloud``) needs the same policy for request
re-dispatch after a worker crash, so the arithmetic lives here and both
consumers share it.  The delay *unit* is consumer-defined: the kernel
charges simulated cycles, the cloud supervisor sleeps milliseconds.

The jitter sequence is pinned — ``tests/util/test_backoff.py`` asserts
the exact delays the kernel charged before the extraction — so the
kernel's cycle accounting stays bit-identical across the refactor:

* mix the seed once: ``word = (seed ^ 0x9E3779B9) & 0xFFFFFFFF``
* per retry: ``word = (word * 1664525 + 1013904223) & 0xFFFFFFFF``
  (Numerical Recipes LCG constants)
* delay for retry *k* (1-based): ``base_delay * 2**(k-1) + word % base_delay``

A :class:`Backoff` session is the in-flight state of one retry loop.
It is deliberately small and inert (plain ints) so kernel snapshots can
treat "a retry loop was in progress" as resettable state — see
``repro.faults.snapshot.CampaignSnapshot``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

_SEED_MIX = 0x9E3779B9
_LCG_MUL = 1664525
_LCG_ADD = 1013904223
_MASK32 = 0xFFFFFFFF


@dataclass(frozen=True)
class BackoffPolicy:
    """A bounded exponential-backoff schedule.

    ``base_delay``
        First retry waits ``base_delay..2*base_delay-1`` units; each
        later retry doubles the deterministic part, keeping the jitter
        term in ``0..base_delay-1``.
    ``attempts``
        Total issue budget (first try included): at most
        ``attempts - 1`` retries are granted.
    ``cap``
        Optional ceiling on the deterministic (exponential) part of a
        delay; jitter still rides on top, so delays stay distinct.
    ``deadline``
        Optional absolute time (in the consumer's units) past which no
        further retry is granted: a delay that would *end* after the
        deadline is refused.  Requires callers to pass ``now`` to
        :meth:`Backoff.next_delay`.
    """

    base_delay: int = 64
    attempts: int = 4
    cap: Optional[int] = None
    deadline: Optional[int] = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")
        if self.base_delay < 1:
            raise ValueError("base_delay must be at least 1")
        if self.cap is not None and self.cap < self.base_delay:
            raise ValueError("cap must be >= base_delay")

    def session(self, seed: int = 0) -> "Backoff":
        """Start one retry loop's worth of in-flight backoff state."""
        return Backoff(self, seed)

    def delays(self, seed: int = 0) -> List[int]:
        """The full delay schedule for ``seed`` (for tests and tuning)."""
        session = self.session(seed)
        out: List[int] = []
        while True:
            delay = session.next_delay()
            if delay is None:
                return out
            out.append(delay)


class Backoff:
    """One in-flight retry session: LCG word + retries granted so far."""

    __slots__ = ("policy", "seed", "word", "retries")

    def __init__(self, policy: BackoffPolicy, seed: int = 0):
        self.policy = policy
        self.seed = seed
        self.word = (seed ^ _SEED_MIX) & _MASK32
        self.retries = 0

    @property
    def exhausted(self) -> bool:
        return self.retries >= self.policy.attempts - 1

    def next_delay(self, now: Optional[int] = None) -> Optional[int]:
        """Grant the next retry's delay, or ``None`` to give up.

        ``None`` means either the attempt budget is spent or (when the
        policy has a ``deadline`` and the caller supplied ``now``) the
        delay would overrun it.  Advancing the LCG only on granted
        retries keeps the sequence identical to the original kernel
        loop, which stepped the word once per actual wait.
        """
        policy = self.policy
        if self.exhausted:
            return None
        word = (self.word * _LCG_MUL + _LCG_ADD) & _MASK32
        retry = self.retries + 1
        spin = policy.base_delay * (1 << (retry - 1))
        if policy.cap is not None and spin > policy.cap:
            spin = policy.cap
        delay = spin + word % policy.base_delay
        if policy.deadline is not None and now is not None:
            if now + delay > policy.deadline:
                return None
        self.word = word
        self.retries = retry
        return delay
