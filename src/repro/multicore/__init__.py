"""Multi-core execution model (paper section 9.2, future work).

The paper's monitor is single-core: the OS may run on multiple cores,
but the monitor and enclaves are restricted to one.  Section 9.2
sketches the simplest path to multi-core: "a single shared lock around
all monitor activities, which would preserve the sequential
(Floyd-Hoare) reasoning used in our current proofs."

This package implements that design over the simulator: multiple
normal-world cores run concurrently (interleaved by a deterministic,
seeded scheduler), each freely reading and writing insecure memory, and
every SMC acquires the global monitor lock.  Because the lock serialises
all monitor activity, every concurrent run is equivalent to *some*
sequential SMC order — the linearisability-by-construction argument the
paper makes — which the tests check directly against the sequential
refinement machinery.
"""

from repro.multicore.scheduler import Core, MonitorLock, MultiCoreMachine

__all__ = ["Core", "MonitorLock", "MultiCoreMachine"]
