"""Deterministic multi-core interleaving with a big monitor lock.

Cores are cooperative generators of *actions*; the scheduler picks the
next runnable core with a seeded PRNG, so every interleaving is
reproducible from its seed and a property test can sweep many schedules.

Actions a core may take:

* ``("smc", callno, args...)`` — issue an SMC.  The core first acquires
  the global monitor lock (blocking, i.e. the scheduler skips the core
  until the lock frees); the SMC runs to completion while the lock is
  held (monitor calls are bounded-time, section 7.2, so holding the lock
  across one call models the paper's design exactly); the result is sent
  back into the generator.
* ``("write", address, value)`` / ``("read", address)`` — normal-world
  memory accesses, permitted concurrently with monitor activity on
  another core (the paper's model allows the OS to mutate insecure
  memory while the monitor runs elsewhere; the monitor never reads
  insecure memory unguarded except in MapSecure, whose copy is atomic
  under the lock).
* ``("yield",)`` — plain scheduling point.

The scheduler records the global order of SMCs (the linearisation), so
tests can replay it against a sequential monitor and compare outcomes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.arm.machine import FaultInjected
from repro.arm.modes import World
from repro.monitor.errors import KomErr
from repro.monitor.komodo import KomodoMonitor


#: Bound on back-to-back watchdog resets during one crash recovery.
_RECOVERY_ATTEMPTS = 128


class MonitorLock:
    """The single shared lock around all monitor activities."""

    def __init__(self) -> None:
        self._holder: Optional[int] = None
        self.acquisitions = 0
        self.contended_waits = 0
        self.recovery_releases = 0

    @property
    def held(self) -> bool:
        return self._holder is not None

    @property
    def holder(self) -> Optional[int]:
        return self._holder

    def try_acquire(self, core_id: int) -> bool:
        if self._holder is not None:
            self.contended_waits += 1
            return False
        self._holder = core_id
        self.acquisitions += 1
        return True

    def release(self, core_id: int) -> None:
        if self._holder != core_id:
            raise RuntimeError(f"core {core_id} released a lock it does not hold")
        self._holder = None

    def break_for_recovery(self) -> None:
        """Forcibly free the lock during crash recovery.

        A core that dies inside the monitor can never release the lock
        itself; the recovery path (which runs after the journal has been
        replayed or discarded, so the monitor is quiescent) breaks it so
        the surviving cores can make progress.  No-op when unheld, so
        recovery stays idempotent.
        """
        if self._holder is not None:
            self._holder = None
            self.recovery_releases += 1


@dataclass
class Core:
    """One normal-world core running a scripted generator."""

    core_id: int
    script: Iterator
    finished: bool = False
    pending_send: object = None  # value to send into the generator next
    results: List[Tuple[KomErr, int]] = field(default_factory=list)
    blocked_on_lock: Optional[tuple] = None  # stashed SMC awaiting the lock


@dataclass(frozen=True)
class LinearisationEntry:
    """One SMC in the global serialisation order."""

    core_id: int
    callno: int
    args: Tuple[int, ...]
    err: KomErr
    value: int


class MultiCoreMachine:
    """Runs core scripts against one monitor under the big lock."""

    def __init__(self, monitor: KomodoMonitor, seed: int = 0):
        self.monitor = monitor
        self.lock = MonitorLock()
        self.random = random.Random(seed)
        self.cores: List[Core] = []
        self.linearisation: List[LinearisationEntry] = []
        #: Injected crashes observed: (core_id, callno, args, FaultInjected).
        self.crashes: List[tuple] = []
        #: Quarantine events observed: (core_id, callno, pageno) — an SMC
        #: on this core tripped the integrity precheck.
        self.quarantines: List[tuple] = []
        # Recovery after a mid-SMC crash must break the dead core's lock.
        monitor.on_recover = self.lock.break_for_recovery

    def add_core(self, script_factory) -> Core:
        """Register a core; ``script_factory(core_id)`` returns its
        action generator."""
        core_id = len(self.cores)
        core = Core(core_id=core_id, script=script_factory(core_id))
        self.cores.append(core)
        return core

    # ------------------------------------------------------------------

    def _issue_smc(self, core: Core, callno: int, args: Tuple[int, ...]):
        err, value = self.monitor.smc(callno, *args)
        self.linearisation.append(
            LinearisationEntry(
                core_id=core.core_id,
                callno=callno,
                args=tuple(args),
                err=err,
                value=value,
            )
        )
        core.results.append((err, value))
        if err is KomErr.PAGE_QUARANTINED:
            self.quarantines.append((core.core_id, callno, value))
        return (err, value)

    def _run_locked_smc(self, core: Core, callno: int, args: Tuple[int, ...]) -> None:
        """Run one SMC under the already-acquired monitor lock.

        The lock is released only if the call returns.  An injected
        crash (watchdog reset mid-SMC) leaves it held — the hazard a
        dead core poses — until the recovery path breaks it via the
        monitor's ``on_recover`` hook; the crashed core's script sees
        ``None`` instead of an (err, value) result.
        """
        try:
            core.pending_send = self._issue_smc(core, callno, args)
        except FaultInjected as fault:
            self._crash_recover(core, callno, args, fault)
            return
        self.lock.release(core.core_id)

    def _crash_recover(
        self, core: Core, callno: int, args: Tuple[int, ...], fault: FaultInjected
    ) -> None:
        self.crashes.append((core.core_id, callno, tuple(args), fault))
        # The watchdog reboots the monitor: the journal is replayed or
        # discarded and (via on_recover) the dead core's lock is broken
        # so the surviving cores can make progress.  A repeating fault
        # plan may fire *during* recovery too — a watchdog reset in the
        # middle of the warm boot — in which case the machine simply
        # reboots again; recovery is idempotent, so retrying is exactly
        # what real hardware does.  A plan that fires on every recovery
        # attempt models a machine that never comes back up; the retry
        # bound turns that into a loud failure instead of a silent spin.
        for _ in range(_RECOVERY_ATTEMPTS):
            try:
                self.monitor.recover()
                break
            except FaultInjected as again:
                self.crashes.append((core.core_id, callno, tuple(args), again))
        else:
            raise RuntimeError(
                f"monitor recovery did not complete within "
                f"{_RECOVERY_ATTEMPTS} watchdog resets"
            )
        core.pending_send = None

    def _step_core(self, core: Core) -> None:
        # A core blocked on the lock retries acquisition before anything
        # else; it does not advance its script until the SMC completes.
        if core.blocked_on_lock is not None:
            if not self.lock.try_acquire(core.core_id):
                return
            callno, args = core.blocked_on_lock
            core.blocked_on_lock = None
            self._run_locked_smc(core, callno, args)
            return
        try:
            action = core.script.send(core.pending_send)
        except StopIteration:
            core.finished = True
            return
        core.pending_send = None
        kind = action[0]
        if kind == "smc":
            callno, args = action[1], tuple(action[2:])
            if self.lock.try_acquire(core.core_id):
                self._run_locked_smc(core, callno, args)
            else:
                core.blocked_on_lock = (callno, args)
        elif kind == "write":
            self.monitor.state.memory.checked_write(action[1], action[2], World.NORMAL)
        elif kind == "read":
            core.pending_send = self.monitor.state.memory.checked_read(
                action[1], World.NORMAL
            )
        elif kind == "interrupt":
            # Any core may raise the interrupt line against the enclave
            # core (inter-processor interrupts are an OS capability).
            self.monitor.schedule_interrupt(action[1])
        elif kind == "yield":
            pass
        else:
            raise ValueError(f"unknown core action {action!r}")

    def run(self, max_steps: int = 100_000) -> None:
        """Interleave cores until all scripts finish."""
        steps = 0
        while True:
            runnable = [core for core in self.cores if not core.finished]
            if not runnable:
                return
            steps += 1
            if steps > max_steps:
                raise RuntimeError("multicore run did not terminate")
            core = self.random.choice(runnable)
            self._step_core(core)

    # ------------------------------------------------------------------

    def replay_sequentially(self, monitor: KomodoMonitor) -> List[Tuple[KomErr, int]]:
        """Replay the recorded linearisation on a fresh sequential
        monitor; returns its outcomes for comparison.

        If the big-lock design is sound, the sequential outcomes must
        equal the concurrent ones entry by entry — the linearisability
        check (cf. the paper's citation of Intel's linearisability
        verification of SGX, section 2).
        """
        outcomes = []
        for entry in self.linearisation:
            outcomes.append(monitor.smc(entry.callno, *entry.args))
        return outcomes

    def concurrent_outcomes(self) -> List[Tuple[KomErr, int]]:
        return [(entry.err, entry.value) for entry in self.linearisation]
