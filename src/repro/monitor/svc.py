"""SVC handlers: the enclave-facing monitor API (paper Table 1, lower half).

SVCs are taken while an enclave thread is executing; the handlers run
with the identity of the calling enclave (its addrspace page number) and
operate on its own pages.  Dynamic memory SVCs (InitL2PTable, MapData,
UnmapData) give Komodo SGXv2-equivalent functionality: the OS donates
spare pages, but only the enclave decides their type, address and
permissions — deliberately hiding that information from the OS (paper
section 4, "Dynamic allocation").

Each handler returns ``(KomErr, [result words])``; the execution loop
writes results into R0.. before resuming the enclave.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Tuple

from repro.arm.bits import WORDSIZE
from repro.arm.pagetable import (
    DESC_INVALID,
    DESC_L2_SMALL,
    L1_ENTRIES,
    entry_target,
    entry_type,
    make_l1_entry,
    make_l2_entry,
)
from repro.monitor.errors import KomErr
from repro.monitor.layout import (
    ATTEST_DATA_WORDS,
    Mapping,
    MEASUREMENT_WORDS,
    PageType,
    VERIFY_SCRATCH_OFFSET,
    mapping_word_valid,
)
from repro.monitor.measurement import measurement_of

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.monitor.komodo import KomodoMonitor

SvcResult = Tuple[KomErr, List[int]]

_OK: SvcResult = (KomErr.SUCCESS, [])


def svc_get_random(mon: "KomodoMonitor", asno: int) -> SvcResult:
    """Hardware-backed random word for the enclave."""
    mon.state.charge(mon.state.costs.rng_word)
    return (KomErr.SUCCESS, [mon.rng.read_word()])


def svc_attest(mon: "KomodoMonitor", asno: int, data: Sequence[int]) -> SvcResult:
    """MAC over (this enclave's measurement, enclave-provided data)."""
    if len(data) != ATTEST_DATA_WORDS:
        return (KomErr.INVALID_CALL, [])
    measurement = measurement_of(mon.pagedb, asno)
    mac = mon.attestation.mac(measurement, data)
    return (KomErr.SUCCESS, mac)


def _verify_scratch_addr(mon: "KomodoMonitor", index: int) -> int:
    return (
        mon.state.memmap.monitor_image.base
        + VERIFY_SCRATCH_OFFSET
        + index * WORDSIZE
    )


def svc_verify_step0(mon: "KomodoMonitor", asno: int, data: Sequence[int]) -> SvcResult:
    """Stash data[8] for a pending Verify."""
    for i, word in enumerate(data[:ATTEST_DATA_WORDS]):
        mon.state.mon_write_word(_verify_scratch_addr(mon, i), word)
    return _OK


def svc_verify_step1(
    mon: "KomodoMonitor", asno: int, measure: Sequence[int]
) -> SvcResult:
    """Stash measure[8] for a pending Verify."""
    for i, word in enumerate(measure[:MEASUREMENT_WORDS]):
        mon.state.mon_write_word(
            _verify_scratch_addr(mon, ATTEST_DATA_WORDS + i), word
        )
    return _OK


def svc_verify_step2(mon: "KomodoMonitor", asno: int, mac: Sequence[int]) -> SvcResult:
    """Complete a Verify: check mac[8] against the stashed data/measure."""
    data = [
        mon.state.mon_read_word(_verify_scratch_addr(mon, i))
        for i in range(ATTEST_DATA_WORDS)
    ]
    measure = [
        mon.state.mon_read_word(_verify_scratch_addr(mon, ATTEST_DATA_WORDS + i))
        for i in range(MEASUREMENT_WORDS)
    ]
    ok = mon.attestation.verify(measure, data, list(mac[:8]))
    return (KomErr.SUCCESS, [1 if ok else 0])


def _require_owned(
    mon: "KomodoMonitor", asno: int, pageno: int, expected: PageType
) -> KomErr:
    pagedb = mon.pagedb
    if not pagedb.valid_pageno(pageno):
        return KomErr.INVALID_PAGENO
    if pagedb.page_type(pageno) is not expected:
        return KomErr.PAGEINUSE
    if pagedb.owner(pageno) != asno:
        return KomErr.INVALID_PAGENO
    return KomErr.SUCCESS


def svc_init_l2ptable(
    mon: "KomodoMonitor", asno: int, spare_page: int, l1index: int
) -> SvcResult:
    """Turn one of this enclave's spare pages into an L2 page table."""
    pagedb = mon.pagedb
    err = _require_owned(mon, asno, spare_page, PageType.SPARE)
    if err is not KomErr.SUCCESS:
        return (err, [])
    if not 0 <= l1index < L1_ENTRIES:
        return (KomErr.INVALID_MAPPING, [])
    l1_base = pagedb.page_base(pagedb.l1pt_page(asno))
    l1_entry_addr = l1_base + l1index * WORDSIZE
    if entry_type(mon.state.mon_read_word(l1_entry_addr)) != DESC_INVALID:
        return (KomErr.ADDRINUSE, [])
    mon.state.mon_zero_page(pagedb.page_base(spare_page))
    pagedb.set_entry(spare_page, PageType.L2PTABLE, asno)
    mon.state.mon_write_word(l1_entry_addr, make_l1_entry(pagedb.page_base(spare_page)))
    # The live page table changed; the execution loop flushes the TLB
    # before re-entering the enclave (TLB consistency, paper section 5.1).
    return _OK


def svc_map_data(
    mon: "KomodoMonitor", asno: int, spare_page: int, mapping_word: int
) -> SvcResult:
    """Map a spare page as a zero-filled data page at the given VA."""
    pagedb = mon.pagedb
    err = _require_owned(mon, asno, spare_page, PageType.SPARE)
    if err is not KomErr.SUCCESS:
        return (err, [])
    if not mapping_word_valid(mapping_word):
        return (KomErr.INVALID_MAPPING, [])
    mapping = Mapping.decode(mapping_word)
    l1_base = pagedb.page_base(pagedb.l1pt_page(asno))
    l1_entry = mon.state.mon_read_word(l1_base + mapping.l1index * WORDSIZE)
    if entry_type(l1_entry) == DESC_INVALID:
        return (KomErr.INVALID_MAPPING, [])
    l2_entry_addr = entry_target(l1_entry) + mapping.l2index * WORDSIZE
    if entry_type(mon.state.mon_read_word(l2_entry_addr)) != DESC_INVALID:
        return (KomErr.ADDRINUSE, [])
    page_base = pagedb.page_base(spare_page)
    mon.state.mon_zero_page(page_base)
    pagedb.set_entry(spare_page, PageType.DATA, asno)
    mon.state.mon_write_word(
        l2_entry_addr,
        make_l2_entry(
            page_base, mapping.readable, mapping.writable, mapping.executable, True
        ),
    )
    return _OK


def svc_unmap_data(
    mon: "KomodoMonitor", asno: int, data_page: int, mapping_word: int
) -> SvcResult:
    """Unmap a data page, turning it back into a spare page."""
    pagedb = mon.pagedb
    err = _require_owned(mon, asno, data_page, PageType.DATA)
    if err is not KomErr.SUCCESS:
        return (err, [])
    if not mapping_word_valid(mapping_word):
        return (KomErr.INVALID_MAPPING, [])
    mapping = Mapping.decode(mapping_word)
    l1_base = pagedb.page_base(pagedb.l1pt_page(asno))
    l1_entry = mon.state.mon_read_word(l1_base + mapping.l1index * WORDSIZE)
    if entry_type(l1_entry) == DESC_INVALID:
        return (KomErr.INVALID_MAPPING, [])
    l2_entry_addr = entry_target(l1_entry) + mapping.l2index * WORDSIZE
    l2_entry = mon.state.mon_read_word(l2_entry_addr)
    if entry_type(l2_entry) != DESC_L2_SMALL:
        return (KomErr.INVALID_MAPPING, [])
    if entry_target(l2_entry) != pagedb.page_base(data_page):
        return (KomErr.INVALID_MAPPING, [])
    mon.state.mon_write_word(l2_entry_addr, 0)
    # Scrub before the page becomes reclaimable by the OS: the OS may
    # Remove a spare at any time and hand it to another enclave.
    mon.state.mon_zero_page(pagedb.page_base(data_page))
    pagedb.set_entry(data_page, PageType.SPARE, asno)
    return _OK
