"""Top-level Komodo monitor: boot, SMC dispatch, and execution context.

The monitor is the software that SGX implements in microcode (paper
section 3.2): a reference monitor for enclave manipulation and execution
living in TrustZone monitor mode.  This class composes the PageDB,
measurement, attestation, and the SMC/SVC handlers, and implements the
top-level SMC exception handler: marshalling arguments from registers,
preserving non-volatile registers, scrubbing non-return registers, and
switching worlds — the invariants the top-level ``smchandler`` predicate
of the specification demands (paper section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.arm.machine import MachineState
from repro.arm.modes import Mode, World
from repro.arm.registers import PSR
from repro.crypto.rng import HardwareRNG
from repro.monitor import integrity, journal
from repro.monitor.attestation import Attestation
from repro.monitor.enclave_exec import EnterOutcome, smc_enter, smc_resume
from repro.monitor.errors import KomErr
from repro.monitor.journal import run_transactional
from repro.monitor.layout import SMC
from repro.monitor.pagedb import PageDB
from repro.monitor.smc import (
    smc_alloc_spare,
    smc_finalise,
    smc_get_physpages,
    smc_init_addrspace,
    smc_init_l2ptable,
    smc_init_thread,
    smc_map_insecure,
    smc_map_secure,
    smc_query,
    smc_remove,
    smc_scrub,
    smc_stop,
)


@dataclass
class RecoveryReport:
    """What ``KomodoMonitor.recover`` found and did after a crash."""

    journal: str  # journal.RECOVERY_CLEAN | _DISCARDED | _REPLAYED
    native_threads_dropped: int = 0


class KomodoMonitor:
    """The Komodo monitor bound to one machine.

    Construction models the bootloader of section 7.2: it runs in secure
    world, establishes the monitor's memory layout (already fixed by the
    MemoryMap), zeroes the PageDB, and derives the attestation key from
    the hardware RNG, before the OS boots in normal world.
    """

    def __init__(
        self,
        state: Optional[MachineState] = None,
        rng: Optional[HardwareRNG] = None,
        secure_pages: int = 64,
        insecure_size: int = 0x100000,
        step_budget: int = 1_000_000,
        cpu_engine: Optional[str] = None,
    ):
        self.state = state or MachineState.boot(
            secure_pages=secure_pages, insecure_size=insecure_size
        )
        self.rng = rng or HardwareRNG()
        #: Execution engine for enclave code ("fast" | "reference" |
        #: None for the repro.arm.cpu default).
        self.cpu_engine = cpu_engine
        self.pagedb = PageDB(self.state)
        self.attestation = Attestation(self.state, self.rng)
        #: Max enclave instructions per entry before the harness injects a
        #: timer interrupt (a real OS always eventually interrupts).
        self.step_budget = step_budget
        #: Conservative banked-register save on entry (paper section 8.1
        #: lists removing it as a future optimisation; ablation toggles it).
        self.conservative_banked_save = True
        #: Suspended native-program generators, keyed by thread pageno.
        #: A model artifact standing in for saved ARM context; DESIGN.md.
        self._native_threads: Dict[int, Iterator] = {}
        #: Factories for native programs, keyed by thread pageno.
        self._native_factories: Dict[int, object] = {}
        #: One-shot interrupt deadline (enclave steps until IRQ), set by
        #: the OS model before Enter/Resume to model external interrupts.
        self._interrupt_deadline: Optional[int] = None
        #: Instrumentation hook invoked with the cycle counter at the
        #: moment user-mode execution begins (the paper's "(no return)"
        #: measurement point in Table 3).
        self.on_user_entry = None
        #: Hook invoked at the end of ``recover()`` (the multicore
        #: scheduler uses it to break a crashed core's monitor lock).
        self.on_recover = None
        self.smc_count = 0
        self._boot()

    def _boot(self) -> None:
        """Run the bootloader (section 7.2) against our machine state."""
        from repro.monitor.boot import Bootloader

        bootloader = Bootloader(rng=self.rng)
        _, self.attestation, self.boot_report = bootloader.boot(self.state)

    # -- interrupt injection (attacker-controlled line) -------------------

    def schedule_interrupt(self, after_steps: int) -> None:
        """Arm an IRQ to fire after the enclave retires ``after_steps``
        instructions (or native preemption points)."""
        if after_steps < 0:
            raise ValueError("interrupt deadline must be non-negative")
        self._interrupt_deadline = after_steps

    def consume_interrupt_deadline(self) -> Optional[int]:
        deadline = self._interrupt_deadline
        self._interrupt_deadline = None
        return deadline

    # -- native program registry ---------------------------------------------

    def register_native_program(self, thread_page: int, factory) -> None:
        """Bind a native program factory to a thread page (SDK loader)."""
        self._native_factories[thread_page] = factory

    def native_program_for(self, thread_page: int) -> Optional[Iterator]:
        """The generator to run for a thread, if it is a native thread."""
        if thread_page in self._native_threads:
            return self._native_threads.pop(thread_page)
        factory = self._native_factories.get(thread_page)
        if factory is None:
            return None
        return factory(self, thread_page)

    def suspend_native_thread(self, thread_page: int, generator: Iterator) -> None:
        self._native_threads[thread_page] = generator

    def discard_native_thread(self, thread_page: int) -> None:
        """Drop a suspended generator (thread exited or faulted); the
        factory stays so the thread can be re-entered fresh."""
        self._native_threads.pop(thread_page, None)

    def remove_native_thread(self, thread_page: int) -> None:
        """Drop everything native about a thread (its page was Removed)."""
        self._native_threads.pop(thread_page, None)
        self._native_factories.pop(thread_page, None)

    # -- the SMC handler -------------------------------------------------------

    def smc(self, callno: int, *args: int) -> Tuple[KomErr, int]:
        """Issue an SMC as the normal-world OS.

        Marshals ``callno`` and up to four arguments through R0-R4,
        executes the SMC exception, and returns (R0, R1) = (err, value).
        """
        if self.state.world is not World.NORMAL:
            raise RuntimeError("SMCs are issued from normal world")
        regs = self.state.regs
        regs.write_gpr(0, callno)
        padded = list(args) + [0] * (4 - len(args))
        for i, arg in enumerate(padded[:4]):
            regs.write_gpr(i + 1, arg)
        self._smc_exception_entry()
        err, value = self._dispatch(callno, padded)
        self._smc_exception_return(err, value)
        return (err, value)

    def _smc_exception_entry(self) -> None:
        """Take the SMC exception: world switch into monitor mode."""
        state = self.state
        state.charge(state.costs.exception_entry + state.costs.world_switch)
        self._saved_cpsr = state.regs.cpsr.copy()
        state.regs.cpsr = PSR(mode=Mode.MON, irq_masked=True, fiq_masked=True)
        state.world = World.SECURE
        # Conservative save of the non-volatile registers (section 8.1).
        self._saved_nonvolatile = [state.regs.read_gpr(i) for i in range(4, 12)]
        state.charge(8 * state.costs.mem_access)
        self.smc_count += 1

    def _smc_exception_return(self, err: KomErr, value: int) -> None:
        """Return to the OS: restore non-volatiles, scrub, set results.

        The top-level specification requires: non-volatile registers
        preserved, other non-return registers zeroed, insecure memory
        untouched, return in the correct mode (paper section 5.2).
        """
        state = self.state
        regs = state.regs
        regs.scrub_gprs()
        state.charge(13 * state.costs.instruction)
        for i, saved in enumerate(self._saved_nonvolatile):
            regs.write_gpr(i + 4, saved)
        state.charge(8 * state.costs.mem_access)
        regs.write_gpr(0, int(err))
        regs.write_gpr(1, value & 0xFFFFFFFF)
        regs.cpsr = self._saved_cpsr
        state.world = World.NORMAL
        state.charge(state.costs.exception_return + state.costs.world_switch)

    def _dispatch(self, callno: int, args) -> Tuple[KomErr, int]:
        """Route an SMC number to its handler.

        Non-executing calls run under a transaction committed only on
        SUCCESS, making each atomic against crashes and pure on error
        paths.  Enter/Resume run enclave code whose user-mode stores are
        architecturally immediate, so they manage their own smaller
        transaction windows inside ``enclave_exec``.
        """
        state = self.state
        state.charge(4 * state.costs.instruction)  # call-number compare chain
        # Lazy integrity check: before trusting the PageDB or any
        # metadata page, verify what this call will read.  Query /
        # GetPhysPages reveal nothing corruptible; Scrub is itself the
        # sweep.  Zero cycles and zero state changes when memory is
        # clean, so uncorrupted runs are bit-identical to before.
        if callno not in (SMC.QUERY, SMC.GET_PHYSPAGES, SMC.SCRUB):
            enter_thread = (
                args[0] if callno in (SMC.ENTER, SMC.RESUME) else None
            )
            report = integrity.precheck(self, enter_thread=enter_thread)
            if report.quarantined:
                return (KomErr.PAGE_QUARANTINED, report.quarantined[0])
        if callno == SMC.ENTER:
            outcome = smc_enter(self, args[0], args[1], args[2], args[3])
            return (outcome.err, outcome.value)
        if callno == SMC.RESUME:
            outcome = smc_resume(self, args[0])
            return (outcome.err, outcome.value)
        return run_transactional(
            state,
            lambda: self._dispatch_pure(callno, args),
            commit_if=lambda result: result[0] is KomErr.SUCCESS,
        )

    def _dispatch_pure(self, callno: int, args) -> Tuple[KomErr, int]:
        """The non-executing SMC handlers (run inside a transaction)."""
        if callno == SMC.QUERY:
            return smc_query(self)
        if callno == SMC.GET_PHYSPAGES:
            return smc_get_physpages(self)
        if callno == SMC.INIT_ADDRSPACE:
            return smc_init_addrspace(self, args[0], args[1])
        if callno == SMC.INIT_THREAD:
            return smc_init_thread(self, args[0], args[1], args[2])
        if callno == SMC.INIT_L2PTABLE:
            return smc_init_l2ptable(self, args[0], args[1], args[2])
        if callno == SMC.MAP_SECURE:
            return smc_map_secure(self, args[0], args[1], args[2], args[3])
        if callno == SMC.MAP_INSECURE:
            return smc_map_insecure(self, args[0], args[1], args[2])
        if callno == SMC.ALLOC_SPARE:
            return smc_alloc_spare(self, args[0], args[1])
        if callno == SMC.REMOVE:
            return smc_remove(self, args[0])
        if callno == SMC.FINALISE:
            return smc_finalise(self, args[0])
        if callno == SMC.STOP:
            return smc_stop(self, args[0])
        if callno == SMC.SCRUB:
            return smc_scrub(self)
        return (KomErr.INVALID_CALL, 0)

    # -- crash recovery ----------------------------------------------------

    def recover(self) -> RecoveryReport:
        """The warm-boot path after a watchdog reset mid-monitor.

        Models the bootloader re-entering the monitor after a crash:
        physical memory survived, everything volatile did not.  Replays
        or discards the commit journal, then re-establishes the boot
        handover state (normal world, SVC mode, scrubbed registers, no
        live enclave translation regime).  Idempotent — recovery itself
        may crash and be re-run.
        """
        state = self.state
        # The buffered transaction was monitor-stack state; it died with
        # the machine.
        state.txn = None
        journal_status = journal.recover(state)
        # Volatile execution state: translation regime, caches, the
        # interrupt line, and suspended native generators (stand-ins for
        # banked context that a real reset would lose; their threads
        # stay `entered` in the PageDB and can only be Removed after a
        # Stop, exactly like a thread whose context page went stale).
        state.load_ttbr0(None)
        state.flush_tlb()
        state.uarch.reset()
        state.pending_interrupt = False
        self._interrupt_deadline = None
        dropped = len(self._native_threads)
        self._native_threads.clear()
        # Handover to the OS, as the bootloader does (section 7.2).
        regs = state.regs
        regs.scrub_gprs()
        regs.write_sp(0, Mode.USR)
        regs.write_lr(0, Mode.USR)
        regs.cpsr = PSR(mode=Mode.SVC, irq_masked=False, fiq_masked=True)
        state.world = World.NORMAL
        if self.on_recover is not None:
            self.on_recover()
        return RecoveryReport(
            journal=journal_status, native_threads_dropped=dropped
        )
