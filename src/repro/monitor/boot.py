"""The bootloader (paper section 7.2).

The prototype's bootloader loads the monitor in secure world, sets up
its memory map and exception vectors, reserves a configurable amount of
RAM as secure memory, provides the attestation secret (standing in for
the hardware-backed root of trust the Raspberry Pi lacks), and finally
switches to normal world to boot the untrusted OS.

The paper notes the bootloader "runs to completion without taking
exceptions, so it is much simpler than the monitor" — and is trusted.
This module models those duties explicitly so they are testable: the
platform's secure-region size, the attestation-secret provenance, and
the handover state are all bootloader decisions, not monitor ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arm.machine import MachineState
from repro.arm.modes import Mode, World
from repro.arm.registers import PSR
from repro.crypto.rng import HardwareRNG
from repro.monitor import integrity
from repro.monitor.attestation import Attestation
from repro.monitor.pagedb import PageDB


@dataclass
class BootReport:
    """What the bootloader established, for the OS and for audits."""

    secure_pages: int
    monitor_image_base: int
    secure_base: int
    insecure_base: int
    attestation_key_provisioned: bool


class Bootloader:
    """Performs the boot sequence against a machine state.

    Separated from the monitor so tests can check each duty and so a
    platform could substitute its own provisioning (e.g. a fused key
    instead of an RNG draw) without touching monitor code.
    """

    def __init__(
        self,
        secure_pages: int = 64,
        insecure_size: int = 0x100000,
        rng: Optional[HardwareRNG] = None,
    ):
        self.secure_pages = secure_pages
        self.insecure_size = insecure_size
        self.rng = rng or HardwareRNG()

    def boot(self, state: Optional[MachineState] = None) -> tuple:
        """Run the boot sequence; returns (state, attestation, report).

        Steps, in the prototype's order:
        1. establish the memory map (done by MachineState construction —
           the map is fixed hardware-plus-bootloader configuration);
        2. zero the PageDB so no secure page appears allocated;
        3. provision the attestation secret from the randomness source;
        4. switch to normal world, SVC mode, interrupts enabled, ready
           to run the untrusted OS.
        """
        state = state or MachineState.boot(
            secure_pages=self.secure_pages, insecure_size=self.insecure_size
        )
        if state.world is not World.SECURE:
            raise RuntimeError("the bootloader must start in secure world")
        pagedb = PageDB(state)
        for pageno in range(pagedb.npages):
            pagedb.free_entry(pageno)
        integrity.initialise(state)
        attestation = Attestation(state, self.rng)
        attestation.generate_boot_key()
        state.world = World.NORMAL
        state.regs.cpsr = PSR(mode=Mode.SVC, irq_masked=False, fiq_masked=True)
        report = BootReport(
            secure_pages=pagedb.npages,
            monitor_image_base=state.memmap.monitor_image.base,
            secure_base=state.memmap.secure.base,
            insecure_base=state.memmap.insecure.base,
            attestation_key_provisioned=True,
        )
        return (state, attestation, report)
