"""Monitor-side memory-integrity engine: tags, repair, quarantine.

Komodo's attestation argument (paper section 3.3) is only as strong as
the integrity of the PageDB and the enclave pages it measures; a DRAM
bit flip silently falsifies that assumption.  This module is the
monitor's defense, modeled on a memory-encryption-engine-style hardware
block (Gueron's MEE): word-granularity checksums over everything only
the monitor may write, verified before the monitor trusts it and
updated transactionally alongside the data they cover.

Coverage derives from the (repaired) PageDB instead of a stored status
word — a corruptible "checking disabled" bit would itself be a silent
failure mode:

* the PageDB array is covered by triple redundancy (primary entry +
  replica + per-entry checksum); any single corrupted word identifies
  itself and is *repaired* from the other two copies;
* ADDRSPACE, THREAD, L1PTABLE and L2PTABLE pages always carry a content
  tag (the monitor is their only writer);
* DATA pages carry a valid tag exactly while their addrspace's *dirty
  flag* is clear: user-mode stores are architecturally immediate and
  invisible to the engine, so the flag is set (transactionally) before
  Enter/Resume drops to user mode and cleared in the same transaction
  that refreshes the DATA tags once execution finally leaves the
  enclave — at every point in between, including any crash-recovery
  state, the flag says the tags are not to be trusted;
* FREE and SPARE pages are untagged: their contents are dead (both are
  zero-filled before any read) — a flip there is provably benign, and
  ``SMC_SCRUB`` heals them back to zero.

A tag mismatch cannot be repaired — the page's true contents are gone —
so the monitor **quarantines** the page: zero it, force-stop the owning
addrspace (sanitizing the addrspace page itself if that is what was
hit), retag over the sanitized contents, and record the quarantine
flag.  The SMC that tripped the check returns ``KomErr.PAGE_QUARANTINED``
with the page number; every other enclave and the OS stay fully
operational, and the OS reclaims the pages through the normal
Stop/Remove path (Remove clears the quarantine flag).

All engine work — verification, repair, retagging — charges **zero
cycles** (it models a hardware pipeline stage, not monitor software),
and engine reads do not count as CPU read transactions, so the cost
model and the fast-path engine's regression anchors are untouched.
Tag updates ride inside the PR-3 commit journal: ``run_transactional``
asks :func:`record_tag_ops` to append tag writes to the transaction at
its commit point, so data and tags are crash-atomic together.
"""

from __future__ import annotations

import zlib
from array import array
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Set, Tuple

from repro.arm.bits import WORDSIZE
from repro.arm.machine import MachineState
from repro.arm.memory import WORDS_PER_PAGE, _TYPECODE, PhysicalMemory
from repro.monitor.layout import (
    AS_REFCOUNT_WORD,
    AS_STATE_WORD,
    AddrspaceState,
    ITAG_MAGIC,
    JE_WRITE,
    JOURNAL_OFFSET,
    ITAG_OFFSET,
    PAGEDB_ENTRY_WORDS,
    PAGEDB_OFFSET,
    PageType,
    itag_dirty_addr,
    itag_entry_sum_addr,
    itag_magic_addr,
    itag_page_tag_addr,
    itag_quarantine_addr,
    itag_replica_addr,
    itag_words_used,
    pagedb_entry_addr,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor.komodo import KomodoMonitor

#: Page types whose contents only the monitor writes; always tagged.
_ALWAYS_TAGGED = frozenset(
    int(t)
    for t in (PageType.ADDRSPACE, PageType.THREAD, PageType.L1PTABLE, PageType.L2PTABLE)
)

#: Page types whose contents are dead until zero-filled; never tagged.
_NEVER_TAGGED = frozenset((int(PageType.FREE), int(PageType.SPARE)))


@dataclass
class PrecheckReport:
    """What an integrity check found and did."""

    repaired: int = 0  # PageDB entries repaired from redundancy
    healed: int = 0  # free/spare pages scrubbed back to zero
    quarantined: List[int] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Checksums and engine-private accesses
# ---------------------------------------------------------------------------


def page_checksum(words: Iterable[int]) -> int:
    """Content tag over one page of words.

    CRC-32 detects every single-bit (indeed every burst-of-32) error,
    which is exactly the fault model; it is not keyed because the tag
    region lives in monitor data memory the OS can never read or write.
    """
    return zlib.crc32(array(_TYPECODE, words).tobytes()) & 0xFFFFFFFF


def entry_checksum(type_word: int, owner_word: int) -> int:
    """Checksum of one PageDB entry."""
    return zlib.crc32(array(_TYPECODE, (type_word, owner_word)).tobytes()) & 0xFFFFFFFF


def _peek(memory: PhysicalMemory, address: int) -> int:
    """An engine read: does not count as a CPU read transaction."""
    saved = memory.read_ops
    try:
        return memory.read_word(address)
    finally:
        memory.read_ops = saved


def _peek_words(memory: PhysicalMemory, address: int, count: int) -> List[int]:
    saved = memory.read_ops
    try:
        return memory.read_words(address, count)
    finally:
        memory.read_ops = saved


def _twrite(state: MachineState, address: int, value: int) -> None:
    """An engine write: zero cycles, buffered if a transaction is open."""
    if state.txn is not None:
        state.txn.record_write(address, value)
        return
    state.memory.write_word(address, value)
    state.tlb.note_store(address)


def _tzero(state: MachineState, base: int) -> None:
    if state.txn is not None:
        state.txn.record_zero(base)
        return
    state.memory.zero_page(base)
    state.tlb.note_store(base)


# ---------------------------------------------------------------------------
# Region lifecycle
# ---------------------------------------------------------------------------


def enabled(state: MachineState) -> bool:
    """True once the bootloader initialised the tag region."""
    return (
        _peek(state.memory, itag_magic_addr(state.memmap.monitor_image.base))
        == ITAG_MAGIC
    )


def initialise(state: MachineState) -> None:
    """Bootloader duty: lay out the tag region over the zeroed PageDB.

    Runs after the PageDB itself is zeroed, so the replica (all zeros,
    already true of boot-scrubbed RAM) and the per-entry checksums are
    consistent from the first instruction the OS ever runs.
    """
    base = state.memmap.monitor_image.base
    npages = state.memmap.secure_pages
    if itag_words_used(npages) * WORDSIZE > JOURNAL_OFFSET - ITAG_OFFSET:
        raise ValueError(f"integrity-tag region cannot cover {npages} pages")
    free_sum = entry_checksum(int(PageType.FREE), 0)
    state.memory.write_words(
        itag_entry_sum_addr(base, npages, 0), [free_sum] * npages
    )
    state.memory.write_word(itag_magic_addr(base), ITAG_MAGIC)


def quarantined_pages(state: MachineState) -> List[int]:
    """Secure pages currently flagged as quarantined."""
    if not enabled(state):
        return []
    base = state.memmap.monitor_image.base
    npages = state.memmap.secure_pages
    flags = _peek_words(state.memory, itag_quarantine_addr(base, npages, 0), npages)
    return [pageno for pageno, flag in enumerate(flags) if flag]


# ---------------------------------------------------------------------------
# Transactional tag maintenance (the run_transactional commit hook)
# ---------------------------------------------------------------------------


def record_tag_ops(state: MachineState, txn) -> None:
    """Append tag-update writes for a transaction about to commit.

    Derives, from the buffered operations, every PageDB entry and secure
    page the commit will change, and appends the matching replica /
    checksum / content-tag stores to the same transaction — data and
    tags reach memory through one journal commit, so a crash at any
    point leaves them consistent together.
    """
    memmap = state.memmap
    base = memmap.monitor_image.base
    npages = memmap.secure_pages
    if _peek(state.memory, itag_magic_addr(base)) != ITAG_MAGIC:
        return
    pagedb_base = base + PAGEDB_OFFSET
    pagedb_limit = pagedb_base + npages * PAGEDB_ENTRY_WORDS * WORDSIZE
    touched_pages: Set[int] = set()
    touched_entries: Set[int] = set()
    for op in list(txn.ops):
        address = op[1]
        if memmap.is_secure(address):
            touched_pages.add(memmap.pageno_of(address))
        elif op[0] == JE_WRITE and pagedb_base <= address < pagedb_limit:
            touched_entries.add(
                (address - pagedb_base) // (PAGEDB_ENTRY_WORDS * WORDSIZE)
            )
    if not touched_pages and not touched_entries:
        return
    saved = state.memory.read_ops
    try:
        for pageno in sorted(touched_entries):
            type_word, owner_word = txn.read_words(
                state.memory, pagedb_entry_addr(base, pageno), PAGEDB_ENTRY_WORDS
            )
            txn.record_write(itag_replica_addr(base, pageno), type_word)
            txn.record_write(itag_replica_addr(base, pageno) + WORDSIZE, owner_word)
            txn.record_write(
                itag_entry_sum_addr(base, npages, pageno),
                entry_checksum(type_word, owner_word),
            )
            if type_word == int(PageType.FREE):
                # Deallocation retires the quarantine and dirty flags.
                txn.record_write(itag_quarantine_addr(base, npages, pageno), 0)
                txn.record_write(itag_dirty_addr(base, npages, pageno), 0)
        for pageno in sorted(touched_pages):
            type_word = txn.read(pagedb_entry_addr(base, pageno))
            if type_word is None:
                type_word = _peek(state.memory, pagedb_entry_addr(base, pageno))
            if type_word in _NEVER_TAGGED:
                tag = 0
            else:
                tag = page_checksum(
                    txn.read_words(
                        state.memory, memmap.page_base(pageno), WORDS_PER_PAGE
                    )
                )
            txn.record_write(itag_page_tag_addr(base, npages, pageno), tag)
    finally:
        state.memory.read_ops = saved


def resync(state: MachineState) -> None:
    """Rebuild every tag from current memory (engine resynchronisation).

    Harness-only: test fixtures that mutate secure memory behind the
    machine's back (e.g. the noninterference perturbations) use this to
    model the perturbation as part of the world's history rather than as
    a corruption event.  Never called by monitor code.
    """
    if not enabled(state):
        return
    memmap = state.memmap
    base = memmap.monitor_image.base
    npages = memmap.secure_pages
    memory = state.memory
    saved = memory.read_ops
    try:
        for pageno in range(npages):
            type_word, owner_word = memory.read_words(
                pagedb_entry_addr(base, pageno), PAGEDB_ENTRY_WORDS
            )
            memory.write_word(itag_replica_addr(base, pageno), type_word)
            memory.write_word(itag_replica_addr(base, pageno) + WORDSIZE, owner_word)
            memory.write_word(
                itag_entry_sum_addr(base, npages, pageno),
                entry_checksum(type_word, owner_word),
            )
            if type_word in _NEVER_TAGGED:
                tag = 0
            else:
                tag = page_checksum(
                    memory.read_words(memmap.page_base(pageno), WORDS_PER_PAGE)
                )
            memory.write_word(itag_page_tag_addr(base, npages, pageno), tag)
    finally:
        memory.read_ops = saved


# ---------------------------------------------------------------------------
# Verification
# ---------------------------------------------------------------------------


def check_pagedb(
    state: MachineState,
) -> Tuple[Dict[int, int], Dict[int, int], List[Tuple[int, int]], int]:
    """Verify the PageDB against its replica and checksums.

    Returns ``(types, owners, fixes, repaired_entries)`` where *types* /
    *owners* are the repaired view (raw words) and *fixes* are the
    ``(address, value)`` stores that realise the repairs.  A single
    corrupted word always identifies itself: the checksum arbitrates
    between primary and replica, and the two copies arbitrate a
    corrupted checksum.
    """
    memmap = state.memmap
    base = memmap.monitor_image.base
    npages = memmap.secure_pages
    memory = state.memory
    primary = _peek_words(memory, pagedb_entry_addr(base, 0), npages * 2)
    replica = _peek_words(memory, itag_replica_addr(base, 0), npages * 2)
    sums = _peek_words(memory, itag_entry_sum_addr(base, npages, 0), npages)
    types: Dict[int, int] = {}
    owners: Dict[int, int] = {}
    fixes: List[Tuple[int, int]] = []
    repaired = 0
    for pageno in range(npages):
        pt, po = primary[2 * pageno], primary[2 * pageno + 1]
        rt, ro = replica[2 * pageno], replica[2 * pageno + 1]
        stored = sums[pageno]
        entry_addr = pagedb_entry_addr(base, pageno)
        replica_addr = itag_replica_addr(base, pageno)
        sum_addr = itag_entry_sum_addr(base, npages, pageno)
        if (pt, po) == (rt, ro) and entry_checksum(pt, po) == stored:
            pass
        elif entry_checksum(pt, po) == stored:  # replica corrupted
            fixes.extend(((replica_addr, pt), (replica_addr + WORDSIZE, po)))
            repaired += 1
        elif entry_checksum(rt, ro) == stored:  # primary corrupted
            fixes.extend(((entry_addr, rt), (entry_addr + WORDSIZE, ro)))
            pt, po = rt, ro
            repaired += 1
        elif (pt, po) == (rt, ro):  # checksum corrupted
            fixes.append((sum_addr, entry_checksum(pt, po)))
            repaired += 1
        else:
            # Multi-word corruption (outside the single-flip model):
            # trust the primary, rewrite the redundancy around it.
            fixes.extend(
                (
                    (replica_addr, pt),
                    (replica_addr + WORDSIZE, po),
                    (sum_addr, entry_checksum(pt, po)),
                )
            )
            repaired += 1
        types[pageno] = pt
        owners[pageno] = po
    return types, owners, fixes, repaired


def _page_tag_ok(state: MachineState, pageno: int) -> bool:
    base = state.memmap.monitor_image.base
    npages = state.memmap.secure_pages
    content = _peek_words(state.memory, state.memmap.page_base(pageno), WORDS_PER_PAGE)
    return page_checksum(content) == _peek(
        state.memory, itag_page_tag_addr(base, npages, pageno)
    )


def _dirty_addrspaces(state: MachineState) -> Set[int]:
    """Addrspaces whose DATA tags are currently stale by protocol."""
    base = state.memmap.monitor_image.base
    npages = state.memmap.secure_pages
    flags = _peek_words(state.memory, itag_dirty_addr(base, npages, 0), npages)
    return {asno for asno, flag in enumerate(flags) if flag}


def mark_dirty(mon: "KomodoMonitor", asno: int) -> None:
    """Declare ``asno``'s DATA tags stale before dropping to user mode.

    Committed through its own journal window *before* the first user
    instruction can store, so no reachable state — including any
    crash-recovery state — has fresh-looking tags over user-modified
    pages.  Idempotent and write-free when the flag is already set
    (Resume of a suspended thread, re-entry after an interrupt).
    """
    from repro.monitor.journal import run_transactional

    state = mon.state
    if not enabled(state):
        return
    address = itag_dirty_addr(
        state.memmap.monitor_image.base, state.memmap.secure_pages, asno
    )
    if _peek(state.memory, address):
        return
    run_transactional(
        state, lambda: _twrite(state, address, 1), commit_if=lambda _: True
    )


# ---------------------------------------------------------------------------
# Quarantine
# ---------------------------------------------------------------------------


def _quarantine_in_txn(
    state: MachineState,
    types: Dict[int, int],
    owners: Dict[int, int],
    suspects: List[int],
) -> None:
    """Quarantine ``suspects``: zero, force-stop owner, flag.

    Must run inside an open transaction (the caller's always-commit
    window), so the whole containment action is crash-atomic and the
    commit hook retags the sanitized pages.

    The page keeps its PageDB entry — refcounts stay consistent and the
    OS reclaims it through the ordinary Stop/Remove path.  If the
    corrupted page *is* an addrspace page, its metadata is rebuilt
    minimally sane: state STOPPED, refcount recomputed from the PageDB,
    nothing else — the enclave is gone, but the teardown ABI still works.
    """
    memmap = state.memmap
    base = memmap.monitor_image.base
    npages = memmap.secure_pages
    # Sanitize addrspace pages first so force-stops of sibling suspects
    # land on the rebuilt state word, not the about-to-be-zeroed page.
    for pageno in sorted(suspects, key=lambda p: types[p] != int(PageType.ADDRSPACE)):
        page_base = memmap.page_base(pageno)
        _tzero(state, page_base)
        if types[pageno] == int(PageType.ADDRSPACE):
            refcount = sum(
                1
                for other, type_word in types.items()
                if other != pageno
                and type_word != int(PageType.FREE)
                and owners[other] == pageno
            )
            _twrite(
                state,
                page_base + AS_STATE_WORD * WORDSIZE,
                int(AddrspaceState.STOPPED),
            )
            _twrite(state, page_base + AS_REFCOUNT_WORD * WORDSIZE, refcount)
        else:
            owner = owners[pageno]
            if types.get(owner) == int(PageType.ADDRSPACE):
                _twrite(
                    state,
                    memmap.page_base(owner) + AS_STATE_WORD * WORDSIZE,
                    int(AddrspaceState.STOPPED),
                )
        _twrite(state, itag_quarantine_addr(base, npages, pageno), 1)


# ---------------------------------------------------------------------------
# The lazy precheck (SMC/SVC entry) and the scrub sweep
# ---------------------------------------------------------------------------


def precheck(mon: "KomodoMonitor", enter_thread: int = None) -> PrecheckReport:
    """Verify what the next handler will trust; repair or quarantine.

    Always: the PageDB (repairable) and every metadata page (addrspace,
    thread, page-table — only the monitor writes these, so their tags
    are always live).  With ``enter_thread`` (an Enter/Resume target):
    additionally that thread's addrspace's DATA pages, provided its
    dirty flag is clear (a set flag means user stores made the tags
    stale — they are refreshed in the exit window instead).

    Zero cycles, zero effect on a clean state: the repair/quarantine
    transaction is opened only when something is wrong, so fault-point
    sequences and state digests of uncorrupted runs are unchanged.
    """
    from repro.monitor.journal import run_transactional

    state = mon.state
    report = PrecheckReport()
    if not enabled(state):
        return report
    types, owners, fixes, repaired = check_pagedb(state)
    report.repaired = repaired
    suspects: List[int] = []
    for pageno, type_word in types.items():
        if type_word in _ALWAYS_TAGGED and not _page_tag_ok(state, pageno):
            suspects.append(pageno)
    enter_asno = (
        owners[enter_thread]
        if enter_thread in types and types[enter_thread] == int(PageType.THREAD)
        else None
    )
    if (
        enter_asno is not None
        and types.get(enter_asno) == int(PageType.ADDRSPACE)
        and enter_asno not in _dirty_addrspaces(state)
    ):
        for pageno, type_word in types.items():
            if (
                type_word == int(PageType.DATA)
                and owners[pageno] == enter_asno
                and pageno not in suspects
                and not _page_tag_ok(state, pageno)
            ):
                suspects.append(pageno)
    if fixes or suspects:

        def _contain():
            for address, value in fixes:
                _twrite(state, address, value)
            _quarantine_in_txn(state, types, owners, suspects)

        run_transactional(state, _contain, commit_if=lambda _: True)
    report.quarantined = sorted(suspects)
    return report


def scrub(mon: "KomodoMonitor") -> PrecheckReport:
    """The full periodic sweep behind ``SMC_SCRUB``.

    Everything :func:`precheck` covers, over every page, plus healing:
    FREE and SPARE pages (whose contents are dead) are re-zeroed if a
    flip landed in them, and DATA pages of every clean (non-dirty)
    addrspace are verified.  Runs inside the dispatching SMC's
    transaction.
    """
    state = mon.state
    report = PrecheckReport()
    if not enabled(state):
        return report
    memmap = state.memmap
    types, owners, fixes, repaired = check_pagedb(state)
    report.repaired = repaired
    for address, value in fixes:
        _twrite(state, address, value)
    suspects: List[int] = []
    for pageno, type_word in types.items():
        if type_word in _ALWAYS_TAGGED and not _page_tag_ok(state, pageno):
            suspects.append(pageno)
    dirty = _dirty_addrspaces(state)
    distrust = set(suspects)
    for pageno, type_word in types.items():
        if (
            type_word == int(PageType.DATA)
            and owners[pageno] not in dirty
            and owners[pageno] not in distrust
            and not _page_tag_ok(state, pageno)
        ):
            suspects.append(pageno)
    for pageno, type_word in types.items():
        if type_word in _NEVER_TAGGED:
            content = _peek_words(
                state.memory, memmap.page_base(pageno), WORDS_PER_PAGE
            )
            if any(content):
                _tzero(state, memmap.page_base(pageno))
                report.healed += 1
    base = memmap.monitor_image.base
    npages = memmap.secure_pages
    # Heal corrupted engine flags.  A genuine quarantine stops its owner
    # in the same commit that sets the flag, and a genuine dirty flag
    # belongs to an addrspace page — any other combination can only be a
    # flip landing in the flag arrays themselves.
    quar_flags = _peek_words(
        state.memory, itag_quarantine_addr(base, npages, 0), npages
    )
    for pageno, flag in enumerate(quar_flags):
        if not flag or pageno in suspects:
            continue
        type_word = types[pageno]
        owner = pageno if type_word == int(PageType.ADDRSPACE) else owners[pageno]
        owner_stopped = (
            types.get(owner) == int(PageType.ADDRSPACE)
            and _peek(
                state.memory, memmap.page_base(owner) + AS_STATE_WORD * WORDSIZE
            )
            == int(AddrspaceState.STOPPED)
        )
        if type_word == int(PageType.FREE) or not owner_stopped:
            _twrite(state, itag_quarantine_addr(base, npages, pageno), 0)
            report.healed += 1
    dirty_flags = _peek_words(state.memory, itag_dirty_addr(base, npages, 0), npages)
    for asno, flag in enumerate(dirty_flags):
        if flag and types[asno] != int(PageType.ADDRSPACE):
            _twrite(state, itag_dirty_addr(base, npages, asno), 0)
            report.healed += 1
    _quarantine_in_txn(state, types, owners, suspects)
    report.quarantined = sorted(suspects)
    return report


def refresh_data_tags(mon: "KomodoMonitor", asno: int) -> None:
    """Exit-window retag of an addrspace's DATA pages.

    Called from the Enter/Resume exit bookkeeping once execution has
    finally left the enclave (Exit or fault — not interrupt suspension,
    which keeps the dirty flag set): user-mode stores changed data pages
    without the engine seeing them, so their tags are recomputed here
    and the dirty flag cleared, in one crash-atomic window — tags are
    declared trustworthy only in the same commit that makes them so.
    """
    from repro.monitor.journal import run_transactional

    state = mon.state
    if not enabled(state):
        return
    memmap = state.memmap
    base = memmap.monitor_image.base
    npages = memmap.secure_pages
    if not _peek(state.memory, itag_dirty_addr(base, npages, asno)):
        return
    entries = _peek_words(state.memory, pagedb_entry_addr(base, 0), npages * 2)
    data_pages = [
        pageno
        for pageno in range(npages)
        if entries[2 * pageno] == int(PageType.DATA)
        and entries[2 * pageno + 1] == asno
    ]

    def _retag():
        for pageno in data_pages:
            content = _peek_words(
                state.memory, memmap.page_base(pageno), WORDS_PER_PAGE
            )
            _twrite(
                state,
                itag_page_tag_addr(base, npages, pageno),
                page_checksum(content),
            )
        _twrite(state, itag_dirty_addr(base, npages, asno), 0)

    run_transactional(state, _retag, commit_if=lambda _: True)


# ---------------------------------------------------------------------------
# Audit support (repro.faults / spec invariants)
# ---------------------------------------------------------------------------


def consistency_problems(state: MachineState) -> List[str]:
    """Raw engine-level consistency walk for post-injection audits.

    Checks, with the machine quiescent: PageDB triple redundancy agrees;
    every expected-live tag matches its page; every quarantine flag sits
    on a page whose owner is stopped.  Shares the arbitration code with
    the engine on purpose — the *independent* cross-check is the dual
    spec+machine audit in ``repro.faults.audit``, which never reads tags.
    """
    if not enabled(state):
        return []
    problems: List[str] = []
    memmap = state.memmap
    base = memmap.monitor_image.base
    npages = memmap.secure_pages
    types, owners, fixes, _repaired = check_pagedb(state)
    if fixes:
        problems.append(f"pagedb redundancy disagrees ({len(fixes)} pending fixes)")
    dirty = _dirty_addrspaces(state)
    for pageno, type_word in types.items():
        expected = type_word in _ALWAYS_TAGGED or (
            type_word == int(PageType.DATA) and owners[pageno] not in dirty
        )
        if expected and not _page_tag_ok(state, pageno):
            problems.append(f"page {pageno} content does not match its tag")
    flags = _peek_words(state.memory, itag_quarantine_addr(base, npages, 0), npages)
    for pageno, flag in enumerate(flags):
        if not flag:
            continue
        if types[pageno] == int(PageType.FREE):
            problems.append(f"free page {pageno} still flagged quarantined")
            continue
        owner = pageno if types[pageno] == int(PageType.ADDRSPACE) else owners[pageno]
        state_word = _peek(
            state.memory, memmap.page_base(owner) + AS_STATE_WORD * WORDSIZE
        )
        if (
            types.get(owner) != int(PageType.ADDRSPACE)
            or state_word != int(AddrspaceState.STOPPED)
        ):
            problems.append(
                f"quarantined page {pageno}: owner {owner} is not a stopped addrspace"
            )
    return problems
